//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `Criterion`, `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `Bencher::iter_batched`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — as a small wall-clock
//! harness: each benchmark is warmed up once and then timed over a handful
//! of iterations, with the mean per-iteration time printed to stdout. No
//! statistics, plots, or baselines; enough to compare orders of magnitude
//! and to keep `cargo bench` compiling offline.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; accepted for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times a single benchmark's iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `f` repeatedly, timing each call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }

    /// Calls `setup` to build an input, then times `routine` on it.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup())); // warm-up, untimed
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 5,
            filter: std::env::args().nth(1).filter(|a| !a.starts_with('-')),
        }
    }
}

impl Criterion {
    /// Sets the per-benchmark iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let name = name.into();
        self.run_one(&name, self.sample_size, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, name: &str, iters: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            iters: iters as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / iters.max(1) as f64;
        println!("bench {name:<50} {:>12.3} us/iter", per_iter * 1e6);
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, name.into());
        let iters = self.sample_size.unwrap_or(self.parent.sample_size);
        self.parent.run_one(&full, iters, f);
        self
    }

    /// Ends the group (no-op; prints happen eagerly).
    pub fn finish(&mut self) {}
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $bench(c); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        c.filter = None;
        let mut calls = 0u32;
        c.bench_function("smoke", |b| b.iter(|| calls += 1));
        assert!(calls >= 1);
    }

    #[test]
    fn groups_run_batched() {
        let mut c = Criterion::default();
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0usize;
        group.bench_function("b", |b| {
            b.iter_batched(|| 2usize, |x| total += x, BatchSize::SmallInput)
        });
        group.finish();
        assert!(total >= 6);
    }
}
