//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (over `ident in strategy` bindings),
//! [`prop_assert!`]/[`prop_assert_eq!`], `any::<T>()`, numeric range
//! strategies, tuple strategies, and `prop::collection::vec`.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test RNG (seeded from the test name) rather than an entropy source,
//! there is **no shrinking**, and regression files are ignored. Each test
//! runs [`test_runner::CASES`] cases.

use std::ops::{Range, RangeInclusive};

/// Deterministic case generation machinery used by the [`proptest!`] macro.
pub mod test_runner {
    /// Number of cases each property test runs.
    pub const CASES: u32 = 64;

    /// SplitMix64-based deterministic RNG for drawing test cases.
    #[derive(Debug, Clone)]
    pub struct StubRng {
        state: u64,
    }

    impl StubRng {
        /// Seeds the RNG from a test name so every test gets a distinct but
        /// reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x1000_0000_01b3);
            }
            StubRng { state }
        }

        /// Next uniform `u64`.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::StubRng;

    /// Something that can produce values for a property test.
    pub trait Strategy {
        /// The value type produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StubRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (((rng.next_u64() as u128) % span) as i128 + self.start as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StubRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty strategy range");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (((rng.next_u64() as u128) % span) as i128 + start as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_tuple {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut StubRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }

    impl_strategy_tuple! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Strategy for `any::<T>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StubRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StubRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StubRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut StubRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Returns the canonical strategy for `T` (`bool` and the integer types).
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::StubRng;
    use super::SizeRange;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StubRng) -> Self::Value {
            let span = (self.size.max - self.size.min).max(1) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Length bounds for collection strategies (`min` inclusive, `max` exclusive).
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

/// Namespace alias so `prop::collection::vec(..)` works as in real proptest.
pub mod prop {
    pub use super::collection;
}

/// The common-import module, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::strategy::Strategy;
    pub use super::{any, prop, prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case with a
/// formatted message instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{:?}` == `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Declares property tests: each `ident in strategy` argument is sampled per
/// case and the body runs [`test_runner::CASES`] times.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut rng = $crate::test_runner::StubRng::deterministic(stringify!($name));
            for case in 0..$crate::test_runner::CASES {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                let outcome = (|| -> ::core::result::Result<(), String> {
                    $body
                    Ok(())
                })();
                if let Err(msg) = outcome {
                    panic!("property `{}` failed on case {}: {}", stringify!($name), case, msg);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_hold(x in 0u64..100, y in -3i16..=3) {
            prop_assert!(x < 100);
            prop_assert!((-3..=3).contains(&y));
        }

        #[test]
        fn vec_lengths_hold(xs in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5, "len {}", xs.len());
            prop_assert!(xs.iter().all(|&v| v < 10));
        }

        #[test]
        fn tuples_and_any(pair in (0u32..4, 0u32..4), flag in any::<bool>()) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
