//! Offline stand-in for `crossbeam`, providing only `crossbeam::thread::scope`
//! backed by `std::thread::scope` (stable since Rust 1.63).
//!
//! Behavioral difference from real crossbeam: if a spawned thread panics, the
//! panic propagates out of `scope` instead of being returned as `Err`. The
//! workspace immediately `.expect()`s the result, so both behaviors abort the
//! run identically.

/// Scoped threads, mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::thread as std_thread;

    /// A scope handle passed to [`scope`]'s closure; spawned closures receive
    /// a fresh handle so they can spawn siblings, as in crossbeam.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives a [`Scope`] handle.
        pub fn spawn<F, T>(&self, f: F) -> std_thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Runs `f` with a scope in which threads borrowing from the enclosing
    /// environment can be spawned; all are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_fill_slots() {
        let mut out = [0usize; 8];
        super::thread::scope(|s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i * 2);
            }
        })
        .unwrap();
        assert_eq!(out, [0, 2, 4, 6, 8, 10, 12, 14]);
    }
}
