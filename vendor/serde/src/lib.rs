//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait *names* and re-exports the
//! no-op derive macros so `#[derive(Serialize, Deserialize)]` and
//! `use serde::{Deserialize, Serialize}` compile without the crates.io
//! registry. No serialization machinery is provided — nothing in the
//! workspace invokes it (JSON emission is hand-rolled in
//! `pathfinder-telemetry` / `pathfinder-harness`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
