//! Offline stand-in for `serde_derive`.
//!
//! The real crates.io registry is unreachable in this build environment, so
//! this stub accepts `#[derive(Serialize, Deserialize)]` (including `#[serde]`
//! field/container attributes) and expands to nothing. The workspace never
//! calls serde's serialization machinery — derives exist so types stay
//! source-compatible with a real serde once the registry is available.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
