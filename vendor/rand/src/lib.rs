//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The registry is unreachable in this build environment, so this crate
//! re-implements exactly the surface the workspace uses: a seedable
//! deterministic [`rngs::StdRng`] plus the [`Rng`] extension methods
//! `gen_range` (over `Range`/`RangeInclusive` of the primitive numeric
//! types) and `gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically solid and reproducible, though its streams
//! differ from the real `rand::rngs::StdRng` (ChaCha12), so seeds tuned
//! against upstream `rand` may select different outcomes here.

use std::ops::{Range, RangeInclusive};

/// A random number generator core: the uniform `u64` source.
pub trait RngCore {
    /// Returns the next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-size byte array for `StdRng`).
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types uniformly sampleable from a bounded interval, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Samples from `[low, high)` (`inclusive == false`) or `[low, high]`
    /// (`inclusive == true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128) as u128 + inclusive as u128;
                assert!(span > 0, "cannot sample empty range");
                (((rng.next_u64() as u128) % span) as i128 + low as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(low < high || (inclusive && low <= high), "empty range");
                // 53 bits of mantissa are plenty for both f32 and f64 here.
                let denom = if inclusive { (1u64 << 53) - 1 } else { 1u64 << 53 };
                let unit = (rng.next_u64() >> 11) as f64 / denom as f64;
                low + (high - low) * unit as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Ranges a value can be drawn from, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seedable generator (xoshiro256++).
    ///
    /// Drop-in for `rand::rngs::StdRng` in seeded, reproducible code. The
    /// output stream differs from upstream's ChaCha12-based `StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                    Self::splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!((0..10).contains(&rng.gen_range(0i32..10)));
            assert!((-5..=5).contains(&rng.gen_range(-5i16..=5)));
            let f = rng.gen_range(0.0f32..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn float_ranges_cover_span() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..10_000 {
            let v = rng.gen_range(10.0f64..20.0);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 10.5 && hi > 19.5, "span [{lo}, {hi}] too narrow");
    }
}
