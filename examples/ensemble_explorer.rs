//! Explores the §3.4 ensemble design space: PATHFINDER alone, PATHFINDER
//! with next-line fill, with SISB fill, and the paper's best design point
//! (PF + NL + SISB) — reporting how often the neural prediction wins the
//! slot (the paper reports 80-99%).
//!
//! ```text
//! cargo run --release --example ensemble_explorer -- 30000
//! ```

use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher};
use pathfinder_prefetch::{
    generate_prefetches, EnsemblePrefetcher, NextLinePrefetcher, Prefetcher, SisbPrefetcher,
};
use pathfinder_sim::{SimConfig, Simulator, Trace};
use pathfinder_traces::Workload;

fn pathfinder() -> Result<PathfinderPrefetcher, String> {
    PathfinderPrefetcher::new(PathfinderConfig::default())
}

fn run(name: &str, p: &mut dyn Prefetcher, trace: &Trace, baseline_misses: u64) {
    let schedule = generate_prefetches(p, trace, 2);
    let report = Simulator::new(SimConfig::default()).run(trace, &schedule);
    println!(
        "{name:<14} IPC {:>6.3}  accuracy {:>5.1}%  coverage {:>5.1}%  issued {:>8}",
        report.ipc(),
        report.accuracy() * 100.0,
        report.coverage(baseline_misses) * 100.0,
        report.prefetches_requested,
    );
}

fn main() -> Result<(), String> {
    let loads: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().map_err(|e| format!("loads: {e}")))
        .transpose()?
        .unwrap_or(30_000);

    for workload in [Workload::Xalan, Workload::Mcf] {
        let trace = workload.generate(loads, 42);
        let baseline = Simulator::new(SimConfig::default()).run(&trace, &[]);
        println!(
            "\n== {workload} ({loads} loads, baseline IPC {:.3}, {} LLC misses) ==",
            baseline.ipc(),
            baseline.llc_misses
        );

        run(
            "PATHFINDER",
            &mut pathfinder()?,
            &trace,
            baseline.llc_misses,
        );

        let mut pf_nl = EnsemblePrefetcher::new("PF+NL", 2)
            .with(pathfinder()?)
            .with(NextLinePrefetcher::new());
        run("PF+NL", &mut pf_nl, &trace, baseline.llc_misses);
        println!(
            "               (neural share of slots: {:.1}%)",
            pf_nl.primary_share() * 100.0
        );

        let mut pf_sisb = EnsemblePrefetcher::new("PF+SISB", 2)
            .with(pathfinder()?)
            .with(SisbPrefetcher::new(2));
        run("PF+SISB", &mut pf_sisb, &trace, baseline.llc_misses);

        let mut full = EnsemblePrefetcher::new("PF+NL+SISB", 2)
            .with(pathfinder()?)
            .with(NextLinePrefetcher::new())
            .with(SisbPrefetcher::new(2));
        run("PF+NL+SISB", &mut full, &trace, baseline.llc_misses);
        println!(
            "               (neural share of slots: {:.1}%)",
            full.primary_share() * 100.0
        );
    }
    Ok(())
}
