//! A miniature Figure 4: every prefetcher on a chosen workload, with the
//! §4.5 metrics. Pass a trace name and optional load count:
//!
//! ```text
//! cargo run --release --example prefetcher_shootout -- 605-mcf-s1 50000
//! ```

use pathfinder_harness::runner::{PrefetcherKind, Scenario};
use pathfinder_traces::Workload;

fn main() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let workload: Workload = args
        .next()
        .unwrap_or_else(|| "cc-5".to_string())
        .parse()
        .map_err(|e| format!("{e} (try e.g. cc-5, 605-mcf-s1, 623-xalan-s1)"))?;
    let loads: usize = args
        .next()
        .map(|s| s.parse().map_err(|e| format!("loads: {e}")))
        .transpose()?
        .unwrap_or(50_000);

    println!("workload {workload}, {loads} loads\n");
    let scenario = Scenario::with_loads(loads);
    let evals = scenario.evaluate_all(&PrefetcherKind::figure4_lineup(), workload);

    let base_ipc = evals[0].ipc();
    println!(
        "{:<12} {:>7} {:>9} {:>9} {:>9} {:>10}",
        "prefetcher", "IPC", "speedup", "accuracy", "coverage", "requested"
    );
    for e in &evals {
        println!(
            "{:<12} {:>7.3} {:>8.1}% {:>8.1}% {:>8.1}% {:>10}",
            e.prefetcher,
            e.ipc(),
            (e.ipc() / base_ipc - 1.0) * 100.0,
            e.accuracy() * 100.0,
            e.coverage() * 100.0,
            e.requested()
        );
    }

    let best = evals
        .iter()
        .max_by(|a, b| a.ipc().partial_cmp(&b.ipc()).expect("finite IPC"))
        .expect("non-empty line-up");
    println!("\nbest on {workload}: {}", best.prefetcher);
    Ok(())
}
