//! The §3.6 "SNN in Action" demonstration (Table 2 / Figure 3): feed the
//! delta pattern `{1, 2, 4}` repeatedly to a fresh network and watch one
//! neuron claim it — then perturb the pattern and watch noise tolerance.
//!
//! ```text
//! cargo run --release --example snn_learning_demo
//! ```

use pathfinder_harness::experiments::snn_analysis;

fn main() {
    let (rows, monitor, table) = snn_analysis::tab2(42);
    println!("{table}");

    // Figure 3 flavour: an ASCII potential trace of the winning neuron
    // across the input intervals, against the population mean.
    let trained = rows
        .iter()
        .filter(|r| r.pattern == [1, 2, 4])
        .rev()
        .find_map(|r| r.firing_neuron);
    let Some(winner) = trained else {
        println!("no neuron fired in the demo (unexpected with this seed)");
        return;
    };
    println!("neuron {winner} owns the pattern {{1, 2, 4}}\n");
    println!("potential of neuron {winner} per interval (x = spike):");

    let series = monitor.potential_series(winner);
    let spike_ticks = monitor.spike_ticks(winner);
    let starts = monitor.interval_starts();
    for (i, &start) in starts.iter().enumerate() {
        let end = starts.get(i + 1).copied().unwrap_or(series.len());
        let slice = &series[start..end];
        let spikes = spike_ticks
            .iter()
            .filter(|&&t| (start..end).contains(&t))
            .count();
        // Bucket the interval into a 50-char sparkline.
        let buckets = 50usize;
        let mut line = String::new();
        for b in 0..buckets {
            let idx = start + b * slice.len() / buckets;
            let v = series[idx.min(series.len() - 1)];
            let c = if spike_ticks.contains(&idx) {
                'x'
            } else if v > -55.0 {
                '#'
            } else if v > -60.0 {
                '+'
            } else if v > -64.0 {
                '-'
            } else {
                '.'
            };
            line.push(c);
        }
        println!(
            "interval {:>2} [{line}] {spikes} spike(s), pattern {:?}",
            i + 1,
            rows[i].pattern
        );
    }
    println!("\nlegend: . near rest   - charging   + close   # near threshold   x spike");
}
