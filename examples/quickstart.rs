//! Quickstart: build a PATHFINDER, run it on a synthetic workload, and
//! compare it against no-prefetching through the full two-phase pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher};
use pathfinder_prefetch::generate_prefetches;
use pathfinder_sim::{SimConfig, Simulator};
use pathfinder_traces::Workload;

fn main() -> Result<(), String> {
    // 1. A workload trace. The generators mirror the paper's Table 5 set;
    //    bfs-10 mixes streaming neighbor lists with scattered visited-bitmap
    //    probes.
    let loads = 100_000;
    let trace = Workload::Bfs10.generate(loads, 42);
    println!(
        "trace: {} loads, {} total instructions",
        trace.len(),
        trace.total_instructions()
    );

    // 2. Phase one (competition workflow): run the prefetcher offline over
    //    the load trace to produce a prefetch schedule.
    let config = PathfinderConfig::default(); // Figure 4 configuration
    let mut pathfinder = PathfinderPrefetcher::new(config)?;
    let schedule = generate_prefetches(&mut pathfinder, &trace, 2);
    let stats = *pathfinder.stats();
    println!(
        "pathfinder: {} SNN queries, {} labels assigned, {} prefetches",
        stats.snn_queries, stats.labels_assigned, stats.prefetches_issued
    );

    // 3. Phase two: timed replay through the Table 3 memory hierarchy.
    let baseline = Simulator::new(SimConfig::default()).run(&trace, &[]);
    let prefetched = Simulator::new(SimConfig::default()).run(&trace, &schedule);

    println!("\n              {:>12} {:>12}", "no prefetch", "PATHFINDER");
    println!(
        "IPC           {:>12.3} {:>12.3}",
        baseline.ipc(),
        prefetched.ipc()
    );
    println!(
        "LLC misses    {:>12} {:>12}",
        baseline.llc_misses, prefetched.llc_misses
    );
    println!(
        "accuracy      {:>12} {:>11.1}%",
        "-",
        prefetched.accuracy() * 100.0
    );
    println!(
        "coverage      {:>12} {:>11.1}%",
        "-",
        prefetched.coverage(baseline.llc_misses) * 100.0
    );
    println!(
        "\nspeedup: {:.2}%",
        (prefetched.ipc() / baseline.ipc() - 1.0) * 100.0
    );
    Ok(())
}
