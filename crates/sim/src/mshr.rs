//! Fixed-capacity MSHR tracker for the replay engine.
//!
//! The engine needs a multiset of outstanding-miss completion cycles with
//! three operations: drop everything that completed by a given cycle, take
//! the earliest completion when the structure is full, and insert one new
//! completion per LLC miss. The pre-rewrite engine used a
//! `BinaryHeap<Reverse<u64>>` (retained in [`crate::reference`]); this
//! tracker replaces it with one array sized to the core's MSHR count at
//! construction — bounded by construction, zero steady-state allocation,
//! and an unordered linear scan instead of heap sift-downs (MSHR counts
//! are small — Table 3 uses 32 — so the scan stays in one or two cache
//! lines).
//!
//! Element order is irrelevant: the engine only ever asks for the minimum
//! or removes by threshold, so removal uses `swap_remove`-style compaction.
//! The tracker additionally caches the earliest live completion so the
//! per-access [`MshrTracker::drain_completed`] call is a single compare
//! when nothing has completed yet — the common case, and the one the
//! heap's `peek` also served in O(1).
//!
//! The min scans dispatch through [`pathfinder_accel`]'s [`KernelTier`]
//! (captured at construction, see [`MshrTracker::with_tier`]):
//! [`MshrTracker::pop_earliest`] is a single two-smallest pass — the
//! runner-up *is* the post-removal minimum, since the second smallest
//! value counting duplicates equals the min of the remainder after one
//! first-minimum `swap_remove` — where it previously re-scanned the slots
//! after removal. `u64` min is order-insensitive, so every tier is
//! bit-identical and the BinaryHeap-semantics tape below pins them all.

use pathfinder_accel::{self as accel, KernelTier};

/// Completion cycles of outstanding demand misses, bounded by the MSHR
/// count supplied at construction.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::MshrTracker;
///
/// let mut mshrs = MshrTracker::new(2);
/// mshrs.push(100);
/// mshrs.push(50);
/// assert_eq!(mshrs.len(), 2);
/// assert_eq!(mshrs.pop_earliest(), Some(50));
/// mshrs.drain_completed(100);
/// assert!(mshrs.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct MshrTracker {
    /// Completion cycles, unordered; only `slots[..len]` is live.
    slots: Box<[u64]>,
    len: usize,
    /// Smallest live completion cycle (`u64::MAX` when empty), maintained
    /// so threshold drains can early-exit without scanning.
    earliest: u64,
    /// Kernel tier the min scans dispatch to, captured at construction.
    tier: KernelTier,
}

impl MshrTracker {
    /// Creates an empty tracker for `mshrs` outstanding misses, with min
    /// scans on the process-wide [`accel::active_tier`].
    ///
    /// A zero MSHR count still reserves one slot: the engine's stall logic
    /// ("pop the earliest completion when at capacity, then insert") keeps
    /// at most one entry live in that configuration.
    pub fn new(mshrs: usize) -> Self {
        MshrTracker::with_tier(mshrs, accel::active_tier())
    }

    /// [`MshrTracker::new`] with an explicit [`KernelTier`] — for
    /// tier-pinning tests and benchmarks; tiers are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is not supported on this host.
    pub fn with_tier(mshrs: usize, tier: KernelTier) -> Self {
        assert!(
            tier.supported(),
            "kernel tier {:?} is not supported on this host",
            tier
        );
        MshrTracker {
            slots: vec![0; mshrs.max(1)].into_boxed_slice(),
            len: 0,
            earliest: u64::MAX,
            tier,
        }
    }

    /// Outstanding completions currently tracked.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is outstanding.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot capacity fixed at construction.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Removes every completion at or before `now`. A single compare
    /// against the cached minimum when nothing has completed.
    #[inline]
    pub fn drain_completed(&mut self, now: u64) {
        if self.earliest > now {
            return;
        }
        let mut i = 0;
        while i < self.len {
            if self.slots[i] <= now {
                self.len -= 1;
                self.slots[i] = self.slots[self.len];
            } else {
                i += 1;
            }
        }
        // Recompute the cached minimum over the compacted survivors in one
        // vector scan (u64 min is order-insensitive, so this is identical
        // to folding during compaction; `u64::MAX` when all completed).
        self.earliest = accel::min_u64(self.tier, &self.slots[..self.len]);
    }

    /// Removes and returns the earliest completion, if any.
    ///
    /// A single two-smallest scan: the removed entry is the first minimum
    /// and the runner-up becomes the new cached `earliest` — exactly the
    /// min of the remaining entries, because the second smallest value
    /// *counting duplicates* is unaffected by removing one copy of the
    /// minimum. (Previously this re-scanned the slots after the
    /// `swap_remove`.)
    #[inline]
    pub fn pop_earliest(&mut self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let (min_idx, done, runner_up) = accel::min2_index_u64(self.tier, &self.slots[..self.len]);
        self.len -= 1;
        self.slots[min_idx] = self.slots[self.len];
        self.earliest = runner_up;
        Some(done)
    }

    /// Records a new outstanding completion.
    ///
    /// # Panics
    ///
    /// Panics if the tracker is already at capacity — the engine drains
    /// and, at capacity, pops before every insert, so this indicates a
    /// caller bug rather than a workload condition.
    #[inline]
    pub fn push(&mut self, done: u64) {
        assert!(
            self.len < self.slots.len(),
            "MSHR tracker over capacity ({} slots)",
            self.slots.len()
        );
        self.slots[self.len] = done;
        self.len += 1;
        self.earliest = self.earliest.min(done);
    }

    /// Empties the tracker (capacity is retained).
    pub fn clear(&mut self) {
        self.len = 0;
        self.earliest = u64::MAX;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_a_bounded_multiset() {
        let mut m = MshrTracker::new(4);
        assert!(m.is_empty());
        for done in [40, 10, 30, 10] {
            m.push(done);
        }
        assert_eq!(m.len(), 4);
        assert_eq!(m.capacity(), 4);
        // Duplicates are distinct entries.
        assert_eq!(m.pop_earliest(), Some(10));
        assert_eq!(m.pop_earliest(), Some(10));
        assert_eq!(m.pop_earliest(), Some(30));
        assert_eq!(m.pop_earliest(), Some(40));
        assert_eq!(m.pop_earliest(), None);
    }

    #[test]
    fn drain_removes_exactly_the_completed() {
        let mut m = MshrTracker::new(8);
        for done in [5, 20, 7, 20, 100] {
            m.push(done);
        }
        m.drain_completed(20);
        assert_eq!(m.len(), 1);
        assert_eq!(m.pop_earliest(), Some(100));
        m.drain_completed(0); // empty drain is a no-op
        assert!(m.is_empty());
    }

    #[test]
    fn matches_binary_heap_semantics_on_a_random_tape() {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut tracker = MshrTracker::new(64);
        let mut heap: BinaryHeap<Reverse<u64>> = BinaryHeap::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for step in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match x % 3 {
                0 => {
                    if tracker.len() < tracker.capacity() {
                        let v = x >> 32;
                        tracker.push(v);
                        heap.push(Reverse(v));
                    }
                }
                1 => {
                    assert_eq!(tracker.pop_earliest(), heap.pop().map(|Reverse(v)| v));
                }
                _ => {
                    let now = x >> 34;
                    tracker.drain_completed(now);
                    while let Some(&Reverse(done)) = heap.peek() {
                        if done <= now {
                            heap.pop();
                        } else {
                            break;
                        }
                    }
                }
            }
            assert_eq!(tracker.len(), heap.len(), "diverged at step {step}");
        }
    }

    #[test]
    fn scalar_and_active_tiers_agree_on_a_random_tape() {
        let mut simd = MshrTracker::new(32);
        let mut scalar = MshrTracker::with_tier(32, KernelTier::Scalar);
        assert_eq!(scalar.slots.len(), simd.slots.len());
        let mut x = 0xD1B54A32D192ED03u64;
        for _ in 0..2_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match x % 3 {
                0 => {
                    if simd.len() < simd.capacity() {
                        // Narrow range to force duplicate minima.
                        let v = (x >> 32) % 17;
                        simd.push(v);
                        scalar.push(v);
                    }
                }
                1 => assert_eq!(simd.pop_earliest(), scalar.pop_earliest()),
                _ => {
                    let now = (x >> 34) % 17;
                    simd.drain_completed(now);
                    scalar.drain_completed(now);
                }
            }
            assert_eq!(simd.len(), scalar.len());
            assert_eq!(simd.earliest, scalar.earliest);
        }
    }

    #[test]
    fn zero_mshr_config_still_holds_one_entry() {
        let mut m = MshrTracker::new(0);
        assert_eq!(m.capacity(), 1);
        m.push(10);
        assert_eq!(m.pop_earliest(), Some(10));
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn push_past_capacity_panics() {
        let mut m = MshrTracker::new(1);
        m.push(1);
        m.push(2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut m = MshrTracker::new(3);
        m.push(1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.capacity(), 3);
    }
}
