//! End-of-simulation reporting.

use serde::{Deserialize, Serialize};

use crate::cache::CacheStats;
use crate::dram::DramStats;

/// Everything a timed replay produces.
///
/// The paper's metrics (§4.5) derive directly from these counters:
///
/// * `IPC = instructions / cycles`
/// * `accuracy = useful prefetches / issued prefetches`
/// * `coverage = useful prefetches / baseline LLC load misses` (the baseline
///   miss count comes from a no-prefetch run of the same trace)
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimReport {
    /// Total dynamic instructions represented by the trace.
    pub instructions: u64,
    /// Cycles the replay took.
    pub cycles: u64,
    /// Demand loads replayed.
    pub loads: u64,
    /// Demand loads that hit in the L1D.
    pub l1d_hits: u64,
    /// Demand loads that hit in the L2.
    pub l2_hits: u64,
    /// Demand loads that reached the LLC.
    pub llc_load_accesses: u64,
    /// Demand loads that hit in the LLC (including prefetched blocks).
    pub llc_hits: u64,
    /// Demand loads that missed the LLC and went to DRAM.
    pub llc_misses: u64,
    /// Prefetch requests the prefetcher produced (before filtering).
    pub prefetches_requested: u64,
    /// Prefetches actually sent to memory (not already resident/in-flight).
    pub prefetches_issued: u64,
    /// Prefetched blocks that served at least one demand load.
    pub prefetches_useful: u64,
    /// Useful prefetches whose data had not yet arrived when demanded.
    pub prefetches_late: u64,
    /// Prefetched blocks evicted untouched.
    pub prefetches_useless: u64,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of issued prefetches that proved useful (§4.5).
    pub fn accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }

    /// Fraction of `baseline_misses` covered by useful prefetches (§4.5).
    ///
    /// `baseline_misses` must come from a no-prefetch replay of the same
    /// trace under the same configuration.
    pub fn coverage(&self, baseline_misses: u64) -> f64 {
        if baseline_misses == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / baseline_misses as f64
        }
    }

    /// LLC demand hit rate.
    pub fn llc_hit_rate(&self) -> f64 {
        if self.llc_load_accesses == 0 {
            0.0
        } else {
            self.llc_hits as f64 / self.llc_load_accesses as f64
        }
    }
}

/// Detailed per-component statistics for debugging and ablation.
///
/// Equality is bit-exact on every counter — the engine-equivalence suite
/// compares the flat and reference replays on whole `DetailedStats`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetailedStats {
    /// L1D counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// LLC counters.
    pub llc: CacheStats,
    /// DRAM counters.
    pub dram: DramStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let r = SimReport {
            instructions: 1000,
            cycles: 500,
            prefetches_issued: 10,
            prefetches_useful: 8,
            llc_load_accesses: 100,
            llc_hits: 60,
            ..SimReport::default()
        };
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.accuracy() - 0.8).abs() < 1e-12);
        assert!((r.coverage(40) - 0.2).abs() < 1e-12);
        assert!((r.llc_hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let r = SimReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.accuracy(), 0.0);
        assert_eq!(r.coverage(0), 0.0);
        assert_eq!(r.llc_hit_rate(), 0.0);
    }
}
