//! Trace (de)serialization: a compact little-endian binary format for
//! storing load traces on disk, mirroring the competition's
//! trace-file-plus-prefetch-file workflow.
//!
//! Format: an 8-byte magic (`PFTRACE1`), a u64 record count, then one
//! 26-byte record per load: `instr_id: u64, pc: u64, vaddr: u64, flags: u8`
//! (bit 0 = depends-on-previous), plus a trailing XOR checksum byte per
//! record for cheap corruption detection.

use std::io::{self, Read, Write};

use crate::access::{MemoryAccess, Trace};
use crate::addr::Addr;

const MAGIC: &[u8; 8] = b"PFTRACE1";

/// Errors produced while decoding a trace stream.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `PFTRACE1` magic.
    BadMagic,
    /// A record's checksum byte did not match its contents.
    Corrupt {
        /// Index of the offending record.
        record: u64,
    },
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ReadTraceError::BadMagic => write!(f, "not a PFTRACE1 stream"),
            ReadTraceError::Corrupt { record } => {
                write!(f, "checksum mismatch at record {record}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadTraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn checksum(bytes: &[u8]) -> u8 {
    bytes.iter().fold(0xA5u8, |acc, &b| acc ^ b.rotate_left(1))
}

/// Writes `trace` to `w` in the `PFTRACE1` format.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::{read_trace, write_trace, MemoryAccess, Trace};
///
/// let trace: Trace = (0..10).map(|i| MemoryAccess::new(i, 0x400, i * 64)).collect();
/// let mut buf = Vec::new();
/// write_trace(&trace, &mut buf)?;
/// let back = read_trace(&buf[..])?;
/// assert_eq!(trace, back);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn write_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut rec = [0u8; 26];
    for a in trace {
        rec[0..8].copy_from_slice(&a.instr_id.to_le_bytes());
        rec[8..16].copy_from_slice(&a.pc.raw().to_le_bytes());
        rec[16..24].copy_from_slice(&a.vaddr.raw().to_le_bytes());
        rec[24] = u8::from(a.depends_on_prev);
        rec[25] = checksum(&rec[..25]);
        w.write_all(&rec)?;
    }
    Ok(())
}

/// Reads a `PFTRACE1` stream back into a [`Trace`].
///
/// # Errors
///
/// Returns [`ReadTraceError::BadMagic`] for foreign data,
/// [`ReadTraceError::Corrupt`] on a checksum mismatch, and
/// [`ReadTraceError::Io`] for underlying reader failures (including
/// truncation).
pub fn read_trace<R: Read>(mut r: R) -> Result<Trace, ReadTraceError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadTraceError::BadMagic);
    }
    let mut count_bytes = [0u8; 8];
    r.read_exact(&mut count_bytes)?;
    let count = u64::from_le_bytes(count_bytes);

    let mut trace = Trace::new();
    let mut rec = [0u8; 26];
    for i in 0..count {
        r.read_exact(&mut rec)?;
        if checksum(&rec[..25]) != rec[25] {
            return Err(ReadTraceError::Corrupt { record: i });
        }
        let mut a = MemoryAccess {
            instr_id: u64::from_le_bytes(rec[0..8].try_into().expect("8 bytes")),
            pc: Addr::new(u64::from_le_bytes(rec[8..16].try_into().expect("8 bytes"))),
            vaddr: Addr::new(u64::from_le_bytes(rec[16..24].try_into().expect("8 bytes"))),
            depends_on_prev: false,
        };
        if rec[24] & 1 != 0 {
            a = a.dependent();
        }
        trace.push(a);
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        (0..100u64)
            .map(|i| {
                let a = MemoryAccess::new(i * 3, 0x400 + i % 7, i * 64 + 0x1000);
                if i % 5 == 0 {
                    a.dependent()
                } else {
                    a
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = sample();
        let mut buf = Vec::new();
        write_trace(&t, &mut buf).unwrap();
        assert_eq!(buf.len(), 16 + 26 * t.len());
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut buf = Vec::new();
        write_trace(&Trace::new(), &mut buf).unwrap();
        let back = read_trace(&buf[..]).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_foreign_data() {
        let err = read_trace(&b"NOTATRACEFILE---"[..]).unwrap_err();
        assert!(matches!(err, ReadTraceError::BadMagic), "{err}");
    }

    #[test]
    fn detects_corruption() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        buf[16 + 26 * 3 + 5] ^= 0xFF; // flip a byte in record 3
        let err = read_trace(&buf[..]).unwrap_err();
        assert!(
            matches!(err, ReadTraceError::Corrupt { record: 3 }),
            "{err}"
        );
    }

    #[test]
    fn detects_truncation() {
        let mut buf = Vec::new();
        write_trace(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 10);
        assert!(matches!(
            read_trace(&buf[..]).unwrap_err(),
            ReadTraceError::Io(_)
        ));
    }
}
