//! Bank- and bus-aware DRAM timing model.
//!
//! Models the Table 3 memory system: one channel of 8 ranks x 8 banks with
//! open-row policy, `tRP/tRCD/tCAS` timing, a shared data bus, and a bounded
//! read queue. The model answers a single question for the replay engine:
//! *given a block request arriving at cycle `t`, when does its data return?*

use pathfinder_accel::{self as accel, KernelTier};
use pathfinder_telemetry as telemetry;

use crate::addr::Block;
use crate::config::DramConfig;

/// Per-request service classification, useful for tests and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The open row matched: only CAS latency applies.
    Hit,
    /// A different row was open: precharge + activate + CAS.
    Conflict,
    /// Bank had no open row (first touch): activate + CAS.
    Empty,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    free_at: u64,
}

/// Counters accumulated by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests that hit the open row.
    pub row_hits: u64,
    /// Requests that had to close an open row first.
    pub row_conflicts: u64,
    /// Requests to a bank with no open row.
    pub row_empties: u64,
    /// Total requests served.
    pub requests: u64,
    /// Cycles spent waiting for a free read-queue slot.
    pub queue_stall_cycles: u64,
    /// Prefetch reads shed because the queue was busy with demand traffic.
    pub prefetches_dropped: u64,
}

/// The DRAM subsystem.
///
/// The bank array and the in-flight read queue are both bounded by
/// construction: banks are fixed at `total_banks()`, and the queue is
/// preallocated to `read_queue_size` slots and can never hold more (a
/// request arriving at a full queue waits for the oldest in-flight read to
/// drain before it is enqueued). Like the flat cache and MSHR tracker, the
/// model therefore allocates nothing after construction.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::{Block, DramModel};
/// use pathfinder_sim::DramConfig;
///
/// let mut dram = DramModel::new(DramConfig::default());
/// let done_a = dram.service(Block(0), 0);
/// let done_b = dram.service(Block(1), 0); // same row: faster second access
/// assert!(done_b - done_a < done_a);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    banks: Vec<Bank>,
    /// Completion cycles of in-flight reads, bounded by `read_queue_size`.
    inflight: Vec<u64>,
    /// Smallest in-flight completion cycle (`u64::MAX` when empty): lets
    /// the per-request queue drain early-exit with one compare.
    inflight_earliest: u64,
    /// `row_bytes / BLOCK_SIZE`, precomputed off the request path.
    blocks_per_row: u64,
    /// `total_banks()`, precomputed off the request path.
    total_banks: u64,
    /// Shift equivalent of dividing by `blocks_per_row` (power-of-two
    /// geometries — the Table 3 defaults are); `None` falls back to
    /// division with identical results.
    row_shift: Option<u32>,
    /// Shift/mask equivalent of dividing by `total_banks`.
    bank_shift: Option<u32>,
    /// [`DramConfig::prefetch_headroom`] clamped below the queue size at
    /// construction, so an idle queue can always accept a prefetch.
    prefetch_headroom: usize,
    /// Kernel tier the queue-drain min scan dispatches to.
    tier: KernelTier,
    bus_free_at: u64,
    stats: DramStats,
    /// Per-depth occupancy tally for the `sim.dram.queue_depth` histogram:
    /// slot `d` counts requests that saw `d` reads in flight. The queue is
    /// bounded by `read_queue_size`, so `read_queue_size + 1` slots cover
    /// every observable depth; [`DramModel::flush_telemetry`] folds the
    /// tally into the recorder in one pass and zeroes it. Only written when
    /// telemetry is compiled in.
    depth_counts: Box<[u64]>,
    /// Stats totals already emitted to telemetry, so
    /// [`DramModel::flush_telemetry`] publishes deltas and stays correct
    /// across repeated flushes.
    flushed: DramStats,
}

impl DramModel {
    /// Creates an idle DRAM model, with min scans on the process-wide
    /// [`accel::active_tier`].
    pub fn new(config: DramConfig) -> Self {
        DramModel::with_tier(config, accel::active_tier())
    }

    /// [`DramModel::new`] with an explicit [`KernelTier`] — for
    /// tier-pinning tests and benchmarks; tiers are bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is not supported on this host.
    pub fn with_tier(config: DramConfig, tier: KernelTier) -> Self {
        assert!(
            tier.supported(),
            "kernel tier {:?} is not supported on this host",
            tier
        );
        let banks = vec![
            Bank {
                open_row: None,
                free_at: 0
            };
            config.total_banks()
        ];
        let blocks_per_row = (config.row_bytes / crate::addr::BLOCK_SIZE).max(1);
        let total_banks = (config.total_banks() as u64).max(1);
        DramModel {
            config,
            banks,
            // Full capacity up front: the queue's length is bounded by
            // `read_queue_size` (see `service_classified`), so no push
            // ever reallocates.
            inflight: Vec::with_capacity(config.read_queue_size),
            inflight_earliest: u64::MAX,
            blocks_per_row,
            total_banks,
            row_shift: blocks_per_row
                .is_power_of_two()
                .then(|| blocks_per_row.trailing_zeros()),
            bank_shift: total_banks
                .is_power_of_two()
                .then(|| total_banks.trailing_zeros()),
            // Clamp so `len + headroom >= queue_size` can never hold on an
            // idle queue: demand reads keep priority, but a quiet memory
            // system accepts prefetches at every queue size (the unclamped
            // constant used to shed 100% of prefetches whenever
            // `read_queue_size <= headroom`).
            prefetch_headroom: config
                .prefetch_headroom
                .min(config.read_queue_size.saturating_sub(1)),
            tier,
            bus_free_at: 0,
            stats: DramStats::default(),
            depth_counts: vec![0; config.read_queue_size + 1].into_boxed_slice(),
            flushed: DramStats::default(),
        }
    }

    /// Removes every in-flight read that completed by `now`, keeping the
    /// cached minimum current. One compare when nothing has drained.
    #[inline]
    fn drain_inflight(&mut self, now: u64) {
        if self.inflight_earliest > now {
            return;
        }
        self.inflight.retain(|&c| c > now);
        // Recompute the cached minimum over the survivors in one vector
        // scan (u64 min is order-insensitive, so this is identical to
        // folding inside the retain; `u64::MAX` when the queue emptied).
        self.inflight_earliest = accel::min_u64(self.tier, &self.inflight);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Maps a block to its (bank index, row id).
    ///
    /// Consecutive blocks stay in one row; rows round-robin across banks so
    /// streaming accesses exploit bank-level parallelism, as real address
    /// interleaving does.
    fn map(&self, block: Block) -> (usize, u64) {
        let row_global = match self.row_shift {
            Some(s) => block.0 >> s,
            None => block.0 / self.blocks_per_row,
        };
        match self.bank_shift {
            Some(s) => (
                (row_global & (self.total_banks - 1)) as usize,
                row_global >> s,
            ),
            None => (
                (row_global % self.total_banks) as usize,
                row_global / self.total_banks,
            ),
        }
    }

    /// Services a read request arriving at cycle `now`; returns the cycle at
    /// which the data has been transferred back.
    pub fn service(&mut self, block: Block, now: u64) -> u64 {
        let (outcome, done) = self.service_classified(block, now);
        match outcome {
            RowOutcome::Hit => self.stats.row_hits += 1,
            RowOutcome::Conflict => self.stats.row_conflicts += 1,
            RowOutcome::Empty => self.stats.row_empties += 1,
        }
        done
    }

    /// Services a *prefetch* read, which runs at lower priority than demand
    /// traffic: the request is shed (returning `None`) when its target bank
    /// is already congested or the read queue is nearly full — mirroring
    /// how FR-FCFS controllers serve demands first and drop speculative
    /// requests under load rather than letting them delay demands.
    pub fn service_prefetch(&mut self, block: Block, now: u64) -> Option<u64> {
        self.drain_inflight(now);
        // `prefetch_headroom` queue slots stay reserved for demand reads
        // (clamped below the queue size at construction, so an idle queue
        // always has room — `read_queue_size <= headroom` used to shed
        // every prefetch unconditionally).
        if self.inflight.len() + self.prefetch_headroom >= self.config.read_queue_size {
            self.stats.prefetches_dropped += 1;
            return None;
        }
        let (bank_idx, _) = self.map(block);
        let congestion_slack = 2 * self.config.t_cas;
        if self.banks[bank_idx].free_at > now + congestion_slack {
            self.stats.prefetches_dropped += 1;
            return None;
        }
        Some(self.service(block, now))
    }

    /// Like [`DramModel::service`] but also reports the row-buffer outcome.
    pub fn service_classified(&mut self, block: Block, now: u64) -> (RowOutcome, u64) {
        self.stats.requests += 1;

        // Bounded read queue: if full, the request waits until the oldest
        // in-flight read drains.
        let mut start = now;
        self.drain_inflight(start);
        if telemetry::enabled() {
            // Tally locally; `flush_telemetry` folds the whole distribution
            // into `sim.dram.queue_depth` in one recorder round trip.
            self.depth_counts[self.inflight.len()] += 1;
        }
        if self.inflight.len() >= self.config.read_queue_size {
            let earliest = self.inflight_earliest;
            debug_assert_eq!(
                Some(&earliest),
                self.inflight.iter().min(),
                "cached queue minimum out of date"
            );
            let stall = earliest.saturating_sub(start);
            self.stats.queue_stall_cycles += stall;
            start = earliest;
            self.drain_inflight(start);
        }

        let (bank_idx, row) = self.map(block);
        let bank = &mut self.banks[bank_idx];
        let begin = start.max(bank.free_at);

        let (outcome, access_cycles) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, self.config.t_cas),
            Some(_) => (
                RowOutcome::Conflict,
                self.config.t_rp + self.config.t_rcd + self.config.t_cas,
            ),
            None => (RowOutcome::Empty, self.config.t_rcd + self.config.t_cas),
        };
        bank.open_row = Some(row);

        let data_ready = begin + access_cycles;
        // Data bus is shared: transfers serialize.
        let bus_start = data_ready.max(self.bus_free_at);
        let done = bus_start + self.config.burst_cycles;
        self.bus_free_at = done;
        // Row hits pipeline column accesses (CAS-to-CAS), so the bank is only
        // held for one burst; activates occupy it for the whole access.
        bank.free_at = match outcome {
            RowOutcome::Hit => begin + self.config.burst_cycles,
            _ => data_ready,
        };

        debug_assert!(
            self.inflight.len() < self.config.read_queue_size,
            "read queue over capacity"
        );
        self.inflight.push(done);
        self.inflight_earliest = self.inflight_earliest.min(done);
        (outcome, done)
    }

    /// Publishes telemetry accumulated since the previous flush: the
    /// queue-depth distribution and deltas of every counter the model
    /// tracks. The aggregates are bit-identical to recording per request —
    /// counters are order-insensitive sums and the depth tally preserves
    /// exact bucket counts — but the hot path pays one array increment per
    /// request instead of recorder lookups. Counters that did not move are
    /// skipped, preserving the "absent, not zero" snapshot semantics.
    pub fn flush_telemetry(&mut self) {
        if !telemetry::enabled() {
            return;
        }
        for depth in 0..self.depth_counts.len() {
            let n = self.depth_counts[depth];
            telemetry::histogram_n!("sim.dram.queue_depth", depth as u64, n);
            self.depth_counts[depth] = 0;
        }
        let delta = |now: u64, then: u64| now - then;
        let pairs = [
            (
                "sim.dram.requests",
                delta(self.stats.requests, self.flushed.requests),
            ),
            (
                "sim.dram.row_hits",
                delta(self.stats.row_hits, self.flushed.row_hits),
            ),
            (
                "sim.dram.row_conflicts",
                delta(self.stats.row_conflicts, self.flushed.row_conflicts),
            ),
            (
                "sim.dram.row_empties",
                delta(self.stats.row_empties, self.flushed.row_empties),
            ),
            (
                "sim.dram.queue_stall_cycles",
                delta(
                    self.stats.queue_stall_cycles,
                    self.flushed.queue_stall_cycles,
                ),
            ),
            (
                "sim.dram.prefetches_dropped",
                delta(
                    self.stats.prefetches_dropped,
                    self.flushed.prefetches_dropped,
                ),
            ),
        ];
        for (name, d) in pairs {
            if d > 0 {
                telemetry::counter!(name, d);
            }
        }
        self.flushed = self.stats;
    }

    /// Resets banks, queues, and statistics.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank {
                open_row: None,
                free_at: 0,
            };
        }
        self.inflight.clear();
        self.inflight_earliest = u64::MAX;
        self.bus_free_at = 0;
        self.stats = DramStats::default();
        self.depth_counts.fill(0);
        self.flushed = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DramConfig {
        DramConfig {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 2,
            t_rp: 10,
            t_rcd: 10,
            t_cas: 10,
            burst_cycles: 2,
            read_queue_size: 4,
            write_queue_size: 4,
            row_bytes: 256, // 4 blocks per row
            prefetch_headroom: 4,
        }
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut d = DramModel::new(small_cfg());
        let (o, done) = d.service_classified(Block(0), 0);
        assert_eq!(o, RowOutcome::Empty);
        assert_eq!(done, 10 + 10 + 2); // tRCD + tCAS + burst
    }

    #[test]
    fn same_row_hits_are_cheaper() {
        let mut d = DramModel::new(small_cfg());
        let (_, first) = d.service_classified(Block(0), 0);
        let (o, second) = d.service_classified(Block(1), first);
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(second - first, 10 + 2); // tCAS + burst
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = small_cfg();
        let mut d = DramModel::new(cfg);
        // Rows alternate across the 2 banks; rows 0 and 2 share bank 0.
        let blocks_per_row = cfg.row_bytes / crate::addr::BLOCK_SIZE;
        let (_, t1) = d.service_classified(Block(0), 0);
        let (o, _) = d.service_classified(Block(blocks_per_row * 2), t1);
        assert_eq!(o, RowOutcome::Conflict);
    }

    #[test]
    fn banks_overlap_but_bus_serializes() {
        let cfg = small_cfg();
        let blocks_per_row = cfg.row_bytes / crate::addr::BLOCK_SIZE;
        let mut d = DramModel::new(cfg);
        // Two requests to different banks at the same instant.
        let (_, a) = d.service_classified(Block(0), 0);
        let (_, b) = d.service_classified(Block(blocks_per_row), 0);
        // Bank access overlaps (both start at 0) but bus transfer serializes,
        // so b completes exactly one burst after a.
        assert_eq!(b, a + cfg.burst_cycles);
    }

    #[test]
    fn read_queue_backpressure() {
        let mut cfg = small_cfg();
        cfg.read_queue_size = 1;
        let mut d = DramModel::new(cfg);
        let (_, first) = d.service_classified(Block(0), 0);
        // Second request at time 0 must wait for the queue slot.
        let (_, second) = d.service_classified(Block(1), 0);
        assert!(second >= first);
        assert!(d.stats().queue_stall_cycles > 0);
    }

    #[test]
    fn read_queue_never_exceeds_capacity() {
        // Bounded-buffer audit: whatever the arrival pattern, the in-flight
        // queue stays within the preallocated `read_queue_size` slots, so
        // the model never allocates after construction.
        let cfg = small_cfg();
        let mut d = DramModel::new(cfg);
        let cap_before = d.inflight.capacity();
        let mut x = 1u64;
        for i in 0..5_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            // Arrival times progress slowly so the queue saturates.
            d.service(Block(x >> 40), i / 4);
            assert!(d.inflight.len() <= cfg.read_queue_size);
        }
        assert_eq!(d.inflight.capacity(), cap_before, "queue reallocated");
    }

    #[test]
    fn non_pow2_geometry_uses_division_mapping() {
        // 3 blocks per row and 3 banks: both fall off the shift/mask fast
        // path onto the division fallback, which must behave exactly like
        // the original arithmetic.
        let cfg = DramConfig {
            banks_per_rank: 3,
            row_bytes: 192,
            ..small_cfg()
        };
        let mut d = DramModel::new(cfg);
        assert_eq!(d.row_shift, None);
        assert_eq!(d.bank_shift, None);
        // Blocks 0..3 share row 0; block 3 opens a row on the next bank.
        let (_, t) = d.service_classified(Block(0), 0);
        let (o, t) = d.service_classified(Block(1), t);
        assert_eq!(o, RowOutcome::Hit);
        let (o, t) = d.service_classified(Block(2), t);
        assert_eq!(o, RowOutcome::Hit);
        let (o, t) = d.service_classified(Block(3), t);
        assert_eq!(o, RowOutcome::Empty, "block 3 starts row 1 on bank 1");
        // Global rows 0 and 3 share bank 0 (3 banks): conflict.
        let (o, _) = d.service_classified(Block(3 * 3), t);
        assert_eq!(o, RowOutcome::Conflict);
    }

    #[test]
    fn idle_queue_accepts_prefetches_at_every_queue_size() {
        // Regression: the headroom used to be hardwired to 4, so
        // `len + 4 >= read_queue_size` held even on an *empty* queue
        // whenever `read_queue_size <= 4` — every prefetch was shed and
        // small-queue sensitivity studies silently ran prefetch-less.
        for qsize in 1..=4usize {
            let cfg = DramConfig {
                read_queue_size: qsize,
                ..small_cfg()
            };
            let mut d = DramModel::new(cfg);
            assert!(
                d.service_prefetch(Block(0), 0).is_some(),
                "idle queue of size {qsize} must accept a prefetch"
            );
            assert_eq!(d.stats().prefetches_dropped, 0, "queue size {qsize}");
        }
    }

    #[test]
    fn full_small_queue_still_sheds_prefetches() {
        // The clamp keeps demand priority: with one slot and one in-flight
        // demand, a prefetch is shed until the demand drains.
        let cfg = DramConfig {
            read_queue_size: 1,
            ..small_cfg()
        };
        let mut d = DramModel::new(cfg);
        let done = d.service(Block(0), 0);
        assert!(d.service_prefetch(Block(64), 0).is_none());
        assert_eq!(d.stats().prefetches_dropped, 1);
        // Once the demand completes the queue is idle again.
        assert!(d.service_prefetch(Block(1), done).is_some());
    }

    #[test]
    fn oversized_headroom_is_clamped_below_queue_size() {
        let cfg = DramConfig {
            read_queue_size: 2,
            prefetch_headroom: 10,
            ..small_cfg()
        };
        let mut d = DramModel::new(cfg);
        assert_eq!(d.prefetch_headroom, 1);
        assert!(d.service_prefetch(Block(0), 0).is_some());
    }

    #[test]
    fn default_headroom_reserves_demand_slots() {
        // Default geometry behaviour is unchanged: a 64-slot queue sheds
        // prefetches once 60 reads are in flight (4 slots reserved).
        let mut d = DramModel::new(DramConfig::default());
        for i in 0..60u64 {
            d.service(Block(i), 0);
        }
        assert_eq!(d.inflight.len(), 60);
        assert!(d.service_prefetch(Block(1_000_000), 0).is_none());
        assert_eq!(d.stats().prefetches_dropped, 1);
    }

    #[test]
    fn scalar_and_active_tiers_agree_on_queue_drain() {
        let cfg = small_cfg();
        let mut simd = DramModel::new(cfg);
        let mut scalar = DramModel::with_tier(cfg, KernelTier::Scalar);
        let mut x = 7u64;
        for i in 0..2_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let now = i / 3;
            if x.is_multiple_of(4) {
                assert_eq!(
                    simd.service_prefetch(Block(x >> 40), now),
                    scalar.service_prefetch(Block(x >> 40), now)
                );
            } else {
                assert_eq!(
                    simd.service_classified(Block(x >> 40), now),
                    scalar.service_classified(Block(x >> 40), now)
                );
            }
            assert_eq!(simd.inflight_earliest, scalar.inflight_earliest);
        }
        assert_eq!(simd.stats(), scalar.stats());
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut d = DramModel::new(small_cfg());
        d.service(Block(0), 0);
        d.reset();
        assert_eq!(*d.stats(), DramStats::default());
        let (o, _) = d.service_classified(Block(0), 0);
        assert_eq!(o, RowOutcome::Empty);
    }

    #[test]
    fn default_config_row_hit_latency_matches_table3() {
        let mut d = DramModel::new(DramConfig::default());
        let (_, first) = d.service_classified(Block(0), 0);
        assert_eq!(first, 50 + 50 + 4); // empty row: tRCD + tCAS + burst
        let (o, second) = d.service_classified(Block(1), first);
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(second - first, 54);
    }
}
