//! Bank- and bus-aware DRAM timing model.
//!
//! Models the Table 3 memory system: one channel of 8 ranks x 8 banks with
//! open-row policy, `tRP/tRCD/tCAS` timing, a shared data bus, and a bounded
//! read queue. The model answers a single question for the replay engine:
//! *given a block request arriving at cycle `t`, when does its data return?*

use pathfinder_telemetry as telemetry;

use crate::addr::Block;
use crate::config::DramConfig;

/// Per-request service classification, useful for tests and stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The open row matched: only CAS latency applies.
    Hit,
    /// A different row was open: precharge + activate + CAS.
    Conflict,
    /// Bank had no open row (first touch): activate + CAS.
    Empty,
}

#[derive(Debug, Clone, Copy)]
struct Bank {
    open_row: Option<u64>,
    free_at: u64,
}

/// Counters accumulated by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests that hit the open row.
    pub row_hits: u64,
    /// Requests that had to close an open row first.
    pub row_conflicts: u64,
    /// Requests to a bank with no open row.
    pub row_empties: u64,
    /// Total requests served.
    pub requests: u64,
    /// Cycles spent waiting for a free read-queue slot.
    pub queue_stall_cycles: u64,
    /// Prefetch reads shed because the queue was busy with demand traffic.
    pub prefetches_dropped: u64,
}

/// The DRAM subsystem.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::{Block, DramModel};
/// use pathfinder_sim::DramConfig;
///
/// let mut dram = DramModel::new(DramConfig::default());
/// let done_a = dram.service(Block(0), 0);
/// let done_b = dram.service(Block(1), 0); // same row: faster second access
/// assert!(done_b - done_a < done_a);
/// ```
#[derive(Debug, Clone)]
pub struct DramModel {
    config: DramConfig,
    banks: Vec<Bank>,
    /// Completion cycles of in-flight reads, bounded by `read_queue_size`.
    inflight: Vec<u64>,
    bus_free_at: u64,
    stats: DramStats,
}

impl DramModel {
    /// Creates an idle DRAM model.
    pub fn new(config: DramConfig) -> Self {
        let banks = vec![
            Bank {
                open_row: None,
                free_at: 0
            };
            config.total_banks()
        ];
        DramModel {
            config,
            banks,
            inflight: Vec::new(),
            bus_free_at: 0,
            stats: DramStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Maps a block to its (bank index, row id).
    ///
    /// Consecutive blocks stay in one row; rows round-robin across banks so
    /// streaming accesses exploit bank-level parallelism, as real address
    /// interleaving does.
    fn map(&self, block: Block) -> (usize, u64) {
        let blocks_per_row = self.config.row_bytes / crate::addr::BLOCK_SIZE;
        let row_global = block.0 / blocks_per_row;
        let bank = (row_global % self.config.total_banks() as u64) as usize;
        let row = row_global / self.config.total_banks() as u64;
        (bank, row)
    }

    /// Services a read request arriving at cycle `now`; returns the cycle at
    /// which the data has been transferred back.
    pub fn service(&mut self, block: Block, now: u64) -> u64 {
        let (outcome, done) = self.service_classified(block, now);
        match outcome {
            RowOutcome::Hit => {
                self.stats.row_hits += 1;
                telemetry::counter!("sim.dram.row_hits", 1);
            }
            RowOutcome::Conflict => {
                self.stats.row_conflicts += 1;
                telemetry::counter!("sim.dram.row_conflicts", 1);
            }
            RowOutcome::Empty => {
                self.stats.row_empties += 1;
                telemetry::counter!("sim.dram.row_empties", 1);
            }
        }
        done
    }

    /// Services a *prefetch* read, which runs at lower priority than demand
    /// traffic: the request is shed (returning `None`) when its target bank
    /// is already congested or the read queue is nearly full — mirroring
    /// how FR-FCFS controllers serve demands first and drop speculative
    /// requests under load rather than letting them delay demands.
    pub fn service_prefetch(&mut self, block: Block, now: u64) -> Option<u64> {
        self.inflight.retain(|&c| c > now);
        if self.inflight.len() + 4 >= self.config.read_queue_size {
            self.stats.prefetches_dropped += 1;
            telemetry::counter!("sim.dram.prefetches_dropped", 1);
            return None;
        }
        let (bank_idx, _) = self.map(block);
        let congestion_slack = 2 * self.config.t_cas;
        if self.banks[bank_idx].free_at > now + congestion_slack {
            self.stats.prefetches_dropped += 1;
            telemetry::counter!("sim.dram.prefetches_dropped", 1);
            return None;
        }
        Some(self.service(block, now))
    }

    /// Like [`DramModel::service`] but also reports the row-buffer outcome.
    pub fn service_classified(&mut self, block: Block, now: u64) -> (RowOutcome, u64) {
        self.stats.requests += 1;
        telemetry::counter!("sim.dram.requests", 1);

        // Bounded read queue: if full, the request waits until the oldest
        // in-flight read drains.
        let mut start = now;
        self.inflight.retain(|&c| c > start);
        telemetry::histogram!("sim.dram.queue_depth", self.inflight.len() as u64);
        if self.inflight.len() >= self.config.read_queue_size {
            let earliest = *self.inflight.iter().min().expect("non-empty queue");
            let stall = earliest.saturating_sub(start);
            self.stats.queue_stall_cycles += stall;
            telemetry::counter!("sim.dram.queue_stall_cycles", stall);
            start = earliest;
            self.inflight.retain(|&c| c > start);
        }

        let (bank_idx, row) = self.map(block);
        let bank = &mut self.banks[bank_idx];
        let begin = start.max(bank.free_at);

        let (outcome, access_cycles) = match bank.open_row {
            Some(open) if open == row => (RowOutcome::Hit, self.config.t_cas),
            Some(_) => (
                RowOutcome::Conflict,
                self.config.t_rp + self.config.t_rcd + self.config.t_cas,
            ),
            None => (RowOutcome::Empty, self.config.t_rcd + self.config.t_cas),
        };
        bank.open_row = Some(row);

        let data_ready = begin + access_cycles;
        // Data bus is shared: transfers serialize.
        let bus_start = data_ready.max(self.bus_free_at);
        let done = bus_start + self.config.burst_cycles;
        self.bus_free_at = done;
        // Row hits pipeline column accesses (CAS-to-CAS), so the bank is only
        // held for one burst; activates occupy it for the whole access.
        bank.free_at = match outcome {
            RowOutcome::Hit => begin + self.config.burst_cycles,
            _ => data_ready,
        };

        self.inflight.push(done);
        (outcome, done)
    }

    /// Resets banks, queues, and statistics.
    pub fn reset(&mut self) {
        for b in &mut self.banks {
            *b = Bank {
                open_row: None,
                free_at: 0,
            };
        }
        self.inflight.clear();
        self.bus_free_at = 0;
        self.stats = DramStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DramConfig {
        DramConfig {
            channels: 1,
            ranks_per_channel: 1,
            banks_per_rank: 2,
            t_rp: 10,
            t_rcd: 10,
            t_cas: 10,
            burst_cycles: 2,
            read_queue_size: 4,
            write_queue_size: 4,
            row_bytes: 256, // 4 blocks per row
        }
    }

    #[test]
    fn first_access_is_row_empty() {
        let mut d = DramModel::new(small_cfg());
        let (o, done) = d.service_classified(Block(0), 0);
        assert_eq!(o, RowOutcome::Empty);
        assert_eq!(done, 10 + 10 + 2); // tRCD + tCAS + burst
    }

    #[test]
    fn same_row_hits_are_cheaper() {
        let mut d = DramModel::new(small_cfg());
        let (_, first) = d.service_classified(Block(0), 0);
        let (o, second) = d.service_classified(Block(1), first);
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(second - first, 10 + 2); // tCAS + burst
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let cfg = small_cfg();
        let mut d = DramModel::new(cfg);
        // Rows alternate across the 2 banks; rows 0 and 2 share bank 0.
        let blocks_per_row = cfg.row_bytes / crate::addr::BLOCK_SIZE;
        let (_, t1) = d.service_classified(Block(0), 0);
        let (o, _) = d.service_classified(Block(blocks_per_row * 2), t1);
        assert_eq!(o, RowOutcome::Conflict);
    }

    #[test]
    fn banks_overlap_but_bus_serializes() {
        let cfg = small_cfg();
        let blocks_per_row = cfg.row_bytes / crate::addr::BLOCK_SIZE;
        let mut d = DramModel::new(cfg);
        // Two requests to different banks at the same instant.
        let (_, a) = d.service_classified(Block(0), 0);
        let (_, b) = d.service_classified(Block(blocks_per_row), 0);
        // Bank access overlaps (both start at 0) but bus transfer serializes,
        // so b completes exactly one burst after a.
        assert_eq!(b, a + cfg.burst_cycles);
    }

    #[test]
    fn read_queue_backpressure() {
        let mut cfg = small_cfg();
        cfg.read_queue_size = 1;
        let mut d = DramModel::new(cfg);
        let (_, first) = d.service_classified(Block(0), 0);
        // Second request at time 0 must wait for the queue slot.
        let (_, second) = d.service_classified(Block(1), 0);
        assert!(second >= first);
        assert!(d.stats().queue_stall_cycles > 0);
    }

    #[test]
    fn reset_restores_idle_state() {
        let mut d = DramModel::new(small_cfg());
        d.service(Block(0), 0);
        d.reset();
        assert_eq!(*d.stats(), DramStats::default());
        let (o, _) = d.service_classified(Block(0), 0);
        assert_eq!(o, RowOutcome::Empty);
    }

    #[test]
    fn default_config_row_hit_latency_matches_table3() {
        let mut d = DramModel::new(DramConfig::default());
        let (_, first) = d.service_classified(Block(0), 0);
        assert_eq!(first, 50 + 50 + 4); // empty row: tRCD + tCAS + burst
        let (o, second) = d.service_classified(Block(1), first);
        assert_eq!(o, RowOutcome::Hit);
        assert_eq!(second - first, 54);
    }
}
