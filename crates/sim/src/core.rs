//! Analytic out-of-order core model.
//!
//! Instead of simulating every pipeline stage, the model tracks the three
//! constraints that dominate IPC for memory-bound replay: front-end width,
//! reorder-buffer capacity (which bounds how far the core can run ahead of an
//! outstanding miss, i.e. memory-level parallelism), and in-order retirement
//! of loads. Non-memory instructions implied by `instr_id` gaps retire at the
//! core width.

use std::collections::VecDeque;

use crate::config::CoreConfig;

/// Reorder-buffer/front-end timing model.
///
/// Feed loads in trace order with [`RobModel::issue_cycle`] /
/// [`RobModel::complete_load`]; read the final cycle count with
/// [`RobModel::finish`].
#[derive(Debug, Clone)]
pub struct RobModel {
    config: CoreConfig,
    /// Recently retired loads as (instr_id, retire_cycle), oldest first.
    retired: VecDeque<(u64, u64)>,
    /// Front-end position: cycle at which the previous load dispatched.
    last_dispatch_cycle: u64,
    last_instr_id: u64,
    /// Retire cycle of the most recently retired load.
    last_retire_cycle: u64,
    started: bool,
}

impl RobModel {
    /// Creates a model at cycle 0 with nothing in flight.
    pub fn new(config: CoreConfig) -> Self {
        RobModel {
            config,
            retired: VecDeque::new(),
            last_dispatch_cycle: 0,
            last_instr_id: 0,
            last_retire_cycle: 0,
            started: false,
        }
    }

    /// Cycle at which instruction `instr_id` retired, interpolated between
    /// load retirements at the core width.
    ///
    /// Queries arrive with monotonically non-decreasing `instr_id` (each is
    /// `load_id - rob_size` for loads fed in trace order — the documented
    /// calling contract), so the answer is always at the *front* of the
    /// retirement history: entries that a query has stepped past can never
    /// be the "most recent retirement at or before" any later query. The
    /// scan therefore prunes from the front as it goes, and each retired
    /// load is examined O(1) times across the whole replay — the engine's
    /// per-access cost no longer carries an O(rob_size / load_gap) walk.
    fn retire_cycle_of(&mut self, instr_id: u64) -> u64 {
        // Drop entries whose successor also answers this (and thus every
        // later) query; the front is then the most recent retirement at or
        // before `instr_id`, if any retirement qualifies at all.
        while self.retired.len() > 1 && self.retired[1].0 <= instr_id {
            self.retired.pop_front();
        }
        match self.retired.front() {
            Some(&(id, cyc)) if id <= instr_id => cyc + (instr_id - id) / self.config.width,
            _ => 0,
        }
    }

    /// Computes the dispatch (issue) cycle for a load at `instr_id`.
    ///
    /// The load dispatches when the front-end reaches it *and* the ROB has
    /// room, i.e. instruction `instr_id - rob_size` has retired.
    pub fn issue_cycle(&mut self, instr_id: u64) -> u64 {
        let frontend = if self.started {
            let gap = instr_id.saturating_sub(self.last_instr_id);
            self.last_dispatch_cycle + gap / self.config.width
        } else {
            0
        };
        let rob_gate = if instr_id >= self.config.rob_size {
            self.retire_cycle_of(instr_id - self.config.rob_size)
        } else {
            0
        };
        frontend.max(rob_gate)
    }

    /// Records the load's dispatch and completion, returning its retire cycle.
    ///
    /// Must be called once per load, in trace order, with the `issue` value
    /// obtained from [`RobModel::issue_cycle`] (possibly delayed further by
    /// structural hazards such as full MSHRs) and the memory `latency` the
    /// hierarchy charged.
    pub fn complete_load(&mut self, instr_id: u64, issue: u64, latency: u64) -> u64 {
        let complete = issue + latency;
        // In-order retirement: cannot retire before older instructions.
        let gap = instr_id.saturating_sub(self.last_instr_id);
        let in_order_floor = self.last_retire_cycle + gap / self.config.width;
        let retire = complete.max(in_order_floor);

        self.last_dispatch_cycle = issue;
        self.last_instr_id = instr_id;
        self.last_retire_cycle = retire;
        self.started = true;

        self.retired.push_back((instr_id, retire));
        // Keep only enough history to answer rob-gate queries: anything more
        // than one ROB behind the newest load can never be asked about again.
        while let (Some(&(old_id, _)), true) = (self.retired.front(), self.retired.len() > 2) {
            if old_id + 2 * self.config.rob_size < instr_id {
                self.retired.pop_front();
            } else {
                break;
            }
        }
        retire
    }

    /// Final cycle count once all `total_instructions` have retired.
    pub fn finish(&self, total_instructions: u64) -> u64 {
        let trailing = total_instructions.saturating_sub(self.last_instr_id + 1);
        // +1 so a nonempty run takes at least one cycle.
        self.last_retire_cycle + trailing / self.config.width + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(width: u64, rob: u64) -> CoreConfig {
        CoreConfig {
            width,
            rob_size: rob,
            mshrs: 16,
        }
    }

    #[test]
    fn ideal_ipc_approaches_width() {
        // All loads hit with tiny latency; IPC should approach the width.
        let mut m = RobModel::new(cfg(4, 256));
        let n = 1000u64;
        for i in 0..n {
            let id = i * 8; // one load every 8 instructions
            let issue = m.issue_cycle(id);
            m.complete_load(id, issue, 1);
        }
        let total = (n - 1) * 8 + 1;
        let cycles = m.finish(total);
        let ipc = total as f64 / cycles as f64;
        assert!(ipc > 3.0, "ipc {ipc} should be near width 4");
    }

    #[test]
    fn long_latency_serial_loads_dominate() {
        // Dependent-feel: ROB of 8 with loads every instruction means at most
        // 8 outstanding; 100-cycle loads should yield IPC near 8/100.
        let mut m = RobModel::new(cfg(4, 8));
        let n = 500u64;
        for id in 0..n {
            let issue = m.issue_cycle(id);
            m.complete_load(id, issue, 100);
        }
        let cycles = m.finish(n);
        let ipc = n as f64 / cycles as f64;
        assert!(ipc < 0.2, "ipc {ipc} should be memory-bound");
        assert!(ipc > 0.04, "rob should still allow some overlap, ipc {ipc}");
    }

    #[test]
    fn rob_bounds_runahead() {
        let mut m = RobModel::new(cfg(1, 4));
        // First load takes 1000 cycles; the 4th-younger instruction cannot
        // dispatch until it retires.
        let issue0 = m.issue_cycle(0);
        m.complete_load(0, issue0, 1000);
        let issue_far = m.issue_cycle(4);
        assert!(
            issue_far >= 1000,
            "rob gate must delay dispatch, got {issue_far}"
        );
    }

    #[test]
    fn retirement_is_in_order() {
        let mut m = RobModel::new(cfg(4, 64));
        let i0 = m.issue_cycle(0);
        let r0 = m.complete_load(0, i0, 500);
        let i1 = m.issue_cycle(8);
        let r1 = m.complete_load(8, i1, 1);
        assert!(r1 >= r0, "younger load may not retire before older");
    }

    #[test]
    fn finish_accounts_for_trailing_instructions() {
        let mut m = RobModel::new(cfg(4, 64));
        let i0 = m.issue_cycle(0);
        m.complete_load(0, i0, 10);
        let cycles = m.finish(401);
        assert!(cycles >= 10 + 100, "400 trailing instrs at width 4");
    }

    #[test]
    fn bigger_rob_helps_under_misses() {
        let run = |rob: u64| {
            let mut m = RobModel::new(cfg(4, rob));
            for i in 0..200u64 {
                let id = i * 4;
                let issue = m.issue_cycle(id);
                m.complete_load(id, issue, 200);
            }
            m.finish(200 * 4)
        };
        assert!(
            run(256) < run(16),
            "larger window should overlap more misses"
        );
    }
}
