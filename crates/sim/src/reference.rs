//! The pre-rewrite replay engine, retained as the equivalence baseline for
//! the flat-layout hot path in [`crate::cache`] and [`crate::engine`].
//!
//! [`ReferenceCache`] keeps the original `Vec<Vec<Line>>` set layout
//! (array-of-structures lines, one heap allocation per set) and
//! [`ReferenceSimulator`] the original `BinaryHeap`-backed MSHR tracker.
//! The flat engine re-lays the same state out as contiguous
//! structure-of-arrays buffers; it does **not** re-associate any
//! arithmetic, so — unlike the SNN kernel pair, which agrees only up to fp
//! re-association — the two replay engines must produce **bit-identical**
//! [`SimReport`]s and [`DetailedStats`] on every trace, geometry
//! (power-of-two set counts and otherwise), warmup window, and prefetch
//! schedule. `tests/engine_equivalence.rs` pins exactly that.
//!
//! The one deliberate semantic change of the rewrite — a refill of an
//! already-present line now refreshes the line's `prefetched` bit and
//! `fill_ready_cycle` instead of only its LRU stamp (see
//! [`crate::cache::Cache::fill`]) — is applied here too, so the reference
//! pins the *fixed* semantics rather than the old bug.
//!
//! This module is *not* a second implementation to maintain feature-parity
//! with: it exists to (a) pin the semantics of the flat engine and (b)
//! serve as the "before" measurement in `repro bench` (the
//! `sim.replay.e2e.reference` suite) and the `sim_replay` Criterion group.

use std::collections::BinaryHeap;

use pathfinder_telemetry as telemetry;

use crate::access::{MemoryAccess, PrefetchRequest, Trace};
use crate::addr::Block;
use crate::cache::{CacheLevel, CacheStats, LookupResult};
use crate::config::{CacheConfig, SimConfig};
use crate::core::RobModel;
use crate::dram::DramModel;
use crate::stats::{DetailedStats, SimReport};

#[derive(Debug, Clone, Copy)]
struct Line {
    block: Block,
    valid: bool,
    /// LRU stamp; larger = more recently used.
    lru: u64,
    /// Filled by a prefetch and not yet touched by a demand access.
    prefetched: bool,
    /// Cycle at which the fill completes (for in-flight prefetch hits).
    fill_ready_cycle: u64,
}

impl Line {
    const INVALID: Line = Line {
        block: Block(0),
        valid: false,
        lru: 0,
        prefetched: false,
        fill_ready_cycle: 0,
    };
}

/// The pre-rewrite set-associative cache: per-set `Vec<Line>` storage with
/// the same LRU replacement, prefetch-bit tracking, and statistics as the
/// flat [`crate::cache::Cache`].
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    config: CacheConfig,
    level: CacheLevel,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl ReferenceCache {
    /// Creates an empty, unlabeled reference cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        ReferenceCache::labeled(config, CacheLevel::Unlabeled)
    }

    /// Creates an empty reference cache recording `sim.<level>.*` telemetry.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn labeled(config: CacheConfig, level: CacheLevel) -> Self {
        assert!(
            config.sets > 0 && config.ways > 0,
            "cache must be non-empty"
        );
        ReferenceCache {
            config,
            level,
            sets: vec![vec![Line::INVALID; config.ways]; config.sets],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, block: Block) -> usize {
        (block.0 % self.config.sets as u64) as usize
    }

    /// Performs a demand access (pre-rewrite line scan).
    pub fn demand_access(&mut self, block: Block) -> LookupResult {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(block);
        for line in &mut self.sets[set] {
            if line.valid && line.block == block {
                line.lru = tick;
                let first = line.prefetched;
                if first {
                    line.prefetched = false;
                    self.stats.useful_prefetches += 1;
                }
                self.stats.hits += 1;
                if let Some(metric) = self.level.hit_metric() {
                    telemetry::counter!(metric, 1);
                }
                return LookupResult::Hit {
                    first_demand_to_prefetch: first,
                    fill_ready_cycle: line.fill_ready_cycle,
                };
            }
        }
        self.stats.misses += 1;
        if let Some(metric) = self.level.miss_metric() {
            telemetry::counter!(metric, 1);
        }
        LookupResult::Miss
    }

    /// Checks presence without updating LRU, stats, or prefetch bits.
    pub fn probe(&self, block: Block) -> bool {
        let set = self.set_index(block);
        self.sets[set].iter().any(|l| l.valid && l.block == block)
    }

    /// Fills `block`, evicting the LRU line if needed. Refill semantics
    /// match the flat cache: see [`crate::cache::Cache::fill`].
    pub fn fill(&mut self, block: Block, prefetched: bool, ready_cycle: u64) -> Option<Block> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(block);

        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.block == block)
        {
            line.lru = tick;
            if !prefetched {
                line.prefetched = false;
                line.fill_ready_cycle = ready_cycle;
            }
            return None;
        }

        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let victim_idx = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("non-empty set");
        let victim = &mut self.sets[set][victim_idx];
        let evicted = if victim.valid {
            if victim.prefetched {
                self.stats.useless_evictions += 1;
            }
            Some(victim.block)
        } else {
            None
        };
        *victim = Line {
            block,
            valid: true,
            lru: tick,
            prefetched,
            fill_ready_cycle: ready_cycle,
        };
        evicted
    }

    /// Invalidates `block` if present, returning whether it was found.
    pub fn invalidate(&mut self, block: Block) -> bool {
        let set = self.set_index(block);
        for line in &mut self.sets[set] {
            if line.valid && line.block == block {
                *line = Line::INVALID;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.valid).count())
            .sum()
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.fill(Line::INVALID);
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

/// The pre-rewrite replay engine: [`ReferenceCache`] levels plus a
/// `BinaryHeap<Reverse<u64>>` MSHR tracker. Shares the [`DramModel`],
/// [`RobModel`], and [`SimConfig`] with the flat [`crate::Simulator`].
#[derive(Debug)]
pub struct ReferenceSimulator {
    config: SimConfig,
    l1d: ReferenceCache,
    l2: ReferenceCache,
    llc: ReferenceCache,
    dram: DramModel,
    rob: RobModel,
    /// Completion cycles of outstanding demand misses (min-heap via Reverse).
    outstanding: BinaryHeap<std::cmp::Reverse<u64>>,
    report: SimReport,
}

impl ReferenceSimulator {
    /// Creates a reference simulator with cold caches.
    pub fn new(config: SimConfig) -> Self {
        ReferenceSimulator {
            config,
            l1d: ReferenceCache::labeled(config.l1d, CacheLevel::L1d),
            l2: ReferenceCache::labeled(config.l2, CacheLevel::L2),
            llc: ReferenceCache::labeled(config.llc, CacheLevel::Llc),
            dram: DramModel::new(config.dram),
            rob: RobModel::new(config.core),
            outstanding: BinaryHeap::new(),
            report: SimReport::default(),
        }
    }

    /// Replays `trace` with the given prefetch schedule; see
    /// [`crate::Simulator::run`].
    pub fn run(mut self, trace: &Trace, prefetches: &[PrefetchRequest]) -> SimReport {
        self.run_inner(trace, prefetches, 0);
        self.report
    }

    /// Replays with a warm-up window; see
    /// [`crate::Simulator::run_with_warmup`].
    pub fn run_with_warmup(
        mut self,
        trace: &Trace,
        prefetches: &[PrefetchRequest],
        warmup_loads: usize,
    ) -> SimReport {
        self.run_inner(trace, prefetches, warmup_loads);
        self.report
    }

    /// Replays and also returns per-component statistics; see
    /// [`crate::Simulator::run_detailed`].
    pub fn run_detailed(
        self,
        trace: &Trace,
        prefetches: &[PrefetchRequest],
    ) -> (SimReport, DetailedStats) {
        self.run_detailed_with_warmup(trace, prefetches, 0)
    }

    /// Warm-up-windowed detailed replay; see
    /// [`crate::Simulator::run_detailed_with_warmup`].
    pub fn run_detailed_with_warmup(
        mut self,
        trace: &Trace,
        prefetches: &[PrefetchRequest],
        warmup_loads: usize,
    ) -> (SimReport, DetailedStats) {
        self.run_inner(trace, prefetches, warmup_loads);
        let detail = DetailedStats {
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            llc: *self.llc.stats(),
            dram: *self.dram.stats(),
        };
        (self.report, detail)
    }

    fn run_inner(&mut self, trace: &Trace, prefetches: &[PrefetchRequest], warmup_loads: usize) {
        let sorted_copy: Vec<PrefetchRequest>;
        let prefetches = if prefetches
            .windows(2)
            .all(|w| w[0].trigger_instr_id <= w[1].trigger_instr_id)
        {
            prefetches
        } else {
            telemetry::counter!("sim.schedule.unsorted", 1);
            sorted_copy = {
                let mut v = prefetches.to_vec();
                v.sort_by_key(|p| p.trigger_instr_id);
                v
            };
            &sorted_copy
        };
        let warmup_loads = warmup_loads.min(trace.len());
        let _replay_span = telemetry::timer!("sim.replay");
        let mut pf_cursor = 0usize;
        let mut measured_start_cycle = 0u64;
        let mut measured_start_instr = 0u64;
        let mut prev_completion = 0u64;

        for (i, access) in trace.iter().enumerate() {
            let measuring = i >= warmup_loads;
            let mut issue = self.issue_with_hazards(access.instr_id);
            if access.depends_on_prev {
                issue = issue.max(prev_completion);
            }
            if i == warmup_loads {
                measured_start_cycle = issue;
                measured_start_instr = access.instr_id;
            }
            let latency = self.demand_latency(access, issue, measuring);
            prev_completion = issue + latency;
            self.rob.complete_load(access.instr_id, issue, latency);

            while pf_cursor < prefetches.len()
                && prefetches[pf_cursor].trigger_instr_id <= access.instr_id
            {
                let pf = prefetches[pf_cursor];
                pf_cursor += 1;
                if measuring {
                    self.report.prefetches_requested += 1;
                }
                self.issue_prefetch(pf.block, issue, measuring);
            }
        }

        let total_instr = trace.total_instructions();
        let end_cycle = self.rob.finish(total_instr);
        if warmup_loads == trace.len() {
            measured_start_instr = total_instr;
            measured_start_cycle = end_cycle;
        }
        self.report.instructions = total_instr.saturating_sub(measured_start_instr);
        self.report.cycles = end_cycle.saturating_sub(measured_start_cycle);
        self.report.prefetches_useless = self.llc.stats().useless_evictions;
        // The shared DramModel defers its telemetry (the flat engine's
        // optimization); publish it here so reference replays report the
        // same DRAM counters and queue-depth histogram they always did.
        self.dram.flush_telemetry();
    }

    /// Dispatch cycle after ROB and MSHR structural hazards (heap-backed).
    fn issue_with_hazards(&mut self, instr_id: u64) -> u64 {
        let mut issue = self.rob.issue_cycle(instr_id);
        while let Some(&std::cmp::Reverse(done)) = self.outstanding.peek() {
            if done <= issue {
                self.outstanding.pop();
            } else {
                break;
            }
        }
        telemetry::histogram!("sim.mshr.occupancy", self.outstanding.len() as u64);
        if self.outstanding.len() >= self.config.core.mshrs {
            telemetry::counter!("sim.mshr.stalls", 1);
            if let Some(std::cmp::Reverse(done)) = self.outstanding.pop() {
                issue = issue.max(done);
            }
            while let Some(&std::cmp::Reverse(done)) = self.outstanding.peek() {
                if done <= issue {
                    self.outstanding.pop();
                } else {
                    break;
                }
            }
        }
        issue
    }

    /// Walks the hierarchy for a demand load, returns its total latency.
    fn demand_latency(&mut self, access: &MemoryAccess, issue: u64, measuring: bool) -> u64 {
        let block = access.block();
        if measuring {
            self.report.loads += 1;
        }

        if let LookupResult::Hit { .. } = self.l1d.demand_access(block) {
            if measuring {
                self.report.l1d_hits += 1;
            }
            return self.config.l1_hit_latency();
        }
        if let LookupResult::Hit { .. } = self.l2.demand_access(block) {
            if measuring {
                self.report.l2_hits += 1;
            }
            self.l1d.fill(block, false, 0);
            return self.config.l2_hit_latency();
        }

        if measuring {
            self.report.llc_load_accesses += 1;
        }
        match self.llc.demand_access(block) {
            LookupResult::Hit {
                first_demand_to_prefetch,
                fill_ready_cycle,
            } => {
                if measuring {
                    self.report.llc_hits += 1;
                    if first_demand_to_prefetch {
                        self.report.prefetches_useful += 1;
                        telemetry::counter!("sim.prefetch.useful", 1);
                        if fill_ready_cycle > issue {
                            self.report.prefetches_late += 1;
                            telemetry::counter!("sim.prefetch.late", 1);
                        }
                    }
                }
                self.l2.fill(block, false, 0);
                self.l1d.fill(block, false, 0);
                let wait = fill_ready_cycle.saturating_sub(issue);
                self.config.llc_hit_latency().max(wait)
            }
            LookupResult::Miss => {
                if measuring {
                    self.report.llc_misses += 1;
                }
                let dram_submit = issue + self.config.llc_hit_latency();
                let data_back = self.dram.service(block, dram_submit);
                self.outstanding.push(std::cmp::Reverse(data_back));
                self.llc.fill(block, false, 0);
                self.l2.fill(block, false, 0);
                self.l1d.fill(block, false, 0);
                data_back - issue
            }
        }
    }

    /// Issues one prefetch into the LLC (if not already resident).
    fn issue_prefetch(&mut self, block: Block, now: u64, measuring: bool) {
        if self.llc.probe(block) {
            if measuring {
                telemetry::counter!("sim.prefetch.filtered", 1);
            }
            return;
        }
        let Some(data_back) = self
            .dram
            .service_prefetch(block, now + self.config.llc_hit_latency())
        else {
            return;
        };
        if measuring {
            self.report.prefetches_issued += 1;
            telemetry::counter!("sim.prefetch.issued", 1);
        }
        self.llc.fill(block, true, data_back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    fn miss_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| MemoryAccess::new(i * 4, 0x400, 0x10_0000 + i * 4096 * 7))
            .collect()
    }

    #[test]
    fn reference_matches_flat_engine_on_a_smoke_trace() {
        let trace = miss_trace(500);
        let accesses = trace.accesses();
        let prefetches: Vec<PrefetchRequest> = accesses
            .windows(2)
            .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
            .collect();
        let (a, da) = Simulator::new(SimConfig::default()).run_detailed(&trace, &prefetches);
        let (b, db) =
            ReferenceSimulator::new(SimConfig::default()).run_detailed(&trace, &prefetches);
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn reference_cache_basics() {
        let mut c = ReferenceCache::new(CacheConfig::new(2, 2, 1));
        assert_eq!(c.demand_access(Block(4)), LookupResult::Miss);
        c.fill(Block(4), false, 0);
        assert!(matches!(
            c.demand_access(Block(4)),
            LookupResult::Hit { .. }
        ));
        assert!(c.probe(Block(4)));
        assert_eq!(c.occupancy(), 1);
        assert!(c.invalidate(Block(4)));
        assert!(!c.probe(Block(4)));
        c.reset();
        assert_eq!(*c.stats(), CacheStats::default());
    }
}
