//! # pathfinder-sim
//!
//! Trace-driven memory-hierarchy simulator used as the ChampSim substitute in
//! the PATHFINDER (ASPLOS 2024) reproduction.
//!
//! The simulator mirrors the ML Prefetching Competition workflow the paper
//! uses (§4.1): prefetchers are run *offline* over a load trace to produce a
//! prefetch schedule, and the timed replay then charges realistic latencies
//! through an L1D/L2/LLC hierarchy (Table 3 geometry), a bank/bus/queue DRAM
//! model, and a reorder-buffer-bounded core model that converts load
//! latencies into IPC.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_sim::{MemoryAccess, PrefetchRequest, SimConfig, Simulator, Trace};
//!
//! // A little streaming trace: one load every 4 instructions.
//! let trace: Trace = (0..1000)
//!     .map(|i| MemoryAccess::new(i * 4, 0x400, 0x10_0000 + i * 64))
//!     .collect();
//!
//! // Next-line oracle prefetches.
//! let prefetches: Vec<PrefetchRequest> = trace
//!     .accesses()
//!     .windows(2)
//!     .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
//!     .collect();
//!
//! let baseline = Simulator::new(SimConfig::default()).run(&trace, &[]);
//! let prefetched = Simulator::new(SimConfig::default()).run(&trace, &prefetches);
//! assert!(prefetched.ipc() >= baseline.ipc());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod access;
pub mod addr;
pub mod cache;
pub mod config;
pub mod core;
pub mod dram;
pub mod engine;
pub mod io;
pub mod mshr;
pub mod reference;
pub mod stats;

pub use access::{MemoryAccess, PrefetchRequest, Trace};
pub use addr::{Addr, Block, Page, BLOCKS_PER_PAGE, BLOCK_SIZE, PAGE_SIZE};
pub use cache::{Cache, CacheLevel, CacheStats, LookupResult};
pub use config::{CacheConfig, CoreConfig, DramConfig, SimConfig};
pub use core::RobModel;
pub use dram::{DramModel, DramStats, RowOutcome};
pub use engine::Simulator;
pub use io::{read_trace, write_trace, ReadTraceError};
pub use mshr::MshrTracker;
pub use reference::{ReferenceCache, ReferenceSimulator};
pub use stats::{DetailedStats, SimReport};
