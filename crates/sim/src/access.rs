//! Trace records: demand loads and the prefetch requests derived from them.

use crate::addr::{Addr, Block};
use serde::{Deserialize, Serialize};

/// One demand memory access from a workload trace.
///
/// Mirrors the ML Prefetching Competition trace format: a (instruction id,
/// program counter, virtual address) triple per load. `instr_id` is the
/// retire-order index of the instruction in the full dynamic instruction
/// stream, so gaps between consecutive loads encode how many non-memory
/// instructions separate them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemoryAccess {
    /// Dynamic instruction index (retire order) of this load.
    pub instr_id: u64,
    /// Program counter of the load instruction.
    pub pc: Addr,
    /// Virtual address being loaded.
    pub vaddr: Addr,
    /// True when this load's address depends on the previous load's data
    /// (pointer chasing): the core cannot issue it until the previous load
    /// completes, which is what makes irregular workloads memory-bound.
    #[serde(default)]
    pub depends_on_prev: bool,
}

impl MemoryAccess {
    /// Creates a new (independent) access record.
    pub const fn new(instr_id: u64, pc: u64, vaddr: u64) -> Self {
        MemoryAccess {
            instr_id,
            pc: Addr::new(pc),
            vaddr: Addr::new(vaddr),
            depends_on_prev: false,
        }
    }

    /// Marks the access as address-dependent on the previous load.
    pub const fn dependent(mut self) -> Self {
        self.depends_on_prev = true;
        self
    }

    /// The cache block touched by this access.
    #[inline]
    pub fn block(&self) -> Block {
        self.vaddr.block()
    }
}

/// A prefetch request produced by a prefetcher for a specific trigger access.
///
/// The two-phase competition flow attaches each prefetch to the `instr_id` of
/// the demand access that triggered it; during timed replay the simulator
/// issues the prefetch when that demand access executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PrefetchRequest {
    /// Instruction id of the triggering demand access.
    pub trigger_instr_id: u64,
    /// Block to prefetch.
    pub block: Block,
}

impl PrefetchRequest {
    /// Creates a prefetch request for `block` triggered by `trigger_instr_id`.
    pub const fn new(trigger_instr_id: u64, block: Block) -> Self {
        PrefetchRequest {
            trigger_instr_id,
            block,
        }
    }
}

/// An in-memory workload trace: an ordered sequence of demand loads.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::{MemoryAccess, Trace};
///
/// let trace: Trace = (0..4)
///     .map(|i| MemoryAccess::new(i * 10, 0x400, 0x1000 + i * 64))
///     .collect();
/// assert_eq!(trace.len(), 4);
/// assert_eq!(trace.total_instructions(), 31);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    accesses: Vec<MemoryAccess>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Wraps an access list as a trace.
    pub fn from_accesses(accesses: Vec<MemoryAccess>) -> Self {
        Trace { accesses }
    }

    /// Number of loads in the trace.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Borrowed view of the access records.
    pub fn accesses(&self) -> &[MemoryAccess] {
        &self.accesses
    }

    /// Appends one access.
    pub fn push(&mut self, access: MemoryAccess) {
        self.accesses.push(access);
    }

    /// Total dynamic instructions covered by the trace (last id + 1).
    ///
    /// Used as the numerator of IPC: the trace stands for every instruction
    /// up to and including its final load.
    pub fn total_instructions(&self) -> u64 {
        self.accesses.last().map_or(0, |a| a.instr_id + 1)
    }

    /// A sub-trace holding the first `n` loads (or all of them if shorter).
    pub fn truncated(&self, n: usize) -> Trace {
        Trace {
            accesses: self.accesses[..n.min(self.accesses.len())].to_vec(),
        }
    }

    /// Iterates over the accesses.
    pub fn iter(&self) -> std::slice::Iter<'_, MemoryAccess> {
        self.accesses.iter()
    }
}

impl FromIterator<MemoryAccess> for Trace {
    fn from_iter<I: IntoIterator<Item = MemoryAccess>>(iter: I) -> Self {
        Trace {
            accesses: iter.into_iter().collect(),
        }
    }
}

impl Extend<MemoryAccess> for Trace {
    fn extend<I: IntoIterator<Item = MemoryAccess>>(&mut self, iter: I) {
        self.accesses.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a MemoryAccess;
    type IntoIter = std::slice::Iter<'a, MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.iter()
    }
}

impl IntoIterator for Trace {
    type Item = MemoryAccess;
    type IntoIter = std::vec::IntoIter<MemoryAccess>;

    fn into_iter(self) -> Self::IntoIter {
        self.accesses.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        (0..10)
            .map(|i| MemoryAccess::new(i * 7, 0x400 + i, 0x10_000 + i * 64))
            .collect()
    }

    #[test]
    fn collect_and_iterate() {
        let t = sample();
        assert_eq!(t.len(), 10);
        assert_eq!(t.iter().count(), 10);
        let ids: Vec<u64> = t.iter().map(|a| a.instr_id).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn total_instructions_covers_last_id() {
        let t = sample();
        assert_eq!(t.total_instructions(), 9 * 7 + 1);
        assert_eq!(Trace::new().total_instructions(), 0);
    }

    #[test]
    fn truncated_takes_prefix() {
        let t = sample();
        assert_eq!(t.truncated(3).len(), 3);
        assert_eq!(t.truncated(100).len(), 10);
        assert_eq!(t.truncated(3).accesses()[2], t.accesses()[2]);
    }

    #[test]
    fn extend_appends() {
        let mut t = sample();
        t.extend(std::iter::once(MemoryAccess::new(100, 0x500, 0x20_000)));
        assert_eq!(t.len(), 11);
        assert_eq!(t.total_instructions(), 101);
    }
}
