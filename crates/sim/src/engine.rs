//! Two-phase replay engine: a trace plus a precomputed prefetch schedule in,
//! a [`SimReport`] out.
//!
//! This mirrors the ML Prefetching Competition's ChampSim fork (§4.1 of the
//! paper): prefetchers run offline over the load trace to produce a prefetch
//! file; the timed simulation then replays the trace, injecting each prefetch
//! into the LLC when its trigger access executes.

use pathfinder_accel::{self as accel, KernelTier};
use pathfinder_telemetry as telemetry;

use crate::access::{MemoryAccess, PrefetchRequest, Trace};
use crate::addr::Block;
use crate::cache::{Cache, CacheLevel, LookupResult};
use crate::config::SimConfig;
use crate::core::RobModel;
use crate::dram::DramModel;
use crate::mshr::MshrTracker;
use crate::stats::{DetailedStats, SimReport};

/// The trace-driven simulator.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::{MemoryAccess, SimConfig, Simulator, Trace};
///
/// let trace: Trace = (0..100)
///     .map(|i| MemoryAccess::new(i * 4, 0x400, i * 64))
///     .collect();
/// let report = Simulator::new(SimConfig::default()).run(&trace, &[]);
/// assert!(report.ipc() > 0.0);
/// assert_eq!(report.loads, 100);
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    /// Kernel tier every component's scans dispatch to (captured at
    /// construction and shared by the caches, MSHR tracker, and DRAM
    /// model).
    tier: KernelTier,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    dram: DramModel,
    rob: RobModel,
    /// Completion cycles of outstanding demand misses, bounded by
    /// `core.mshrs` at construction (no steady-state allocation).
    outstanding: MshrTracker,
    report: SimReport,
    /// Per-depth tally for the `sim.mshr.occupancy` histogram: slot `d`
    /// counts accesses that saw `d` outstanding misses. The tracker is
    /// bounded by its capacity, so `capacity + 1` slots cover every
    /// observable depth; the end-of-replay flush folds the tally into the
    /// recorder in one pass. Only written when telemetry is compiled in.
    occupancy_counts: Box<[u64]>,
    /// Accesses that stalled on a full MSHR file. `SimReport` has no field
    /// for this, so the engine tallies it here for the telemetry flush.
    mshr_stalls: u64,
    /// Measured-window prefetches filtered by LLC residency (ditto).
    prefetches_filtered: u64,
    /// Counter totals already published to telemetry, so the flush emits
    /// deltas: (mshr_stalls, filtered, useful, late, issued).
    flushed_counts: [u64; 5],
}

impl Simulator {
    /// Creates a simulator with cold caches, dispatching every component's
    /// hot scans to the process-wide [`accel::active_tier`].
    pub fn new(config: SimConfig) -> Self {
        Simulator::build(config, accel::active_tier())
    }

    /// Creates a simulator pinned to an explicit [`KernelTier`], or an
    /// error if that tier is unsupported on this host. The tiers are
    /// bit-identical — this exists so benchmarks and tests can measure the
    /// scalar baseline on SIMD-capable hosts, mirroring
    /// `DiehlCookNetwork::with_kernel_tier` on the SNN side.
    pub fn with_kernel_tier(config: SimConfig, tier: KernelTier) -> Result<Self, String> {
        if !tier.supported() {
            return Err(format!(
                "kernel tier {:?} is not supported on this host",
                tier
            ));
        }
        Ok(Simulator::build(config, tier))
    }

    fn build(config: SimConfig, tier: KernelTier) -> Self {
        Simulator {
            config,
            tier,
            l1d: Cache::with_tier(config.l1d, CacheLevel::L1d, tier),
            l2: Cache::with_tier(config.l2, CacheLevel::L2, tier),
            llc: Cache::with_tier(config.llc, CacheLevel::Llc, tier),
            dram: DramModel::with_tier(config.dram, tier),
            rob: RobModel::new(config.core),
            outstanding: MshrTracker::with_tier(config.core.mshrs, tier),
            report: SimReport::default(),
            occupancy_counts: vec![0; config.core.mshrs.max(1) + 1].into_boxed_slice(),
            mshr_stalls: 0,
            prefetches_filtered: 0,
            flushed_counts: [0; 5],
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The kernel tier this simulator's components dispatch to.
    pub fn kernel_tier(&self) -> KernelTier {
        self.tier
    }

    /// Replays `trace` with the given prefetch schedule and returns the
    /// report. Prefetches should be sorted by `trigger_instr_id` (schedules
    /// produced by walking the trace in order always are); a misordered
    /// schedule is detected in every build profile, logged, and sorted
    /// before replay rather than silently skipping requests.
    ///
    /// A warm-up fraction of the trace can be replayed first via
    /// [`Simulator::run_with_warmup`].
    pub fn run(mut self, trace: &Trace, prefetches: &[PrefetchRequest]) -> SimReport {
        self.run_inner(trace, prefetches, 0);
        self.report
    }

    /// Replays `trace`, treating the first `warmup_loads` loads as cache
    /// warm-up: they update cache/DRAM state but are excluded from the
    /// reported counters and cycle count. A `warmup_loads` of `trace.len()`
    /// or more leaves an empty measured window (all counters and the cycle
    /// count report zero).
    pub fn run_with_warmup(
        mut self,
        trace: &Trace,
        prefetches: &[PrefetchRequest],
        warmup_loads: usize,
    ) -> SimReport {
        self.run_inner(trace, prefetches, warmup_loads);
        self.report
    }

    /// Replays and also returns per-component statistics.
    pub fn run_detailed(
        self,
        trace: &Trace,
        prefetches: &[PrefetchRequest],
    ) -> (SimReport, DetailedStats) {
        self.run_detailed_with_warmup(trace, prefetches, 0)
    }

    /// Like [`Simulator::run_detailed`] with a warm-up window (see
    /// [`Simulator::run_with_warmup`]). The per-component statistics cover
    /// the whole replay including warm-up — they describe component state,
    /// not the measured window.
    pub fn run_detailed_with_warmup(
        mut self,
        trace: &Trace,
        prefetches: &[PrefetchRequest],
        warmup_loads: usize,
    ) -> (SimReport, DetailedStats) {
        self.run_inner(trace, prefetches, warmup_loads);
        let detail = DetailedStats {
            l1d: *self.l1d.stats(),
            l2: *self.l2.stats(),
            llc: *self.llc.stats(),
            dram: *self.dram.stats(),
        };
        (self.report, detail)
    }

    fn run_inner(&mut self, trace: &Trace, prefetches: &[PrefetchRequest], warmup_loads: usize) {
        // The replay cursor silently skips prefetches whose trigger has
        // already passed, so a misordered schedule must never reach it.
        // Validate in every build profile (the check is O(n), the replay is
        // not) and recover by sorting a copy rather than dropping requests.
        let sorted_copy: Vec<PrefetchRequest>;
        let prefetches = if prefetches
            .windows(2)
            .all(|w| w[0].trigger_instr_id <= w[1].trigger_instr_id)
        {
            prefetches
        } else {
            telemetry::counter!("sim.schedule.unsorted", 1);
            eprintln!(
                "warning: prefetch schedule of {} requests is not sorted by \
                 trigger_instr_id; sorting before replay (schedules built by \
                 walking the trace in order are always sorted)",
                prefetches.len()
            );
            sorted_copy = {
                let mut v = prefetches.to_vec();
                v.sort_by_key(|p| p.trigger_instr_id);
                v
            };
            &sorted_copy
        };
        // A warmup window longer than the trace means "everything is
        // warm-up": clamp so the measured window is empty instead of
        // silently reporting full-run cycles for zero measured loads.
        let warmup_loads = warmup_loads.min(trace.len());
        let _replay_span = telemetry::timer!("sim.replay");
        let mut pf_cursor = 0usize;
        let mut measured_start_cycle = 0u64;
        let mut measured_start_instr = 0u64;
        let mut prev_completion = 0u64;

        for (i, access) in trace.iter().enumerate() {
            let measuring = i >= warmup_loads;
            let mut issue = self.issue_with_hazards(access.instr_id);
            // Address dependence: a pointer-chasing load cannot compute its
            // address until the previous load's data arrives.
            if access.depends_on_prev {
                issue = issue.max(prev_completion);
            }
            if i == warmup_loads {
                measured_start_cycle = issue;
                measured_start_instr = access.instr_id;
            }
            let latency = self.demand_latency(access, issue, measuring);
            prev_completion = issue + latency;
            self.rob.complete_load(access.instr_id, issue, latency);

            // Issue all prefetches triggered by this access, at its issue
            // time: the prefetcher logically observes the access and reacts.
            while pf_cursor < prefetches.len()
                && prefetches[pf_cursor].trigger_instr_id <= access.instr_id
            {
                let pf = prefetches[pf_cursor];
                pf_cursor += 1;
                if measuring {
                    self.report.prefetches_requested += 1;
                }
                self.issue_prefetch(pf.block, issue, measuring);
            }
        }

        let total_instr = trace.total_instructions();
        let end_cycle = self.rob.finish(total_instr);
        if warmup_loads == trace.len() {
            // The entire trace was warm-up: no load set the measured-window
            // start, so report an empty window, not the full run.
            measured_start_instr = total_instr;
            measured_start_cycle = end_cycle;
        }
        self.report.instructions = total_instr.saturating_sub(measured_start_instr);
        self.report.cycles = end_cycle.saturating_sub(measured_start_cycle);
        self.report.prefetches_useless = self.llc.stats().useless_evictions;

        // Hot-loop telemetry is deferred: the loop above only tallied into
        // plain fields and bounded count arrays; publish everything in one
        // batch now. Counter totals and histogram aggregates are
        // bit-identical to per-access recording (the canonical-report test
        // pins this against the reference engine, which still records per
        // access).
        self.l1d.flush_telemetry();
        self.l2.flush_telemetry();
        self.llc.flush_telemetry();
        self.dram.flush_telemetry();
        self.flush_engine_telemetry();
    }

    /// Publishes the engine-level telemetry accumulated during the replay:
    /// the MSHR-occupancy distribution and deltas of the stall and prefetch
    /// counters. Counters that did not move emit nothing, preserving the
    /// "absent, not zero" snapshot semantics (e.g. `sim.prefetch.filtered`
    /// stays absent when the whole trace was warm-up).
    fn flush_engine_telemetry(&mut self) {
        if !telemetry::enabled() {
            return;
        }
        for depth in 0..self.occupancy_counts.len() {
            let n = self.occupancy_counts[depth];
            telemetry::histogram_n!("sim.mshr.occupancy", depth as u64, n);
            self.occupancy_counts[depth] = 0;
        }
        let totals = [
            ("sim.mshr.stalls", self.mshr_stalls),
            ("sim.prefetch.filtered", self.prefetches_filtered),
            ("sim.prefetch.useful", self.report.prefetches_useful),
            ("sim.prefetch.late", self.report.prefetches_late),
            ("sim.prefetch.issued", self.report.prefetches_issued),
        ];
        for ((name, total), flushed) in totals.into_iter().zip(self.flushed_counts.iter_mut()) {
            let delta = total - *flushed;
            if delta > 0 {
                telemetry::counter!(name, delta);
            }
            *flushed = total;
        }
    }

    /// Dispatch cycle after ROB and MSHR structural hazards.
    fn issue_with_hazards(&mut self, instr_id: u64) -> u64 {
        let mut issue = self.rob.issue_cycle(instr_id);
        // MSHR hazard: too many outstanding misses delays further dispatch.
        self.outstanding.drain_completed(issue);
        if telemetry::enabled() {
            // Tally locally; the end-of-replay flush folds the whole
            // distribution into `sim.mshr.occupancy` at once.
            self.occupancy_counts[self.outstanding.len()] += 1;
        }
        if self.outstanding.len() >= self.config.core.mshrs {
            self.mshr_stalls += 1;
            if let Some(done) = self.outstanding.pop_earliest() {
                issue = issue.max(done);
            }
            // Drain anything else that finished by the new issue time.
            self.outstanding.drain_completed(issue);
        }
        issue
    }

    /// Walks the hierarchy for a demand load, returns its total latency.
    fn demand_latency(&mut self, access: &MemoryAccess, issue: u64, measuring: bool) -> u64 {
        let block = access.block();
        if measuring {
            self.report.loads += 1;
        }

        // The per-level hit/miss counters (`sim.<level>.{hits,misses}`) are
        // tallied by the labeled caches themselves in `demand_access` and
        // published by their end-of-replay telemetry flush.
        if let LookupResult::Hit { .. } = self.l1d.demand_access(block) {
            if measuring {
                self.report.l1d_hits += 1;
            }
            return self.config.l1_hit_latency();
        }
        if let LookupResult::Hit { .. } = self.l2.demand_access(block) {
            if measuring {
                self.report.l2_hits += 1;
            }
            // Every fill in the demand walk targets a block that just
            // missed at that level, so the absent fast path applies (it is
            // bit-identical to `fill`; the equivalence suite pins this).
            self.l1d.fill_absent(block, false, 0);
            return self.config.l2_hit_latency();
        }

        if measuring {
            self.report.llc_load_accesses += 1;
        }
        match self.llc.demand_access(block) {
            LookupResult::Hit {
                first_demand_to_prefetch,
                fill_ready_cycle,
            } => {
                if measuring {
                    self.report.llc_hits += 1;
                    if first_demand_to_prefetch {
                        // `sim.prefetch.{useful,late}` flush from these
                        // report fields at the end of the replay.
                        self.report.prefetches_useful += 1;
                        if fill_ready_cycle > issue {
                            self.report.prefetches_late += 1;
                        }
                    }
                }
                self.l2.fill_absent(block, false, 0);
                self.l1d.fill_absent(block, false, 0);
                // Late prefetch: the demand merges into the in-flight fill
                // and completes when the data arrives (never faster than a
                // plain LLC hit).
                let wait = fill_ready_cycle.saturating_sub(issue);
                self.config.llc_hit_latency().max(wait)
            }
            LookupResult::Miss => {
                if measuring {
                    self.report.llc_misses += 1;
                }
                let dram_submit = issue + self.config.llc_hit_latency();
                let data_back = self.dram.service(block, dram_submit);
                self.outstanding.push(data_back);
                self.llc.fill_absent(block, false, 0);
                self.l2.fill_absent(block, false, 0);
                self.l1d.fill_absent(block, false, 0);
                data_back - issue
            }
        }
    }

    /// Issues one prefetch into the LLC (if not already resident). The DRAM
    /// side may shed the request under demand load.
    fn issue_prefetch(&mut self, block: Block, now: u64, measuring: bool) {
        if self.llc.probe(block) {
            // Gated like `sim.prefetch.issued`: warmup-phase prefetch
            // traffic must not skew canonical reports.
            if measuring {
                self.prefetches_filtered += 1;
            }
            return; // already resident (or already being prefetched)
        }
        let Some(data_back) = self
            .dram
            .service_prefetch(block, now + self.config.llc_hit_latency())
        else {
            return; // queue busy with demands: prefetch dropped
        };
        if measuring {
            // `sim.prefetch.issued` flushes from this field at the end of
            // the replay, staying in lockstep with the report — the
            // harness's run-report integration test asserts equality.
            self.report.prefetches_issued += 1;
        }
        // The probe above proved the block absent; nothing between the
        // probe and this fill touches the LLC.
        self.llc.fill_absent(block, true, data_back);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream_trace(n: u64, stride: u64) -> Trace {
        (0..n)
            .map(|i| MemoryAccess::new(i * 4, 0x400, 0x10_0000 + i * stride))
            .collect()
    }

    /// Trace with no reuse and page-sized jumps: every access misses all levels.
    fn miss_trace(n: u64) -> Trace {
        (0..n)
            .map(|i| MemoryAccess::new(i * 4, 0x400, 0x10_0000 + i * 4096 * 7))
            .collect()
    }

    #[test]
    fn repeated_block_hits_l1() {
        let trace: Trace = (0..100)
            .map(|i| MemoryAccess::new(i * 4, 0x400, 0x8000))
            .collect();
        let report = Simulator::new(SimConfig::default()).run(&trace, &[]);
        assert_eq!(report.loads, 100);
        assert_eq!(report.l1d_hits, 99);
        assert_eq!(report.llc_misses, 1);
    }

    #[test]
    fn cold_misses_all_reach_dram() {
        let trace = miss_trace(50);
        let report = Simulator::new(SimConfig::default()).run(&trace, &[]);
        assert_eq!(report.llc_misses, 50);
        assert_eq!(report.llc_load_accesses, 50);
        assert_eq!(report.l1d_hits, 0);
    }

    #[test]
    fn perfect_prefetching_raises_ipc() {
        let trace = miss_trace(2000);
        let no_pf = Simulator::new(SimConfig::default()).run(&trace, &[]);

        // Oracle: prefetch access i+1's block when access i triggers.
        let accesses = trace.accesses();
        let prefetches: Vec<PrefetchRequest> = accesses
            .windows(2)
            .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
            .collect();
        let with_pf = Simulator::new(SimConfig::default()).run(&trace, &prefetches);

        assert!(
            with_pf.ipc() > no_pf.ipc(),
            "prefetching must help: {} vs {}",
            with_pf.ipc(),
            no_pf.ipc()
        );
        // The DRAM side sheds prefetches when banks are congested, so a
        // fully bandwidth-bound miss stream cannot cover everything — but
        // what does issue should be accurate and substantially useful.
        assert!(
            with_pf.prefetches_useful > 700,
            "{}",
            with_pf.prefetches_useful
        );
        assert!(with_pf.accuracy() > 0.85, "{}", with_pf.accuracy());
    }

    #[test]
    fn useless_prefetches_do_not_count_useful() {
        let trace = miss_trace(100);
        // Prefetch blocks nobody will touch.
        let prefetches: Vec<PrefetchRequest> = trace
            .iter()
            .map(|a| PrefetchRequest::new(a.instr_id, Block(a.block().0 + 1_000_000)))
            .collect();
        let report = Simulator::new(SimConfig::default()).run(&trace, &prefetches);
        assert_eq!(report.prefetches_useful, 0);
        // Some prefetches may be shed under demand congestion; the rest
        // issue and are all useless.
        assert!(report.prefetches_issued > 0);
        assert!(report.prefetches_issued <= 100);
        assert_eq!(report.accuracy(), 0.0);
    }

    #[test]
    fn duplicate_prefetches_filtered() {
        let trace = miss_trace(10);
        let target = Block(999_999);
        let prefetches: Vec<PrefetchRequest> = trace
            .iter()
            .map(|a| PrefetchRequest::new(a.instr_id, target))
            .collect();
        let report = Simulator::new(SimConfig::default()).run(&trace, &prefetches);
        assert_eq!(report.prefetches_requested, 10);
        assert_eq!(
            report.prefetches_issued, 1,
            "resident block filters re-prefetch"
        );
    }

    #[test]
    fn warmup_excludes_counters() {
        let trace = miss_trace(100);
        let report = Simulator::new(SimConfig::default()).run_with_warmup(&trace, &[], 50);
        assert_eq!(report.loads, 50);
        assert!(report.cycles > 0);
    }

    #[test]
    fn warmup_covering_whole_trace_measures_nothing() {
        let trace = miss_trace(100);
        // Boundary (warmup == len) and beyond (warmup > len): both leave an
        // empty measured window instead of claiming full-run cycles and
        // instructions for zero measured loads.
        for warmup in [100usize, 101, 10_000] {
            let report = Simulator::new(SimConfig::default()).run_with_warmup(&trace, &[], warmup);
            assert_eq!(report.loads, 0, "warmup={warmup}");
            assert_eq!(report.instructions, 0, "warmup={warmup}");
            assert_eq!(report.cycles, 0, "warmup={warmup}");
            assert_eq!(report.ipc(), 0.0, "warmup={warmup}");
        }
        // One load short of the boundary still measures the last load.
        let report = Simulator::new(SimConfig::default()).run_with_warmup(&trace, &[], 99);
        assert_eq!(report.loads, 1);
        assert!(report.cycles > 0);
        assert!(report.instructions > 0);
    }

    #[test]
    fn misordered_schedule_is_sorted_not_skipped() {
        let trace = miss_trace(2000);
        let accesses = trace.accesses();
        let sorted: Vec<PrefetchRequest> = accesses
            .windows(2)
            .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
            .collect();
        let mut shuffled = sorted.clone();
        shuffled.reverse();
        let a = Simulator::new(SimConfig::default()).run(&trace, &sorted);
        let b = Simulator::new(SimConfig::default()).run(&trace, &shuffled);
        // Release builds used to skip almost every prefetch of the reversed
        // schedule via the cursor; now both replays are identical.
        assert_eq!(a, b);
        assert!(b.prefetches_useful > 0);
    }

    #[test]
    fn streaming_faster_than_random_misses() {
        // Sequential blocks enjoy DRAM row hits; scattered pages don't.
        let seq = Simulator::new(SimConfig::default()).run(&stream_trace(2000, 64), &[]);
        let rand = Simulator::new(SimConfig::default()).run(&miss_trace(2000), &[]);
        assert!(seq.ipc() > rand.ipc());
    }

    #[test]
    fn dependent_chains_serialize() {
        let independent = miss_trace(1000);
        let dependent: Trace = independent.iter().map(|a| a.dependent()).collect();
        let free = Simulator::new(SimConfig::default()).run(&independent, &[]);
        let chained = Simulator::new(SimConfig::default()).run(&dependent, &[]);
        assert!(
            chained.ipc() < free.ipc() * 0.5,
            "pointer chasing must serialize: {} vs {}",
            chained.ipc(),
            free.ipc()
        );
    }

    #[test]
    fn prefetching_rescues_dependent_chains() {
        let dependent: Trace = miss_trace(2000).iter().map(|a| a.dependent()).collect();
        let accesses = dependent.accesses();
        let prefetches: Vec<PrefetchRequest> = accesses
            .windows(2)
            .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
            .collect();
        let base = Simulator::new(SimConfig::default()).run(&dependent, &[]);
        let with_pf = Simulator::new(SimConfig::default()).run(&dependent, &prefetches);
        assert!(
            with_pf.ipc() > base.ipc() * 1.5,
            "accurate prefetching should break the serialization: {} vs {}",
            with_pf.ipc(),
            base.ipc()
        );
    }

    #[test]
    fn demand_refill_stops_charging_stale_late_prefetch_wait() {
        // Regression (PR 5): `Cache::fill` on an already-present line used
        // to refresh only the LRU stamp, so a demand fill landing on a
        // resident in-flight-prefetch line kept the stale
        // `fill_ready_cycle` — and every later demand through
        // `demand_latency` re-paid the old late-prefetch wait.
        let cfg = SimConfig::default();
        let block = Block(42);
        let access = MemoryAccess::new(0, 0x400, block.0 * 64);

        // A genuine in-flight prefetch hit still charges the wait ...
        let mut sim = Simulator::new(cfg);
        sim.llc.fill(block, true, 2_000);
        let latency = sim.demand_latency(&access, 100, true);
        assert_eq!(latency, 1_900, "in-flight prefetch: wait until arrival");

        // ... but once a demand fill supersedes the in-flight prefetch
        // line, the stale arrival cycle is gone: plain LLC hit latency.
        let mut sim = Simulator::new(cfg);
        sim.llc.fill(block, true, 2_000);
        sim.llc.fill(block, false, 0);
        let latency = sim.demand_latency(&access, 100, true);
        assert_eq!(latency, cfg.llc_hit_latency());
        // The superseded prefetch no longer counts as a first demand touch.
        assert_eq!(sim.report.prefetches_useful, 0);
    }

    #[test]
    fn warmup_prefetch_traffic_is_excluded_from_counters() {
        // Duplicate-heavy schedule: first request issues, the rest are
        // residency-filtered. With the whole schedule inside the warmup
        // window, no prefetch counter may leak into the measured report.
        let trace = miss_trace(100);
        let target = Block(999_999);
        let prefetches: Vec<PrefetchRequest> = trace
            .iter()
            .take(50)
            .map(|a| PrefetchRequest::new(a.instr_id, target))
            .collect();
        let report = Simulator::new(SimConfig::default()).run_with_warmup(&trace, &prefetches, 50);
        assert_eq!(report.prefetches_requested, 0);
        assert_eq!(report.prefetches_issued, 0);
    }

    #[test]
    fn scalar_tier_replay_is_bit_identical() {
        // The integer kernels are exactly identical across tiers, so a
        // full replay — misses, oracle prefetches, MSHR pressure — must
        // produce byte-equal reports on the pinned-scalar simulator.
        let trace = miss_trace(1_500);
        let accesses = trace.accesses();
        let prefetches: Vec<PrefetchRequest> = accesses
            .windows(2)
            .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
            .collect();
        let native = Simulator::new(SimConfig::default());
        assert_eq!(native.kernel_tier(), accel::active_tier());
        let scalar = Simulator::with_kernel_tier(SimConfig::default(), KernelTier::Scalar)
            .expect("scalar tier is supported everywhere");
        assert_eq!(scalar.kernel_tier(), KernelTier::Scalar);
        let (a, da) = native.run_detailed(&trace, &prefetches);
        let (b, db) = scalar.run_detailed(&trace, &prefetches);
        assert_eq!(a, b);
        assert_eq!(da, db);
    }

    #[test]
    fn detailed_stats_consistent_with_report() {
        let trace = miss_trace(100);
        let (report, detail) = Simulator::new(SimConfig::default()).run_detailed(&trace, &[]);
        assert_eq!(detail.llc.misses, report.llc_misses);
        assert_eq!(detail.dram.requests, 100);
    }
}
