//! Simulator configuration, defaulting to the paper's Table 3 parameters.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in CPU cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Creates a config from set count, way count, and latency.
    pub const fn new(sets: usize, ways: usize, latency: u64) -> Self {
        CacheConfig {
            sets,
            ways,
            latency,
        }
    }

    /// Total capacity in bytes (64-byte blocks).
    pub const fn capacity_bytes(&self) -> usize {
        self.sets * self.ways * crate::addr::BLOCK_SIZE as usize
    }
}

/// DRAM timing and geometry (Table 3).
///
/// The paper lists `tRP = tRCD = tCAS = 12.5` (nanoseconds). At the 4 GHz
/// core clock ChampSim assumes, each is 50 core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Channels (Table 3: 1).
    pub channels: usize,
    /// Ranks per channel (Table 3: 8).
    pub ranks_per_channel: usize,
    /// Banks per rank (Table 3: 8).
    pub banks_per_rank: usize,
    /// Row-precharge latency in core cycles.
    pub t_rp: u64,
    /// Row-activate (RAS-to-CAS) latency in core cycles.
    pub t_rcd: u64,
    /// Column-access latency in core cycles.
    pub t_cas: u64,
    /// Data-bus occupancy per transfer in core cycles.
    pub burst_cycles: u64,
    /// Read-queue capacity (Table 3: 64).
    pub read_queue_size: usize,
    /// Write-queue capacity (Table 3: 64).
    pub write_queue_size: usize,
    /// DRAM row size in bytes (for open-row hit detection).
    pub row_bytes: u64,
    /// Read-queue slots reserved for demand traffic: a prefetch is shed
    /// when fewer than this many slots would remain free after it enqueues
    /// (FR-FCFS controllers serve demands first and drop speculative reads
    /// under load). Clamped to `read_queue_size - 1` at model construction
    /// so an idle queue always accepts a prefetch — the previous hardwired
    /// headroom of 4 shed *every* prefetch when `read_queue_size <= 4`.
    pub prefetch_headroom: usize,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            channels: 1,
            ranks_per_channel: 8,
            banks_per_rank: 8,
            t_rp: 50,
            t_rcd: 50,
            t_cas: 50,
            burst_cycles: 4,
            read_queue_size: 64,
            write_queue_size: 64,
            row_bytes: 8192,
            prefetch_headroom: 4,
        }
    }
}

impl DramConfig {
    /// Total independently-schedulable banks across all channels.
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks_per_channel * self.banks_per_rank
    }
}

/// Core (front-end and window) parameters for the IPC model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Retire/dispatch width in instructions per cycle.
    pub width: u64,
    /// Reorder-buffer capacity in instructions; bounds memory-level
    /// parallelism the core can expose.
    pub rob_size: u64,
    /// Maximum demand misses outstanding below the LLC at once.
    pub mshrs: usize,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 4,
            rob_size: 352,
            mshrs: 32,
        }
    }
}

/// Full simulator configuration (Table 3 defaults).
///
/// # Examples
///
/// ```
/// use pathfinder_sim::SimConfig;
///
/// let cfg = SimConfig::default();
/// assert_eq!(cfg.llc.capacity_bytes(), 2 * 1024 * 1024);
/// assert_eq!(cfg.l1d.ways, 12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// L1 instruction cache (32 KiB, 64 sets, 8 ways, 4 cycles).
    pub l1i: CacheConfig,
    /// L1 data cache (48 KiB, 64 sets, 12 ways, 5 cycles).
    pub l1d: CacheConfig,
    /// Unified L2 (512 KiB, 1024 sets, 8 ways, 10 cycles).
    pub l2: CacheConfig,
    /// Last-level cache (2 MiB, 2048 sets, 16 ways, 20 cycles).
    pub llc: CacheConfig,
    /// DRAM timing/geometry.
    pub dram: DramConfig,
    /// Core model parameters.
    pub core: CoreConfig,
    /// Maximum prefetches a prefetcher may issue per demand access
    /// (competition rule: 2).
    pub max_prefetch_degree: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            l1i: CacheConfig::new(64, 8, 4),
            l1d: CacheConfig::new(64, 12, 5),
            l2: CacheConfig::new(1024, 8, 10),
            llc: CacheConfig::new(2048, 16, 20),
            dram: DramConfig::default(),
            core: CoreConfig::default(),
            max_prefetch_degree: 2,
        }
    }
}

impl SimConfig {
    /// Round-trip latency of a load that hits in the L1D.
    pub fn l1_hit_latency(&self) -> u64 {
        self.l1d.latency
    }

    /// Round-trip latency of a load that hits in the L2.
    pub fn l2_hit_latency(&self) -> u64 {
        self.l1d.latency + self.l2.latency
    }

    /// Round-trip latency of a load that hits in the LLC.
    pub fn llc_hit_latency(&self) -> u64 {
        self.l1d.latency + self.l2.latency + self.llc.latency
    }

    /// Fixed (non-queued) portion of a DRAM access round trip.
    pub fn dram_base_latency(&self) -> u64 {
        self.llc_hit_latency() + self.dram.t_rcd + self.dram.t_cas
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_capacities() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.l1i.capacity_bytes(), 32 * 1024);
        assert_eq!(cfg.l1d.capacity_bytes(), 48 * 1024);
        assert_eq!(cfg.l2.capacity_bytes(), 512 * 1024);
        assert_eq!(cfg.llc.capacity_bytes(), 2 * 1024 * 1024);
    }

    #[test]
    fn table3_latencies() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.l1_hit_latency(), 5);
        assert_eq!(cfg.l2_hit_latency(), 15);
        assert_eq!(cfg.llc_hit_latency(), 35);
        // 12.5ns at 4GHz = 50 cycles for each DRAM timing parameter.
        assert_eq!(cfg.dram.t_rp, 50);
        assert_eq!(cfg.dram.t_rcd, 50);
        assert_eq!(cfg.dram.t_cas, 50);
    }

    #[test]
    fn table3_dram_geometry() {
        let d = DramConfig::default();
        assert_eq!(d.channels, 1);
        assert_eq!(d.ranks_per_channel, 8);
        assert_eq!(d.banks_per_rank, 8);
        assert_eq!(d.total_banks(), 64);
        assert_eq!(d.read_queue_size, 64);
        assert_eq!(d.write_queue_size, 64);
        // Matches the headroom that was hardwired into the model before it
        // became configurable, so default shedding behaviour is unchanged.
        assert_eq!(d.prefetch_headroom, 4);
    }

    #[test]
    fn competition_prefetch_rule() {
        assert_eq!(SimConfig::default().max_prefetch_degree, 2);
    }
}
