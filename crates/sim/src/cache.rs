//! A set-associative cache with LRU replacement and prefetch-bit tracking,
//! laid out as flat structure-of-arrays buffers for the replay hot path.
//!
//! The timed replay spends most of its cycles scanning cache sets (three
//! levels per demand load, plus a residency probe per prefetch), so the
//! line array is split by access pattern:
//!
//! * `tags` — one contiguous `u64` per line packing the block tag and the
//!   valid bit (`(block << 1) | 1`; `0` is "invalid"). Every lookup scans
//!   only this array: a whole 16-way set is 128 contiguous bytes (two
//!   cache lines) instead of sixteen 40-byte `Line` structs behind a
//!   per-set `Vec` indirection.
//! * `lru` — one `u64` recency stamp per line. Victim selection is a pure
//!   min-scan of this array alone: the code maintains the invariant that
//!   invalid lines carry stamp `0` and valid lines carry stamps `>= 1`
//!   (the tick counter pre-increments), so "first invalid line, else LRU"
//!   collapses to "first minimum stamp" over contiguous `u64`s.
//! * `fill_info` — fill-ready cycle and prefetch bit packed as
//!   `(ready_cycle << 1) | prefetched`, read on hits and rewritten on
//!   fills; never touched by a scan.
//!
//! Set selection uses a bitmask when the set count is a power of two (the
//! Table 3 geometries all are) and falls back to modulo otherwise; the two
//! paths are pinned against each other and against the retained
//! [`crate::reference::ReferenceCache`] by `tests/cache_prop.rs`. Both
//! buffers are allocated once at construction — no allocation ever happens
//! during replay.
//!
//! Both hot scans — the tag lookup and the LRU victim min-scan — dispatch
//! through [`pathfinder_accel`]'s [`KernelTier`], captured once at
//! construction ([`Cache::with_tier`]): on AVX2 hosts a whole 4-lane
//! `u64` vector of tags is compared per step (`_mm256_cmpeq_epi64` +
//! movemask) and the victim scan is a lane-wise min reduction keeping the
//! first minimum. The integer kernels are bit-identical to the scalar
//! walks for every input (see the `pathfinder-accel` crate docs), so the
//! reference-equivalence proptests pin both tiers with no tolerance
//! machinery, and `PATHFINDER_FORCE_SCALAR` pins dispatch for CI.

use pathfinder_accel::{self as accel, KernelTier};
use pathfinder_telemetry as telemetry;

use crate::addr::Block;
use crate::config::CacheConfig;

/// Which level of the hierarchy a [`Cache`] models; labels the cache's own
/// telemetry so hit/miss counters are recorded where they happen instead of
/// on-behalf by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// First-level data cache — records `sim.l1d.{hits,misses}`.
    L1d,
    /// Second-level cache — records `sim.l2.{hits,misses}`.
    L2,
    /// Last-level cache — records `sim.llc.{hits,misses}`.
    Llc,
    /// No level label; telemetry stays silent ([`Cache::new`] default for
    /// standalone caches in tests and examples).
    Unlabeled,
}

impl CacheLevel {
    pub(crate) fn hit_metric(self) -> Option<&'static str> {
        match self {
            CacheLevel::L1d => Some("sim.l1d.hits"),
            CacheLevel::L2 => Some("sim.l2.hits"),
            CacheLevel::Llc => Some("sim.llc.hits"),
            CacheLevel::Unlabeled => None,
        }
    }

    pub(crate) fn miss_metric(self) -> Option<&'static str> {
        match self {
            CacheLevel::L1d => Some("sim.l1d.misses"),
            CacheLevel::L2 => Some("sim.l2.misses"),
            CacheLevel::Llc => Some("sim.llc.misses"),
            CacheLevel::Unlabeled => None,
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Block present; was it originally brought in by a prefetch and never
    /// yet demanded, and at what cycle did its fill complete?
    Hit {
        /// True if this is the first demand touch to a prefetched block.
        first_demand_to_prefetch: bool,
        /// Cycle at which the block's fill completed (0 for demand fills in
        /// the functional pass).
        fill_ready_cycle: u64,
    },
    /// Block absent.
    Miss,
}

/// An invalid tag word: valid bit clear (the tag bits are irrelevant).
const TAG_INVALID: u64 = 0;

/// Packs a line's fill-completion cycle and prefetch bit into one word.
/// Ready cycles are simulator clock values and stay far below 2^63.
#[inline]
fn pack_fill_info(ready_cycle: u64, prefetched: bool) -> u64 {
    debug_assert!(ready_cycle < 1 << 63, "ready cycle overflows fill info");
    (ready_cycle << 1) | prefetched as u64
}

/// Packs a block into its tag word. Block indices are `vaddr >> 6`, so
/// they always fit in 58 bits; the shift cannot discard address bits.
#[inline]
fn pack_tag(block: Block) -> u64 {
    debug_assert!(block.0 < 1 << 63, "block index overflows packed tag");
    (block.0 << 1) | 1
}

/// Statistics kept by each cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Blocks filled by prefetch.
    pub prefetch_fills: u64,
    /// Prefetched blocks that later served a demand access.
    pub useful_prefetches: u64,
    /// Prefetched blocks evicted without ever serving a demand access.
    pub useless_evictions: u64,
}

/// A single set-associative cache level (flat layout).
///
/// The simulator's functional pass only needs presence/absence plus enough
/// metadata to classify prefetch usefulness, so lines carry a block tag, an
/// LRU stamp, a prefetch bit, and the fill-completion cycle — each kept in
/// its own contiguous array: packed tags for the lookup scan, recency
/// stamps for the victim min-scan, and packed fill info touched only on
/// hit/fill.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::{Block, Cache, CacheConfig, LookupResult};
///
/// let mut c = Cache::new(CacheConfig::new(16, 2, 1));
/// assert_eq!(c.demand_access(Block(7)), LookupResult::Miss);
/// c.fill(Block(7), false, 0);
/// assert!(matches!(c.demand_access(Block(7)), LookupResult::Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    level: CacheLevel,
    /// The kernel tier the tag and victim scans dispatch to, captured at
    /// construction.
    tier: KernelTier,
    /// Packed `(block << 1) | valid` words, set-major: line `w` of set `s`
    /// lives at `s * ways + w`. The only array the lookup scan touches.
    tags: Box<[u64]>,
    /// Recency stamps, indexed like `tags`; larger = more recently used.
    /// Invariant: invalid lines hold `0`, valid lines hold `>= 1` (the
    /// tick counter pre-increments), so the victim scan never needs the
    /// tag array to rank invalid lines first.
    lru: Box<[u64]>,
    /// `(fill_ready_cycle << 1) | prefetched` per line, indexed like
    /// `tags`; read on hits, rewritten on fills.
    fill_info: Box<[u64]>,
    /// `sets - 1` when the set count is a power of two (bitmask fast
    /// path); unused otherwise.
    set_mask: u64,
    /// Whether `set_mask` is valid.
    pow2_sets: bool,
    stats: CacheStats,
    tick: u64,
    /// Hit/miss totals already published to telemetry, so
    /// [`Cache::flush_telemetry`] emits deltas and repeated flushes stay
    /// correct. The hot path only bumps `stats`; the recorder round trips
    /// happen once per replay instead of once per access.
    flushed_hits: u64,
    flushed_misses: u64,
}

impl Cache {
    /// Creates an empty, unlabeled cache with the given geometry (no
    /// telemetry). Simulator levels use [`Cache::labeled`].
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        Cache::labeled(config, CacheLevel::Unlabeled)
    }

    /// Creates an empty cache that attributes `sim.<level>.{hits,misses}`
    /// telemetry to this level: [`Cache::demand_access`] tallies into the
    /// stats fields and [`Cache::flush_telemetry`] publishes the totals.
    /// Scans dispatch to the process-wide [`accel::active_tier`].
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn labeled(config: CacheConfig, level: CacheLevel) -> Self {
        Cache::with_tier(config, level, accel::active_tier())
    }

    /// Creates an empty cache with an explicit [`KernelTier`] for its tag
    /// and victim scans. The tiers are bit-identical (see the
    /// `pathfinder-accel` contract), so this exists for tier-pinning tests
    /// and benchmarks — production code should call [`Cache::new`] or
    /// [`Cache::labeled`], which capture the detected tier.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero, or if `tier` is not supported
    /// on this host (`tier.supported()` is false) — running SIMD kernels
    /// without their CPU feature would be undefined behaviour, so
    /// construction refuses.
    pub fn with_tier(config: CacheConfig, level: CacheLevel, tier: KernelTier) -> Self {
        assert!(
            config.sets > 0 && config.ways > 0,
            "cache must be non-empty"
        );
        assert!(
            tier.supported(),
            "kernel tier {:?} is not supported on this host",
            tier
        );
        let lines = config.sets * config.ways;
        Cache {
            config,
            level,
            tier,
            tags: vec![TAG_INVALID; lines].into_boxed_slice(),
            lru: vec![0; lines].into_boxed_slice(),
            fill_info: vec![0; lines].into_boxed_slice(),
            set_mask: (config.sets as u64).wrapping_sub(1),
            pow2_sets: config.sets.is_power_of_two(),
            stats: CacheStats::default(),
            tick: 0,
            flushed_hits: 0,
            flushed_misses: 0,
        }
    }

    /// The hierarchy level this cache is labeled as.
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Maps a block to its set: a bitmask when the set count is a power of
    /// two, modulo otherwise (identical results where both apply).
    #[inline]
    fn set_index(&self, block: Block) -> usize {
        if self.pow2_sets {
            (block.0 & self.set_mask) as usize
        } else {
            (block.0 % self.config.sets as u64) as usize
        }
    }

    /// First line index of the block's set.
    #[inline]
    fn set_base(&self, block: Block) -> usize {
        self.set_index(block) * self.config.ways
    }

    /// The kernel tier this cache's scans dispatch to.
    pub fn kernel_tier(&self) -> KernelTier {
        self.tier
    }

    /// Scans the block's set; returns the line index on a match. Valid tags
    /// are packed odd and invalid lines hold the even `TAG_INVALID`, so the
    /// packed needle can never alias an invalid line — one dense equality
    /// scan covers both the tag match and the valid check.
    #[inline]
    fn find(&self, block: Block) -> Option<usize> {
        let base = self.set_base(block);
        let packed = pack_tag(block);
        accel::find_eq_u64(self.tier, &self.tags[base..base + self.config.ways], packed)
            .map(|w| base + w)
    }

    /// Performs a demand access. On a hit the line becomes MRU and loses its
    /// prefetch bit (counting a useful prefetch the first time).
    pub fn demand_access(&mut self, block: Block) -> LookupResult {
        self.tick += 1;
        if let Some(idx) = self.find(block) {
            self.lru[idx] = self.tick;
            let info = self.fill_info[idx];
            let first = info & 1 == 1;
            if first {
                self.fill_info[idx] = info & !1;
                self.stats.useful_prefetches += 1;
            }
            self.stats.hits += 1;
            return LookupResult::Hit {
                first_demand_to_prefetch: first,
                fill_ready_cycle: info >> 1,
            };
        }
        self.stats.misses += 1;
        LookupResult::Miss
    }

    /// Publishes `sim.<level>.{hits,misses}` deltas accumulated since the
    /// previous flush. The counter totals are bit-identical to recording
    /// per access (counters are order-insensitive sums), but the demand
    /// path pays a plain field increment instead of a recorder lookup.
    /// Counters that did not move — and unlabeled caches — emit nothing,
    /// preserving the "absent, not zero" snapshot semantics.
    pub fn flush_telemetry(&mut self) {
        if !telemetry::enabled() {
            return;
        }
        let hit_delta = self.stats.hits - self.flushed_hits;
        if hit_delta > 0 {
            if let Some(metric) = self.level.hit_metric() {
                telemetry::counter!(metric, hit_delta);
            }
        }
        let miss_delta = self.stats.misses - self.flushed_misses;
        if miss_delta > 0 {
            if let Some(metric) = self.level.miss_metric() {
                telemetry::counter!(metric, miss_delta);
            }
        }
        self.flushed_hits = self.stats.hits;
        self.flushed_misses = self.stats.misses;
    }

    /// Checks presence without updating LRU, stats, or prefetch bits.
    #[inline]
    pub fn probe(&self, block: Block) -> bool {
        self.find(block).is_some()
    }

    /// Fills `block` into the cache, evicting the LRU line if needed.
    ///
    /// `prefetched` marks the fill as speculative; `ready_cycle` records when
    /// the data actually arrives (used to charge partial latency to demands
    /// that hit a still-in-flight prefetch). Returns the evicted block, if a
    /// valid line was displaced.
    ///
    /// A refill of an already-present line refreshes the line's metadata,
    /// not just its LRU stamp: a *demand* refill clears the prefetch bit
    /// and replaces `fill_ready_cycle` with the new fill's arrival, so a
    /// demand fill landing on a resident in-flight-prefetch line stops
    /// charging the old late-prefetch wait on later hits. (The superseded
    /// prefetch is classified neither useful nor useless — it never served
    /// a demand access, and it is not being evicted.) A *prefetch* refill
    /// of a resident line adds no new speculative data and only refreshes
    /// the LRU stamp.
    pub fn fill(&mut self, block: Block, prefetched: bool, ready_cycle: u64) -> Option<Block> {
        self.tick += 1;
        let tick = self.tick;

        if let Some(idx) = self.find(block) {
            self.lru[idx] = tick;
            if !prefetched {
                self.fill_info[idx] = pack_fill_info(ready_cycle, false);
            }
            return None;
        }

        self.fill_victim(block, prefetched, ready_cycle, tick)
    }

    /// [`Cache::fill`] for a block the caller has just proven absent (a
    /// demand fill directly after a miss at this level, or a prefetch fill
    /// behind a failed residency probe), skipping the residency re-scan.
    /// Tick evolution and victim choice are identical to `fill`, so the
    /// replay engine's use of this path stays bit-identical to calling
    /// `fill` — the engine-equivalence suite pins that.
    pub(crate) fn fill_absent(
        &mut self,
        block: Block,
        prefetched: bool,
        ready_cycle: u64,
    ) -> Option<Block> {
        debug_assert!(self.find(block).is_none(), "fill_absent on resident block");
        self.tick += 1;
        let tick = self.tick;
        self.fill_victim(block, prefetched, ready_cycle, tick)
    }

    /// Shared victim-selection tail of [`Cache::fill`]/[`Cache::fill_absent`].
    fn fill_victim(
        &mut self,
        block: Block,
        prefetched: bool,
        ready_cycle: u64,
        tick: u64,
    ) -> Option<Block> {
        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let base = self.set_base(block);
        // Victim: first invalid line if any, else the LRU line. Invalid
        // lines hold stamp 0 and valid lines hold >= 1 (struct invariant),
        // so both cases are one dense min-scan of the stamp array — no tag
        // reads, no branches on validity. `min_index_u64` keeps the *first*
        // minimum on every tier, matching the reference cache's
        // `min_by_key`.
        let victim_way = accel::min_index_u64(self.tier, &self.lru[base..base + self.config.ways]);
        let victim = base + victim_way;
        let evicted = if self.tags[victim] != TAG_INVALID {
            if self.fill_info[victim] & 1 == 1 {
                self.stats.useless_evictions += 1;
            }
            Some(Block(self.tags[victim] >> 1))
        } else {
            None
        };
        self.tags[victim] = pack_tag(block);
        self.lru[victim] = tick;
        self.fill_info[victim] = pack_fill_info(ready_cycle, prefetched);
        evicted
    }

    /// Invalidates `block` if present, returning whether it was found.
    pub fn invalidate(&mut self, block: Block) -> bool {
        if let Some(idx) = self.find(block) {
            self.tags[idx] = TAG_INVALID;
            // Restore the invariant that invalid lines rank as stamp 0 in
            // the victim scan.
            self.lru[idx] = 0;
            self.fill_info[idx] = 0;
            return true;
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.tags.iter().filter(|&&t| t != TAG_INVALID).count()
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(TAG_INVALID);
        self.lru.fill(0);
        self.fill_info.fill(0);
        self.stats = CacheStats::default();
        self.tick = 0;
        self.flushed_hits = 0;
        self.flushed_misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways
        Cache::new(CacheConfig::new(2, 2, 1))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.demand_access(Block(4)), LookupResult::Miss);
        c.fill(Block(4), false, 0);
        assert!(matches!(
            c.demand_access(Block(4)),
            LookupResult::Hit {
                first_demand_to_prefetch: false,
                ..
            }
        ));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Blocks 0,2,4 all map to set 0.
        c.fill(Block(0), false, 0);
        c.fill(Block(2), false, 0);
        // Touch 0 so 2 becomes LRU.
        c.demand_access(Block(0));
        let evicted = c.fill(Block(4), false, 0);
        assert_eq!(evicted, Some(Block(2)));
        assert!(c.probe(Block(0)));
        assert!(c.probe(Block(4)));
        assert!(!c.probe(Block(2)));
    }

    #[test]
    fn useful_prefetch_counted_once() {
        let mut c = tiny();
        c.fill(Block(6), true, 100);
        assert_eq!(c.stats().prefetch_fills, 1);
        let r = c.demand_access(Block(6));
        assert_eq!(
            r,
            LookupResult::Hit {
                first_demand_to_prefetch: true,
                fill_ready_cycle: 100
            }
        );
        // Second touch is an ordinary hit.
        assert!(matches!(
            c.demand_access(Block(6)),
            LookupResult::Hit {
                first_demand_to_prefetch: false,
                ..
            }
        ));
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn useless_prefetch_eviction_counted() {
        let mut c = tiny();
        c.fill(Block(0), true, 0);
        c.fill(Block(2), false, 0);
        c.fill(Block(4), false, 0); // evicts Block(0), never demanded
        assert_eq!(c.stats().useless_evictions, 1);
        assert_eq!(c.stats().useful_prefetches, 0);
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(Block(8), false, 0);
        c.fill(Block(8), false, 0);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn demand_refill_clears_stale_prefetch_metadata() {
        // Regression (PR 5): a refill used to refresh only the LRU stamp,
        // so a demand fill landing on a resident in-flight-prefetch line
        // kept the stale `fill_ready_cycle` and `prefetched` bit — every
        // later hit re-charged the old late-prefetch wait.
        let mut c = tiny();
        c.fill(Block(6), true, 1_000); // prefetch, data arrives at 1000
        c.fill(Block(6), false, 0); // demand fill supersedes it
        assert_eq!(
            c.demand_access(Block(6)),
            LookupResult::Hit {
                first_demand_to_prefetch: false,
                fill_ready_cycle: 0
            }
        );
        // The superseded prefetch is classified neither useful nor useless.
        assert_eq!(c.stats().useful_prefetches, 0);
        assert_eq!(c.stats().useless_evictions, 0);
    }

    #[test]
    fn prefetch_refill_of_resident_line_only_refreshes_lru() {
        let mut c = tiny();
        c.fill(Block(0), false, 0); // demand line
        c.fill(Block(0), true, 1_000); // prefetch refill: no new data
        assert_eq!(
            c.demand_access(Block(0)),
            LookupResult::Hit {
                first_demand_to_prefetch: false,
                fill_ready_cycle: 0
            }
        );
        // Not counted as a prefetch fill either.
        assert_eq!(c.stats().prefetch_fills, 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(Block(3), false, 0);
        assert!(c.invalidate(Block(3)));
        assert!(!c.probe(Block(3)));
        assert!(!c.invalidate(Block(3)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.fill(Block(1), true, 0);
        c.demand_access(Block(1));
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(*c.stats(), CacheStats::default());
    }

    #[test]
    fn new_is_unlabeled_and_labeled_carries_its_level() {
        assert_eq!(tiny().level(), CacheLevel::Unlabeled);
        let c = Cache::labeled(CacheConfig::new(2, 2, 1), CacheLevel::Llc);
        assert_eq!(c.level(), CacheLevel::Llc);
        // Label choice never affects functional behaviour or stats.
        let mut a = Cache::labeled(CacheConfig::new(2, 2, 1), CacheLevel::L1d);
        let mut b = tiny();
        for blk in [0u64, 2, 4, 0, 2] {
            a.fill(Block(blk), false, 0);
            b.fill(Block(blk), false, 0);
            assert_eq!(a.demand_access(Block(blk)), b.demand_access(Block(blk)));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn probe_does_not_touch_lru_or_stats() {
        let mut c = tiny();
        c.fill(Block(0), false, 0);
        c.fill(Block(2), false, 0);
        let before = *c.stats();
        assert!(c.probe(Block(0)));
        assert_eq!(*c.stats(), before);
        // Probing 0 must NOT have refreshed it: filling a conflicting block
        // should still evict the true LRU, which is 0.
        let evicted = c.fill(Block(4), false, 0);
        assert_eq!(evicted, Some(Block(0)));
    }

    #[test]
    fn non_power_of_two_sets_use_modulo_mapping() {
        // 3 sets: blocks 1, 4, 7 share set 1; block 2 does not.
        let mut c = Cache::new(CacheConfig::new(3, 2, 1));
        c.fill(Block(1), false, 0);
        c.fill(Block(4), false, 0);
        let evicted = c.fill(Block(7), false, 0);
        assert_eq!(evicted, Some(Block(1)), "set conflict must evict LRU");
        c.fill(Block(2), false, 0);
        assert_eq!(c.occupancy(), 3);
        assert!(c.probe(Block(4)) && c.probe(Block(7)) && c.probe(Block(2)));
    }

    #[test]
    fn pow2_mask_and_modulo_agree() {
        // For a power-of-two set count the bitmask fast path must place
        // blocks exactly where the modulo fallback would.
        let cfg = CacheConfig::new(8, 1, 1);
        let mut c = Cache::new(cfg);
        for blk in [0u64, 7, 8, 9, 15, 16, 1_000_003] {
            c.fill(Block(blk), false, 0);
            assert!(c.probe(Block(blk)));
            // A conflicting block (same residue mod 8) evicts it (1 way).
            let evicted = c.fill(Block(blk + 8 * 5), false, 0);
            assert_eq!(evicted, Some(Block(blk)));
        }
    }

    #[test]
    fn scalar_and_active_tiers_replay_identically() {
        // Scalar construction always succeeds, `new` captures the active
        // tier, and a mixed fill/access/invalidate tape produces identical
        // results and stats on both — the bit-identity contract.
        let cfg = CacheConfig::new(4, 3, 1); // 3 ways: SIMD tail exercised
        let mut simd = Cache::new(cfg);
        let mut scalar = Cache::with_tier(cfg, CacheLevel::Unlabeled, KernelTier::Scalar);
        assert_eq!(scalar.kernel_tier(), KernelTier::Scalar);
        assert_eq!(simd.kernel_tier(), accel::active_tier());
        for step in 0u64..200 {
            let blk = Block((step * 7) % 23);
            match step % 4 {
                0 => assert_eq!(
                    simd.fill(blk, step % 8 == 0, step),
                    scalar.fill(blk, step % 8 == 0, step)
                ),
                1 | 2 => assert_eq!(simd.demand_access(blk), scalar.demand_access(blk)),
                _ => assert_eq!(simd.invalidate(blk), scalar.invalidate(blk)),
            }
        }
        assert_eq!(simd.stats(), scalar.stats());
        assert_eq!(simd.occupancy(), scalar.occupancy());
    }
}
