//! A set-associative cache with LRU replacement and prefetch-bit tracking.

use pathfinder_telemetry as telemetry;

use crate::addr::Block;
use crate::config::CacheConfig;

/// Which level of the hierarchy a [`Cache`] models; labels the cache's own
/// telemetry so hit/miss counters are recorded where they happen instead of
/// on-behalf by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// First-level data cache — records `sim.l1d.{hits,misses}`.
    L1d,
    /// Second-level cache — records `sim.l2.{hits,misses}`.
    L2,
    /// Last-level cache — records `sim.llc.{hits,misses}`.
    Llc,
    /// No level label; telemetry stays silent ([`Cache::new`] default for
    /// standalone caches in tests and examples).
    Unlabeled,
}

impl CacheLevel {
    fn hit_metric(self) -> Option<&'static str> {
        match self {
            CacheLevel::L1d => Some("sim.l1d.hits"),
            CacheLevel::L2 => Some("sim.l2.hits"),
            CacheLevel::Llc => Some("sim.llc.hits"),
            CacheLevel::Unlabeled => None,
        }
    }

    fn miss_metric(self) -> Option<&'static str> {
        match self {
            CacheLevel::L1d => Some("sim.l1d.misses"),
            CacheLevel::L2 => Some("sim.l2.misses"),
            CacheLevel::Llc => Some("sim.llc.misses"),
            CacheLevel::Unlabeled => None,
        }
    }
}

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// Block present; was it originally brought in by a prefetch and never
    /// yet demanded, and at what cycle did its fill complete?
    Hit {
        /// True if this is the first demand touch to a prefetched block.
        first_demand_to_prefetch: bool,
        /// Cycle at which the block's fill completed (0 for demand fills in
        /// the functional pass).
        fill_ready_cycle: u64,
    },
    /// Block absent.
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    block: Block,
    valid: bool,
    /// LRU stamp; larger = more recently used.
    lru: u64,
    /// Filled by a prefetch and not yet touched by a demand access.
    prefetched: bool,
    /// Cycle at which the fill completes (for in-flight prefetch hits).
    fill_ready_cycle: u64,
}

impl Line {
    const INVALID: Line = Line {
        block: Block(0),
        valid: false,
        lru: 0,
        prefetched: false,
        fill_ready_cycle: 0,
    };
}

/// Statistics kept by each cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups that hit.
    pub hits: u64,
    /// Demand lookups that missed.
    pub misses: u64,
    /// Blocks filled by prefetch.
    pub prefetch_fills: u64,
    /// Prefetched blocks that later served a demand access.
    pub useful_prefetches: u64,
    /// Prefetched blocks evicted without ever serving a demand access.
    pub useless_evictions: u64,
}

/// A single set-associative cache level.
///
/// The simulator's functional pass only needs presence/absence plus enough
/// metadata to classify prefetch usefulness, so lines carry a block tag, an
/// LRU stamp, a prefetch bit, and the fill-completion cycle.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::{Block, Cache, CacheConfig, LookupResult};
///
/// let mut c = Cache::new(CacheConfig::new(16, 2, 1));
/// assert_eq!(c.demand_access(Block(7), 0), LookupResult::Miss);
/// c.fill(Block(7), false, 0);
/// assert!(matches!(c.demand_access(Block(7), 1), LookupResult::Hit { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    level: CacheLevel,
    sets: Vec<Vec<Line>>,
    stats: CacheStats,
    tick: u64,
}

impl Cache {
    /// Creates an empty, unlabeled cache with the given geometry (no
    /// telemetry). Simulator levels use [`Cache::labeled`].
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(config: CacheConfig) -> Self {
        Cache::labeled(config, CacheLevel::Unlabeled)
    }

    /// Creates an empty cache that records `sim.<level>.{hits,misses}`
    /// telemetry from inside [`Cache::demand_access`].
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn labeled(config: CacheConfig, level: CacheLevel) -> Self {
        assert!(
            config.sets > 0 && config.ways > 0,
            "cache must be non-empty"
        );
        Cache {
            config,
            level,
            sets: vec![vec![Line::INVALID; config.ways]; config.sets],
            stats: CacheStats::default(),
            tick: 0,
        }
    }

    /// The hierarchy level this cache is labeled as.
    pub fn level(&self) -> CacheLevel {
        self.level
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_index(&self, block: Block) -> usize {
        (block.0 % self.config.sets as u64) as usize
    }

    /// Performs a demand access. On a hit the line becomes MRU and loses its
    /// prefetch bit (counting a useful prefetch the first time).
    pub fn demand_access(&mut self, block: Block, now: u64) -> LookupResult {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(block);
        let _ = now;
        for line in &mut self.sets[set] {
            if line.valid && line.block == block {
                line.lru = tick;
                let first = line.prefetched;
                if first {
                    line.prefetched = false;
                    self.stats.useful_prefetches += 1;
                }
                self.stats.hits += 1;
                if let Some(metric) = self.level.hit_metric() {
                    telemetry::counter!(metric, 1);
                }
                return LookupResult::Hit {
                    first_demand_to_prefetch: first,
                    fill_ready_cycle: line.fill_ready_cycle,
                };
            }
        }
        self.stats.misses += 1;
        if let Some(metric) = self.level.miss_metric() {
            telemetry::counter!(metric, 1);
        }
        LookupResult::Miss
    }

    /// Checks presence without updating LRU, stats, or prefetch bits.
    pub fn probe(&self, block: Block) -> bool {
        let set = self.set_index(block);
        self.sets[set].iter().any(|l| l.valid && l.block == block)
    }

    /// Fills `block` into the cache, evicting the LRU line if needed.
    ///
    /// `prefetched` marks the fill as speculative; `ready_cycle` records when
    /// the data actually arrives (used to charge partial latency to demands
    /// that hit a still-in-flight prefetch). Returns the evicted block, if a
    /// valid line was displaced.
    pub fn fill(&mut self, block: Block, prefetched: bool, ready_cycle: u64) -> Option<Block> {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_index(block);

        // Refill of a present line just refreshes metadata.
        if let Some(line) = self.sets[set]
            .iter_mut()
            .find(|l| l.valid && l.block == block)
        {
            line.lru = tick;
            return None;
        }

        if prefetched {
            self.stats.prefetch_fills += 1;
        }
        let victim_idx = self.sets[set]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map(|(i, _)| i)
            .expect("non-empty set");
        let victim = &mut self.sets[set][victim_idx];
        let evicted = if victim.valid {
            if victim.prefetched {
                self.stats.useless_evictions += 1;
            }
            Some(victim.block)
        } else {
            None
        };
        *victim = Line {
            block,
            valid: true,
            lru: tick,
            prefetched,
            fill_ready_cycle: ready_cycle,
        };
        evicted
    }

    /// Invalidates `block` if present, returning whether it was found.
    pub fn invalidate(&mut self, block: Block) -> bool {
        let set = self.set_index(block);
        for line in &mut self.sets[set] {
            if line.valid && line.block == block {
                *line = Line::INVALID;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.sets
            .iter()
            .map(|s| s.iter().filter(|l| l.valid).count())
            .sum()
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        for set in &mut self.sets {
            set.fill(Line::INVALID);
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways
        Cache::new(CacheConfig::new(2, 2, 1))
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = tiny();
        assert_eq!(c.demand_access(Block(4), 0), LookupResult::Miss);
        c.fill(Block(4), false, 0);
        assert!(matches!(
            c.demand_access(Block(4), 1),
            LookupResult::Hit {
                first_demand_to_prefetch: false,
                ..
            }
        ));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Blocks 0,2,4 all map to set 0.
        c.fill(Block(0), false, 0);
        c.fill(Block(2), false, 0);
        // Touch 0 so 2 becomes LRU.
        c.demand_access(Block(0), 0);
        let evicted = c.fill(Block(4), false, 0);
        assert_eq!(evicted, Some(Block(2)));
        assert!(c.probe(Block(0)));
        assert!(c.probe(Block(4)));
        assert!(!c.probe(Block(2)));
    }

    #[test]
    fn useful_prefetch_counted_once() {
        let mut c = tiny();
        c.fill(Block(6), true, 100);
        assert_eq!(c.stats().prefetch_fills, 1);
        let r = c.demand_access(Block(6), 150);
        assert_eq!(
            r,
            LookupResult::Hit {
                first_demand_to_prefetch: true,
                fill_ready_cycle: 100
            }
        );
        // Second touch is an ordinary hit.
        assert!(matches!(
            c.demand_access(Block(6), 151),
            LookupResult::Hit {
                first_demand_to_prefetch: false,
                ..
            }
        ));
        assert_eq!(c.stats().useful_prefetches, 1);
    }

    #[test]
    fn useless_prefetch_eviction_counted() {
        let mut c = tiny();
        c.fill(Block(0), true, 0);
        c.fill(Block(2), false, 0);
        c.fill(Block(4), false, 0); // evicts Block(0), never demanded
        assert_eq!(c.stats().useless_evictions, 1);
        assert_eq!(c.stats().useful_prefetches, 0);
    }

    #[test]
    fn refill_does_not_duplicate() {
        let mut c = tiny();
        c.fill(Block(8), false, 0);
        c.fill(Block(8), false, 0);
        assert_eq!(c.occupancy(), 1);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = tiny();
        c.fill(Block(3), false, 0);
        assert!(c.invalidate(Block(3)));
        assert!(!c.probe(Block(3)));
        assert!(!c.invalidate(Block(3)));
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = tiny();
        c.fill(Block(1), true, 0);
        c.demand_access(Block(1), 0);
        c.reset();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(*c.stats(), CacheStats::default());
    }

    #[test]
    fn new_is_unlabeled_and_labeled_carries_its_level() {
        assert_eq!(tiny().level(), CacheLevel::Unlabeled);
        let c = Cache::labeled(CacheConfig::new(2, 2, 1), CacheLevel::Llc);
        assert_eq!(c.level(), CacheLevel::Llc);
        // Label choice never affects functional behaviour or stats.
        let mut a = Cache::labeled(CacheConfig::new(2, 2, 1), CacheLevel::L1d);
        let mut b = tiny();
        for blk in [0u64, 2, 4, 0, 2] {
            a.fill(Block(blk), false, 0);
            b.fill(Block(blk), false, 0);
            assert_eq!(
                a.demand_access(Block(blk), 0),
                b.demand_access(Block(blk), 0)
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn probe_does_not_touch_lru_or_stats() {
        let mut c = tiny();
        c.fill(Block(0), false, 0);
        c.fill(Block(2), false, 0);
        let before = *c.stats();
        assert!(c.probe(Block(0)));
        assert_eq!(*c.stats(), before);
        // Probing 0 must NOT have refreshed it: filling a conflicting block
        // should still evict the true LRU, which is 0.
        let evicted = c.fill(Block(4), false, 0);
        assert_eq!(evicted, Some(Block(0)));
    }
}
