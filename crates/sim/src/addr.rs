//! Physical/virtual address arithmetic in block and page units.
//!
//! The entire prefetching literature this crate reproduces works in units of
//! 64-byte cache blocks inside 4 KiB pages, so a page holds 64 blocks and a
//! within-page block delta always fits in `-63..=63` (the paper's default
//! delta range `D = 127`).

use serde::{Deserialize, Serialize};

/// Size of a cache block in bytes.
pub const BLOCK_SIZE: u64 = 64;
/// Size of a virtual-memory page in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// Number of cache blocks per page (`PAGE_SIZE / BLOCK_SIZE`).
pub const BLOCKS_PER_PAGE: u64 = PAGE_SIZE / BLOCK_SIZE;

/// A byte-granularity memory address.
///
/// `Addr` is a transparent newtype over `u64` ([C-NEWTYPE]): using it instead
/// of a bare integer keeps byte addresses, block numbers, and page numbers
/// statically distinct throughout the workspace.
///
/// # Examples
///
/// ```
/// use pathfinder_sim::Addr;
///
/// let a = Addr::new(0x1_0040);
/// assert_eq!(a.block().0, 0x1_0040 / 64);
/// assert_eq!(a.page().0, 0x1_0040 / 4096);
/// assert_eq!(a.page_offset_blocks(), 1);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

/// A cache-block number (byte address divided by [`BLOCK_SIZE`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Block(pub u64);

/// A page number (byte address divided by [`PAGE_SIZE`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Page(pub u64);

impl Addr {
    /// Creates an address from a raw byte value.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache block this address falls in.
    #[inline]
    pub const fn block(self) -> Block {
        Block(self.0 / BLOCK_SIZE)
    }

    /// The page this address falls in.
    #[inline]
    pub const fn page(self) -> Page {
        Page(self.0 / PAGE_SIZE)
    }

    /// The block offset within the page, in `0..BLOCKS_PER_PAGE`.
    #[inline]
    pub const fn page_offset_blocks(self) -> u8 {
        ((self.0 % PAGE_SIZE) / BLOCK_SIZE) as u8
    }

    /// Rounds the address down to its block base.
    #[inline]
    pub const fn block_base(self) -> Addr {
        Addr(self.0 / BLOCK_SIZE * BLOCK_SIZE)
    }
}

impl Block {
    /// The byte address of the first byte in this block.
    #[inline]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 * BLOCK_SIZE)
    }

    /// The page containing this block.
    #[inline]
    pub const fn page(self) -> Page {
        Page(self.0 / BLOCKS_PER_PAGE)
    }

    /// The block offset within its page, in `0..BLOCKS_PER_PAGE`.
    #[inline]
    pub const fn page_offset(self) -> u8 {
        (self.0 % BLOCKS_PER_PAGE) as u8
    }

    /// Signed within-address-space delta to `other`, in blocks.
    ///
    /// Unlike [`Block::page_delta`], this can cross page boundaries.
    #[inline]
    pub fn delta(self, other: Block) -> i64 {
        other.0 as i64 - self.0 as i64
    }

    /// Signed delta to `other` if both blocks live in the same page.
    ///
    /// Returns `None` when the two blocks are in different pages; a same-page
    /// delta always fits in `-(BLOCKS_PER_PAGE-1)..=BLOCKS_PER_PAGE-1`.
    #[inline]
    pub fn page_delta(self, other: Block) -> Option<i8> {
        if self.page() == other.page() {
            Some(other.page_offset() as i8 - self.page_offset() as i8)
        } else {
            None
        }
    }

    /// The block at signed offset `delta` from this one, saturating at zero.
    #[inline]
    pub fn offset_by(self, delta: i64) -> Block {
        Block(self.0.saturating_add_signed(delta))
    }
}

impl Page {
    /// The first block of this page.
    #[inline]
    pub const fn first_block(self) -> Block {
        Block(self.0 * BLOCKS_PER_PAGE)
    }

    /// The block at `offset` within this page.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= BLOCKS_PER_PAGE`.
    #[inline]
    pub fn block_at(self, offset: u8) -> Block {
        assert!(
            (offset as u64) < BLOCKS_PER_PAGE,
            "block offset {offset} out of page range"
        );
        Block(self.0 * BLOCKS_PER_PAGE + offset as u64)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

impl std::fmt::Display for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

impl std::fmt::Display for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

impl std::fmt::Display for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_decomposition() {
        let a = Addr::new(PAGE_SIZE * 3 + BLOCK_SIZE * 5 + 17);
        assert_eq!(a.page(), Page(3));
        assert_eq!(a.page_offset_blocks(), 5);
        assert_eq!(a.block(), Block(3 * BLOCKS_PER_PAGE + 5));
        assert_eq!(a.block_base(), Addr::new(PAGE_SIZE * 3 + BLOCK_SIZE * 5));
    }

    #[test]
    fn same_page_delta() {
        let p = Page(10);
        let b1 = p.block_at(16);
        let b2 = p.block_at(22);
        assert_eq!(b1.page_delta(b2), Some(6));
        assert_eq!(b2.page_delta(b1), Some(-6));
    }

    #[test]
    fn cross_page_delta_is_none() {
        let b1 = Page(10).block_at(63);
        let b2 = Page(11).block_at(0);
        assert_eq!(b1.page_delta(b2), None);
        assert_eq!(b1.delta(b2), 1);
    }

    #[test]
    fn offset_by_saturates() {
        assert_eq!(Block(5).offset_by(-10), Block(0));
        assert_eq!(Block(5).offset_by(3), Block(8));
    }

    #[test]
    fn block_base_roundtrip() {
        let b = Block(12345);
        assert_eq!(b.base_addr().block(), b);
        assert_eq!(Page(7).block_at(0), Page(7).first_block());
    }

    #[test]
    #[should_panic(expected = "out of page range")]
    fn block_at_rejects_large_offset() {
        let _ = Page(0).block_at(64);
    }

    #[test]
    fn delta_range_fits_page() {
        // The paper's default delta range comes from 4KB pages of 64B blocks.
        assert_eq!(BLOCKS_PER_PAGE, 64);
        let lo = Page(0).block_at(0);
        let hi = Page(0).block_at(63);
        assert_eq!(lo.page_delta(hi), Some(63));
        assert_eq!(hi.page_delta(lo), Some(-63));
    }
}
