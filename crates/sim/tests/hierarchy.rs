//! Integration tests of the full memory hierarchy's timing behaviour.

use pathfinder_sim::{
    Block, DramConfig, DramModel, MemoryAccess, PrefetchRequest, SimConfig, Simulator, Trace,
};

fn trace_of_blocks(blocks: &[u64], gap: u64) -> Trace {
    blocks
        .iter()
        .enumerate()
        .map(|(i, &b)| MemoryAccess::new(i as u64 * gap, 0x400, b * 64))
        .collect()
}

#[test]
fn l1_l2_llc_latency_ladder() {
    // Touch a block, then re-touch after evicting it from successively
    // deeper levels; cycle cost must rise with depth.
    let cfg = SimConfig::default();

    // Working set sized to fit L2 but not L1D (48KB): 2000 blocks = 128KB.
    let l2_resident: Vec<u64> = (0..2000).chain(0..2000).collect();
    let r2 = Simulator::new(cfg).run(&trace_of_blocks(&l2_resident, 4), &[]);
    // Second pass hits L2 (some L1 hits at the tail).
    assert!(r2.l2_hits > 1000, "L2 should serve the second pass: {r2:?}");

    // Working set sized to fit LLC (2MB) but not L2 (512KB): 20000 blocks.
    let llc_resident: Vec<u64> = (0..20_000).chain(0..20_000).collect();
    let r3 = Simulator::new(cfg).run(&trace_of_blocks(&llc_resident, 4), &[]);
    assert!(
        r3.llc_hits > 10_000,
        "LLC should serve the second pass: hits {}",
        r3.llc_hits
    );
}

#[test]
fn second_pass_over_llc_sized_set_is_faster() {
    let cfg = SimConfig::default();
    let set: Vec<u64> = (0..10_000).collect();
    let once = Simulator::new(cfg).run(&trace_of_blocks(&set, 4), &[]);
    let twice_blocks: Vec<u64> = set.iter().chain(set.iter()).copied().collect();
    let twice = Simulator::new(cfg).run(&trace_of_blocks(&twice_blocks, 4), &[]);
    // Per-load cycle cost must drop on the cached second pass.
    let cost_once = once.cycles as f64 / once.loads as f64;
    let cost_twice = twice.cycles as f64 / twice.loads as f64;
    assert!(
        cost_twice < cost_once * 0.75,
        "caching should amortize: {cost_once:.1} vs {cost_twice:.1} cycles/load"
    );
}

#[test]
fn mshr_limit_caps_memory_level_parallelism() {
    let mut narrow = SimConfig::default();
    narrow.core.mshrs = 1;
    let wide = SimConfig::default();

    // Independent misses to distinct pages: parallelism matters.
    let blocks: Vec<u64> = (0..3000).map(|i| i * 64 + 7).collect();
    let t = trace_of_blocks(&blocks, 2);
    let r_narrow = Simulator::new(narrow).run(&t, &[]);
    let r_wide = Simulator::new(wide).run(&t, &[]);
    assert!(
        r_wide.ipc() > r_narrow.ipc() * 1.5,
        "MSHRs gate MLP: wide {} vs narrow {}",
        r_wide.ipc(),
        r_narrow.ipc()
    );
}

#[test]
fn prefetch_shedding_under_demand_pressure() {
    let mut dram = DramModel::new(DramConfig::default());
    // Congest banks 0..8 with row-conflicting demand pairs (the second
    // request keeps each bank busy far past `now`)...
    for i in 0..8u64 {
        dram.service(Block(i * 128), 0);
        dram.service(Block((i + 64) * 128), 0); // same bank, different row
    }
    // ...then offer prefetches to those banks at time zero: they must be
    // shed in favour of the demand traffic.
    let mut dropped = 0;
    for i in 0..8u64 {
        if dram.service_prefetch(Block(i * 128 + 1), 0).is_none() {
            dropped += 1;
        }
    }
    assert!(dropped > 0, "busy banks should shed prefetches");
    assert_eq!(dram.stats().prefetches_dropped, dropped);
}

#[test]
fn late_prefetch_never_slower_than_no_prefetch() {
    // A prefetch issued on the same access that demands the next block soon
    // after must never make that demand slower than a raw miss.
    let blocks: Vec<u64> = (0..2000).map(|i| i * 97).collect();
    let t = trace_of_blocks(&blocks, 4);
    let pf: Vec<PrefetchRequest> = t
        .accesses()
        .windows(2)
        .map(|w| PrefetchRequest::new(w[0].instr_id, w[1].block()))
        .collect();
    let plain = Simulator::new(SimConfig::default()).run(&t, &[]);
    let with_pf = Simulator::new(SimConfig::default()).run(&t, &pf);
    assert!(
        with_pf.cycles <= plain.cycles * 102 / 100,
        "late prefetches must not add end-to-end cycles: {} vs {}",
        with_pf.cycles,
        plain.cycles
    );
}

#[test]
fn instruction_gaps_scale_reported_instructions() {
    let blocks: Vec<u64> = (0..500).collect();
    let sparse = trace_of_blocks(&blocks, 100);
    let dense = trace_of_blocks(&blocks, 2);
    assert!(sparse.total_instructions() > dense.total_instructions() * 40);
    let rs = Simulator::new(SimConfig::default()).run(&sparse, &[]);
    let rd = Simulator::new(SimConfig::default()).run(&dense, &[]);
    assert_eq!(rs.loads, rd.loads);
    assert!(rs.instructions > rd.instructions * 40);
}
