//! Property tests pinning the flat structure-of-arrays [`Cache`] to the
//! retained [`ReferenceCache`] over random operation sequences, with
//! explicit coverage of non-power-of-two set counts (the modulo fallback of
//! the set-index fast path) alongside the bitmask-mapped power-of-two
//! geometries the Table 3 configs use.

use proptest::prelude::*;

use pathfinder_sim::{Block, Cache, CacheConfig, ReferenceCache};

/// One cache operation, decoded from packed proptest draws.
#[derive(Debug, Clone, Copy)]
enum Op {
    Demand(u64),
    FillDemand(u64, u64),
    FillPrefetch(u64, u64),
    Invalidate(u64),
    Probe(u64),
}

/// Decodes `(kind, block, cycle)` tuples into operations. Fills dominate
/// the mix so sets actually pressure their ways and evict.
fn decode(ops: &[(u64, u64, u64)]) -> Vec<Op> {
    ops.iter()
        .map(|&(kind, block, cycle)| match kind % 8 {
            0 | 1 => Op::Demand(block),
            2 | 3 => Op::FillDemand(block, cycle),
            4 | 5 => Op::FillPrefetch(block, cycle),
            6 => Op::Invalidate(block),
            _ => Op::Probe(block),
        })
        .collect()
}

/// Drives both caches through `ops`, asserting every observable result
/// matches step by step, then compares the end state. (The vendored
/// proptest stub's `prop_assert!` error type is `String`.)
fn assert_equivalent(config: CacheConfig, ops: &[Op]) -> Result<(), String> {
    let mut flat = Cache::new(config);
    let mut reference = ReferenceCache::new(config);
    for (step, op) in ops.iter().enumerate() {
        match *op {
            Op::Demand(b) => {
                let a = flat.demand_access(Block(b));
                let r = reference.demand_access(Block(b));
                prop_assert_eq!(a, r, "demand_access({}) diverged at step {}", b, step);
            }
            Op::FillDemand(b, cycle) => {
                let a = flat.fill(Block(b), false, cycle);
                let r = reference.fill(Block(b), false, cycle);
                prop_assert_eq!(a, r, "demand fill({}) evicted differently at {}", b, step);
            }
            Op::FillPrefetch(b, cycle) => {
                let a = flat.fill(Block(b), true, cycle);
                let r = reference.fill(Block(b), true, cycle);
                prop_assert_eq!(a, r, "prefetch fill({}) evicted differently at {}", b, step);
            }
            Op::Invalidate(b) => {
                prop_assert_eq!(
                    flat.invalidate(Block(b)),
                    reference.invalidate(Block(b)),
                    "invalidate({}) diverged at step {}",
                    b,
                    step
                );
            }
            Op::Probe(b) => {
                prop_assert_eq!(
                    flat.probe(Block(b)),
                    reference.probe(Block(b)),
                    "probe({}) diverged at step {}",
                    b,
                    step
                );
            }
        }
        prop_assert_eq!(
            flat.occupancy(),
            reference.occupancy(),
            "occupancy diverged"
        );
    }
    prop_assert_eq!(flat.stats(), reference.stats(), "stats diverged at end");

    // Reset restores both to a state equivalent to freshly constructed.
    flat.reset();
    reference.reset();
    prop_assert_eq!(flat.occupancy(), 0);
    prop_assert_eq!(flat.stats(), reference.stats());
    Ok(())
}

proptest! {
    /// Non-power-of-two set counts: the modulo fallback must track the
    /// reference exactly, including eviction order under set pressure.
    #[test]
    fn non_pow2_geometries_match_reference(
        sets in 1usize..48,
        ways in 1usize..8,
        raw_ops in prop::collection::vec((0u64..8, 0u64..96, 0u64..10_000), 1..300),
    ) {
        // Skew toward non-power-of-two by nudging pow2 draws off by one
        // (1 stays 1 — a legal degenerate direct-mapped-column case).
        let sets = if sets.is_power_of_two() && sets > 1 { sets + 1 } else { sets };
        let config = CacheConfig::new(sets, ways, 1);
        let ops = decode(&raw_ops);
        assert_equivalent(config, &ops)?;
    }

    /// Power-of-two set counts: the bitmask fast path must be
    /// indistinguishable from the reference's modulo mapping.
    #[test]
    fn pow2_geometries_match_reference(
        sets_log2 in 0u32..7,
        ways in 1usize..8,
        raw_ops in prop::collection::vec((0u64..8, 0u64..96, 0u64..10_000), 1..300),
    ) {
        let config = CacheConfig::new(1 << sets_log2, ways, 1);
        let ops = decode(&raw_ops);
        assert_equivalent(config, &ops)?;
    }

    /// High-pressure eviction order: a single skinny set so every fill
    /// beyond `ways` distinct blocks must evict, in exactly LRU order.
    #[test]
    fn single_set_eviction_order_matches(
        ways in 1usize..6,
        raw_ops in prop::collection::vec((0u64..8, 0u64..12, 0u64..100), 1..200),
    ) {
        // sets=1 is simultaneously the smallest pow2 AND the modulo path's
        // everything-collides worst case.
        let config = CacheConfig::new(1, ways, 1);
        let ops = decode(&raw_ops);
        assert_equivalent(config, &ops)?;
    }

    /// Non-power-of-two way counts around the SIMD lane width: the tag and
    /// victim scans run 4 `u64` lanes per vector step, so ways like 5 and
    /// 13 leave scalar tails and ways below 4 never enter the vector body.
    /// Every geometry must still match the reference exactly — including
    /// first-minimum victim choice inside the tail.
    #[test]
    fn simd_tail_way_counts_match_reference(
        ways_pick in 0usize..6,
        raw_ops in prop::collection::vec((0u64..8, 0u64..96, 0u64..10_000), 1..300),
    ) {
        // 3: all-tail; 4/8: exact lane multiples; 5/12/13: vector + tail.
        let ways = [3usize, 4, 5, 8, 12, 13][ways_pick];
        let config = CacheConfig::new(4, ways, 1);
        let ops = decode(&raw_ops);
        assert_equivalent(config, &ops)?;
    }
}

/// Deterministic spot check: blocks far above `sets * ways` wrap correctly
/// in both mappings (large tags exercise the packed-tag shift).
#[test]
fn large_block_indices_round_trip() {
    for sets in [3usize, 5, 7, 8, 12, 16, 48] {
        let config = CacheConfig::new(sets, 2, 1);
        let mut flat = Cache::new(config);
        let mut reference = ReferenceCache::new(config);
        for i in 0..200u64 {
            let b = (1 << 40) + i * 977; // scattered high blocks
            assert_eq!(
                flat.fill(Block(b), i % 3 == 0, i),
                reference.fill(Block(b), i % 3 == 0, i),
                "sets={sets} i={i}"
            );
            assert_eq!(flat.probe(Block(b)), reference.probe(Block(b)));
        }
        assert_eq!(flat.stats(), reference.stats(), "sets={sets}");
        assert_eq!(flat.occupancy(), reference.occupancy(), "sets={sets}");
        assert_eq!(flat.occupancy(), sets * 2, "all ways full, sets={sets}");
    }
}
