//! Equivalence of the flat-layout replay engine and the retained
//! pre-rewrite reference engine (`pathfinder_sim::reference`).
//!
//! The rewrite changes only data layout — packed tag words instead of
//! per-set `Vec<Line>`, a fixed-capacity MSHR array instead of a
//! `BinaryHeap`, bitmask set indexing for power-of-two geometries — never
//! arithmetic, so unlike the SNN kernel pair (which agrees up to fp
//! re-association) the two engines must be **bit-identical**: every
//! [`SimReport`] counter and every [`DetailedStats`] counter, across
//! random geometries (power-of-two and non-power-of-two set counts),
//! random traces (with pointer-chasing dependences), warmup windows
//! (including empty and whole-trace), and prefetch schedules.

use proptest::prelude::*;

use pathfinder_sim::reference::ReferenceSimulator;
use pathfinder_sim::{
    CacheConfig, CoreConfig, DramConfig, MemoryAccess, PrefetchRequest, SimConfig, Simulator, Trace,
};

/// Small mixed-radix geometry: half the draws land on non-power-of-two set
/// counts, which exercise the modulo fallback of the set-index fast path.
fn cache_cfg(sets: usize, ways: usize, latency: u64) -> CacheConfig {
    CacheConfig::new(sets.max(1), ways.max(1), latency)
}

fn sim_config(
    l1_sets: usize,
    l2_sets: usize,
    llc_sets: usize,
    ways: usize,
    mshrs: usize,
    rob: u64,
    queue: usize,
) -> SimConfig {
    SimConfig {
        l1d: cache_cfg(l1_sets, ways, 5),
        l2: cache_cfg(l2_sets, ways + 1, 10),
        llc: cache_cfg(llc_sets, ways + 2, 20),
        dram: DramConfig {
            read_queue_size: queue.max(1),
            ..DramConfig::default()
        },
        core: CoreConfig {
            width: 4,
            rob_size: rob.max(4),
            mshrs,
        },
        ..SimConfig::default()
    }
}

/// Builds a trace from packed per-access draws: `(block, gap, dependent)`.
fn build_trace(accesses: &[(u64, u64, bool)]) -> Trace {
    let mut id = 0u64;
    accesses
        .iter()
        .map(|&(block, gap, dep)| {
            id += 1 + gap;
            let a = MemoryAccess::new(id, 0x400, block * 64);
            if dep {
                a.dependent()
            } else {
                a
            }
        })
        .collect()
}

/// Derives a sorted prefetch schedule from the trace: every `stride`-th
/// access triggers a prefetch of a pseudo-random nearby block (some of
/// which are later demanded, some not, some already resident).
fn build_schedule(trace: &Trace, stride: usize, salt: u64) -> Vec<PrefetchRequest> {
    trace
        .iter()
        .enumerate()
        .filter(|(i, _)| stride > 0 && i % stride == 0)
        .map(|(i, a)| {
            let mix = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ salt;
            PrefetchRequest::new(
                a.instr_id,
                pathfinder_sim::Block(a.block().0.wrapping_add(mix % 7)),
            )
        })
        .collect()
}

proptest! {
    /// Full-replay equivalence: `SimReport` and `DetailedStats` are
    /// bit-identical across random geometries, traces, warmup windows, and
    /// schedules.
    #[test]
    fn flat_engine_matches_reference(
        l1_sets in 1usize..20,
        l2_sets in 1usize..40,
        llc_sets in 1usize..70,
        ways in 1usize..5,
        mshrs in 0usize..8,
        rob in 4u64..64,
        queue in 1usize..8,
        accesses in prop::collection::vec((0u64..160, 0u64..6, any::<bool>()), 1..180),
        pf_stride in 1usize..6,
        salt in 0u64..1_000,
        warmup_frac in 0usize..8,
    ) {
        let cfg = sim_config(l1_sets, l2_sets, llc_sets, ways, mshrs, rob, queue);
        let trace = build_trace(&accesses);
        let schedule = build_schedule(&trace, pf_stride, salt);
        // Warmup from empty through past-the-end (clamped inside run).
        let warmup = trace.len() * warmup_frac / 6;

        let (flat, flat_detail) = Simulator::new(cfg)
            .run_detailed_with_warmup(&trace, &schedule, warmup);
        let (reference, ref_detail) = ReferenceSimulator::new(cfg)
            .run_detailed_with_warmup(&trace, &schedule, warmup);

        prop_assert_eq!(&flat, &reference, "SimReport diverged (warmup {})", warmup);
        prop_assert_eq!(
            &flat_detail, &ref_detail,
            "DetailedStats diverged (warmup {})", warmup
        );
        // Sanity: the property is not vacuous — replays really measured
        // something whenever the warmup window left room.
        if warmup < trace.len() {
            prop_assert!(flat.loads > 0);
            prop_assert!(flat.cycles > 0);
        }
    }

    /// The undetailed entry points agree with each other too (they share
    /// `run_inner`, but the public surface is what callers depend on).
    #[test]
    fn run_and_run_with_warmup_agree(
        llc_sets in 1usize..48,
        ways in 1usize..5,
        accesses in prop::collection::vec((0u64..90, 0u64..4, any::<bool>()), 1..100),
        pf_stride in 1usize..5,
        salt in 0u64..1_000,
    ) {
        let cfg = sim_config(8, 16, llc_sets, ways, 4, 32, 4);
        let trace = build_trace(&accesses);
        let schedule = build_schedule(&trace, pf_stride, salt);

        let flat = Simulator::new(cfg).run(&trace, &schedule);
        let reference = ReferenceSimulator::new(cfg).run(&trace, &schedule);
        prop_assert_eq!(&flat, &reference);

        let half = trace.len() / 2;
        let flat_w = Simulator::new(cfg).run_with_warmup(&trace, &schedule, half);
        let ref_w = ReferenceSimulator::new(cfg).run_with_warmup(&trace, &schedule, half);
        prop_assert_eq!(&flat_w, &ref_w);
    }
}

/// Table 3 default geometry on a denser, longer trace than the random
/// cases reach: the exact configuration every experiment replays.
#[test]
fn default_config_equivalence_on_mixed_trace() {
    let cfg = SimConfig::default();
    let mut accesses = Vec::new();
    let mut x = 7u64;
    for _ in 0..4_000 {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Mixture of streaming, reuse, and scattered blocks.
        let block = match x % 4 {
            0 => (x >> 32) % 64,            // hot reuse set
            1 => 1_000 + (x >> 32) % 4_096, // LLC-sized set
            _ => x >> 20,                   // cold scatter
        };
        accesses.push((block, x % 3, x.is_multiple_of(11)));
    }
    let trace = build_trace(&accesses);
    let schedule = build_schedule(&trace, 2, 99);
    for warmup in [0usize, 1_000, 4_000] {
        let (a, da) = Simulator::new(cfg).run_detailed_with_warmup(&trace, &schedule, warmup);
        let (b, db) =
            ReferenceSimulator::new(cfg).run_detailed_with_warmup(&trace, &schedule, warmup);
        assert_eq!(a, b, "SimReport diverged at warmup {warmup}");
        assert_eq!(da, db, "DetailedStats diverged at warmup {warmup}");
    }
}
