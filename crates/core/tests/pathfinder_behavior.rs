//! Behavioural tests of the complete PATHFINDER prefetcher on archetypal
//! delta patterns.

use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher, Readout, Variant};
use pathfinder_prefetch::generate_prefetches;
use pathfinder_sim::{MemoryAccess, Trace};

fn fast() -> PathfinderConfig {
    PathfinderConfig {
        readout: Readout::OneTick,
        neurons: 24,
        delta_range: 31,
        ..PathfinderConfig::default()
    }
}

/// Pages visited with a repeating in-page delta cycle.
fn paged_pattern(pages: u64, deltas: &[u64], pc: u64) -> Trace {
    let mut accesses = Vec::new();
    let mut id = 0u64;
    for page in 0..pages {
        let mut off = 0u64;
        accesses.push(MemoryAccess::new(id, pc, page * 4096 + off * 64));
        id += 1;
        for i in 0..16 {
            off += deltas[i % deltas.len()];
            if off >= 64 {
                break;
            }
            accesses.push(MemoryAccess::new(id, pc, page * 4096 + off * 64));
            id += 1;
        }
    }
    Trace::from_accesses(accesses)
}

fn trained_half_hit_rate(cfg: PathfinderConfig, trace: &Trace) -> f64 {
    let mut pf = PathfinderPrefetcher::new(cfg).unwrap();
    let schedule = generate_prefetches(&mut pf, trace, 2);
    let accesses = trace.accesses();
    let half = accesses.len() / 2;
    let late: Vec<_> = schedule
        .iter()
        .filter(|r| (r.trigger_instr_id as usize) >= half)
        .collect();
    if late.is_empty() {
        return 0.0;
    }
    let hits = late
        .iter()
        .filter(|r| {
            let i = r.trigger_instr_id as usize;
            accesses.get(i + 1).is_some_and(|n| n.block() == r.block)
        })
        .count();
    hits as f64 / late.len() as f64
}

#[test]
fn learns_figure1_style_delta_cycles() {
    // The paper's Figure 1 example: history {1,2,3} predicting the next
    // delta. A {2,3,1} cycle exercises exactly that.
    let trace = paged_pattern(500, &[2, 3, 1], 0x400);
    let rate = trained_half_hit_rate(fast(), &trace);
    assert!(rate > 0.5, "trained hit rate on delta cycles: {rate}");
}

#[test]
fn adapts_across_phase_changes() {
    // Phase 1 uses delta 2, phase 2 switches to delta 5: confidence decay
    // must clear stale labels and re-learn (§3.4 confidence estimation).
    let mut accesses: Vec<MemoryAccess> = Vec::new();
    let mut id = 0u64;
    for page in 0..600u64 {
        let d = if page < 300 { 2u64 } else { 5 };
        let mut off = 0u64;
        accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
        id += 1;
        for _ in 0..12 {
            off += d;
            if off >= 64 {
                break;
            }
            accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
            id += 1;
        }
    }
    let trace = Trace::from_accesses(accesses);
    let mut pf = PathfinderPrefetcher::new(fast()).unwrap();
    let schedule = generate_prefetches(&mut pf, &trace, 2);
    // Hit rate measured over the *last quarter* (well into phase 2).
    let acc = trace.accesses();
    let q3 = acc.len() * 3 / 4;
    let late: Vec<_> = schedule
        .iter()
        .filter(|r| (r.trigger_instr_id as usize) >= q3)
        .collect();
    assert!(!late.is_empty(), "phase 2 must issue prefetches");
    let hits = late
        .iter()
        .filter(|r| {
            let i = r.trigger_instr_id as usize;
            acc.get(i + 1).is_some_and(|n| n.block() == r.block)
        })
        .count();
    let rate = hits as f64 / late.len() as f64;
    assert!(rate > 0.4, "post-phase-change hit rate: {rate}");
}

#[test]
fn two_labels_beat_one_on_alternating_patterns() {
    // Alternating next-deltas after the same history need both label slots.
    let mut accesses = Vec::new();
    let mut id = 0u64;
    for page in 0..800u64 {
        // {2,2,2} history, then next delta alternates 2 / 9 by page parity.
        let seq: &[u64] = if page % 2 == 0 {
            &[2, 2, 2, 2, 2]
        } else {
            &[2, 2, 2, 9, 2]
        };
        let mut off = 0u64;
        accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
        id += 1;
        for &d in seq {
            off += d;
            if off >= 64 {
                break;
            }
            accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
            id += 1;
        }
    }
    let trace = Trace::from_accesses(accesses);
    // Count correct next-block predictions in the trained half: the second
    // label lets the 2-label configuration cover both alternatives, so its
    // absolute hit count must not fall below the 1-label version's.
    let hits = |labels: usize| {
        let mut pf = PathfinderPrefetcher::new(PathfinderConfig {
            labels_per_neuron: labels,
            ..fast()
        })
        .unwrap();
        let schedule = generate_prefetches(&mut pf, &trace, 2);
        let acc = trace.accesses();
        let half = acc.len() / 2;
        schedule
            .iter()
            .filter(|r| {
                let i = r.trigger_instr_id as usize;
                i >= half && acc.get(i + 1).is_some_and(|n| n.block() == r.block)
            })
            .count()
    };
    let (two, one) = (hits(2), hits(1));
    assert!(
        two >= one,
        "2-label ({two} hits) should cover at least as much as 1-label ({one} hits)"
    );
}

#[test]
fn produces_nothing_on_pure_randomness() {
    // Uniform random offsets per access: confidence can never build, so
    // useful prefetches should be rare.
    let mut x = 0x2545F4914F6CDD1Du64;
    let accesses: Vec<MemoryAccess> = (0..6000u64)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            MemoryAccess::new(i, 0x400, (x % 64) * 64 + ((x >> 8) % 512) * 4096)
        })
        .collect();
    let trace = Trace::from_accesses(accesses);
    let mut pf = PathfinderPrefetcher::new(fast()).unwrap();
    let schedule = generate_prefetches(&mut pf, &trace, 2);
    let acc = trace.accesses();
    let hits = schedule
        .iter()
        .filter(|r| {
            let i = r.trigger_instr_id as usize;
            acc.get(i + 1).is_some_and(|n| n.block() == r.block)
        })
        .count();
    // Whatever gets issued on noise should rarely be right.
    assert!(
        hits * 5 < schedule.len().max(1),
        "noise hit rate too high: {hits}/{}",
        schedule.len()
    );
}

#[test]
fn all_variants_run_end_to_end() {
    let trace = paged_pattern(150, &[2], 0x400);
    for v in Variant::ALL {
        let mut pf = PathfinderPrefetcher::new(PathfinderConfig {
            neurons: 24,
            delta_range: 31,
            ..v.config()
        })
        .unwrap();
        let schedule = generate_prefetches(&mut pf, &trace, 2);
        assert!(
            pf.stats().snn_queries > 0,
            "{v}: variant must query the SNN"
        );
        let _ = schedule;
    }
}

#[test]
fn full_interval_and_one_tick_learn_comparable_patterns() {
    let trace = paged_pattern(400, &[3], 0x400);
    let full = trained_half_hit_rate(
        PathfinderConfig {
            readout: Readout::FullInterval,
            ..fast()
        },
        &trace,
    );
    let quick = trained_half_hit_rate(fast(), &trace);
    assert!(full > 0.3, "full interval learns: {full}");
    assert!(quick > 0.3, "one-tick learns: {quick}");
    // Figure 7's claim at micro scale: the cheap readout is competitive.
    assert!(
        (quick - full).abs() < 0.4,
        "readouts should be comparable: full {full} vs one-tick {quick}"
    );
}
