//! Property: `PixelMatrixEncoder::encode_key` is an exact fingerprint of
//! the encoded pixel matrix — two delta histories collide on the key *iff*
//! `encode()` produces identical rate vectors, across every combination of
//! the `enlarged` / `reorder` knobs and the `encode_initial` special cases.
//!
//! This is what makes the frozen-query memo in
//! `pathfinder_core::snn_cache` exact rather than approximate: a key hit
//! guarantees the SNN would have been shown the very same input.

use proptest::prelude::*;

use pathfinder_core::{PathfinderConfig, PixelMatrixEncoder};

fn encoder(delta_range: u8, enlarged: bool, reorder: bool) -> PixelMatrixEncoder {
    let cfg = PathfinderConfig {
        delta_range,
        enlarged_pixels: enlarged,
        reorder_pixels: reorder,
        ..PathfinderConfig::default()
    };
    cfg.validate().expect("generated config is valid");
    PixelMatrixEncoder::new(&cfg)
}

/// Deltas beyond the clamp edge (and a zero-heavy mix) maximize the chance
/// of genuine key collisions, which is the half of the iff worth stressing.
const DELTA_SPAN: std::ops::RangeInclusive<i16> = -90i16..=90;

proptest! {
    /// Full-history encodings: key equality ⟺ vector equality.
    #[test]
    fn key_collision_iff_identical_rates(
        a0 in DELTA_SPAN, a1 in DELTA_SPAN, a2 in DELTA_SPAN,
        b0 in DELTA_SPAN, b1 in DELTA_SPAN, b2 in DELTA_SPAN,
        range_sel in 0usize..3,
        enlarged in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        let delta_range = [7u8, 31, 63][range_sel];
        let enc = encoder(delta_range, enlarged, reorder);
        let (a, b) = ([a0, a1, a2], [b0, b1, b2]);
        prop_assert_eq!(
            enc.encode(&a) == enc.encode(&b),
            enc.encode_key(&a) == enc.encode_key(&b),
            "key/vector equality diverged for {:?} vs {:?} (range {}, enlarged {}, reorder {})",
            a, b, delta_range, enlarged, reorder
        );
    }

    /// Short (padded) histories against each other and against full ones:
    /// the key distinguishes pad rows from painted rows exactly when the
    /// vectors do.
    #[test]
    fn short_history_keys_track_vectors(
        a0 in DELTA_SPAN, a1 in DELTA_SPAN, a2 in DELTA_SPAN,
        a_len in 0usize..=3,
        b0 in DELTA_SPAN, b1 in DELTA_SPAN, b2 in DELTA_SPAN,
        b_len in 0usize..=3,
        enlarged in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        let enc = encoder(31, enlarged, reorder);
        let a_all = [a0, a1, a2];
        let b_all = [b0, b1, b2];
        let a = &a_all[..a_len];
        let b = &b_all[..b_len];
        prop_assert_eq!(
            enc.encode(a) == enc.encode(b),
            enc.encode_key(a) == enc.encode_key(b),
            "padded key/vector equality diverged for {:?} vs {:?}", a, b
        );
    }

    /// The initial-access special cases (§3.4): every pairing of
    /// {first-touch offset, partial-delta, full-history} patterns keys
    /// exactly like it encodes — including cross-comparisons against the
    /// plain `encode` keyspace, which the prefetcher shares one cache with.
    #[test]
    fn initial_access_keys_track_vectors(
        offset_a in 0u8..64, offset_b in 0u8..64,
        d0 in DELTA_SPAN, d1 in DELTA_SPAN, d2 in DELTA_SPAN,
        a_sel in 0usize..3, b_sel in 0usize..3,
        len_a in 0usize..=2, len_b in 0usize..=2,
        enlarged in any::<bool>(),
        reorder in any::<bool>(),
    ) {
        let enc = encoder(31, enlarged, reorder);
        let deltas = [d0, d1, d2];
        // Three pattern families; selector picks one per side.
        let build = |sel: usize, offset: u8, len: usize| -> (Vec<f32>, u64) {
            match sel {
                0 => (
                    enc.encode_initial(Some(offset), &[]),
                    enc.encode_initial_key(Some(offset), &[]),
                ),
                1 => (
                    enc.encode_initial(None, &deltas[..len]),
                    enc.encode_initial_key(None, &deltas[..len]),
                ),
                _ => (enc.encode(&deltas), enc.encode_key(&deltas)),
            }
        };
        let (va, ka) = build(a_sel, offset_a, len_a);
        let (vb, kb) = build(b_sel, offset_b, len_b);
        prop_assert_eq!(
            va == vb,
            ka == kb,
            "initial-access key/vector equality diverged (sel {}/{}, offsets {}/{}, deltas {:?})",
            a_sel, b_sel, offset_a, offset_b, deltas
        );
    }
}
