//! The frozen-query memo must be invisible in results: cached and uncached
//! prefetchers produce identical prefetch schedules, and learning between
//! two identical pixel matrices yields the *post-update* prediction, never
//! a stale cached one.
//!
//! Per the ROADMAP seed-robustness note, nothing here asserts on winner
//! identity or specific predicted blocks — only on schedule equality
//! between twin configurations and on the cache's own counters.

use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher, Readout, StdpDutyCycle};
use pathfinder_prefetch::Prefetcher;
use pathfinder_sim::{MemoryAccess, Trace};

/// Pages visited with a repeating in-page delta pattern — the steady-state
/// workload where pixel matrices repeat heavily.
fn delta_pattern_trace(pages: u64, deltas: &[u8]) -> Trace {
    let mut accesses = Vec::new();
    let mut id = 0u64;
    for page in 0..pages {
        let mut off = 0u64;
        accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
        id += 1;
        for rep in 0..12 {
            let d = deltas[rep % deltas.len()] as u64;
            if off + d >= 64 {
                break;
            }
            off += d;
            accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
            id += 1;
        }
    }
    Trace::from_accesses(accesses)
}

fn duty_cycled_cfg(readout: Readout, cache_entries: usize) -> PathfinderConfig {
    PathfinderConfig {
        neurons: 20,
        delta_range: 31,
        readout,
        // Short epochs so one trace crosses several learn/frozen
        // boundaries: matrices seen while frozen get cached, then STDP
        // resumes and must invalidate them.
        stdp_duty: StdpDutyCycle {
            on_accesses: 40,
            epoch_accesses: 160,
        },
        snn_cache_entries: cache_entries,
        ..PathfinderConfig::default()
    }
}

/// Drives `pf` over the trace, collecting each access's prefetch output.
fn run(pf: &mut PathfinderPrefetcher, trace: &Trace) -> Vec<Vec<pathfinder_sim::Block>> {
    trace.accesses().iter().map(|a| pf.on_access(a)).collect()
}

fn assert_schedules_identical(readout: Readout) {
    let trace = delta_pattern_trace(120, &[2, 3]);
    let mut cached = PathfinderPrefetcher::new(duty_cycled_cfg(readout, 1024)).unwrap();
    let mut uncached = PathfinderPrefetcher::new(duty_cycled_cfg(readout, 0)).unwrap();

    let out_cached = run(&mut cached, &trace);
    let out_uncached = run(&mut uncached, &trace);
    assert_eq!(
        out_cached, out_uncached,
        "memoization must never change a single prefetch decision"
    );

    let (sc, su) = (*cached.stats(), *uncached.stats());
    assert!(
        sc.snn_cache_hits > 0,
        "the repeating workload should hit the cache: {sc:?}"
    );
    // Everything except the cache's own counters agrees bit-for-bit.
    let scrub = |mut s: pathfinder_core::PathfinderStats| {
        s.snn_cache_hits = 0;
        s.snn_cache_misses = 0;
        s.snn_cache_evictions = 0;
        s.snn_cache_invalidations = 0;
        s
    };
    assert_eq!(
        scrub(sc),
        scrub(su),
        "stats must be invariant under caching"
    );
}

#[test]
fn cached_and_uncached_schedules_are_identical_full_interval() {
    assert_schedules_identical(Readout::FullInterval);
}

#[test]
fn cached_and_uncached_schedules_are_identical_one_tick() {
    assert_schedules_identical(Readout::OneTick);
}

/// Satellite regression: STDP updates between two identical pixel matrices
/// must produce the post-update prediction. The uncached twin computes
/// every query fresh, so schedule equality (checked above per-access)
/// plus at least one wholesale invalidation proves stale entries were
/// dropped rather than served.
#[test]
fn learning_between_identical_matrices_invalidates_the_cache() {
    let trace = delta_pattern_trace(120, &[2, 3]);
    let mut cached =
        PathfinderPrefetcher::new(duty_cycled_cfg(Readout::FullInterval, 1024)).unwrap();
    let mut uncached =
        PathfinderPrefetcher::new(duty_cycled_cfg(Readout::FullInterval, 0)).unwrap();

    assert_eq!(run(&mut cached, &trace), run(&mut uncached, &trace));

    let s = cached.stats();
    assert!(
        s.snn_cache_invalidations >= 1,
        "re-entering a learning window must clear the memo: {s:?}"
    );
    assert!(
        s.snn_cache_hits > 0 && s.snn_cache_misses > 0,
        "the duty cycle should produce both hits and post-invalidation \
         misses: {s:?}"
    );
}

/// A tiny cache still behaves exactly, it just evicts.
#[test]
fn capacity_bound_evicts_without_changing_results() {
    let trace = delta_pattern_trace(120, &[2, 3, 5, 7]);
    let mut tiny = PathfinderPrefetcher::new(duty_cycled_cfg(Readout::FullInterval, 2)).unwrap();
    let mut uncached =
        PathfinderPrefetcher::new(duty_cycled_cfg(Readout::FullInterval, 0)).unwrap();

    assert_eq!(run(&mut tiny, &trace), run(&mut uncached, &trace));
    assert!(
        tiny.stats().snn_cache_evictions > 0,
        "a 2-entry cache over a 4-delta pattern must evict: {:?}",
        tiny.stats()
    );
}

/// With STDP always on there is no frozen phase, so the cache is never
/// consulted and its counters stay silent.
#[test]
fn always_on_learning_never_touches_the_cache() {
    let trace = delta_pattern_trace(40, &[2]);
    let cfg = PathfinderConfig {
        neurons: 20,
        delta_range: 31,
        ..PathfinderConfig::default()
    };
    let mut pf = PathfinderPrefetcher::new(cfg).unwrap();
    let _ = run(&mut pf, &trace);
    let s = pf.stats();
    assert_eq!(s.snn_cache_hits, 0);
    assert_eq!(s.snn_cache_misses, 0);
    assert!(s.snn_queries > 0);
}
