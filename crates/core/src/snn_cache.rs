//! Bounded memoization of frozen-weight SNN queries.
//!
//! While STDP is duty-cycled off, a presentation is a pure function of the
//! pixel matrix, the readout mode, and the network's inference-relevant
//! state (weights + adaptive thresholds). [`SnnQueryCache`] exploits that:
//! entries are keyed on the packed matrix key
//! ([`crate::PixelMatrixEncoder::encode_key`]) plus [`Readout`], and the
//! whole cache is dropped the moment the network's
//! [`weight_version`](pathfinder_snn::DiehlCookNetwork::weight_version)
//! moves — so a hit returns exactly what the uncached query would.

use std::collections::HashMap;

use crate::config::Readout;

/// Everything the prefetcher consumes from one frozen SNN presentation.
///
/// Stored instead of the raw [`pathfinder_snn::RunOutcome`] so a cache hit
/// can replay both the prediction (neuron preference order) and the stats
/// bookkeeping (fired / 1-tick agreement counters) bit-for-bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedQuery {
    /// Neuron indices in prediction-preference order (winner first).
    pub order: Vec<usize>,
    /// Whether any excitatory neuron fired during the presentation.
    pub any_fired: bool,
    /// For [`Readout::FullInterval`] with a full-interval winner: whether
    /// the 1-tick argmax agreed with it (drives the §3.4 comparison stats).
    pub winner_matched_argmax: Option<bool>,
}

/// Counter deltas accumulated by a [`SnnQueryCache`]; drained by the owner
/// into [`crate::PathfinderStats`] and telemetry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnnCacheStats {
    /// Queries answered from the cache.
    pub hits: u64,
    /// Queries that missed and ran the frozen kernel.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Wholesale clears triggered by a weight-version change.
    pub invalidations: u64,
}

/// A bounded LRU map from (packed matrix key, readout) to a frozen query
/// result, valid for exactly one SNN weight version.
#[derive(Debug, Clone)]
pub struct SnnQueryCache {
    capacity: usize,
    /// Weight version the resident entries were computed at.
    version: u64,
    /// Monotonic use counter backing the LRU policy.
    clock: u64,
    entries: HashMap<(u64, Readout), (CachedQuery, u64)>,
    stats: SnnCacheStats,
}

impl SnnQueryCache {
    /// Creates a cache holding at most `capacity` entries (0 disables it).
    pub fn new(capacity: usize) -> Self {
        SnnQueryCache {
            capacity,
            version: 0,
            clock: 0,
            entries: HashMap::with_capacity(capacity.min(4096)),
            stats: SnnCacheStats::default(),
        }
    }

    /// Whether the cache can hold anything at all.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot (monotonic over the cache's lifetime).
    pub fn stats(&self) -> SnnCacheStats {
        self.stats
    }

    /// Drops every resident entry if `weight_version` differs from the one
    /// the entries were computed at. Counted as an invalidation only when
    /// entries were actually discarded — version bumps while the cache is
    /// empty (e.g. every access of a training phase) are not churn.
    pub fn sync_version(&mut self, weight_version: u64) {
        if self.version != weight_version {
            if !self.entries.is_empty() {
                self.entries.clear();
                self.stats.invalidations += 1;
            }
            self.version = weight_version;
        }
    }

    /// Looks up a query, refreshing its LRU stamp on a hit. The caller must
    /// have called [`SnnQueryCache::sync_version`] for the current network
    /// state first.
    pub fn get(&mut self, key: u64, readout: Readout) -> Option<CachedQuery> {
        if self.capacity == 0 {
            self.stats.misses += 1;
            return None;
        }
        match self.entries.get_mut(&(key, readout)) {
            Some((cached, stamp)) => {
                self.clock += 1;
                *stamp = self.clock;
                self.stats.hits += 1;
                Some(cached.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly computed query, evicting the least-recently-used
    /// entry when at capacity. No-op when the cache is disabled.
    pub fn insert(&mut self, key: u64, readout: Readout, value: CachedQuery) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&(key, readout)) {
            // O(n) min-scan: at the default 1024 entries this is nanoseconds
            // against the ~20µs SNN presentation a miss just paid for.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.clock += 1;
        self.entries.insert((key, readout), (value, self.clock));
    }

    /// Read-only partition of a batch of query keys into resident hits,
    /// first-occurrence computes, and intra-batch duplicates, for the
    /// batched frozen-inference path.
    ///
    /// `compute` holds the indices (into `keys`, in order) that need a
    /// kernel lane; a key repeated within the batch gets exactly one lane —
    /// its first occurrence — and later occurrences count as `duplicates`,
    /// to be resolved against that lane's result. This is the guard against
    /// the latent double-compute of naive batching: without it, a run of
    /// identical duty-cycled-off queries (the common loopy-access case)
    /// would burn one lane per occurrence.
    ///
    /// The probe never touches LRU stamps or hit/miss counters — the
    /// planning pass is advisory, and the execution pass's real
    /// [`SnnQueryCache::get`]/[`SnnQueryCache::insert`] calls keep the
    /// accounting bit-identical to unbatched serving. When the cache is
    /// disabled (capacity 0) or `weight_version` doesn't match the resident
    /// entries, nothing can hit *or* be inserted by the execution pass, so
    /// every occurrence — duplicates included — gets its own compute lane,
    /// keeping the kernel presentation count exactly sequential-equal.
    pub fn probe_batch(&self, weight_version: u64, readout: Readout, keys: &[u64]) -> BatchProbe {
        let mut probe = BatchProbe::default();
        if self.capacity == 0 {
            probe.compute.extend(0..keys.len());
            return probe;
        }
        let resident = self.version == weight_version;
        let mut seen = std::collections::HashSet::with_capacity(keys.len());
        for (i, &key) in keys.iter().enumerate() {
            if resident && self.entries.contains_key(&(key, readout)) {
                probe.hits += 1;
            } else if seen.insert(key) {
                probe.compute.push(i);
            } else {
                probe.duplicates += 1;
            }
        }
        probe
    }
}

/// Result of a [`SnnQueryCache::probe_batch`]: how one batch of query keys
/// splits across the cache and itself.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BatchProbe {
    /// Keys already resident (would hit on a real lookup).
    pub hits: usize,
    /// Indices into the probed key slice needing a kernel lane — the first
    /// occurrence of each non-resident key, in batch order.
    pub compute: Vec<usize>,
    /// Non-resident occurrences that repeat an earlier key in the same
    /// batch; they resolve against the first occurrence's lane.
    pub duplicates: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(winner: usize) -> CachedQuery {
        CachedQuery {
            order: vec![winner],
            any_fired: true,
            winner_matched_argmax: None,
        }
    }

    #[test]
    fn hit_returns_inserted_value() {
        let mut c = SnnQueryCache::new(4);
        c.sync_version(1);
        assert_eq!(c.get(7, Readout::OneTick), None);
        c.insert(7, Readout::OneTick, q(3));
        assert_eq!(c.get(7, Readout::OneTick), Some(q(3)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn readout_mode_is_part_of_the_key() {
        let mut c = SnnQueryCache::new(4);
        c.insert(7, Readout::OneTick, q(1));
        assert_eq!(c.get(7, Readout::FullInterval), None);
        assert_eq!(c.get(7, Readout::OneTick), Some(q(1)));
    }

    #[test]
    fn version_change_clears_everything() {
        let mut c = SnnQueryCache::new(4);
        c.sync_version(1);
        c.insert(7, Readout::OneTick, q(1));
        c.insert(8, Readout::OneTick, q(2));
        c.sync_version(2);
        assert!(c.is_empty());
        assert_eq!(c.stats().invalidations, 1);
        // Re-syncing the same version is free.
        c.sync_version(2);
        assert_eq!(c.stats().invalidations, 1);
        // Version churn over an empty cache is not counted.
        c.sync_version(3);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let mut c = SnnQueryCache::new(2);
        c.insert(1, Readout::OneTick, q(1));
        c.insert(2, Readout::OneTick, q(2));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(c.get(1, Readout::OneTick).is_some());
        c.insert(3, Readout::OneTick, q(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.get(1, Readout::OneTick).is_some());
        assert_eq!(c.get(2, Readout::OneTick), None);
        assert!(c.get(3, Readout::OneTick).is_some());
    }

    #[test]
    fn reinserting_a_resident_key_does_not_evict() {
        let mut c = SnnQueryCache::new(2);
        c.insert(1, Readout::OneTick, q(1));
        c.insert(2, Readout::OneTick, q(2));
        c.insert(1, Readout::OneTick, q(9));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.get(1, Readout::OneTick), Some(q(9)));
    }

    #[test]
    fn zero_capacity_disables_without_breaking_miss_accounting() {
        let mut c = SnnQueryCache::new(0);
        assert!(!c.is_enabled());
        c.insert(1, Readout::OneTick, q(1));
        assert_eq!(c.get(1, Readout::OneTick), None);
        assert_eq!(c.stats().misses, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn probe_batch_dedups_repeated_keys_onto_one_lane() {
        let mut c = SnnQueryCache::new(8);
        c.sync_version(5);
        c.insert(10, Readout::FullInterval, q(1));
        // Batch: resident, fresh, repeat-of-fresh, resident again, another
        // fresh, repeat-of-first-fresh. Only the two first occurrences of
        // non-resident keys may take kernel lanes.
        let keys = [10, 20, 20, 10, 30, 20];
        let probe = c.probe_batch(5, Readout::FullInterval, &keys);
        assert_eq!(probe.hits, 2);
        assert_eq!(probe.compute, vec![1, 4], "first occurrences only");
        assert_eq!(probe.duplicates, 2, "repeats ride the first lane");
    }

    #[test]
    fn probe_batch_is_read_only() {
        let mut c = SnnQueryCache::new(2);
        c.sync_version(1);
        c.insert(1, Readout::FullInterval, q(1));
        let stats = c.stats();
        let _ = c.probe_batch(1, Readout::FullInterval, &[1, 1, 2, 2]);
        assert_eq!(c.stats(), stats, "no hit/miss accounting from probes");
        // LRU stamps untouched: key 1 stays the coldest and is evicted.
        c.insert(2, Readout::FullInterval, q(2));
        c.insert(3, Readout::FullInterval, q(3));
        assert_eq!(c.get(1, Readout::FullInterval), None);
    }

    #[test]
    fn probe_batch_respects_readout_and_version() {
        let mut c = SnnQueryCache::new(4);
        c.sync_version(1);
        c.insert(7, Readout::OneTick, q(1));
        let probe = c.probe_batch(1, Readout::FullInterval, &[7]);
        assert_eq!((probe.hits, probe.duplicates), (0, 0));
        assert_eq!(probe.compute, vec![0], "readout is part of the key");
        let probe = c.probe_batch(2, Readout::OneTick, &[7, 7]);
        assert_eq!(probe.hits, 0, "stale version cannot hit");
        assert_eq!(probe.compute, vec![0]);
        assert_eq!(probe.duplicates, 1);
    }

    #[test]
    fn probe_batch_on_disabled_cache_gives_every_occurrence_a_lane() {
        // With capacity 0 the execution pass can neither hit nor insert, so
        // deduping here would under-count presentations vs. sequential
        // serving; every occurrence computes.
        let c = SnnQueryCache::new(0);
        let probe = c.probe_batch(1, Readout::FullInterval, &[5, 5, 5]);
        assert_eq!(probe.hits, 0);
        assert_eq!(probe.compute, vec![0, 1, 2]);
        assert_eq!(probe.duplicates, 0);
    }
}
