//! PATHFINDER configuration and the Figure 9 variant ladder.

use pathfinder_snn::SnnConfig;
use serde::{Deserialize, Serialize};

/// How prefetch predictions are read out of the SNN.
///
/// `Hash` because the readout mode is part of the prediction-cache key:
/// the two modes can disagree on the winning neuron for the same matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Readout {
    /// Full `T`-tick stochastic simulation; the most-firing neuron wins.
    FullInterval,
    /// The paper's reduced-interval approximation (§3.4): argmax potential
    /// after one expected-current tick (Figure 7, Table 1).
    OneTick,
}

/// Periodic STDP duty-cycling (§5, Figure 8): learning is enabled for the
/// first `on_accesses` of every `epoch_accesses`, then frozen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StdpDutyCycle {
    /// Accesses with STDP enabled at the start of each epoch.
    pub on_accesses: u64,
    /// Epoch length in accesses (the paper uses 5000).
    pub epoch_accesses: u64,
}

impl StdpDutyCycle {
    /// STDP always on (the default).
    pub const ALWAYS_ON: StdpDutyCycle = StdpDutyCycle {
        on_accesses: u64::MAX,
        epoch_accesses: u64::MAX,
    };

    /// The paper's Figure 8 sweep points: on for the first `on` of every
    /// 5000 accesses.
    pub fn first_n_of_5000(on: u64) -> Self {
        StdpDutyCycle {
            on_accesses: on,
            epoch_accesses: 5000,
        }
    }

    /// Whether learning is enabled at the given access index.
    pub fn learning_enabled(&self, access_index: u64) -> bool {
        if self.epoch_accesses == u64::MAX {
            return true;
        }
        access_index % self.epoch_accesses < self.on_accesses
    }
}

/// Full PATHFINDER configuration.
///
/// Defaults reproduce the paper's Figure 4 configuration: "50 neurons with
/// 2 labels for each neuron, delta range: -63 to 63, input interval: 32
/// ticks, prefetch degree: 2".
///
/// # Examples
///
/// ```
/// use pathfinder_core::PathfinderConfig;
///
/// let cfg = PathfinderConfig::default();
/// assert_eq!(cfg.delta_range, 63);
/// assert_eq!(cfg.history, 3);
/// assert_eq!(cfg.labels_per_neuron, 2);
/// assert_eq!(cfg.n_input(), 127 * 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathfinderConfig {
    /// Maximum |delta| tracked; the input row width is `2 * delta_range + 1`
    /// (the paper's default range "127" spans -63..=63).
    pub delta_range: u8,
    /// Delta-history length `H` (paper: 3).
    pub history: usize,
    /// Excitatory/inhibitory neuron count (paper: 50).
    pub neurons: usize,
    /// Input interval in ticks when using [`Readout::FullInterval`].
    pub ticks: u32,
    /// Readout mode.
    pub readout: Readout,
    /// Labels (and confidence counters) per neuron: 1 or 2 (§3.4).
    pub labels_per_neuron: usize,
    /// Maximum prefetches per access (competition rule: 2).
    pub degree: usize,
    /// Enlarged-pixel encoding: each active pixel also lights its
    /// neighborhood at half intensity (§3.4).
    pub enlarged_pixels: bool,
    /// Anti-aliasing reorder: shift the middle delta row by a fixed constant
    /// (§3.4 "we shift the middle delta in the delta pattern").
    pub reorder_pixels: bool,
    /// Encode the first accesses to a page as offset/partial-delta patterns
    /// (§3.4 "Initial Accesses to a Page").
    pub initial_access_encoding: bool,
    /// Confidence threshold a label must exceed to issue a prefetch.
    pub confidence_threshold: u8,
    /// Training-table capacity in (PC, page) entries (paper: 1K rows).
    pub training_table_entries: usize,
    /// STDP duty cycle.
    pub stdp_duty: StdpDutyCycle,
    /// Capacity of the frozen-inference prediction cache (entries). While
    /// STDP is duty-cycled off, queries are memoized on the packed pixel
    /// matrix key and invalidated wholesale whenever the SNN's weight
    /// version moves. `0` disables memoization (every inference query still
    /// runs through the pure frozen kernel, so results are unchanged).
    pub snn_cache_entries: usize,
    /// RNG seed for SNN initialization and Poisson encoding.
    pub seed: u64,
}

impl Default for PathfinderConfig {
    fn default() -> Self {
        PathfinderConfig {
            delta_range: 63,
            history: 3,
            neurons: 50,
            ticks: 32,
            readout: Readout::FullInterval,
            labels_per_neuron: 2,
            degree: 2,
            enlarged_pixels: true,
            reorder_pixels: true,
            initial_access_encoding: true,
            confidence_threshold: 0,
            training_table_entries: 1024,
            stdp_duty: StdpDutyCycle::ALWAYS_ON,
            snn_cache_entries: 1024,
            seed: 0x9A7F,
        }
    }
}

impl PathfinderConfig {
    /// Width `D` of one pixel-matrix row (`2 * delta_range + 1`).
    pub fn row_width(&self) -> usize {
        2 * self.delta_range as usize + 1
    }

    /// Total SNN input size `D x H`.
    pub fn n_input(&self) -> usize {
        self.row_width() * self.history
    }

    /// Derives the SNN configuration for this prefetcher configuration.
    pub fn snn_config(&self) -> SnnConfig {
        SnnConfig {
            n_input: self.n_input(),
            n_exc: self.neurons,
            ticks: self.ticks,
            ..SnnConfig::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.delta_range == 0 || self.delta_range > 63 {
            return Err(format!(
                "delta_range {} must be in 1..=63 (within-page deltas)",
                self.delta_range
            ));
        }
        if self.history == 0 {
            return Err("history must be positive".into());
        }
        if self.history > 8 {
            return Err(format!(
                "history {} must be at most 8 (one byte per row in the \
                 packed pixel-matrix cache key)",
                self.history
            ));
        }
        if self.neurons == 0 {
            return Err("neurons must be positive".into());
        }
        if !(1..=2).contains(&self.labels_per_neuron) {
            return Err("labels_per_neuron must be 1 or 2".into());
        }
        if self.degree == 0 {
            return Err("degree must be positive".into());
        }
        if self.training_table_entries == 0 {
            return Err("training table must have capacity".into());
        }
        self.snn_config().validate()
    }
}

/// The named variants of Figure 9, ordered as the paper presents them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// Basic 1-label version: plain pixels, full interval.
    Basic1Label,
    /// + enlarged pixels.
    EnlargedPixel1Label,
    /// + two labels per neuron.
    EnlargedPixel2Label,
    /// + reduced (1-tick) input interval.
    ReducedInterval2Label,
    /// + reordered (anti-aliased) pixels — the full configuration.
    Reordered2Label,
}

impl Variant {
    /// All Figure 9 variants in presentation order.
    pub const ALL: [Variant; 5] = [
        Variant::Basic1Label,
        Variant::EnlargedPixel1Label,
        Variant::EnlargedPixel2Label,
        Variant::ReducedInterval2Label,
        Variant::Reordered2Label,
    ];

    /// Label used in Figure 9.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Basic1Label => "basic 1-label",
            Variant::EnlargedPixel1Label => "enlarged-pixel 1-label",
            Variant::EnlargedPixel2Label => "enlarged-pixel 2-label",
            Variant::ReducedInterval2Label => "enlarged-pixel reduced-interval 2-label",
            Variant::Reordered2Label => "reordered enlarged-pixel reduced-interval 2-label",
        }
    }

    /// The configuration this variant denotes.
    pub fn config(self) -> PathfinderConfig {
        let base = PathfinderConfig::default();
        match self {
            Variant::Basic1Label => PathfinderConfig {
                enlarged_pixels: false,
                reorder_pixels: false,
                labels_per_neuron: 1,
                readout: Readout::FullInterval,
                ..base
            },
            Variant::EnlargedPixel1Label => PathfinderConfig {
                enlarged_pixels: true,
                reorder_pixels: false,
                labels_per_neuron: 1,
                readout: Readout::FullInterval,
                ..base
            },
            Variant::EnlargedPixel2Label => PathfinderConfig {
                enlarged_pixels: true,
                reorder_pixels: false,
                labels_per_neuron: 2,
                readout: Readout::FullInterval,
                ..base
            },
            Variant::ReducedInterval2Label => PathfinderConfig {
                enlarged_pixels: true,
                reorder_pixels: false,
                labels_per_neuron: 2,
                readout: Readout::OneTick,
                ..base
            },
            Variant::Reordered2Label => PathfinderConfig {
                enlarged_pixels: true,
                reorder_pixels: true,
                labels_per_neuron: 2,
                readout: Readout::OneTick,
                ..base
            },
        }
    }
}

impl std::fmt::Display for Variant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_figure4_caption() {
        let c = PathfinderConfig::default();
        assert_eq!(c.neurons, 50);
        assert_eq!(c.labels_per_neuron, 2);
        assert_eq!(c.delta_range, 63); // "-63 to 63"
        assert_eq!(c.row_width(), 127);
        assert_eq!(c.ticks, 32);
        assert_eq!(c.degree, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn n_input_scales_with_range() {
        let mut c = PathfinderConfig {
            delta_range: 31,
            ..PathfinderConfig::default()
        };
        assert_eq!(c.n_input(), 63 * 3);
        c.delta_range = 15;
        assert_eq!(c.n_input(), 31 * 3);
    }

    #[test]
    fn validation_rejects_bad_values() {
        for f in [
            |c: &mut PathfinderConfig| c.delta_range = 0,
            |c: &mut PathfinderConfig| c.delta_range = 64,
            |c: &mut PathfinderConfig| c.history = 0,
            |c: &mut PathfinderConfig| c.history = 9,
            |c: &mut PathfinderConfig| c.labels_per_neuron = 3,
            |c: &mut PathfinderConfig| c.degree = 0,
            |c: &mut PathfinderConfig| c.training_table_entries = 0,
        ] {
            let mut c = PathfinderConfig::default();
            f(&mut c);
            assert!(c.validate().is_err());
        }
    }

    #[test]
    fn duty_cycle_windows() {
        let d = StdpDutyCycle::first_n_of_5000(50);
        assert!(d.learning_enabled(0));
        assert!(d.learning_enabled(49));
        assert!(!d.learning_enabled(50));
        assert!(!d.learning_enabled(4999));
        assert!(d.learning_enabled(5000));
        assert!(StdpDutyCycle::ALWAYS_ON.learning_enabled(u64::MAX - 1));
    }

    #[test]
    fn variant_ladder_is_monotone_in_features() {
        assert!(!Variant::Basic1Label.config().enlarged_pixels);
        assert!(Variant::EnlargedPixel1Label.config().enlarged_pixels);
        assert_eq!(Variant::EnlargedPixel2Label.config().labels_per_neuron, 2);
        assert_eq!(
            Variant::ReducedInterval2Label.config().readout,
            Readout::OneTick
        );
        assert!(Variant::Reordered2Label.config().reorder_pixels);
        // All variants validate.
        for v in Variant::ALL {
            assert!(v.config().validate().is_ok(), "{v}");
        }
    }
}
