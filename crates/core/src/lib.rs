//! # pathfinder-core
//!
//! PATHFINDER (ASPLOS 2024): a practical real-time-learning data prefetcher
//! built on a spiking neural network trained on-line with STDP.
//!
//! Per-page delta histories observed by a (PC, page)-indexed Training Table
//! are rendered into a binary *Memory Access Pixel Matrix* (§3.2), rate-
//! coded into Poisson spike trains, and classified by a layer of excitatory
//! LIF neurons with lateral inhibition. An Inference Table attaches up to
//! two (next-delta label, 3-bit confidence) pairs to each neuron; labels are
//! learned on the fly by watching which delta actually follows each firing
//! (§3.3), and confidences gate prefetch issue (§3.4).
//!
//! The crate implements every §3.4 design extension as a configuration knob:
//! enlarged pixels, pixel reorder (anti-aliasing), 1-tick readout, initial-
//! access encoding, multi-label neurons, and STDP duty-cycling — plus the
//! Figure 9 [`Variant`] ladder naming the paper's ablation points.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher};
//! use pathfinder_prefetch::{generate_prefetches, Prefetcher};
//! use pathfinder_sim::{MemoryAccess, SimConfig, Simulator, Trace};
//!
//! // Pages visited with a +2 block stride.
//! let trace: Trace = (0..3000)
//!     .map(|i| {
//!         let (page, step) = (i / 25, i % 25);
//!         MemoryAccess::new(i, 0x400, page * 4096 + step * 2 * 64)
//!     })
//!     .collect();
//!
//! let mut pf = PathfinderPrefetcher::new(PathfinderConfig::default())?;
//! let schedule = generate_prefetches(&mut pf, &trace, 2);
//! let report = Simulator::new(SimConfig::default()).run(&trace, &schedule);
//! println!("IPC {:.3}, accuracy {:.1}%", report.ipc(), report.accuracy() * 100.0);
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod encoder;
pub mod extensions;
pub mod prefetcher;
pub mod snn_cache;
pub mod tables;

pub use config::{PathfinderConfig, Readout, StdpDutyCycle, Variant};
pub use encoder::PixelMatrixEncoder;
pub use extensions::CrossPagePredictor;
pub use prefetcher::{PathfinderPrefetcher, PathfinderStats};
pub use snn_cache::{BatchProbe, CachedQuery, SnnCacheStats, SnnQueryCache};
pub use tables::{
    InferenceTable, Label, TrainingEntry, TrainingTable, CONFIDENCE_INIT, CONFIDENCE_MAX,
};
