//! The Training Table and Inference Table (§3.3, Figure 1).
//!
//! The Training Table is a (PC, page)-indexed CAM tracking each stream's
//! recent page offsets/deltas, the neuron that fired for its last SNN query,
//! and the predictions issued (so the next access can reward or penalize
//! them). The Inference Table holds, per excitatory neuron, up to two
//! (label, confidence) pairs, where a label is the next-delta prediction the
//! neuron stands for and the confidence is a 3-bit saturating counter.

use std::collections::HashMap;

use pathfinder_telemetry as telemetry;

/// Maximum value of the 3-bit saturating confidence counter.
pub const CONFIDENCE_MAX: u8 = 7;
/// Confidence assigned when a label is first learned ("an initial
/// confidence value (1 in our study)").
pub const CONFIDENCE_INIT: u8 = 1;

/// One Training Table row.
#[derive(Debug, Clone, Default)]
pub struct TrainingEntry {
    /// Recent same-page deltas, oldest first, capped at `H`.
    pub deltas: Vec<i16>,
    /// Page offset of the most recent access ("last accessing page offset
    /// 22" in Figure 1).
    pub last_offset: u8,
    /// Number of touches to this (PC, page) so far.
    pub touches: u64,
    /// Neuron that fired for the most recent SNN query, awaiting a label.
    pub fired: Option<usize>,
    /// Predictions issued on the last access: `(neuron, slot, predicted
    /// offset)`, for confidence feedback.
    pub predictions: Vec<(usize, usize, u8)>,
    stamp: u64,
}

/// The (PC, page)-indexed Training Table with bounded capacity.
///
/// Eviction is generational: when the table reaches twice its configured
/// capacity the least-recently-touched half is dropped, which bounds memory
/// like the paper's 1K-row CAM while staying O(1) amortized.
#[derive(Debug, Clone)]
pub struct TrainingTable {
    entries: HashMap<(u64, u64), TrainingEntry>,
    capacity: usize,
    clock: u64,
    history: usize,
}

impl TrainingTable {
    /// Creates a table with the given row capacity and delta-history length.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `history == 0`.
    pub fn new(capacity: usize, history: usize) -> Self {
        assert!(capacity > 0 && history > 0, "capacity and history required");
        TrainingTable {
            entries: HashMap::with_capacity(2 * capacity),
            capacity,
            clock: 0,
            history,
        }
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up a row without touching recency.
    pub fn peek(&self, pc: u64, page: u64) -> Option<&TrainingEntry> {
        self.entries.get(&(pc, page))
    }

    /// Fetches (or creates) the row for `(pc, page)`, refreshing recency and
    /// evicting the oldest half if over budget.
    pub fn touch(&mut self, pc: u64, page: u64) -> &mut TrainingEntry {
        self.clock += 1;
        if telemetry::enabled() {
            if self.entries.contains_key(&(pc, page)) {
                telemetry::counter!("pf.train.hits", 1);
            } else {
                telemetry::counter!("pf.train.misses", 1);
            }
        }
        if self.entries.len() >= 2 * self.capacity && !self.entries.contains_key(&(pc, page)) {
            self.evict_oldest_half();
        }
        let entry = self.entries.entry((pc, page)).or_default();
        entry.stamp = self.clock;
        entry
    }

    /// Records an observed page offset, returning the same-page delta from
    /// the previous access to this row, if any.
    ///
    /// Repeat touches to the same block are ignored (delta 0): the paper's
    /// prefetcher operates on the LLC access stream, where the upper cache
    /// levels have already filtered same-block re-references, and a delta-0
    /// label could never be prefetched anyway.
    pub fn record_offset(&mut self, pc: u64, page: u64, offset: u8) -> Option<i16> {
        let history = self.history;
        let entry = self.touch(pc, page);
        entry.touches += 1;
        if entry.touches == 1 {
            entry.last_offset = offset;
            return None;
        }
        let delta = offset as i16 - entry.last_offset as i16;
        if delta == 0 {
            entry.touches -= 1; // a repeat is not a new observation
            return None;
        }
        entry.last_offset = offset;
        entry.deltas.push(delta);
        if entry.deltas.len() > history {
            entry.deltas.remove(0);
        }
        Some(delta)
    }

    fn evict_oldest_half(&mut self) {
        let mut stamps: Vec<u64> = self.entries.values().map(|e| e.stamp).collect();
        stamps.sort_unstable();
        let cutoff = stamps[stamps.len() / 2];
        let before = self.entries.len();
        self.entries.retain(|_, e| e.stamp > cutoff);
        telemetry::counter!("pf.train.evictions", (before - self.entries.len()) as u64);
    }
}

/// One (label, confidence) slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label {
    /// The next-delta this slot predicts.
    pub delta: i16,
    /// 3-bit saturating confidence.
    pub confidence: u8,
}

/// The per-neuron Inference Table.
#[derive(Debug, Clone)]
pub struct InferenceTable {
    slots: Vec<Vec<Option<Label>>>,
    labels_per_neuron: usize,
}

impl InferenceTable {
    /// Creates a table for `neurons` neurons with `labels_per_neuron` slots
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(neurons: usize, labels_per_neuron: usize) -> Self {
        assert!(neurons > 0 && labels_per_neuron > 0, "non-empty table");
        InferenceTable {
            slots: vec![vec![None; labels_per_neuron]; neurons],
            labels_per_neuron,
        }
    }

    /// Slots per neuron.
    pub fn labels_per_neuron(&self) -> usize {
        self.labels_per_neuron
    }

    /// Live labels of `neuron`, highest-confidence first, as
    /// `(slot, label)`.
    pub fn labels(&self, neuron: usize) -> Vec<(usize, Label)> {
        let mut out: Vec<(usize, Label)> = self.slots[neuron]
            .iter()
            .enumerate()
            .filter_map(|(i, l)| l.map(|l| (i, l)))
            .collect();
        out.sort_by_key(|(_, l)| std::cmp::Reverse(l.confidence));
        out
    }

    /// Whether `neuron` already carries `delta` as a label.
    pub fn has_label(&self, neuron: usize, delta: i16) -> bool {
        self.slots[neuron]
            .iter()
            .any(|l| l.is_some_and(|l| l.delta == delta))
    }

    /// Tries to assign `delta` to a free (or dead) slot of `neuron` with the
    /// initial confidence. Returns the slot used, or `None` if the neuron's
    /// slots are all alive with other labels.
    pub fn assign(&mut self, neuron: usize, delta: i16) -> Option<usize> {
        if self.has_label(neuron, delta) {
            return None;
        }
        let slot = self.slots[neuron]
            .iter()
            .position(|l| l.is_none_or(|l| l.confidence == 0))?;
        self.slots[neuron][slot] = Some(Label {
            delta,
            confidence: CONFIDENCE_INIT,
        });
        Some(slot)
    }

    /// Increments the slot's confidence (saturating at 7).
    pub fn reward(&mut self, neuron: usize, slot: usize) {
        if let Some(label) = &mut self.slots[neuron][slot] {
            label.confidence = (label.confidence + 1).min(CONFIDENCE_MAX);
        }
    }

    /// Decrements the slot's confidence; at zero the label is erased,
    /// re-initiating the labeling process (§3.4).
    pub fn penalize(&mut self, neuron: usize, slot: usize) {
        if let Some(label) = &mut self.slots[neuron][slot] {
            label.confidence = label.confidence.saturating_sub(1);
            if label.confidence == 0 {
                self.slots[neuron][slot] = None;
                telemetry::counter!("pf.labels.erased", 1);
            }
        }
    }

    /// Total live labels across all neurons.
    pub fn live_labels(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_offset_produces_deltas() {
        let mut t = TrainingTable::new(16, 3);
        assert_eq!(t.record_offset(1, 100, 16), None);
        assert_eq!(t.record_offset(1, 100, 17), Some(1));
        assert_eq!(t.record_offset(1, 100, 19), Some(2));
        assert_eq!(t.record_offset(1, 100, 22), Some(3));
        // Figure 1's example: history now holds {1, 2, 3}, last offset 22.
        let e = t.peek(1, 100).unwrap();
        assert_eq!(e.deltas, vec![1, 2, 3]);
        assert_eq!(e.last_offset, 22);
    }

    #[test]
    fn history_is_capped() {
        let mut t = TrainingTable::new(16, 3);
        for (i, off) in [0u8, 1, 3, 6, 10, 15].iter().enumerate() {
            let _ = t.record_offset(1, 100, *off);
            let _ = i;
        }
        let e = t.peek(1, 100).unwrap();
        assert_eq!(e.deltas, vec![3, 4, 5]);
    }

    #[test]
    fn streams_keyed_by_pc_and_page() {
        let mut t = TrainingTable::new(16, 3);
        t.record_offset(1, 100, 5);
        t.record_offset(2, 100, 50);
        t.record_offset(1, 200, 9);
        assert_eq!(t.len(), 3);
        assert_eq!(t.record_offset(1, 100, 6), Some(1));
        assert_eq!(t.record_offset(2, 100, 52), Some(2));
    }

    #[test]
    fn negative_deltas_tracked() {
        let mut t = TrainingTable::new(16, 3);
        t.record_offset(1, 1, 30);
        assert_eq!(t.record_offset(1, 1, 20), Some(-10));
    }

    #[test]
    fn capacity_is_bounded() {
        let mut t = TrainingTable::new(8, 3);
        for i in 0..100u64 {
            t.record_offset(i, i, 0);
        }
        assert!(t.len() <= 16, "table grew to {}", t.len());
        // Most recent entries survive.
        assert!(t.peek(99, 99).is_some());
    }

    #[test]
    fn inference_assign_and_lookup() {
        let mut it = InferenceTable::new(50, 2);
        assert_eq!(it.assign(17, 6), Some(0));
        assert!(it.has_label(17, 6));
        assert_eq!(
            it.labels(17)[0].1,
            Label {
                delta: 6,
                confidence: 1
            }
        );
        // Second label in the 2-label configuration (§3.4's example:
        // neuron 17 carries labels 6 and 12).
        assert_eq!(it.assign(17, 12), Some(1));
        assert_eq!(it.labels(17).len(), 2);
        // Third label is rejected.
        assert_eq!(it.assign(17, 30), None);
    }

    #[test]
    fn duplicate_label_not_assigned_twice() {
        let mut it = InferenceTable::new(4, 2);
        assert_eq!(it.assign(0, 5), Some(0));
        assert_eq!(it.assign(0, 5), None);
        assert_eq!(it.labels(0).len(), 1);
    }

    #[test]
    fn confidence_saturates_at_seven() {
        let mut it = InferenceTable::new(4, 1);
        it.assign(0, 3);
        for _ in 0..20 {
            it.reward(0, 0);
        }
        assert_eq!(it.labels(0)[0].1.confidence, CONFIDENCE_MAX);
    }

    #[test]
    fn zero_confidence_erases_label() {
        let mut it = InferenceTable::new(4, 1);
        it.assign(0, 3);
        it.penalize(0, 0); // 1 -> 0: erased
        assert!(it.labels(0).is_empty());
        assert_eq!(it.live_labels(), 0);
        // Slot is free again for a new label.
        assert_eq!(it.assign(0, 9), Some(0));
    }

    #[test]
    fn labels_sorted_by_confidence() {
        let mut it = InferenceTable::new(4, 2);
        it.assign(0, 3);
        it.assign(0, 8);
        it.reward(0, 1);
        it.reward(0, 1);
        let labels = it.labels(0);
        assert_eq!(labels[0].1.delta, 8);
        assert_eq!(labels[1].1.delta, 3);
    }
}
