//! The PATHFINDER prefetcher: SNN + Training/Inference tables orchestrated
//! per Figure 1's dataflow.

use pathfinder_prefetch::Prefetcher;
use pathfinder_sim::{Block, MemoryAccess, BLOCKS_PER_PAGE};
use pathfinder_snn::{DiehlCookNetwork, RunOutcome};
use pathfinder_telemetry as telemetry;

use std::collections::HashMap;

use crate::config::{PathfinderConfig, Readout};
use crate::encoder::PixelMatrixEncoder;
use crate::snn_cache::{CachedQuery, SnnQueryCache};
use crate::tables::{InferenceTable, TrainingTable};

/// Operational counters exposed for the paper's analyses (Table 6 issued
/// prefetches, labeling behaviour, SNN activity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathfinderStats {
    /// Demand accesses observed.
    pub accesses: u64,
    /// SNN queries performed.
    pub snn_queries: u64,
    /// Queries in which at least one neuron fired (or the 1-tick argmax was
    /// taken).
    pub fired: u64,
    /// Labels assigned to neurons.
    pub labels_assigned: u64,
    /// Predictions that matched the next access (confidence rewards).
    pub predictions_correct: u64,
    /// Predictions that missed (confidence penalties).
    pub predictions_wrong: u64,
    /// Prefetch addresses produced.
    pub prefetches_issued: u64,
    /// Full-interval queries where some neuron fired (Table 1 denominator).
    pub one_tick_comparisons: u64,
    /// Of those, queries where the first-tick argmax-potential neuron
    /// matched the 32-tick winner (Table 1 numerator).
    pub one_tick_matches: u64,
    /// Frozen-inference queries answered from the prediction cache.
    pub snn_cache_hits: u64,
    /// Frozen-inference queries that ran the SNN (cache miss or disabled).
    pub snn_cache_misses: u64,
    /// Prediction-cache entries evicted by the capacity bound.
    pub snn_cache_evictions: u64,
    /// Wholesale prediction-cache clears caused by weight-version changes.
    pub snn_cache_invalidations: u64,
}

impl PathfinderStats {
    /// Table 1's metric: fraction of full-interval queries whose first-tick
    /// highest-potential neuron equals the eventual most-firing neuron.
    pub fn one_tick_match_rate(&self) -> f64 {
        if self.one_tick_comparisons == 0 {
            0.0
        } else {
            self.one_tick_matches as f64 / self.one_tick_comparisons as f64
        }
    }
}

/// The PATHFINDER data prefetcher (§3).
///
/// # Examples
///
/// ```
/// use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher};
/// use pathfinder_prefetch::{generate_prefetches, Prefetcher};
/// use pathfinder_sim::{MemoryAccess, Trace};
///
/// // A strided stream inside pages: PATHFINDER should learn delta +2.
/// let trace: Trace = (0..2000)
///     .map(|i| {
///         let page = i / 30;
///         let off = (i % 30) * 2;
///         MemoryAccess::new(i, 0x400, page * 4096 + off * 64)
///     })
///     .collect();
/// let mut pf = PathfinderPrefetcher::new(PathfinderConfig::default())?;
/// let schedule = generate_prefetches(&mut pf, &trace, 2);
/// assert!(!schedule.is_empty());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug)]
pub struct PathfinderPrefetcher {
    config: PathfinderConfig,
    network: DiehlCookNetwork,
    encoder: PixelMatrixEncoder,
    training: TrainingTable,
    inference: InferenceTable,
    /// Memo of frozen-inference query results (see [`SnnQueryCache`]).
    cache: SnnQueryCache,
    stats: PathfinderStats,
}

impl PathfinderPrefetcher {
    /// Builds a PATHFINDER from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `config` is inconsistent.
    pub fn new(config: PathfinderConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(PathfinderPrefetcher {
            network: DiehlCookNetwork::new(config.snn_config(), config.seed)?,
            encoder: PixelMatrixEncoder::new(&config),
            training: TrainingTable::new(config.training_table_entries, config.history),
            inference: InferenceTable::new(config.neurons, config.labels_per_neuron),
            cache: SnnQueryCache::new(config.snn_cache_entries),
            stats: PathfinderStats::default(),
            config,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &PathfinderConfig {
        &self.config
    }

    /// Operational counters.
    pub fn stats(&self) -> &PathfinderStats {
        &self.stats
    }

    /// Read access to the inference table (for inspection in examples and
    /// tests).
    pub fn inference_table(&self) -> &InferenceTable {
        &self.inference
    }

    /// Queries the SNN and returns the firing neurons in priority order.
    ///
    /// `key` is the packed pixel-matrix key for `rates`
    /// ([`PixelMatrixEncoder::encode_key`]). Learning queries run the live
    /// kernels; duty-cycled inference queries are pure in
    /// `(key, readout, weight_version)` and route through the frozen kernel
    /// and its memo, so a repeated matrix skips the SNN entirely.
    ///
    /// `prepared` carries results pre-computed by a batched frozen pass
    /// ([`PathfinderPrefetcher::on_access_run`]): on a cache miss with the
    /// full-interval readout, a prepared digest is consumed instead of
    /// running the kernel inline. Because the packed matrix key determines
    /// the rate vector exactly (the encoding is collision-free within one
    /// configuration — pinned by the `encode_key` proptests) and prepared
    /// digests are only consulted at the weight version they were computed
    /// at, a prepared result is bit-identical to what the inline kernel
    /// would have produced.
    fn query_prepared(
        &mut self,
        rates: &[f32],
        key: u64,
        learn: bool,
        prepared: Option<&HashMap<u64, CachedQuery>>,
    ) -> Vec<usize> {
        self.stats.snn_queries += 1;
        telemetry::counter!("pf.snn.queries", 1);
        if learn {
            return match self.config.readout {
                Readout::FullInterval => {
                    let digest = Self::digest_outcome(self.network.present(rates, true));
                    self.apply_query_stats(&digest);
                    digest.order
                }
                Readout::OneTick => {
                    let winner = self.network.present_one_tick(rates, true);
                    self.stats.fired += 1;
                    vec![winner]
                }
            };
        }

        // Frozen phase: drop stale memo entries if learning moved the
        // weights since they were computed, then consult the cache. A miss
        // runs the pure inference kernel, whose result is valid for every
        // later query at this weight version.
        self.cache.sync_version(self.network.weight_version());
        let readout = self.config.readout;
        let digest = match self.cache.get(key, readout) {
            Some(cached) => cached,
            None => {
                let fresh = match readout {
                    Readout::FullInterval => match prepared.and_then(|m| m.get(&key)) {
                        Some(batched) => batched.clone(),
                        None => Self::digest_outcome(self.network.present_frozen(rates)),
                    },
                    // The 1-tick readout without learning is already a pure,
                    // RNG-free function of the weights and thresholds.
                    Readout::OneTick => CachedQuery {
                        order: vec![self.network.present_one_tick(rates, false)],
                        any_fired: true,
                        winner_matched_argmax: None,
                    },
                };
                self.cache.insert(key, readout, fresh.clone());
                fresh
            }
        };
        self.apply_query_stats(&digest);
        self.reconcile_cache_stats();
        digest.order
    }

    /// Collapses a presentation outcome into the memoized form: the neuron
    /// preference order (winner first, then remaining firers in fire order —
    /// multi-degree via lowered inhibition, §3.4) plus the two stat flags a
    /// cache hit must replay.
    fn digest_outcome(out: RunOutcome) -> CachedQuery {
        let mut order = Vec::with_capacity(out.fired.len());
        if let Some(w) = out.winner {
            order.push(w);
        }
        for n in out.fired {
            if !order.contains(&n) {
                order.push(n);
            }
        }
        CachedQuery {
            any_fired: !order.is_empty(),
            winner_matched_argmax: out.winner.map(|w| out.first_tick_argmax == w),
            order,
        }
    }

    /// Applies a query's stat flags — identically for fresh runs and cache
    /// hits, so the counters are invariant under memoization.
    fn apply_query_stats(&mut self, digest: &CachedQuery) {
        if digest.any_fired {
            self.stats.fired += 1;
        }
        if let Some(matched) = digest.winner_matched_argmax {
            self.stats.one_tick_comparisons += 1;
            if matched {
                self.stats.one_tick_matches += 1;
            }
        }
    }

    /// Folds the cache's monotonic counters into the prefetcher stats,
    /// emitting the per-query deltas as telemetry.
    fn reconcile_cache_stats(&mut self) {
        let cs = self.cache.stats();
        if telemetry::enabled() {
            telemetry::counter!("core.snn_cache.hits", cs.hits - self.stats.snn_cache_hits);
            telemetry::counter!(
                "core.snn_cache.misses",
                cs.misses - self.stats.snn_cache_misses
            );
            telemetry::counter!(
                "core.snn_cache.evictions",
                cs.evictions - self.stats.snn_cache_evictions
            );
            telemetry::counter!(
                "core.snn_cache.invalidations",
                cs.invalidations - self.stats.snn_cache_invalidations
            );
        }
        self.stats.snn_cache_hits = cs.hits;
        self.stats.snn_cache_misses = cs.misses;
        self.stats.snn_cache_evictions = cs.evictions;
        self.stats.snn_cache_invalidations = cs.invalidations;
    }

    /// Processes a run of accesses, batching each contiguous duty-cycled-off
    /// stretch's frozen SNN queries through one
    /// [`pathfinder_snn::DiehlCookNetwork::present_frozen_batch`] call.
    ///
    /// Per-access results and every [`PathfinderStats`] counter are
    /// identical to calling [`Prefetcher::on_access`] once per access — the
    /// batch only changes *when* the frozen kernel work happens, not what
    /// it computes. The run is segmented by the STDP duty cycle's phase at
    /// each access index; learning segments (and the 1-tick readout, whose
    /// frozen path is RNG-free and cheap) execute sequentially, while each
    /// frozen full-interval segment first *plans* its query keys against a
    /// snapshot of the training state, partitions them with
    /// [`SnnQueryCache::probe_batch`], presents the cache-missing rate
    /// matrices as lockstep lanes, and then replays the segment with the
    /// lane digests pre-staged. Planning is best-effort: an access whose
    /// realized key differs from the plan (e.g. a training-table eviction
    /// between plan and replay) simply misses the prepared map and falls
    /// back to the inline kernel.
    pub fn on_access_run(&mut self, accesses: &[MemoryAccess]) -> Vec<Vec<Block>> {
        let mut out = Vec::with_capacity(accesses.len());
        let duty = self.config.stdp_duty;
        // Each access (same-block repeats included) bumps the counter by
        // exactly one, so phase membership is known for the whole run up
        // front: access `k` runs at duty index `acc0 + k`.
        let acc0 = self.stats.accesses;
        let mut i = 0;
        while i < accesses.len() {
            let learn = duty.learning_enabled(acc0 + i as u64);
            let mut j = i + 1;
            while j < accesses.len() && duty.learning_enabled(acc0 + j as u64) == learn {
                j += 1;
            }
            let segment = &accesses[i..j];
            let prepared = if !learn && self.config.readout == Readout::FullInterval {
                self.prepare_frozen_segment(segment)
            } else {
                None
            };
            for access in segment {
                out.push(self.on_access_inner(access, prepared.as_ref()));
            }
            i = j;
        }
        out
    }

    /// Plans one duty-cycled-off segment's frozen queries and runs the
    /// cache-missing ones as one batched presentation.
    ///
    /// The plan replays the key-affecting slice of [`Prefetcher::on_access`]
    /// — same-block filtering, [`TrainingTable::record_offset`]'s delta
    /// bookkeeping, and the §3.4 encoding branch — against private
    /// snapshots of each (PC, page) stream's training entry, so nothing
    /// observable mutates before the real replay. Returns `None` when fewer
    /// than two lanes would compute (a singleton batch saves nothing).
    fn prepare_frozen_segment(
        &mut self,
        segment: &[MemoryAccess],
    ) -> Option<HashMap<u64, CachedQuery>> {
        struct PlanEntry {
            deltas: Vec<i16>,
            last_offset: u8,
            touches: u64,
        }
        let mut plan: HashMap<(u64, u64), PlanEntry> = HashMap::new();
        let mut keys = Vec::new();
        let mut rate_rows: Vec<Vec<f32>> = Vec::new();
        for access in segment {
            let pc = access.pc.raw();
            let block = access.block();
            let page = block.page();
            let offset = block.page_offset();
            let training = &self.training;
            let e = plan
                .entry((pc, page.0))
                .or_insert_with(|| match training.peek(pc, page.0) {
                    Some(e) => PlanEntry {
                        deltas: e.deltas.clone(),
                        last_offset: e.last_offset,
                        touches: e.touches,
                    },
                    None => PlanEntry {
                        deltas: Vec::new(),
                        last_offset: 0,
                        touches: 0,
                    },
                });
            // Same-block repeats neither query nor advance the stream.
            if e.touches > 0 && e.last_offset == offset {
                continue;
            }
            e.touches += 1;
            if e.touches == 1 {
                e.last_offset = offset;
            } else {
                // Nonzero by the same-block filter above.
                let delta = offset as i16 - e.last_offset as i16;
                e.last_offset = offset;
                e.deltas.push(delta);
                if e.deltas.len() > self.config.history {
                    e.deltas.remove(0);
                }
            }
            let (rates, key) = if e.deltas.len() >= self.config.history {
                (
                    self.encoder.encode(&e.deltas),
                    self.encoder.encode_key(&e.deltas),
                )
            } else if self.config.initial_access_encoding {
                if e.touches == 1 {
                    (
                        self.encoder.encode_initial(Some(offset), &[]),
                        self.encoder.encode_initial_key(Some(offset), &[]),
                    )
                } else {
                    (
                        self.encoder.encode_initial(None, &e.deltas),
                        self.encoder.encode_initial_key(None, &e.deltas),
                    )
                }
            } else {
                // Basic design: this access records history but won't query.
                continue;
            };
            keys.push(key);
            rate_rows.push(rates);
        }

        // Frozen queries never move the weight version, so one partition
        // covers the whole segment. The probe is read-only: the replay's
        // real cache lookups/inserts keep hit/miss accounting (and LRU
        // order) bit-identical to unbatched serving.
        self.cache.sync_version(self.network.weight_version());
        let probe =
            self.cache
                .probe_batch(self.network.weight_version(), Readout::FullInterval, &keys);
        if probe.compute.len() < 2 {
            return None;
        }
        let queries: Vec<&[f32]> = probe
            .compute
            .iter()
            .map(|&k| rate_rows[k].as_slice())
            .collect();
        let outcomes = self.network.present_frozen_batch(&queries);
        let mut prepared = HashMap::with_capacity(outcomes.len());
        for (&k, outcome) in probe.compute.iter().zip(outcomes) {
            prepared.insert(keys[k], Self::digest_outcome(outcome));
        }
        Some(prepared)
    }

    /// The [`Prefetcher::on_access`] body, with optionally pre-staged
    /// frozen-query digests from [`PathfinderPrefetcher::on_access_run`].
    fn on_access_inner(
        &mut self,
        access: &MemoryAccess,
        prepared: Option<&HashMap<u64, CachedQuery>>,
    ) -> Vec<Block> {
        self.stats.accesses += 1;
        telemetry::counter!("pf.accesses", 1);
        let learn = self
            .config
            .stdp_duty
            .learning_enabled(self.stats.accesses - 1);
        let pc = access.pc.raw();
        let block = access.block();
        let page = block.page();
        let offset = block.page_offset();

        // -- Feedback & labeling state from the previous access to this
        //    (PC, page) stream. Same-block repeats are invisible at the LLC
        //    (upper levels filter them), so they neither update confidence
        //    nor re-query the SNN.
        let (prev_fired, prev_predictions) = match self.training.peek(pc, page.0) {
            Some(e) if e.touches > 0 && e.last_offset == offset => {
                return Vec::new();
            }
            Some(e) => (e.fired, e.predictions.clone()),
            None => (None, Vec::new()),
        };

        // (1) Confidence estimation (§3.4): compare the predictions issued
        //     on the previous access with the block actually touched now.
        for (neuron, slot, predicted) in prev_predictions {
            if predicted == offset {
                self.inference.reward(neuron, slot);
                self.stats.predictions_correct += 1;
                telemetry::counter!("pf.confidence.rewards", 1);
            } else {
                self.inference.penalize(neuron, slot);
                self.stats.predictions_wrong += 1;
                telemetry::counter!("pf.confidence.penalties", 1);
            }
        }

        // (2) Record the access; the resulting delta labels the neuron that
        //     fired for the previous query (§3.3: "the Inference Table
        //     captures the next delta... we can now label the output
        //     neuron").
        let delta = self.training.record_offset(pc, page.0, offset);
        if let (Some(neuron), Some(d)) = (prev_fired, delta) {
            if self.inference.assign(neuron, d).is_some() {
                self.stats.labels_assigned += 1;
                telemetry::counter!("pf.labels.assigned", 1);
            }
        }

        // (3) Encode the current history and query the SNN.
        let entry = self.training.peek(pc, page.0).expect("entry just touched");
        let touches = entry.touches;
        let deltas = entry.deltas.clone();
        let (rates, key) = if deltas.len() >= self.config.history {
            (
                self.encoder.encode(&deltas),
                self.encoder.encode_key(&deltas),
            )
        } else if self.config.initial_access_encoding {
            // §3.4 "Initial Accesses to a Page".
            if touches == 1 {
                (
                    self.encoder.encode_initial(Some(offset), &[]),
                    self.encoder.encode_initial_key(Some(offset), &[]),
                )
            } else {
                (
                    self.encoder.encode_initial(None, &deltas),
                    self.encoder.encode_initial_key(None, &deltas),
                )
            }
        } else {
            // Basic design: wait for H deltas before querying.
            let e = self.training.touch(pc, page.0);
            e.fired = None;
            e.predictions = Vec::new();
            return Vec::new();
        };
        let fired = self.query_prepared(&rates, key, learn, prepared);

        // (4) Prediction: high-confidence labels of the firing neurons,
        //     best label first, capped at the prefetch degree and the page
        //     boundary ("predicts the next block to be accessed within that
        //     same page").
        // Every live label of a firing neuron constitutes a *prediction* and
        // is tracked for confidence feedback; only labels above the
        // confidence threshold also *issue* a prefetch.
        let mut prefetches = Vec::with_capacity(self.config.degree);
        let mut tracked_predictions = Vec::new();
        for &neuron in &fired {
            for (slot, label) in self.inference.labels(neuron) {
                let target = offset as i16 + label.delta;
                if !(0..BLOCKS_PER_PAGE as i16).contains(&target) {
                    continue;
                }
                let target = target as u8;
                tracked_predictions.push((neuron, slot, target));
                if label.confidence > self.config.confidence_threshold
                    && prefetches.len() < self.config.degree
                {
                    let b = page.block_at(target);
                    if b != block && !prefetches.contains(&b) {
                        prefetches.push(b);
                    }
                }
            }
            if prefetches.len() >= self.config.degree {
                break;
            }
        }

        // (5) Remember this query's winner and predictions for the next
        //     access to this stream.
        let entry = self.training.touch(pc, page.0);
        entry.fired = fired.first().copied();
        entry.predictions = tracked_predictions;

        self.stats.prefetches_issued += prefetches.len() as u64;
        telemetry::counter!("pf.prefetches.issued", prefetches.len() as u64);
        prefetches
    }
}

impl Prefetcher for PathfinderPrefetcher {
    fn name(&self) -> &str {
        "PATHFINDER"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        self.on_access_inner(access, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathfinder_prefetch::generate_prefetches;
    use pathfinder_sim::Trace;

    /// Small, fast configuration for unit tests.
    fn test_cfg() -> PathfinderConfig {
        PathfinderConfig {
            neurons: 20,
            delta_range: 31,
            readout: Readout::OneTick,
            ..PathfinderConfig::default()
        }
    }

    /// Pages visited with a repeating in-page delta pattern.
    fn delta_pattern_trace(pages: u64, deltas: &[u8]) -> Trace {
        let mut accesses = Vec::new();
        let mut id = 0u64;
        for page in 0..pages {
            let mut off = 0u64;
            accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
            id += 1;
            for rep in 0..12 {
                let d = deltas[rep % deltas.len()] as u64;
                if off + d >= 64 {
                    break;
                }
                off += d;
                accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
                id += 1;
            }
        }
        Trace::from_accesses(accesses)
    }

    #[test]
    fn learns_a_repeating_delta_pattern() {
        let trace = delta_pattern_trace(400, &[2]);
        let mut pf = PathfinderPrefetcher::new(test_cfg()).unwrap();
        let reqs = generate_prefetches(&mut pf, &trace, 2);
        assert!(!reqs.is_empty(), "pathfinder should issue prefetches");

        // In the back half of the trace (after learning), predictions
        // should frequently match the actual next access.
        let accesses = trace.accesses();
        let half = accesses.len() / 2;
        let mut hits = 0usize;
        let mut total = 0usize;
        for r in &reqs {
            let idx = r.trigger_instr_id as usize;
            if idx < half || idx + 1 >= accesses.len() {
                continue;
            }
            total += 1;
            if accesses[idx + 1].block() == r.block {
                hits += 1;
            }
        }
        assert!(total > 0, "prefetches in the trained half");
        assert!(
            hits as f64 / total as f64 > 0.4,
            "trained accuracy should be substantial: {hits}/{total}"
        );
    }

    #[test]
    fn stats_track_activity() {
        let trace = delta_pattern_trace(100, &[3]);
        let mut pf = PathfinderPrefetcher::new(test_cfg()).unwrap();
        let _ = generate_prefetches(&mut pf, &trace, 2);
        let s = pf.stats();
        assert_eq!(s.accesses, trace.len() as u64);
        assert!(s.snn_queries > 0);
        assert!(s.labels_assigned > 0, "labels should be learned");
        assert!(s.prefetches_issued > 0);
    }

    #[test]
    fn predictions_stay_within_page() {
        let trace = delta_pattern_trace(80, &[5]);
        let mut pf = PathfinderPrefetcher::new(test_cfg()).unwrap();
        let reqs = generate_prefetches(&mut pf, &trace, 2);
        let accesses = trace.accesses();
        for r in &reqs {
            let trigger_page = accesses[r.trigger_instr_id as usize].vaddr.page();
            assert_eq!(
                r.block.page(),
                trigger_page,
                "prefetch must stay in the trigger's page"
            );
        }
    }

    #[test]
    fn without_initial_access_encoding_waits_for_history() {
        let cfg = PathfinderConfig {
            initial_access_encoding: false,
            ..test_cfg()
        };
        let mut pf = PathfinderPrefetcher::new(cfg).unwrap();
        // First three accesses to a page: no prefetches possible (H=3
        // deltas require 4 accesses).
        for i in 0..3u64 {
            let out = pf.on_access(&MemoryAccess::new(i, 0x400, 7 * 4096 + i * 2 * 64));
            assert!(out.is_empty(), "access {i} should not prefetch yet");
        }
        assert_eq!(pf.stats().snn_queries, 0);
    }

    #[test]
    fn initial_access_encoding_queries_immediately() {
        let mut pf = PathfinderPrefetcher::new(test_cfg()).unwrap();
        pf.on_access(&MemoryAccess::new(0, 0x400, 7 * 4096));
        assert_eq!(pf.stats().snn_queries, 1, "first touch queries the SNN");
    }

    #[test]
    fn confidence_feedback_flows() {
        let trace = delta_pattern_trace(300, &[2]);
        let mut pf = PathfinderPrefetcher::new(test_cfg()).unwrap();
        let _ = generate_prefetches(&mut pf, &trace, 2);
        let s = *pf.stats();
        assert!(
            s.predictions_correct > 0,
            "some predictions should be confirmed: {s:?}"
        );
    }

    #[test]
    fn stdp_duty_cycle_limits_learning() {
        use crate::config::StdpDutyCycle;
        let cfg = PathfinderConfig {
            stdp_duty: StdpDutyCycle::first_n_of_5000(10),
            ..test_cfg()
        };
        let trace = delta_pattern_trace(50, &[2]);
        let mut pf = PathfinderPrefetcher::new(cfg).unwrap();
        // Just verifies the configuration is exercised without error.
        let reqs = generate_prefetches(&mut pf, &trace, 2);
        let _ = reqs;
        assert_eq!(pf.stats().accesses, trace.len() as u64);
    }

    #[test]
    fn multi_label_records_two_patterns() {
        // Alternate two delta patterns; with 2 labels per neuron the table
        // can hold both.
        let mut accesses = Vec::new();
        let mut id = 0u64;
        for page in 0..300u64 {
            let deltas: &[u64] = if page % 2 == 0 {
                &[2, 2, 2, 2]
            } else {
                &[2, 2, 2, 9]
            };
            let mut off = 0u64;
            accesses.push(MemoryAccess::new(id, 0x400, page * 4096));
            id += 1;
            for &d in deltas {
                off += d;
                if off >= 64 {
                    break;
                }
                accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
                id += 1;
            }
        }
        let trace = Trace::from_accesses(accesses);
        let mut pf = PathfinderPrefetcher::new(test_cfg()).unwrap();
        let _ = generate_prefetches(&mut pf, &trace, 2);
        assert!(pf.inference_table().live_labels() >= 2);
    }

    #[test]
    fn rejects_invalid_config() {
        let cfg = PathfinderConfig {
            delta_range: 0,
            ..PathfinderConfig::default()
        };
        assert!(PathfinderPrefetcher::new(cfg).is_err());
    }

    /// Duty-cycled config whose off phases route through the batched
    /// frozen-inference path (full-interval readout).
    fn duty_cfg(snn_cache_entries: usize) -> PathfinderConfig {
        use crate::config::StdpDutyCycle;
        PathfinderConfig {
            neurons: 20,
            delta_range: 31,
            readout: Readout::FullInterval,
            stdp_duty: StdpDutyCycle::first_n_of_5000(60),
            snn_cache_entries,
            ..PathfinderConfig::default()
        }
    }

    /// A trace with enough stream variety that off-phase segments contain
    /// fresh keys (compute lanes), repeats (cache hits), and intra-segment
    /// duplicates.
    fn varied_trace(n: usize) -> Trace {
        let accesses = (0..n as u64)
            .map(|i| {
                let pc = 0x400 + (i % 4) * 8;
                let page = i % 7;
                let off = (i * (2 + i % 3)) % 64;
                MemoryAccess::new(i, pc, page * 4096 + off * 64)
            })
            .collect::<Vec<_>>();
        Trace::from_accesses(accesses)
    }

    fn assert_run_matches_sequential(cfg: PathfinderConfig, chunk: usize) {
        let trace = varied_trace(600);
        let mut seq = PathfinderPrefetcher::new(cfg).unwrap();
        let mut run = PathfinderPrefetcher::new(cfg).unwrap();
        let expected: Vec<Vec<Block>> = trace.accesses().iter().map(|a| seq.on_access(a)).collect();
        let mut got = Vec::new();
        for chunk in trace.accesses().chunks(chunk) {
            got.extend(run.on_access_run(chunk));
        }
        assert_eq!(got, expected, "per-access prefetches must match");
        assert_eq!(
            run.stats(),
            seq.stats(),
            "every stats counter must be invariant under batching"
        );
    }

    #[test]
    fn on_access_run_matches_sequential_on_duty_cycled_streams() {
        // Chunk size 37 puts phase boundaries mid-chunk, so runs mix
        // learning and frozen segments.
        assert_run_matches_sequential(duty_cfg(1024), 37);
    }

    #[test]
    fn on_access_run_matches_sequential_with_cache_disabled() {
        // Capacity 0: no memoization anywhere, so every off-phase query —
        // intra-batch duplicates included — must still run exactly once per
        // occurrence.
        assert_run_matches_sequential(duty_cfg(0), 53);
    }

    #[test]
    fn on_access_run_matches_sequential_with_one_tick_readout() {
        // The 1-tick readout never batches; the run path must still be a
        // faithful sequential replay.
        let cfg = PathfinderConfig {
            readout: Readout::OneTick,
            ..duty_cfg(1024)
        };
        assert_run_matches_sequential(cfg, 41);
    }

    #[test]
    fn on_access_run_matches_sequential_without_initial_encoding() {
        // The basic design's "wait for H deltas" branch exercises the
        // plan's no-query arm.
        let cfg = PathfinderConfig {
            initial_access_encoding: false,
            ..duty_cfg(1024)
        };
        assert_run_matches_sequential(cfg, 64);
    }

    #[test]
    fn on_access_run_on_empty_run_is_a_noop() {
        let mut pf = PathfinderPrefetcher::new(duty_cfg(1024)).unwrap();
        assert!(pf.on_access_run(&[]).is_empty());
        assert_eq!(pf.stats().accesses, 0);
    }
}
