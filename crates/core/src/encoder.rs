//! The Memory Access Pixel Matrix (§3.2): delta histories become `D x H`
//! images the SNN classifies like MNIST digits.

use crate::config::PathfinderConfig;

/// Fixed shift applied to the middle delta row when reordering is enabled,
/// reducing aliasing between enlarged pixels of nearby deltas (§3.4).
const REORDER_SHIFT: i16 = 5;

/// Intensity of the 4-neighborhood pixels in enlarged-pixel mode.
const NEIGHBOR_INTENSITY: f32 = 0.5;

/// Encodes delta histories into pixel-intensity vectors for the SNN.
///
/// Each of the `H` rows represents one delta in the history; the column
/// within the row encodes the delta value, with column `delta_range`
/// representing delta 0.
///
/// # Examples
///
/// ```
/// use pathfinder_core::{PathfinderConfig, PixelMatrixEncoder};
///
/// let cfg = PathfinderConfig::default();
/// let enc = PixelMatrixEncoder::new(&cfg);
/// let rates = enc.encode(&[1, 2, 3]);
/// assert_eq!(rates.len(), cfg.n_input());
/// assert!(rates.iter().any(|&r| r > 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct PixelMatrixEncoder {
    delta_range: i16,
    row_width: usize,
    history: usize,
    enlarged: bool,
    reorder: bool,
}

impl PixelMatrixEncoder {
    /// Creates an encoder matching the prefetcher configuration.
    pub fn new(cfg: &PathfinderConfig) -> Self {
        PixelMatrixEncoder {
            delta_range: cfg.delta_range as i16,
            row_width: cfg.row_width(),
            history: cfg.history,
            enlarged: cfg.enlarged_pixels,
            reorder: cfg.reorder_pixels,
        }
    }

    /// Row width `D`.
    pub fn row_width(&self) -> usize {
        self.row_width
    }

    /// Total encoded length `D x H`.
    pub fn len(&self) -> usize {
        self.row_width * self.history
    }

    /// Whether the encoder output would be empty (never true).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Encodes the last `H` deltas (oldest first) into pixel intensities.
    /// Deltas outside `[-delta_range, delta_range]` are clamped to the edge
    /// columns. Histories shorter than `H` are left-padded with zero rows.
    ///
    /// # Panics
    ///
    /// Panics if more than `H` deltas are supplied.
    pub fn encode(&self, deltas: &[i16]) -> Vec<f32> {
        assert!(
            deltas.len() <= self.history,
            "history holds at most {} deltas",
            self.history
        );
        let mut rates = vec![0.0f32; self.len()];
        let pad = self.history - deltas.len();
        for (row, &d) in deltas.iter().enumerate() {
            self.paint(&mut rates, pad + row, d);
        }
        rates
    }

    /// Encodes one of the paper's initial-access special cases (§3.4):
    ///
    /// * first touch (offset `of1`):  pattern `{OF1, 0, 0}`
    /// * second touch (delta `d1`):   pattern `{0, 0, D1}` (zeros moved to
    ///   the front so the SNN can tell offsets from deltas)
    /// * third touch (`d1`, `d2`):    pattern `{0, D1, D2}`
    pub fn encode_initial(&self, offset: Option<u8>, deltas: &[i16]) -> Vec<f32> {
        let mut rates = vec![0.0f32; self.len()];
        match (offset, deltas.len()) {
            (Some(of1), 0) => {
                // {OF1, 0, 0}: offset in the first row, zero rows after.
                self.paint(&mut rates, 0, of1 as i16);
                for row in 1..self.history {
                    self.paint(&mut rates, row, 0);
                }
            }
            (None, n) if n < self.history => {
                // {0, ..., D1, ..}: leading zero rows, then the deltas.
                let zeros = self.history - n;
                for row in 0..zeros {
                    self.paint(&mut rates, row, 0);
                }
                for (i, &d) in deltas.iter().enumerate() {
                    self.paint(&mut rates, zeros + i, d);
                }
            }
            _ => return self.encode(deltas),
        }
        rates
    }

    /// Packs the matrix a delta history would encode to into one `u64` —
    /// an exact key for memoizing SNN queries against frozen weights.
    ///
    /// Exactness: `encode` paints one center pixel per row (intensity 1.0)
    /// and, in enlarged mode, derives every 0.5 neighbor from those centers
    /// as an order-independent union — so the rate vector is a pure function
    /// of the per-row center columns. The key records exactly those columns
    /// (8 bits per row: `0x80 | column`, `0x00` for an unpainted pad row),
    /// hence two histories share a key iff they encode to the same vector.
    /// See `tests/encode_key_prop.rs` for the property-based proof.
    ///
    /// # Panics
    ///
    /// Panics if more than `H` deltas are supplied. Requires `history <= 8`
    /// and `row_width <= 128` (enforced by `PathfinderConfig::validate`).
    pub fn encode_key(&self, deltas: &[i16]) -> u64 {
        assert!(
            deltas.len() <= self.history,
            "history holds at most {} deltas",
            self.history
        );
        let pad = self.history - deltas.len();
        let mut key = 0u64;
        for (row, &d) in deltas.iter().enumerate() {
            key |= self.row_key(pad + row, d);
        }
        key
    }

    /// Key counterpart of [`PixelMatrixEncoder::encode_initial`]: packs the
    /// initial-access special-case matrices with the same per-row rule as
    /// [`PixelMatrixEncoder::encode_key`]. Explicit zero rows (the paper's
    /// `{OF1, 0, 0}` / `{0, .., D1, ..}` placements) are painted rows and
    /// therefore keyed as `0x80 | center`, distinct from unpainted pad rows.
    pub fn encode_initial_key(&self, offset: Option<u8>, deltas: &[i16]) -> u64 {
        match (offset, deltas.len()) {
            (Some(of1), 0) => {
                let mut key = self.row_key(0, of1 as i16);
                for row in 1..self.history {
                    key |= self.row_key(row, 0);
                }
                key
            }
            (None, n) if n < self.history => {
                let zeros = self.history - n;
                let mut key = 0u64;
                for row in 0..zeros {
                    key |= self.row_key(row, 0);
                }
                for (i, &d) in deltas.iter().enumerate() {
                    key |= self.row_key(zeros + i, d);
                }
                key
            }
            _ => self.encode_key(deltas),
        }
    }

    /// One row's contribution to the packed key: presence flag plus the
    /// center column, shifted into the row's byte.
    fn row_key(&self, row: usize, delta: i16) -> u64 {
        debug_assert!(
            self.history <= 8 && self.row_width <= 128,
            "packed key needs history <= 8 rows of <= 128 columns"
        );
        (0x80 | self.column_of(row, delta) as u64) << (8 * row)
    }

    /// Column a clamped delta lands in within `row`, including the optional
    /// middle-row reorder shift. Shared by `paint` and the key functions so
    /// the packed key stays exact by construction.
    fn column_of(&self, row: usize, delta: i16) -> usize {
        let mut d = delta.clamp(-self.delta_range, self.delta_range);
        // Reorder: shift the middle row by a fixed constant to de-alias
        // neighboring enlarged pixels.
        if self.reorder && self.history >= 3 && row == self.history / 2 {
            d = (d + REORDER_SHIFT).clamp(-self.delta_range, self.delta_range);
        }
        (d + self.delta_range) as usize
    }

    /// Paints one delta into one row, applying reorder shift and pixel
    /// enlargement.
    fn paint(&self, rates: &mut [f32], row: usize, delta: i16) {
        let col = self.column_of(row, delta);
        let base = row * self.row_width;
        rates[base + col] = 1.0;
        if self.enlarged {
            // Light the 4-neighborhood: left/right within the row, and the
            // same column in the rows above/below.
            if col > 0 {
                bump(&mut rates[base + col - 1]);
            }
            if col + 1 < self.row_width {
                bump(&mut rates[base + col + 1]);
            }
            if row > 0 {
                bump(&mut rates[base - self.row_width + col]);
            }
            if row + 1 < self.history {
                bump(&mut rates[base + self.row_width + col]);
            }
        }
    }
}

fn bump(r: &mut f32) {
    *r = r.max(NEIGHBOR_INTENSITY);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathfinderConfig;

    fn encoder(enlarged: bool, reorder: bool) -> PixelMatrixEncoder {
        let cfg = PathfinderConfig {
            enlarged_pixels: enlarged,
            reorder_pixels: reorder,
            ..PathfinderConfig::default()
        };
        PixelMatrixEncoder::new(&cfg)
    }

    fn active(rates: &[f32]) -> Vec<usize> {
        rates
            .iter()
            .enumerate()
            .filter(|(_, &r)| r > 0.0)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn plain_encoding_one_pixel_per_row() {
        let enc = encoder(false, false);
        let rates = enc.encode(&[1, 2, 3]);
        let on = active(&rates);
        assert_eq!(on.len(), 3);
        // Row r, delta d → index r*127 + d + 63.
        assert_eq!(on, vec![64, 127 + 65, 254 + 66]);
    }

    #[test]
    fn figure1_example_deltas() {
        // The paper's Figure 1 walks {1, 2, 3} through a D=127 matrix.
        let enc = encoder(false, false);
        let rates = enc.encode(&[1, 2, 3]);
        assert_eq!(rates.iter().filter(|&&r| r == 1.0).count(), 3);
    }

    #[test]
    fn enlarged_pixels_light_neighbors() {
        let enc = encoder(true, false);
        let rates = enc.encode(&[0]);
        // The single center pixel plus its in-row and cross-row neighbors.
        let on = active(&rates);
        assert!(on.len() >= 4, "neighborhood should be lit: {on:?}");
        assert_eq!(rates.iter().filter(|&&r| r == 1.0).count(), 1);
        assert!(rates.contains(&0.5));
    }

    #[test]
    fn reorder_shifts_middle_row_only() {
        let plain = encoder(false, false).encode(&[10, 10, 10]);
        let reordered = encoder(false, true).encode(&[10, 10, 10]);
        let w = 127;
        // Rows 0 and 2 identical; row 1 shifted by the constant.
        assert_eq!(&plain[..w], &reordered[..w]);
        assert_eq!(&plain[2 * w..], &reordered[2 * w..]);
        assert_ne!(&plain[w..2 * w], &reordered[w..2 * w]);
    }

    #[test]
    fn deltas_clamp_to_range() {
        let cfg = PathfinderConfig {
            delta_range: 15,
            enlarged_pixels: false,
            reorder_pixels: false,
            ..PathfinderConfig::default()
        };
        let enc = PixelMatrixEncoder::new(&cfg);
        let rates = enc.encode(&[100, -100]);
        let on = active(&rates);
        // History of 2 deltas is left-padded one row; clamped to edges.
        assert_eq!(on.len(), 2);
        assert_eq!(on[0] % 31, 30); // +15 clamped, rightmost column
        assert_eq!(on[1] % 31, 0); // -15 clamped, leftmost column
    }

    #[test]
    fn short_history_pads_leading_rows() {
        let enc = encoder(false, false);
        let rates = enc.encode(&[7]);
        let on = active(&rates);
        assert_eq!(on.len(), 1);
        assert!(on[0] >= 2 * 127, "single delta goes in the last row");
    }

    #[test]
    fn initial_access_offset_pattern_differs_from_delta_pattern() {
        let enc = encoder(false, false);
        // First touch at offset 5 vs a delta history ending in 5: the
        // paper's zero-placement rule must make them distinct.
        let first_touch = enc.encode_initial(Some(5), &[]);
        let one_delta = enc.encode_initial(None, &[5]);
        assert_ne!(first_touch, one_delta);
        // {OF1, 0, 0}: offset row first.
        let on = active(&first_touch);
        assert!(on[0] < 127, "offset goes in row 0: {on:?}");
        // {0, 0, D1}: delta in the last row.
        let on = active(&one_delta);
        assert!(
            *on.last().unwrap() >= 2 * 127,
            "delta goes in row 2: {on:?}"
        );
    }

    #[test]
    fn initial_two_deltas_pattern() {
        let enc = encoder(false, false);
        let rates = enc.encode_initial(None, &[2, 4]);
        let on = active(&rates);
        // {0, D1, D2}: zero row, then the two deltas.
        assert_eq!(on.len(), 3);
        assert_eq!(on[0], 63); // delta 0 pixel in row 0
        assert_eq!(on[1], 127 + 65);
        assert_eq!(on[2], 254 + 67);
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn rejects_oversized_history() {
        let enc = encoder(false, false);
        let _ = enc.encode(&[1, 2, 3, 4]);
    }

    #[test]
    fn key_matches_vector_identity() {
        let enc = encoder(true, true);
        // Same history → same key; clamped aliases collapse to one key
        // exactly like the vectors do; different histories differ.
        assert_eq!(enc.encode_key(&[1, 2, 3]), enc.encode_key(&[1, 2, 3]));
        assert_eq!(enc.encode(&[100, 2, 3]), enc.encode(&[200, 2, 3]));
        assert_eq!(enc.encode_key(&[100, 2, 3]), enc.encode_key(&[200, 2, 3]));
        assert_ne!(enc.encode(&[1, 2, 3]), enc.encode(&[1, 2, 4]));
        assert_ne!(enc.encode_key(&[1, 2, 3]), enc.encode_key(&[1, 2, 4]));
    }

    #[test]
    fn short_history_key_differs_from_explicit_zero_rows() {
        let enc = encoder(false, false);
        // encode(&[5]) pad-fills rows 0-1 (dark), while the initial-access
        // pattern {0, 0, D1} paints explicit zero pixels there — the
        // vectors differ, so the keys must too.
        assert_ne!(enc.encode(&[5]), enc.encode_initial(None, &[5]));
        assert_ne!(enc.encode_key(&[5]), enc.encode_initial_key(None, &[5]));
    }

    #[test]
    fn initial_key_special_cases_mirror_encode_initial() {
        let enc = encoder(true, false);
        // First-touch offset vs one-delta history: distinct vectors and keys.
        assert_ne!(
            enc.encode_initial(Some(5), &[]),
            enc.encode_initial(None, &[5])
        );
        assert_ne!(
            enc.encode_initial_key(Some(5), &[]),
            enc.encode_initial_key(None, &[5])
        );
        // A full history falls through to the plain encoding in both.
        assert_eq!(enc.encode_initial(None, &[1, 2, 3]), enc.encode(&[1, 2, 3]));
        assert_eq!(
            enc.encode_initial_key(None, &[1, 2, 3]),
            enc.encode_key(&[1, 2, 3])
        );
    }

    #[test]
    fn key_is_independent_of_enlargement_but_not_reorder() {
        // Enlarged neighbors are derived from the centers, so for a fixed
        // history the plain/enlarged *keys* coincide (each encoder keys its
        // own vector space). Reorder moves a center, so keys must move.
        let plain = encoder(false, false);
        let big = encoder(true, false);
        let shifted = encoder(false, true);
        assert_eq!(plain.encode_key(&[1, 2, 3]), big.encode_key(&[1, 2, 3]));
        assert_ne!(
            plain.encode_key(&[10, 10, 10]),
            shifted.encode_key(&[10, 10, 10])
        );
    }
}
