//! Extensions beyond the paper's evaluated design, implementing its stated
//! future work (§3.4: "Predicting the first access to a page that has not
//! been touched in a while (a cold page access) is left for future work").

use std::collections::HashMap;

use pathfinder_prefetch::Prefetcher;
use pathfinder_sim::{Block, MemoryAccess, Page};

/// Predicts the *first block of the next page* a load stream will touch.
///
/// PATHFINDER proper only prefetches within the current page; every first
/// touch to a cold page is a guaranteed miss it cannot cover. This extension
/// records, per PC, the page-to-page transition graph along with the first
/// offset touched in the successor page, and prefetches that block when the
/// stream enters a page whose successor is known with confidence.
///
/// # Examples
///
/// ```
/// use pathfinder_core::extensions::CrossPagePredictor;
/// use pathfinder_prefetch::Prefetcher;
/// use pathfinder_sim::MemoryAccess;
///
/// let mut xp = CrossPagePredictor::new(2);
/// // Stream touching pages 10 -> 11 -> 12 repeatedly...
/// for rep in 0..3 {
///     for page in 10u64..13 {
///         let _ = xp.on_access(&MemoryAccess::new(rep, 0x400, page * 4096 + 5 * 64));
///     }
/// }
/// // ...on re-entering page 10 it prefetches page 11's entry block.
/// let out = xp.on_access(&MemoryAccess::new(9, 0x400, 10 * 4096 + 5 * 64));
/// assert!(!out.is_empty());
/// assert_eq!(out[0].page().0, 11);
/// ```
#[derive(Debug)]
pub struct CrossPagePredictor {
    /// `(pc, page) -> (successor page, first offset, 2-bit confidence)`.
    transitions: HashMap<(u64, u64), (u64, u8, u8)>,
    /// Last page per PC.
    last_page: HashMap<u64, Page>,
    degree: usize,
    max_entries: usize,
    /// Transition predictions issued.
    issued: u64,
}

impl CrossPagePredictor {
    /// Creates a predictor issuing up to `degree` cross-page prefetches per
    /// page transition.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        CrossPagePredictor {
            transitions: HashMap::new(),
            last_page: HashMap::new(),
            degree,
            max_entries: 1 << 16,
            issued: 0,
        }
    }

    /// Cross-page prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Number of learned page transitions.
    pub fn learned_transitions(&self) -> usize {
        self.transitions.len()
    }
}

impl Prefetcher for CrossPagePredictor {
    fn name(&self) -> &str {
        "CrossPage"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        let pc = access.pc.raw();
        let block = access.block();
        let page = block.page();
        let offset = block.page_offset();

        let prev = self.last_page.insert(pc, page);
        let entered_new_page = prev.is_some_and(|p| p != page);

        // Learn: the previous page's successor is this page (confidence
        // counter handles alternating successors).
        if let Some(prev_page) = prev {
            if prev_page != page {
                if self.transitions.len() >= self.max_entries {
                    self.transitions.clear();
                }
                let entry = self
                    .transitions
                    .entry((pc, prev_page.0))
                    .or_insert((page.0, offset, 0));
                if entry.0 == page.0 {
                    entry.1 = offset;
                    entry.2 = (entry.2 + 1).min(3);
                } else if entry.2 == 0 {
                    *entry = (page.0, offset, 1);
                } else {
                    entry.2 -= 1;
                }
            }
        }

        // Predict: on entering a page, walk the learned transition chain.
        if !entered_new_page {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.degree);
        let mut cur = page.0;
        for _ in 0..self.degree {
            match self.transitions.get(&(pc, cur)) {
                Some(&(next, off, conf)) if conf >= 2 => {
                    let b = Page(next).block_at(off);
                    if b != block && !out.contains(&b) {
                        out.push(b);
                    }
                    cur = next;
                }
                _ => break,
            }
        }
        self.issued += out.len() as u64;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(i: u64, pc: u64, page: u64, off: u64) -> MemoryAccess {
        MemoryAccess::new(i, pc, page * 4096 + off * 64)
    }

    #[test]
    fn learns_page_chain_and_replays() {
        let mut xp = CrossPagePredictor::new(2);
        // Train the chain 1 -> 2 -> 3 three times.
        let mut id = 0u64;
        for _ in 0..3 {
            for p in 1u64..=3 {
                xp.on_access(&access(id, 7, p, p + 4));
                id += 1;
            }
        }
        assert_eq!(xp.learned_transitions(), 3); // 1->2, 2->3, 3->1 (wrap)
                                                 // Entering page 1 again predicts page 2's and page 3's entry blocks.
        let out = xp.on_access(&access(id, 7, 1, 5));
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], Page(2).block_at(6));
        assert_eq!(out[1], Page(3).block_at(7));
    }

    #[test]
    fn requires_confidence_before_predicting() {
        let mut xp = CrossPagePredictor::new(1);
        xp.on_access(&access(0, 7, 1, 0));
        xp.on_access(&access(1, 7, 2, 0)); // 1->2 seen once (conf 1)
        let out = xp.on_access(&access(2, 7, 1, 0));
        assert!(out.is_empty(), "single observation is not enough");
    }

    #[test]
    fn changing_successor_decays_confidence() {
        let mut xp = CrossPagePredictor::new(1);
        let mut id = 0u64;
        // Establish 1 -> 2 firmly.
        for _ in 0..4 {
            xp.on_access(&access(id, 7, 1, 0));
            id += 1;
            xp.on_access(&access(id, 7, 2, 0));
            id += 1;
        }
        // Phase change: 1 -> 9 repeatedly.
        for _ in 0..6 {
            xp.on_access(&access(id, 7, 1, 0));
            id += 1;
            xp.on_access(&access(id, 7, 9, 3));
            id += 1;
        }
        let out = xp.on_access(&access(id, 7, 1, 0));
        assert_eq!(out, vec![Page(9).block_at(3)], "adapts to the new phase");
    }

    #[test]
    fn transitions_are_pc_local() {
        let mut xp = CrossPagePredictor::new(1);
        let mut id = 0u64;
        for _ in 0..3 {
            xp.on_access(&access(id, 1, 10, 0));
            id += 1;
            xp.on_access(&access(id, 1, 11, 0));
            id += 1;
            xp.on_access(&access(id, 2, 10, 0));
            id += 1;
            xp.on_access(&access(id, 2, 50, 0));
            id += 1;
        }
        let via_pc1 = xp.on_access(&access(id, 1, 10, 0));
        let via_pc2 = xp.on_access(&access(id + 1, 2, 10, 0));
        assert_eq!(via_pc1[0].page().0, 11);
        assert_eq!(via_pc2[0].page().0, 50);
    }

    #[test]
    fn same_page_accesses_predict_nothing() {
        let mut xp = CrossPagePredictor::new(1);
        for i in 0..10u64 {
            let out = xp.on_access(&access(i, 7, 5, i % 64));
            assert!(out.is_empty());
        }
        assert_eq!(xp.issued(), 0);
    }
}
