//! Statistical characterization of the synthetic workloads: the properties
//! the paper's Tables 7/8 and §5 discussion rely on.

use std::collections::HashMap;

use pathfinder_traces::Workload;

const LOADS: usize = 30_000;
const SEED: u64 = 7;

fn dependence_share(w: Workload) -> f64 {
    let t = w.generate(LOADS, SEED);
    let dep = t.iter().filter(|a| a.depends_on_prev).count();
    dep as f64 / t.len() as f64
}

#[test]
fn pointer_chasing_workloads_are_dependence_heavy() {
    let mcf = dependence_share(Workload::Mcf);
    let sphinx = dependence_share(Workload::Sphinx);
    assert!(mcf > 0.4, "mcf dependence share {mcf}");
    assert!(sphinx < 0.15, "sphinx dependence share {sphinx}");
    assert!(mcf > 3.0 * sphinx, "mcf {mcf} vs sphinx {sphinx}");
}

#[test]
fn graph_workloads_mark_indexed_reads_dependent() {
    for w in [Workload::Bfs10, Workload::Cc5] {
        let share = dependence_share(w);
        assert!(
            (0.1..0.9).contains(&share),
            "{w}: graph loads mix streams and indexed reads, got {share}"
        );
    }
}

#[test]
fn small_delta_fraction_orders_like_table7() {
    // Table 7's shape: stream-heavy traces keep far more deltas within
    // (-31,31) than pointer-chasing ones.
    let frac = |w: Workload| {
        let t = w.generate(LOADS, SEED);
        let small = t
            .accesses()
            .windows(2)
            .filter(|p| p[0].block().delta(p[1].block()).abs() < 31)
            .count();
        small as f64 / t.len() as f64
    };
    let sphinx = frac(Workload::Sphinx);
    let bfs = frac(Workload::Bfs10);
    let mcf = frac(Workload::Mcf);
    assert!(sphinx > 0.5, "sphinx {sphinx}");
    assert!(bfs > 0.3, "bfs {bfs}");
    assert!(mcf < sphinx, "mcf {mcf} should trail sphinx {sphinx}");
}

#[test]
fn distinct_deltas_are_few_like_table8() {
    // Table 8: the number of distinct (PC, page)-qualified deltas per 1K
    // accesses is small relative to the delta count for every trace.
    for w in Workload::ALL {
        let t = w.generate(10_000, SEED);
        let mut per_window_distinct = Vec::new();
        let mut last: HashMap<(u64, u64), u8> = HashMap::new();
        for chunk in t.accesses().chunks(1000) {
            let mut counts: HashMap<i16, usize> = HashMap::new();
            for a in chunk {
                let key = (a.pc.raw(), a.vaddr.page().0);
                let off = a.vaddr.page_offset_blocks();
                if let Some(prev) = last.insert(key, off) {
                    let d = off as i16 - prev as i16;
                    if d != 0 {
                        *counts.entry(d).or_insert(0) += 1;
                    }
                }
            }
            per_window_distinct.push(counts.len());
        }
        let avg =
            per_window_distinct.iter().sum::<usize>() as f64 / per_window_distinct.len() as f64;
        assert!(
            avg < 250.0,
            "{w}: distinct page-local deltas per 1K should be few, got {avg}"
        );
    }
}

#[test]
fn workloads_use_multiple_pcs() {
    // PATHFINDER/SPP/SISB all key on the PC; each workload must expose a
    // stable, small set of load sites.
    for w in Workload::ALL {
        let t = w.generate(5_000, SEED);
        let pcs: std::collections::HashSet<u64> = t.iter().map(|a| a.pc.raw()).collect();
        assert!(
            (2..=64).contains(&pcs.len()),
            "{w}: expected a handful of load PCs, got {}",
            pcs.len()
        );
    }
}

#[test]
fn footprints_exceed_the_llc() {
    // Every workload's block footprint must exceed the 2 MiB LLC (32K
    // blocks) at evaluation scale, or there would be nothing to prefetch.
    for w in Workload::ALL {
        let t = w.generate(100_000, SEED);
        let blocks: std::collections::HashSet<u64> = t.iter().map(|a| a.block().0).collect();
        // (The graph workloads only partially explore their graphs at this
        // scale; at the paper's 1M loads every footprint is several x LLC.)
        assert!(
            blocks.len() > 8_192,
            "{w}: footprint {} blocks is too cache-friendly",
            blocks.len()
        );
    }
}

#[test]
fn reuse_exists_at_scale() {
    // ...but traces also re-reference data (loops), which temporal
    // prefetchers need: unique blocks must be well below total loads.
    for w in [Workload::Xalan, Workload::Cc5, Workload::Cloud9] {
        let t = w.generate(100_000, SEED);
        let blocks: std::collections::HashSet<u64> = t.iter().map(|a| a.block().0).collect();
        assert!(
            (blocks.len() as f64) < 0.9 * t.len() as f64,
            "{w}: no reuse ({} unique of {})",
            blocks.len(),
            t.len()
        );
    }
}

#[test]
fn table5_instruction_ratios_hold_at_scale() {
    for w in [Workload::Cc5, Workload::Cassandra, Workload::Astar] {
        let t = w.generate(20_000, SEED);
        let ratio = t.total_instructions() as f64 / t.len() as f64;
        let expected = w.instructions_per_load() as f64;
        assert!(
            (ratio - expected).abs() < expected * 0.15,
            "{w}: instruction ratio {ratio} vs Table 5's {expected}"
        );
    }
}
