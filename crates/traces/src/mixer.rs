//! Composes weighted [`AddressPattern`]s into a complete load trace.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use pathfinder_sim::{MemoryAccess, Trace};

use crate::patterns::AddressPattern;

/// A weighted mixture of address patterns plus an instruction-gap model.
///
/// Real programs interleave several access behaviours in bursts (a loop runs
/// for a while, then another); `WorkloadMix` picks a component with
/// weight-proportional probability, stays on it for a random burst length,
/// and spaces loads apart by a randomized instruction gap whose mean is
/// calibrated to Table 5's instructions-per-load ratio for the workload.
pub struct WorkloadMix {
    components: Vec<(f64, Box<dyn AddressPattern + Send>)>,
    total_weight: f64,
    burst_min: u32,
    burst_max: u32,
    mean_instr_gap: u64,
}

impl std::fmt::Debug for WorkloadMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkloadMix")
            .field("components", &self.components.len())
            .field("burst", &(self.burst_min..self.burst_max))
            .field("mean_instr_gap", &self.mean_instr_gap)
            .finish()
    }
}

impl WorkloadMix {
    /// Creates an empty mix with the given burst-length range and mean
    /// instruction gap between consecutive loads.
    ///
    /// # Panics
    ///
    /// Panics if `burst_min == 0`, `burst_max < burst_min`, or
    /// `mean_instr_gap == 0`.
    pub fn new(burst_min: u32, burst_max: u32, mean_instr_gap: u64) -> Self {
        assert!(
            burst_min >= 1 && burst_max >= burst_min,
            "invalid burst range"
        );
        assert!(mean_instr_gap >= 1, "instruction gap must be positive");
        WorkloadMix {
            components: Vec::new(),
            total_weight: 0.0,
            burst_min,
            burst_max,
            mean_instr_gap,
        }
    }

    /// Adds a pattern with the given selection weight; returns `self` for
    /// chaining.
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not strictly positive and finite.
    pub fn with(mut self, weight: f64, pattern: impl AddressPattern + Send + 'static) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "weight must be positive"
        );
        self.total_weight += weight;
        self.components.push((weight, Box::new(pattern)));
        self
    }

    /// Number of component patterns.
    pub fn len(&self) -> usize {
        self.components.len()
    }

    /// Whether the mix has no components.
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    fn pick(&self, rng: &mut StdRng) -> usize {
        let mut x = rng.gen_range(0.0..self.total_weight);
        for (i, (w, _)) in self.components.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        self.components.len() - 1
    }

    /// Generates a trace of `loads` accesses, deterministically for a seed.
    ///
    /// # Panics
    ///
    /// Panics if the mix has no components.
    pub fn generate(mut self, loads: usize, seed: u64) -> Trace {
        assert!(
            !self.components.is_empty(),
            "mix needs at least one pattern"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trace = Trace::new();
        let mut instr_id = 0u64;
        let mut emitted = 0usize;

        while emitted < loads {
            let comp = self.pick(&mut rng);
            let burst = rng.gen_range(self.burst_min..=self.burst_max) as usize;
            let burst = burst.min(loads - emitted);
            for step in 0..burst {
                let (_, pattern) = &mut self.components[comp];
                let vaddr = pattern.next_addr(&mut rng);
                let pc = pattern.pc();
                let mut access = MemoryAccess::new(instr_id, pc, vaddr);
                // Within a burst, a dependent pattern's loads chain on each
                // other; the first load of the burst computes its address
                // from already-available data.
                if step > 0 && pattern.is_dependent() {
                    access = access.dependent();
                }
                trace.push(access);
                // Uniform in [1, 2*mean) has mean ~= mean_instr_gap.
                let gap = rng.gen_range(1..=self.mean_instr_gap * 2 - 1);
                instr_id += gap;
                emitted += 1;
            }
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::StreamPattern;

    fn stream(pc: u64) -> StreamPattern {
        StreamPattern::new(pc << 20, 1 << 18, 64, pc)
    }

    #[test]
    fn generates_requested_load_count() {
        let t = WorkloadMix::new(1, 8, 50)
            .with(1.0, stream(1))
            .with(2.0, stream(2))
            .generate(1000, 7);
        assert_eq!(t.len(), 1000);
    }

    #[test]
    fn instruction_ids_strictly_increase() {
        let t = WorkloadMix::new(1, 4, 30)
            .with(1.0, stream(1))
            .generate(500, 9);
        let ids: Vec<u64> = t.iter().map(|a| a.instr_id).collect();
        assert!(ids.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn mean_gap_matches_configuration() {
        let mean = 65u64;
        let t = WorkloadMix::new(1, 4, mean)
            .with(1.0, stream(1))
            .generate(20_000, 11);
        let observed = t.total_instructions() as f64 / t.len() as f64;
        assert!(
            (observed - mean as f64).abs() < mean as f64 * 0.1,
            "observed mean gap {observed}, expected ~{mean}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = WorkloadMix::new(1, 8, 50)
            .with(1.0, stream(1))
            .with(1.0, stream(2))
            .generate(200, 5);
        let b = WorkloadMix::new(1, 8, 50)
            .with(1.0, stream(1))
            .with(1.0, stream(2))
            .generate(200, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadMix::new(1, 8, 50)
            .with(1.0, stream(1))
            .with(1.0, stream(2))
            .generate(200, 5);
        let b = WorkloadMix::new(1, 8, 50)
            .with(1.0, stream(1))
            .with(1.0, stream(2))
            .generate(200, 6);
        assert_ne!(a, b);
    }

    #[test]
    fn weights_bias_component_selection() {
        // Component 2 has 9x the weight; its PC should dominate.
        let t = WorkloadMix::new(1, 1, 10)
            .with(1.0, stream(1))
            .with(9.0, stream(2))
            .generate(5000, 3);
        let pc2 = t.iter().filter(|a| a.pc.raw() == 2).count();
        assert!(pc2 > 4000, "heavy component should dominate, got {pc2}");
    }
}
