//! # pathfinder-traces
//!
//! Seeded synthetic workload generators standing in for the ML Prefetching
//! Competition traces the PATHFINDER paper evaluates on (Table 5: GAP,
//! SPEC06, SPEC17, CloudSuite — eleven traces of 1M loads each).
//!
//! The real traces are not redistributable, so each workload is replaced by
//! a generator that reproduces the *access-pattern structure* the paper
//! attributes to it: BFS/CC actually run the graph algorithm over a synthetic
//! power-law graph; the SPEC and CloudSuite workloads are weighted mixtures
//! of archetypal patterns (streams, delta cycles, pointer chases, heap walks,
//! gathers, temporal loops) composed per benchmark. Instruction gaps are
//! calibrated to Table 5's instructions-per-load ratios.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_traces::Workload;
//!
//! let trace = Workload::Bfs10.generate(1_000, 42);
//! assert_eq!(trace.len(), 1_000);
//! println!("{} covers {}M instructions per 1M loads",
//!          Workload::Bfs10, Workload::Bfs10.instructions_per_load());
//! ```

// Base-address constants throughout the generators are grouped as
// segment_page_offset (e.g. 0x70_000_0000), not in equal-width digit
// groups: the grouping mirrors the address-space layout being modelled.
#![allow(clippy::unusual_byte_groupings)]
#![warn(missing_docs)]

pub mod catalog;
pub mod generators;
pub mod mixer;
pub mod patterns;

pub use catalog::{ParseWorkloadError, Suite, Workload};
pub use mixer::WorkloadMix;
