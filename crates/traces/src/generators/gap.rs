//! GAP benchmark-suite stand-ins: algorithm-driven BFS and Connected
//! Components over a synthetic power-law graph.
//!
//! Unlike the mix-based SPEC/CloudSuite generators, these two actually *run*
//! the graph algorithm over an in-memory CSR graph and record the loads the
//! algorithm would perform, so frontier streaming, neighbor-list bursts, and
//! hub-vertex temporal reuse all emerge naturally.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use pathfinder_sim::{MemoryAccess, Trace};

/// Base virtual address of the CSR offsets array.
const OFFSETS_BASE: u64 = 0x1000_0000;
/// Base virtual address of the CSR neighbors array.
const NEIGHBORS_BASE: u64 = 0x2000_0000;
/// Base virtual address of the per-vertex state array (visited / component).
const STATE_BASE: u64 = 0x3000_0000;
/// Base virtual address of the frontier queue.
const QUEUE_BASE: u64 = 0x4000_0000;
/// Base virtual address of the edge list (for CC's edge-centric passes).
const EDGES_BASE: u64 = 0x5000_0000;

const PC_OFFSETS: u64 = 0x40_1000;
const PC_NEIGHBORS: u64 = 0x40_1010;
const PC_STATE: u64 = 0x40_1020;
const PC_QUEUE: u64 = 0x40_1030;
const PC_EDGES: u64 = 0x40_1040;

/// A synthetic scale-free graph in CSR form.
///
/// Degrees follow a truncated geometric distribution and edge endpoints are
/// biased toward low vertex ids, giving the hub-heavy structure of the GAP
/// suite's real-world graphs.
#[derive(Debug, Clone)]
pub struct SyntheticGraph {
    offsets: Vec<u32>,
    neighbors: Vec<u32>,
}

impl SyntheticGraph {
    /// Builds a graph with `nodes` vertices and roughly `avg_degree`
    /// out-edges per vertex.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `avg_degree == 0`.
    pub fn new(nodes: usize, avg_degree: usize, seed: u64) -> Self {
        assert!(nodes > 0 && avg_degree > 0, "graph must be non-trivial");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut offsets = Vec::with_capacity(nodes + 1);
        let mut neighbors = Vec::new();
        offsets.push(0u32);
        for _ in 0..nodes {
            // Truncated geometric degree: most vertices small, a few hubs.
            let mut degree = 1usize;
            while degree < avg_degree * 8 && rng.gen_bool(1.0 - 1.0 / avg_degree as f64) {
                degree += 1;
            }
            for _ in 0..degree {
                // Preferential-attachment flavour: bias toward low ids.
                let r: f64 = rng.gen_range(0.0f64..1.0);
                let target = ((r * r) * nodes as f64) as usize % nodes;
                neighbors.push(target as u32);
            }
            offsets.push(neighbors.len() as u32);
        }
        SyntheticGraph { offsets, neighbors }
    }

    /// Number of vertices.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.neighbors.len()
    }

    fn neighbor_range(&self, v: usize) -> std::ops::Range<usize> {
        self.offsets[v] as usize..self.offsets[v + 1] as usize
    }
}

/// Emits loads for one workload step, tracking instruction ids.
struct Emitter {
    trace: Trace,
    instr_id: u64,
    mean_gap: u64,
    target: usize,
}

impl Emitter {
    fn new(target: usize, mean_gap: u64) -> Self {
        Emitter {
            trace: Trace::new(),
            instr_id: 0,
            mean_gap,
            target,
        }
    }

    fn full(&self) -> bool {
        self.trace.len() >= self.target
    }

    fn emit(&mut self, rng: &mut StdRng, pc: u64, vaddr: u64) {
        self.emit_with(rng, pc, vaddr, false);
    }

    /// Emits a load whose address depends on the previous load's data.
    fn emit_dep(&mut self, rng: &mut StdRng, pc: u64, vaddr: u64) {
        self.emit_with(rng, pc, vaddr, true);
    }

    fn emit_with(&mut self, rng: &mut StdRng, pc: u64, vaddr: u64, dep: bool) {
        if self.full() {
            return;
        }
        let mut access = MemoryAccess::new(self.instr_id, pc, vaddr);
        if dep {
            access = access.dependent();
        }
        self.trace.push(access);
        self.instr_id += rng.gen_range(1..=self.mean_gap * 2 - 1);
    }
}

/// Generates a `bfs-10`-style trace: breadth-first search from random
/// sources with frontier streaming, per-vertex offset lookups, neighbor-list
/// bursts, and scattered visited-bitmap probes.
pub fn generate_bfs(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB_F5);
    let graph = SyntheticGraph::new(200_000, 8, seed ^ 0x9A9);
    let n = graph.num_nodes();
    let mut em = Emitter::new(loads, mean_gap);

    while !em.full() {
        // New BFS run from a random source.
        let mut visited = vec![false; n];
        let mut frontier = vec![rng.gen_range(0..n)];
        let mut queue_head = 0u64;
        visited[frontier[0]] = true;

        while !frontier.is_empty() && !em.full() {
            let mut next = Vec::new();
            for &v in &frontier {
                if em.full() {
                    break;
                }
                // Pop v from the frontier queue (sequential).
                em.emit(&mut rng, PC_QUEUE, QUEUE_BASE + queue_head * 4);
                queue_head += 1;
                // Read the CSR offset pair for v (indexed by the popped
                // vertex id: dependent).
                em.emit_dep(&mut rng, PC_OFFSETS, OFFSETS_BASE + v as u64 * 4);
                // Stream the neighbor list.
                for e in graph.neighbor_range(v) {
                    if em.full() {
                        break;
                    }
                    em.emit(&mut rng, PC_NEIGHBORS, NEIGHBORS_BASE + e as u64 * 4);
                    let u = graph.neighbors[e] as usize;
                    // Probe the visited bitmap (indexed by the neighbor id
                    // just loaded: dependent). The bitmap is compact (one
                    // byte per vertex), so most probes hit the L1 and never
                    // reach the trace the prefetchers observe — emit only
                    // the ~1-in-8 that would miss upper levels, keeping the
                    // neighbor stream's small deltas adjacent as in the
                    // competition's LLC-level traces (Table 7's bfs row).
                    if e % 8 == 0 {
                        em.emit_dep(&mut rng, PC_STATE, STATE_BASE + u as u64);
                    }
                    if !visited[u] {
                        visited[u] = true;
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
    }
    em.trace
}

/// Generates a `cc-5`-style trace: label-propagation connected components —
/// edge-centric sequential sweeps with two scattered component-array reads
/// per edge (hub reuse gives the scattered reads temporal structure).
pub fn generate_cc(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCC5);
    let graph = SyntheticGraph::new(150_000, 6, seed ^ 0x717);
    let n = graph.num_nodes();
    let mut comp: Vec<u32> = (0..n as u32).collect();
    let mut em = Emitter::new(loads, mean_gap);

    'outer: loop {
        // One pass over all edges, stored as (u, v) pairs in an edge array.
        let mut edge_idx = 0u64;
        for u in 0..n {
            for e in graph.neighbor_range(u) {
                if em.full() {
                    break 'outer;
                }
                let v = graph.neighbors[e] as usize;
                // Sequential edge-array read (8 bytes per endpoint pair).
                em.emit(&mut rng, PC_EDGES, EDGES_BASE + edge_idx * 8);
                edge_idx += 1;
                // Scattered component lookups for both endpoints (indexed
                // by the endpoint ids just loaded: dependent). The `u` side
                // walks sequentially with the outer loop and stays cached,
                // so only a fraction of its probes reach the trace; the
                // random `v` side mostly misses.
                if edge_idx.is_multiple_of(4) {
                    em.emit_dep(&mut rng, PC_STATE, STATE_BASE + u as u64 * 4);
                }
                // The preferential-attachment bias means most `v` endpoints
                // are hot hub vertices whose labels sit in the upper caches;
                // only the colder minority reaches the LLC-level trace.
                if edge_idx % 4 == 1 || v > n / 4 {
                    em.emit_dep(&mut rng, PC_STATE, STATE_BASE + v as u64 * 4);
                }
                let (cu, cv) = (comp[u], comp[v]);
                if cu != cv {
                    let m = cu.min(cv);
                    comp[u] = m;
                    comp[v] = m;
                }
            }
        }
    }
    em.trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_requested_shape() {
        let g = SyntheticGraph::new(1000, 8, 1);
        assert_eq!(g.num_nodes(), 1000);
        let avg = g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(avg > 3.0 && avg < 16.0, "avg degree {avg}");
    }

    #[test]
    fn bfs_trace_exact_length_and_monotone() {
        let t = generate_bfs(5000, 71, 10);
        assert_eq!(t.len(), 5000);
        assert!(t
            .accesses()
            .windows(2)
            .all(|w| w[1].instr_id > w[0].instr_id));
    }

    #[test]
    fn cc_trace_exact_length() {
        let t = generate_cc(5000, 31, 10);
        assert_eq!(t.len(), 5000);
    }

    #[test]
    fn bfs_is_deterministic() {
        assert_eq!(generate_bfs(2000, 71, 3), generate_bfs(2000, 71, 3));
        assert_ne!(generate_bfs(2000, 71, 3), generate_bfs(2000, 71, 4));
    }

    #[test]
    fn bfs_has_streaming_component() {
        // Within the neighbor-array PC, successive loads should walk forward
        // by at most one block (16 u32 neighbors share each 64B block).
        let t = generate_bfs(20_000, 71, 5);
        let neigh: Vec<_> = t.iter().filter(|a| a.pc.raw() == PC_NEIGHBORS).collect();
        assert!(neigh.len() > 1000, "neighbor loads present");
        let small = neigh
            .windows(2)
            .filter(|w| {
                let d = w[0].block().delta(w[1].block());
                (0..=1).contains(&d)
            })
            .count();
        assert!(
            small as f64 / neigh.len() as f64 > 0.5,
            "expected streaming share, got {small}/{}",
            neigh.len()
        );
    }

    #[test]
    fn cc_mixes_sequential_and_scattered() {
        let t = generate_cc(20_000, 31, 5);
        let pcs: std::collections::HashSet<u64> = t.iter().map(|a| a.pc.raw()).collect();
        assert!(pcs.contains(&PC_EDGES));
        assert!(pcs.contains(&PC_STATE));
    }
}
