//! CloudSuite workload stand-ins: server applications with large instruction
//! footprints (Table 5 shows 150-210M instructions per 1M loads) and mixed
//! regular/irregular data behaviour.

use pathfinder_sim::Trace;

use crate::mixer::WorkloadMix;
use crate::patterns::{
    scaled_region, DeltaCyclePattern, GatherPattern, PointerChasePattern, StreamPattern,
    TemporalLoopPattern,
};

/// `cassandra-phase0`: NoSQL store — skip-list memtable descents (pointer
/// chasing), SSTable block scans (streams), and bloom-filter probes
/// (uniform gathers).
pub fn generate_cassandra(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    WorkloadMix::new(2, 14, mean_gap)
        .with(
            3.0,
            PointerChasePattern::new(
                (loads / 4).clamp(30_000, 400_000),
                0x70_000_0000,
                128,
                0x60_1000,
                seed ^ 0x71,
            ),
        )
        .with(
            2.5,
            StreamPattern::new(0x71_000_0000, scaled_region(loads, 0.25, 64), 64, 0x60_1010),
        )
        .with(
            2.0,
            GatherPattern::new(
                0x72_000_0000,
                scaled_region(loads, 0.20, 256),
                64,
                0x60_1020,
            ),
        )
        .with(
            1.5,
            TemporalLoopPattern::new(
                0x73_000_0000,
                scaled_region(loads, 0.15, 64),
                ((loads as f64 * 0.15 / 2.5) as usize).clamp(2_000, 100_000),
                0x60_1030,
                seed ^ 0x72,
            ),
        )
        .with(
            1.0,
            DeltaCyclePattern::new(
                0x74_000_0000,
                scaled_region(loads, 0.10, 96),
                vec![64, 128],
                0x60_1040,
            ),
        )
        .generate(loads, seed)
}

/// `cloud9-phase0`: web serving — request-buffer streaming, hot-object
/// temporal reuse, and session-object pointer chasing.
pub fn generate_cloud9(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    WorkloadMix::new(3, 18, mean_gap)
        .with(
            3.0,
            StreamPattern::new(0x80_000_0000, scaled_region(loads, 0.30, 64), 64, 0x61_1000),
        )
        .with(
            2.5,
            TemporalLoopPattern::new(
                0x81_000_0000,
                scaled_region(loads, 0.25, 64),
                ((loads as f64 * 0.25 / 2.5) as usize).clamp(2_000, 120_000),
                0x61_1010,
                seed ^ 0x81,
            ),
        )
        .with(
            2.0,
            PointerChasePattern::new(
                (loads / 5).clamp(30_000, 300_000),
                0x82_000_0000,
                192,
                0x61_1020,
                seed ^ 0x82,
            ),
        )
        .with(
            1.5,
            DeltaCyclePattern::new(
                0x83_000_0000,
                scaled_region(loads, 0.15, 107),
                vec![64, 64, 192],
                0x61_1030,
            ),
        )
        .with(
            1.0,
            GatherPattern::new(
                0x84_000_0000,
                scaled_region(loads, 0.10, 256),
                64,
                0x61_1040,
            ),
        )
        .generate(loads, seed)
}

/// `nutch-phase0`: search indexing — posting-list streams with short strides
/// dominate (concentrated delta distribution), with B-tree dictionary walks
/// as the irregular remainder.
pub fn generate_nutch(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    WorkloadMix::new(6, 32, mean_gap)
        .with(
            4.0,
            StreamPattern::new(0x90_000_0000, scaled_region(loads, 0.42, 64), 64, 0x62_1000),
        )
        .with(
            2.5,
            DeltaCyclePattern::new(
                0x91_000_0000,
                scaled_region(loads, 0.26, 80),
                vec![64, 64, 128, 64],
                0x62_1010,
            ),
        )
        .with(
            2.0,
            PointerChasePattern::new(
                (loads / 6).clamp(25_000, 250_000),
                0x92_000_0000,
                256,
                0x62_1020,
                seed ^ 0x91,
            ),
        )
        .with(
            1.0,
            GatherPattern::new(
                0x93_000_0000,
                scaled_region(loads, 0.11, 256),
                64,
                0x62_1030,
            ),
        )
        .generate(loads, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud_generators_produce_exact_lengths() {
        for (t, name) in [
            (generate_cassandra(3000, 207, 1), "cassandra"),
            (generate_cloud9(3000, 208, 1), "cloud9"),
            (generate_nutch(3000, 154, 1), "nutch"),
        ] {
            assert_eq!(t.len(), 3000, "{name}");
        }
    }

    #[test]
    fn cloud_gap_means_match_table5_ratio() {
        // cassandra: 207M instructions per 1M loads.
        let t = generate_cassandra(20_000, 207, 2);
        let mean = t.total_instructions() as f64 / t.len() as f64;
        assert!(
            (mean - 207.0).abs() < 25.0,
            "cassandra instruction gap should be ~207, got {mean}"
        );
    }

    #[test]
    fn nutch_is_concentrated() {
        // Top-5 deltas should carry a large share (Table 8: 529 of 615).
        let t = generate_nutch(30_000, 154, 2);
        let mut counts = std::collections::HashMap::new();
        for w in t.accesses().windows(2) {
            *counts
                .entry(w[0].block().delta(w[1].block()))
                .or_insert(0usize) += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = freq.iter().take(5).sum();
        let total: usize = freq.iter().sum();
        assert!(
            top5 as f64 / total as f64 > 0.5,
            "nutch top-5 delta share too low: {top5}/{total}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate_cloud9(2000, 208, 9), generate_cloud9(2000, 208, 9));
    }
}
