//! SPEC CPU 2006/2017 workload stand-ins, built from pattern mixes whose
//! composition follows each benchmark's documented memory behaviour.

use pathfinder_sim::Trace;

use crate::mixer::WorkloadMix;
use crate::patterns::{
    scaled_region, DeltaCyclePattern, GatherPattern, HeapWalkPattern, PointerChasePattern,
    StreamPattern, TemporalLoopPattern,
};

/// `605.mcf_s`: network-simplex pointer chasing over arc/node structures.
///
/// Dominated by dependent loads through randomized arc lists — the
/// archetypal irregular workload where delta prefetchers struggle (the paper
/// singles out mcf as PATHFINDER's hardest trace). A minor sequential
/// component models the arc-array sweeps between pivots.
pub fn generate_mcf(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    // Arc-list sizes scale with the trace so the chains both exceed the LLC
    // and get re-traversed a few times.
    let arcs = (loads / 3).clamp(40_000, 600_000);
    WorkloadMix::new(2, 12, mean_gap)
        .with(
            5.0,
            PointerChasePattern::new(arcs, 0x10_000_0000, 192, 0x50_1000, seed ^ 0x11),
        )
        .with(
            2.0,
            PointerChasePattern::new(arcs / 3, 0x11_000_0000, 256, 0x50_1010, seed ^ 0x12),
        )
        .with(
            1.5,
            GatherPattern::new(
                0x12_000_0000,
                scaled_region(loads, 0.16, 256),
                64,
                0x50_1020,
            ),
        )
        .with(
            1.0,
            StreamPattern::new(0x13_000_0000, scaled_region(loads, 0.10, 64), 64, 0x50_1030),
        )
        .generate(loads, seed)
}

/// `471.omnetpp`: discrete-event simulation — binary-heap event queue walks
/// plus pointer-linked message objects. Few, characteristic deltas
/// (parent/child hops) and lots of irregularity.
pub fn generate_omnetpp(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    WorkloadMix::new(2, 10, mean_gap)
        .with(
            3.0,
            HeapWalkPattern::new(0x20_000_0000, 1 << 16, 64, 0x51_1000),
        )
        .with(
            3.0,
            PointerChasePattern::new(
                (loads / 4).clamp(30_000, 400_000),
                0x21_000_0000,
                128,
                0x51_1010,
                seed ^ 0x21,
            ),
        )
        .with(
            1.0,
            DeltaCyclePattern::new(
                0x22_000_0000,
                scaled_region(loads, 0.13, 85),
                vec![64, 64, 128],
                0x51_1020,
            ),
        )
        .with(
            0.5,
            StreamPattern::new(0x23_000_0000, scaled_region(loads, 0.07, 64), 64, 0x51_1030),
        )
        .generate(loads, seed)
}

/// `473.astar`: grid path-finding — neighbor probes at `±1` and `±row`
/// offsets (the row hop crosses pages), an open-list heap, and scattered
/// closed-set probes.
pub fn generate_astar(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    // A 2048-wide grid of 64-byte cells: a row hop is 2048*64 bytes = 32
    // pages, so vertical neighbors never share a page with the center.
    let row = 2048i64 * 64;
    WorkloadMix::new(1, 6, mean_gap)
        .with(
            4.0,
            DeltaCyclePattern::new(
                0x30_000_0000,
                scaled_region(loads, 0.44, 26_000),
                vec![64, -64, row, -row, 64 + row],
                0x52_1000,
            ),
        )
        .with(
            2.0,
            HeapWalkPattern::new(0x31_000_0000, 1 << 15, 64, 0x52_1010),
        )
        .with(
            2.0,
            PointerChasePattern::new(
                (loads / 5).clamp(30_000, 300_000),
                0x32_000_0000,
                160,
                0x52_1020,
                seed ^ 0x31,
            ),
        )
        .with(
            1.0,
            GatherPattern::new(
                0x33_000_0000,
                scaled_region(loads, 0.11, 512),
                64,
                0x52_1030,
            ),
        )
        .generate(loads, seed)
}

/// `450.soplex`: simplex LP solver — sparse-matrix column sweeps (several
/// coexisting strides) and dense-vector gathers indexed by row number.
pub fn generate_soplex(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    WorkloadMix::new(4, 24, mean_gap)
        .with(
            3.0,
            StreamPattern::new(0x40_000_0000, scaled_region(loads, 0.30, 64), 64, 0x53_1000),
        )
        .with(
            2.5,
            DeltaCyclePattern::new(
                0x41_000_0000,
                scaled_region(loads, 0.25, 112),
                vec![64, 128, 64, 192],
                0x53_1010,
            ),
        )
        .with(
            2.0,
            StreamPattern::new(
                0x42_000_0000,
                scaled_region(loads, 0.20, 128),
                128,
                0x53_1020,
            ),
        )
        .with(
            1.5,
            GatherPattern::new(
                0x43_000_0000,
                scaled_region(loads, 0.15, 256),
                64,
                0x53_1030,
            ),
        )
        .with(
            1.0,
            DeltaCyclePattern::new(
                0x44_000_0000,
                scaled_region(loads, 0.10, 128),
                vec![256, 64, 64],
                0x53_1040,
            ),
        )
        .generate(loads, seed)
}

/// `482.sphinx3`: speech recognition — long unit-stride dot-product sweeps
/// over acoustic-model Gaussians dominate (top-5 deltas carry most of the
/// mass), with occasional senone-score table jumps.
pub fn generate_sphinx(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    WorkloadMix::new(8, 48, mean_gap)
        .with(
            6.0,
            StreamPattern::new(0x50_000_0000, scaled_region(loads, 0.63, 64), 64, 0x54_1000),
        )
        .with(
            2.0,
            StreamPattern::new(0x51_000_0000, scaled_region(loads, 0.21, 64), 64, 0x54_1010),
        )
        .with(
            1.0,
            DeltaCyclePattern::new(
                0x52_000_0000,
                scaled_region(loads, 0.11, 85),
                vec![64, 64, 128],
                0x54_1020,
            ),
        )
        .with(
            0.5,
            GatherPattern::new(
                0x53_000_0000,
                scaled_region(loads, 0.05, 128),
                64,
                0x54_1030,
            ),
        )
        .generate(loads, seed)
}

/// `623.xalancbmk_s`: XSLT/DOM processing — an irregular but *repeating*
/// traversal of the document tree. Temporal record-replay (SISB) captures it
/// exactly; delta prefetchers see only a small set of recurring deltas
/// (the paper notes Pythia locks onto delta 1 here while better deltas
/// exist).
pub fn generate_xalan(loads: usize, mean_gap: u64, seed: u64) -> Trace {
    WorkloadMix::new(4, 20, mean_gap)
        .with(
            5.0,
            // The loop's distinct-block footprint exceeds the 2 MiB LLC, so
            // the repeating sequence keeps missing — delta prefetchers see
            // noise while temporal record-replay (SISB) captures it exactly.
            TemporalLoopPattern::new(
                0x60_000_0000,
                scaled_region(loads, 0.45, 64),
                ((loads as f64 * 0.45 / 2.5) as usize).clamp(2_000, 150_000),
                0x55_1000,
                seed ^ 0x61,
            ),
        )
        .with(
            3.0,
            DeltaCyclePattern::new(
                0x61_000_0000,
                scaled_region(loads, 0.27, 192),
                vec![64, 192, 320],
                0x55_1010,
            ),
        )
        .with(
            2.0,
            StreamPattern::new(0x62_000_0000, scaled_region(loads, 0.18, 64), 64, 0x55_1020),
        )
        .with(
            1.0,
            DeltaCyclePattern::new(
                0x63_000_0000,
                scaled_region(loads, 0.09, 96),
                vec![128, 64],
                0x55_1030,
            ),
        )
        .generate(loads, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_spec_generators_produce_exact_lengths() {
        for (t, name) in [
            (generate_mcf(3000, 48, 1), "mcf"),
            (generate_omnetpp(3000, 65, 1), "omnetpp"),
            (generate_astar(3000, 99, 1), "astar"),
            (generate_soplex(3000, 39, 1), "soplex"),
            (generate_sphinx(3000, 95, 1), "sphinx"),
            (generate_xalan(3000, 63, 1), "xalan"),
        ] {
            assert_eq!(t.len(), 3000, "{name}");
            assert!(
                t.accesses()
                    .windows(2)
                    .all(|w| w[1].instr_id > w[0].instr_id),
                "{name} ids must increase"
            );
        }
    }

    #[test]
    fn sphinx_is_stream_dominated() {
        let t = generate_sphinx(20_000, 95, 2);
        let unit = t
            .accesses()
            .windows(2)
            .filter(|w| w[0].block().delta(w[1].block()) == 1)
            .count();
        assert!(
            unit as f64 / t.len() as f64 > 0.5,
            "sphinx should be mostly unit-stride, got {unit}"
        );
    }

    #[test]
    fn mcf_is_irregular() {
        let t = generate_mcf(20_000, 48, 2);
        let small = t
            .accesses()
            .windows(2)
            .filter(|w| w[0].block().delta(w[1].block()).abs() <= 4)
            .count();
        assert!(
            (small as f64) < t.len() as f64 * 0.4,
            "mcf should be mostly irregular, got {small} small deltas"
        );
    }

    #[test]
    fn xalan_revisits_addresses() {
        // The temporal loop means many blocks recur once a few loop
        // iterations have elapsed.
        let t = generate_xalan(500_000, 63, 2);
        let unique: std::collections::HashSet<u64> = t.iter().map(|a| a.block().0).collect();
        assert!(
            unique.len() < t.len() * 7 / 10,
            "xalan should revisit blocks: {} unique of {}",
            unique.len(),
            t.len()
        );
    }

    #[test]
    fn workloads_use_disjoint_regions() {
        let spec = [
            generate_mcf(1000, 48, 3),
            generate_omnetpp(1000, 65, 3),
            generate_astar(1000, 99, 3),
        ];
        let ranges: Vec<(u64, u64)> = spec
            .iter()
            .map(|t| {
                let lo = t.iter().map(|a| a.vaddr.raw()).min().unwrap();
                let hi = t.iter().map(|a| a.vaddr.raw()).max().unwrap();
                (lo, hi)
            })
            .collect();
        assert!(ranges[0].1 < ranges[1].0);
        assert!(ranges[1].1 < ranges[2].0);
    }
}
