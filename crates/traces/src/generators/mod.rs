//! Per-suite workload generators.

pub mod cloud;
pub mod gap;
pub mod spec;
