//! The Table 5 workload catalog: the eleven traces the paper evaluates.

use pathfinder_sim::Trace;
use serde::{Deserialize, Serialize};

use crate::generators::{cloud, gap, spec};

/// Benchmark suite a workload belongs to (Table 5, column 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// GAP graph-analytics benchmarks.
    Gap,
    /// SPEC CPU 2006.
    Spec06,
    /// SPEC CPU 2017.
    Spec17,
    /// CloudSuite server workloads.
    CloudSuite,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Suite::Gap => "GAP",
            Suite::Spec06 => "SPEC06",
            Suite::Spec17 => "SPEC17",
            Suite::CloudSuite => "CloudSuite",
        };
        f.write_str(s)
    }
}

/// One of the paper's eleven evaluation workloads (Table 5).
///
/// # Examples
///
/// ```
/// use pathfinder_traces::Workload;
///
/// let trace = Workload::Cc5.generate(10_000, 42);
/// assert_eq!(trace.len(), 10_000);
/// assert_eq!(Workload::ALL.len(), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// GAP connected components, trace `cc-5`.
    Cc5,
    /// GAP breadth-first search, trace `bfs-10`.
    Bfs10,
    /// SPEC06 `471.omnetpp` (discrete-event simulation).
    Omnetpp,
    /// SPEC06 `473.astar` (grid path-finding).
    Astar,
    /// SPEC06 `450.soplex` (simplex LP solver).
    Soplex,
    /// SPEC06 `482.sphinx3` (speech recognition).
    Sphinx,
    /// SPEC17 `605.mcf_s` (network simplex).
    Mcf,
    /// SPEC17 `623.xalancbmk_s` (XSLT processing).
    Xalan,
    /// CloudSuite `cassandra-phase0-core0`.
    Cassandra,
    /// CloudSuite `cloud9-phase0-core0`.
    Cloud9,
    /// CloudSuite `nutch-phase0-core0`.
    Nutch,
}

impl Workload {
    /// All eleven workloads in the paper's Table 5 order.
    pub const ALL: [Workload; 11] = [
        Workload::Cc5,
        Workload::Bfs10,
        Workload::Omnetpp,
        Workload::Astar,
        Workload::Soplex,
        Workload::Sphinx,
        Workload::Mcf,
        Workload::Xalan,
        Workload::Cassandra,
        Workload::Cloud9,
        Workload::Nutch,
    ];

    /// Trace name as reported in Table 5.
    pub fn trace_name(self) -> &'static str {
        match self {
            Workload::Cc5 => "cc-5",
            Workload::Bfs10 => "bfs-10",
            Workload::Omnetpp => "471-omnetpp-s1",
            Workload::Astar => "473-astar-s1",
            Workload::Soplex => "450-soplex-s0",
            Workload::Sphinx => "482-sphinx-s0",
            Workload::Mcf => "605-mcf-s1",
            Workload::Xalan => "623-xalan-s1",
            Workload::Cassandra => "cassandra-phase0-core0",
            Workload::Cloud9 => "cloud9-phase0-core0",
            Workload::Nutch => "nutch-phase0-core0",
        }
    }

    /// The suite this workload comes from.
    pub fn suite(self) -> Suite {
        match self {
            Workload::Cc5 | Workload::Bfs10 => Suite::Gap,
            Workload::Omnetpp | Workload::Astar | Workload::Soplex | Workload::Sphinx => {
                Suite::Spec06
            }
            Workload::Mcf | Workload::Xalan => Suite::Spec17,
            Workload::Cassandra | Workload::Cloud9 | Workload::Nutch => Suite::CloudSuite,
        }
    }

    /// Total dynamic instructions per 1M loads, in millions (Table 5).
    ///
    /// Used as the mean instruction gap between consecutive loads so the
    /// synthetic traces reproduce each workload's memory intensity.
    pub fn instructions_per_load(self) -> u64 {
        match self {
            Workload::Cc5 => 31,
            Workload::Bfs10 => 71,
            Workload::Omnetpp => 65,
            Workload::Astar => 99,
            Workload::Soplex => 39,
            Workload::Sphinx => 95,
            Workload::Mcf => 48,
            Workload::Xalan => 63,
            Workload::Cassandra => 207,
            Workload::Cloud9 => 208,
            Workload::Nutch => 154,
        }
    }

    /// Generates a synthetic trace of `loads` memory accesses.
    ///
    /// Deterministic for a given `(workload, loads, seed)` triple.
    pub fn generate(self, loads: usize, seed: u64) -> Trace {
        let gap = self.instructions_per_load();
        match self {
            Workload::Cc5 => gap::generate_cc(loads, gap, seed),
            Workload::Bfs10 => gap::generate_bfs(loads, gap, seed),
            Workload::Omnetpp => spec::generate_omnetpp(loads, gap, seed),
            Workload::Astar => spec::generate_astar(loads, gap, seed),
            Workload::Soplex => spec::generate_soplex(loads, gap, seed),
            Workload::Sphinx => spec::generate_sphinx(loads, gap, seed),
            Workload::Mcf => spec::generate_mcf(loads, gap, seed),
            Workload::Xalan => spec::generate_xalan(loads, gap, seed),
            Workload::Cassandra => cloud::generate_cassandra(loads, gap, seed),
            Workload::Cloud9 => cloud::generate_cloud9(loads, gap, seed),
            Workload::Nutch => cloud::generate_nutch(loads, gap, seed),
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.trace_name())
    }
}

impl std::str::FromStr for Workload {
    type Err = ParseWorkloadError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Workload::ALL
            .iter()
            .copied()
            .find(|w| w.trace_name().eq_ignore_ascii_case(s))
            .ok_or_else(|| ParseWorkloadError {
                input: s.to_string(),
            })
    }
}

/// Error returned when a workload name does not match any Table 5 trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseWorkloadError {
    input: String,
}

impl std::fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown workload name `{}`", self.input)
    }
}

impl std::error::Error for ParseWorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_workloads_with_unique_names() {
        let names: std::collections::HashSet<&str> =
            Workload::ALL.iter().map(|w| w.trace_name()).collect();
        assert_eq!(names.len(), 11);
    }

    #[test]
    fn suites_match_table5() {
        assert_eq!(Workload::Cc5.suite(), Suite::Gap);
        assert_eq!(Workload::Omnetpp.suite(), Suite::Spec06);
        assert_eq!(Workload::Mcf.suite(), Suite::Spec17);
        assert_eq!(Workload::Nutch.suite(), Suite::CloudSuite);
    }

    #[test]
    fn instruction_ratios_match_table5() {
        // Table 5 reports total instructions for 1M-load traces.
        assert_eq!(Workload::Cc5.instructions_per_load(), 31);
        assert_eq!(Workload::Cassandra.instructions_per_load(), 207);
        assert_eq!(Workload::Astar.instructions_per_load(), 99);
    }

    #[test]
    fn parse_roundtrip() {
        for w in Workload::ALL {
            let parsed: Workload = w.trace_name().parse().unwrap();
            assert_eq!(parsed, w);
        }
        assert!("not-a-trace".parse::<Workload>().is_err());
    }

    #[test]
    fn every_workload_generates() {
        for w in Workload::ALL {
            let t = w.generate(500, 1);
            assert_eq!(t.len(), 500, "{w}");
        }
    }
}
