//! `trace-tool` — generate, inspect, and characterize workload traces.
//!
//! ```text
//! trace-tool generate <workload> <loads> <seed> <out.pftrace>
//! trace-tool head     <file.pftrace> [n]
//! trace-tool stats    <file.pftrace | workload> [loads] [seed]
//! trace-tool list
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use pathfinder_sim::{read_trace, write_trace, Trace};
use pathfinder_traces::Workload;

fn load_or_generate(spec: &str, loads: usize, seed: u64) -> Result<Trace, String> {
    if let Ok(w) = spec.parse::<Workload>() {
        return Ok(w.generate(loads, seed));
    }
    let f = File::open(spec).map_err(|e| format!("open {spec}: {e}"))?;
    read_trace(BufReader::new(f)).map_err(|e| format!("read {spec}: {e}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let [workload, loads, seed, out] = args else {
        return Err("usage: trace-tool generate <workload> <loads> <seed> <out>".into());
    };
    let w: Workload = workload.parse().map_err(|e| format!("{e}"))?;
    let loads: usize = loads.parse().map_err(|e| format!("loads: {e}"))?;
    let seed: u64 = seed.parse().map_err(|e| format!("seed: {e}"))?;
    let trace = w.generate(loads, seed);
    let f = File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    write_trace(&trace, BufWriter::new(f)).map_err(|e| format!("write {out}: {e}"))?;
    eprintln!(
        "wrote {} loads ({} instructions) to {out}",
        trace.len(),
        trace.total_instructions()
    );
    Ok(())
}

fn cmd_head(args: &[String]) -> Result<(), String> {
    let file = args.first().ok_or("usage: trace-tool head <file> [n]")?;
    let n: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|e| format!("n: {e}")))
        .transpose()?
        .unwrap_or(20);
    let trace = load_or_generate(file, n, 0)?;
    println!("{:>12}  {:>10}  {:>18}  dep", "instr_id", "pc", "vaddr");
    for a in trace.iter().take(n) {
        println!(
            "{:>12}  {:>#10x}  {:>#18x}  {}",
            a.instr_id,
            a.pc.raw(),
            a.vaddr.raw(),
            if a.depends_on_prev { "*" } else { "" }
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let spec = args
        .first()
        .ok_or("usage: trace-tool stats <file|workload> [loads] [seed]")?;
    let loads: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|e| format!("loads: {e}")))
        .transpose()?
        .unwrap_or(100_000);
    let seed: u64 = args
        .get(2)
        .map(|s| s.parse().map_err(|e| format!("seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let trace = load_or_generate(spec, loads, seed)?;

    let mut blocks = std::collections::HashSet::new();
    let mut pages = std::collections::HashSet::new();
    let mut pcs = std::collections::HashSet::new();
    let mut dependent = 0usize;
    let mut small_deltas = 0usize;
    for a in &trace {
        blocks.insert(a.block().0);
        pages.insert(a.vaddr.page().0);
        pcs.insert(a.pc.raw());
        if a.depends_on_prev {
            dependent += 1;
        }
    }
    for p in trace.accesses().windows(2) {
        if p[0].block().delta(p[1].block()).abs() < 31 {
            small_deltas += 1;
        }
    }
    println!("loads                 {}", trace.len());
    println!("total instructions    {}", trace.total_instructions());
    println!(
        "mean instr gap        {:.1}",
        trace.total_instructions() as f64 / trace.len().max(1) as f64
    );
    println!(
        "unique blocks         {} ({:.1} MiB footprint)",
        blocks.len(),
        blocks.len() as f64 * 64.0 / (1024.0 * 1024.0)
    );
    println!("unique pages          {}", pages.len());
    println!("load PCs              {}", pcs.len());
    println!(
        "dependent loads       {} ({:.1}%)",
        dependent,
        dependent as f64 / trace.len().max(1) as f64 * 100.0
    );
    println!(
        "deltas in (-31,31)    {} ({:.1}%)",
        small_deltas,
        small_deltas as f64 / trace.len().max(1) as f64 * 100.0
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let result = match argv.first().map(String::as_str) {
        Some("generate") => cmd_generate(&argv[1..]),
        Some("head") => cmd_head(&argv[1..]),
        Some("stats") => cmd_stats(&argv[1..]),
        Some("list") => {
            for w in Workload::ALL {
                println!("{:<24} {}", w.trace_name(), w.suite());
            }
            Ok(())
        }
        _ => Err("usage: trace-tool <generate|head|stats|list> ...".into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
