//! Reusable access-pattern building blocks.
//!
//! Every synthetic workload in this crate is composed from a handful of
//! archetypal memory behaviours: sequential streams, fixed- and multi-stride
//! walks, randomized pointer chases, random gathers within a region, and
//! binary-heap index walks. Each block is a small state machine that yields
//! the next virtual address on demand; the per-workload generators in
//! [`crate::generators`] mix them with workload-specific probabilities.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

/// A source of virtual addresses with workload-archetype semantics.
pub trait AddressPattern {
    /// Produces the next virtual address.
    fn next_addr(&mut self, rng: &mut StdRng) -> u64;

    /// The program counter associated with this pattern's load instruction.
    ///
    /// Patterns model one load site (or a small set); PATHFINDER and SPP both
    /// key their tables on the PC, so stable PCs per pattern matter.
    fn pc(&self) -> u64;

    /// Whether consecutive loads of this pattern form an address-dependence
    /// chain (pointer chasing): the simulator serializes such loads, which
    /// is what makes irregular workloads memory-bound.
    fn is_dependent(&self) -> bool {
        false
    }
}

/// Sizes a walker's region so that, over a `loads`-long trace in which the
/// walker gets roughly `share` of the accesses, it re-traverses its data
/// about 2-3 times — the loop-over-data-structure reuse that real benchmarks
/// exhibit and that temporal prefetchers (SISB, Voyager) depend on.
///
/// The result is clamped to `[3 MiB, 96 MiB]`: always larger than the 2 MiB
/// LLC (so re-traversals keep missing) and never so large that one lap
/// exceeds the trace.
pub fn scaled_region(loads: usize, share: f64, step_bytes: u64) -> u64 {
    const MIN: u64 = 3 << 20;
    const MAX: u64 = 96 << 20;
    let lap = loads as f64 * share * step_bytes as f64 / 2.5;
    (lap as u64).clamp(MIN, MAX)
}

/// Sequential stream through a region: `base, base+stride, base+2*stride, …`,
/// wrapping at the region end.
///
/// # Examples
///
/// ```
/// use pathfinder_traces::patterns::{AddressPattern, StreamPattern};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut s = StreamPattern::new(0x1000, 0x10_0000, 64, 0x400);
/// assert_eq!(s.next_addr(&mut rng), 0x1000);
/// assert_eq!(s.next_addr(&mut rng), 0x1040);
/// ```
#[derive(Debug, Clone)]
pub struct StreamPattern {
    base: u64,
    len: u64,
    stride: i64,
    pos: u64,
    pc: u64,
}

impl StreamPattern {
    /// Creates a stream over `[base, base+len)` advancing by `stride` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `stride == 0`.
    pub fn new(base: u64, len: u64, stride: i64, pc: u64) -> Self {
        assert!(len > 0, "stream region must be non-empty");
        assert!(stride != 0, "stream stride must be nonzero");
        StreamPattern {
            base,
            len,
            stride,
            pos: 0,
            pc,
        }
    }
}

impl AddressPattern for StreamPattern {
    fn next_addr(&mut self, _rng: &mut StdRng) -> u64 {
        let addr = self.base + self.pos;
        let next = self.pos as i64 + self.stride;
        self.pos = if next < 0 || next as u64 >= self.len {
            0
        } else {
            next as u64
        };
        addr
    }

    fn pc(&self) -> u64 {
        self.pc
    }
}

/// Walks a region with a repeating cycle of strides (e.g. `{+1,+2,+3}` block
/// deltas), modelling the delta patterns PATHFINDER is designed to learn.
#[derive(Debug, Clone)]
pub struct DeltaCyclePattern {
    base: u64,
    len: u64,
    deltas: Vec<i64>,
    idx: usize,
    pos: u64,
    pc: u64,
}

impl DeltaCyclePattern {
    /// Creates a walker over `[base, base+len)` applying `deltas` (in bytes)
    /// round-robin, restarting from the region base on overflow.
    ///
    /// # Panics
    ///
    /// Panics if `deltas` is empty or `len == 0`.
    pub fn new(base: u64, len: u64, deltas: Vec<i64>, pc: u64) -> Self {
        assert!(!deltas.is_empty(), "need at least one delta");
        assert!(len > 0, "region must be non-empty");
        DeltaCyclePattern {
            base,
            len,
            deltas,
            idx: 0,
            pos: 0,
            pc,
        }
    }
}

impl AddressPattern for DeltaCyclePattern {
    fn next_addr(&mut self, _rng: &mut StdRng) -> u64 {
        let addr = self.base + self.pos;
        let d = self.deltas[self.idx];
        self.idx = (self.idx + 1) % self.deltas.len();
        let next = self.pos as i64 + d;
        self.pos = if next < 0 || next as u64 >= self.len {
            0
        } else {
            next as u64
        };
        addr
    }

    fn pc(&self) -> u64 {
        self.pc
    }
}

/// Pointer chase through a randomized permutation cycle: each element names
/// the next, so consecutive addresses are decorrelated — the archetypal
/// `mcf`-style irregular pattern no delta prefetcher can capture.
#[derive(Debug, Clone)]
pub struct PointerChasePattern {
    /// next[i] = index of the node after node i.
    next: Vec<u32>,
    cur: u32,
    base: u64,
    node_bytes: u64,
    pc: u64,
}

impl PointerChasePattern {
    /// Builds a single-cycle random permutation of `nodes` nodes laid out at
    /// `base` with `node_bytes` per node (Sattolo's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`.
    pub fn new(nodes: usize, base: u64, node_bytes: u64, pc: u64, seed: u64) -> Self {
        assert!(nodes >= 2, "pointer chase needs at least two nodes");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (0..nodes as u32).collect();
        // Sattolo: a single cycle visiting every node.
        for i in (1..nodes).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        let mut next = vec![0u32; nodes];
        for i in 0..nodes {
            next[perm[i] as usize] = perm[(i + 1) % nodes] as usize as u32;
        }
        PointerChasePattern {
            next,
            cur: 0,
            base,
            node_bytes,
            pc,
        }
    }

    /// Number of nodes in the chain.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Whether the chain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }
}

impl AddressPattern for PointerChasePattern {
    fn next_addr(&mut self, _rng: &mut StdRng) -> u64 {
        let addr = self.base + self.cur as u64 * self.node_bytes;
        self.cur = self.next[self.cur as usize];
        addr
    }

    fn pc(&self) -> u64 {
        self.pc
    }

    fn is_dependent(&self) -> bool {
        true
    }
}

/// Uniform random gathers within a region — vector-indexed loads (`soplex`
/// dense vectors, hash probes).
#[derive(Debug, Clone)]
pub struct GatherPattern {
    base: u64,
    len: u64,
    align: u64,
    pc: u64,
}

impl GatherPattern {
    /// Creates a gather over `[base, base+len)` aligned to `align` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `align == 0`.
    pub fn new(base: u64, len: u64, align: u64, pc: u64) -> Self {
        assert!(len > 0 && align > 0, "region and alignment must be nonzero");
        GatherPattern {
            base,
            len,
            align,
            pc,
        }
    }
}

impl AddressPattern for GatherPattern {
    fn next_addr(&mut self, rng: &mut StdRng) -> u64 {
        let slots = self.len / self.align;
        let slot = rng.gen_range(0..slots.max(1));
        self.base + slot * self.align
    }

    fn pc(&self) -> u64 {
        self.pc
    }
}

/// Binary-heap index walk: repeated sift-down paths from the root, touching
/// elements `1, 2·i or 2·i+1, …` — `omnetpp`'s event-queue archetype.
#[derive(Debug, Clone)]
pub struct HeapWalkPattern {
    base: u64,
    elem_bytes: u64,
    heap_elems: u64,
    cur: u64,
    pc: u64,
}

impl HeapWalkPattern {
    /// Creates a heap walk over `heap_elems` elements of `elem_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if `heap_elems < 2` or `elem_bytes == 0`.
    pub fn new(base: u64, heap_elems: u64, elem_bytes: u64, pc: u64) -> Self {
        assert!(
            heap_elems >= 2 && elem_bytes > 0,
            "heap must be non-trivial"
        );
        HeapWalkPattern {
            base,
            elem_bytes,
            heap_elems,
            cur: 1,
            pc,
        }
    }
}

impl AddressPattern for HeapWalkPattern {
    fn next_addr(&mut self, rng: &mut StdRng) -> u64 {
        let addr = self.base + self.cur * self.elem_bytes;
        let child = self.cur * 2 + u64::from(rng.gen_bool(0.5));
        self.cur = if child >= self.heap_elems { 1 } else { child };
        addr
    }

    fn pc(&self) -> u64 {
        self.pc
    }

    fn is_dependent(&self) -> bool {
        // Sift-down compares parent and child values before descending.
        true
    }
}

/// Temporally correlated re-reference stream: replays a fixed sequence of
/// irregular addresses over and over. Rule-based delta prefetchers see noise,
/// but temporal prefetchers (SISB) capture it exactly — the `xalan`-style
/// archetype where record-and-replay wins.
#[derive(Debug, Clone)]
pub struct TemporalLoopPattern {
    sequence: Vec<u64>,
    idx: usize,
    pc: u64,
}

impl TemporalLoopPattern {
    /// Builds a loop of roughly `len` block addresses in
    /// `[base, base+region)`: random jump targets followed by short
    /// sequential runs (2-6 blocks), modelling linked nodes that an
    /// allocator placed contiguously — so spatial prefetchers get partial
    /// credit while only temporal replay captures the jump structure.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0` or `region < 64`.
    pub fn new(base: u64, region: u64, len: usize, pc: u64, seed: u64) -> Self {
        assert!(len > 0, "sequence must be non-empty");
        assert!(region >= 64, "region must hold at least one block");
        let mut rng = StdRng::seed_from_u64(seed);
        let blocks = region / 64;
        let mut sequence = Vec::with_capacity(len + 6);
        while sequence.len() < len {
            let start = rng.gen_range(0..blocks);
            let run = rng.gen_range(2..=6).min(blocks - start);
            for b in start..start + run {
                sequence.push(base + b * 64);
            }
        }
        TemporalLoopPattern {
            sequence,
            idx: 0,
            pc,
        }
    }

    /// Length of the repeating sequence.
    pub fn sequence_len(&self) -> usize {
        self.sequence.len()
    }
}

impl AddressPattern for TemporalLoopPattern {
    fn next_addr(&mut self, _rng: &mut StdRng) -> u64 {
        let addr = self.sequence[self.idx];
        self.idx = (self.idx + 1) % self.sequence.len();
        addr
    }

    fn pc(&self) -> u64 {
        self.pc
    }

    fn is_dependent(&self) -> bool {
        // Models linked-structure traversals (DOM walks, session objects):
        // the repeating order *is* the pointer order.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn stream_wraps_at_region_end() {
        let mut r = rng();
        let mut s = StreamPattern::new(0, 128, 64, 1);
        assert_eq!(s.next_addr(&mut r), 0);
        assert_eq!(s.next_addr(&mut r), 64);
        assert_eq!(s.next_addr(&mut r), 0, "wraps");
    }

    #[test]
    fn negative_stride_stream() {
        let mut r = rng();
        let mut s = StreamPattern::new(0, 256, -64, 1);
        // Starts at 0; negative step wraps to 0 again immediately.
        assert_eq!(s.next_addr(&mut r), 0);
        assert_eq!(s.next_addr(&mut r), 0);
    }

    #[test]
    fn delta_cycle_repeats_pattern() {
        let mut r = rng();
        let mut p = DeltaCyclePattern::new(0, 1 << 20, vec![64, 128, 192], 1);
        let a0 = p.next_addr(&mut r);
        let a1 = p.next_addr(&mut r);
        let a2 = p.next_addr(&mut r);
        let a3 = p.next_addr(&mut r);
        assert_eq!(a1 - a0, 64);
        assert_eq!(a2 - a1, 128);
        assert_eq!(a3 - a2, 192);
    }

    #[test]
    fn pointer_chase_visits_every_node() {
        let mut r = rng();
        let n = 64;
        let mut p = PointerChasePattern::new(n, 0, 64, 1, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..n {
            seen.insert(p.next_addr(&mut r));
        }
        assert_eq!(seen.len(), n, "single cycle visits all nodes");
    }

    #[test]
    fn pointer_chase_is_deterministic_per_seed() {
        let mut r1 = rng();
        let mut r2 = rng();
        let mut a = PointerChasePattern::new(32, 0, 64, 1, 3);
        let mut b = PointerChasePattern::new(32, 0, 64, 1, 3);
        for _ in 0..100 {
            assert_eq!(a.next_addr(&mut r1), b.next_addr(&mut r2));
        }
    }

    #[test]
    fn gather_stays_in_region() {
        let mut r = rng();
        let mut g = GatherPattern::new(0x1000, 0x2000, 8, 1);
        for _ in 0..1000 {
            let a = g.next_addr(&mut r);
            assert!((0x1000..0x3000).contains(&a));
            assert_eq!(a % 8, 0);
        }
    }

    #[test]
    fn heap_walk_descends_and_restarts() {
        let mut r = rng();
        let mut h = HeapWalkPattern::new(0, 8, 64, 1);
        let mut indices = Vec::new();
        for _ in 0..10 {
            indices.push(h.next_addr(&mut r) / 64);
        }
        // All indices within heap, and the walk revisits the root.
        assert!(indices.iter().all(|&i| (1..8).contains(&i)));
        assert!(indices.iter().filter(|&&i| i == 1).count() >= 2);
    }

    #[test]
    fn temporal_loop_replays_exactly() {
        let mut r = rng();
        let mut t = TemporalLoopPattern::new(0, 1 << 20, 16, 1, 99);
        let period = t.sequence_len();
        assert!(period >= 16);
        let first: Vec<u64> = (0..period).map(|_| t.next_addr(&mut r)).collect();
        let second: Vec<u64> = (0..period).map(|_| t.next_addr(&mut r)).collect();
        assert_eq!(first, second, "sequence repeats identically");
    }

    #[test]
    fn temporal_loop_has_spatial_runs() {
        let mut r = rng();
        let mut t = TemporalLoopPattern::new(0, 1 << 22, 500, 1, 5);
        let addrs: Vec<u64> = (0..500).map(|_| t.next_addr(&mut r)).collect();
        let sequential = addrs.windows(2).filter(|w| w[1] == w[0] + 64).count();
        assert!(
            sequential > 200,
            "allocator-style runs expected, got {sequential}/499 sequential steps"
        );
    }
}
