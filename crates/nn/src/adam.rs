//! The Adam optimizer.

use crate::tensor::Tensor;

/// Adam state shared across the parameter set (per-tensor moments live in
/// the tensors themselves).
#[derive(Debug, Clone)]
pub struct Adam {
    beta1: f32,
    beta2: f32,
    eps: f32,
    /// Global step count (for bias correction).
    t: u64,
}

impl Default for Adam {
    fn default() -> Self {
        Adam {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }
}

impl Adam {
    /// Creates an optimizer with explicit betas.
    ///
    /// # Panics
    ///
    /// Panics if the betas are outside `(0, 1)`.
    pub fn new(beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in (0,1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in (0,1)");
        Adam {
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to every tensor using its accumulated
    /// gradient. Gradients are *not* cleared.
    ///
    /// Entries whose gradient *and* first moment are both zero are skipped
    /// ("lazy" Adam): untouched embedding rows cost nothing, which matters
    /// for the sparse-update models in this workspace.
    pub fn step(&mut self, params: &mut [&mut Tensor], lr: f32) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for p in params {
            for i in 0..p.data.len() {
                let g = p.grad[i];
                if g == 0.0 && p.m[i] == 0.0 {
                    continue;
                }
                p.m[i] = self.beta1 * p.m[i] + (1.0 - self.beta1) * g;
                p.v[i] = self.beta2 * p.v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = p.m[i] / bc1;
                let v_hat = p.v[i] / bc2;
                p.data[i] -= lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, grad = 2(x - 3).
        let mut x = Tensor::zeros(1, 1);
        let mut adam = Adam::default();
        for _ in 0..2000 {
            x.grad[0] = 2.0 * (x.data[0] - 3.0);
            adam.step(&mut [&mut x], 0.05);
        }
        assert!((x.data[0] - 3.0).abs() < 0.05, "converged to {}", x.data[0]);
    }

    #[test]
    fn counts_steps() {
        let mut x = Tensor::zeros(1, 1);
        let mut adam = Adam::default();
        adam.step(&mut [&mut x], 0.1);
        adam.step(&mut [&mut x], 0.1);
        assert_eq!(adam.steps(), 2);
    }

    #[test]
    fn zero_gradient_is_stationary() {
        let mut x = Tensor::zeros(1, 1);
        x.data[0] = 5.0;
        let mut adam = Adam::default();
        adam.step(&mut [&mut x], 0.1);
        assert_eq!(x.data[0], 5.0);
    }
}
