//! A single LSTM layer with truncated back-propagation through time.

use rand::rngs::StdRng;

use crate::tensor::Tensor;

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Cached activations for one timestep, kept for the backward pass.
#[derive(Debug, Clone, Default)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    h: Vec<f32>,
}

/// One LSTM layer (standard gates: input, forget, cell, output).
///
/// Gate pre-activations are computed as `W_x x + W_h h_prev + b`, with the
/// four gates stacked in `[i, f, g, o]` order along the rows.
#[derive(Debug, Clone)]
pub struct LstmLayer {
    input_size: usize,
    hidden_size: usize,
    /// `4h x input` input weights.
    pub w_x: Tensor,
    /// `4h x h` recurrent weights.
    pub w_h: Tensor,
    /// `4h x 1` bias.
    pub b: Tensor,
    cache: Vec<StepCache>,
}

impl LstmLayer {
    /// Creates a layer with Xavier-initialized weights and forget-gate bias 1.
    pub fn new(input_size: usize, hidden_size: usize, rng: &mut StdRng) -> Self {
        let mut b = Tensor::zeros(4 * hidden_size, 1);
        // Standard trick: bias the forget gate open at init.
        for j in hidden_size..2 * hidden_size {
            b.data[j] = 1.0;
        }
        LstmLayer {
            input_size,
            hidden_size,
            w_x: Tensor::xavier(4 * hidden_size, input_size, rng),
            w_h: Tensor::xavier(4 * hidden_size, hidden_size, rng),
            b,
            cache: Vec::new(),
        }
    }

    /// Hidden-state width.
    pub fn hidden_size(&self) -> usize {
        self.hidden_size
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.input_size
    }

    /// Runs the layer over a sequence starting from zero state, returning
    /// the hidden state after each step. Caches activations for
    /// [`LstmLayer::backward`].
    pub fn forward(&mut self, inputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        self.cache.clear();
        let h = self.hidden_size;
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        let mut outputs = Vec::with_capacity(inputs.len());

        for x in inputs {
            debug_assert_eq!(x.len(), self.input_size);
            let mut z = self.b.data.clone(); // 4h pre-activations
            self.w_x.matvec_acc(x, &mut z);
            self.w_h.matvec_acc(&h_prev, &mut z);

            let mut cache = StepCache {
                x: x.clone(),
                h_prev: h_prev.clone(),
                c_prev: c_prev.clone(),
                i: vec![0.0; h],
                f: vec![0.0; h],
                g: vec![0.0; h],
                o: vec![0.0; h],
                c: vec![0.0; h],
                h: vec![0.0; h],
            };
            for j in 0..h {
                cache.i[j] = sigmoid(z[j]);
                cache.f[j] = sigmoid(z[h + j]);
                cache.g[j] = z[2 * h + j].tanh();
                cache.o[j] = sigmoid(z[3 * h + j]);
                cache.c[j] = cache.f[j] * c_prev[j] + cache.i[j] * cache.g[j];
                cache.h[j] = cache.o[j] * cache.c[j].tanh();
            }
            h_prev.copy_from_slice(&cache.h);
            c_prev.copy_from_slice(&cache.c);
            outputs.push(cache.h.clone());
            self.cache.push(cache);
        }
        outputs
    }

    /// Inference-only forward pass: returns just the final hidden state and
    /// keeps no per-step caches (no backward possible afterwards).
    pub fn forward_inference(&self, inputs: &[Vec<f32>]) -> Vec<f32> {
        let h = self.hidden_size;
        let mut h_prev = vec![0.0f32; h];
        let mut c_prev = vec![0.0f32; h];
        let mut z = vec![0.0f32; 4 * h];
        for x in inputs {
            debug_assert_eq!(x.len(), self.input_size);
            z.copy_from_slice(&self.b.data);
            self.w_x.matvec_acc(x, &mut z);
            self.w_h.matvec_acc(&h_prev, &mut z);
            for j in 0..h {
                let i = sigmoid(z[j]);
                let f = sigmoid(z[h + j]);
                let g = z[2 * h + j].tanh();
                let o = sigmoid(z[3 * h + j]);
                let c = f * c_prev[j] + i * g;
                c_prev[j] = c;
                h_prev[j] = o * c.tanh();
            }
        }
        h_prev
    }

    /// Back-propagates through the cached sequence. `d_outputs[t]` is the
    /// loss gradient w.r.t. the step-`t` hidden output (may be all-zero for
    /// steps without loss). Returns gradients w.r.t. the inputs.
    ///
    /// # Panics
    ///
    /// Panics if `d_outputs.len()` differs from the cached sequence length.
    pub fn backward(&mut self, d_outputs: &[Vec<f32>]) -> Vec<Vec<f32>> {
        assert_eq!(
            d_outputs.len(),
            self.cache.len(),
            "gradient sequence must match cached forward pass"
        );
        let h = self.hidden_size;
        let mut dh_next = vec![0.0f32; h];
        let mut dc_next = vec![0.0f32; h];
        let mut d_inputs = vec![vec![0.0f32; self.input_size]; self.cache.len()];

        for t in (0..self.cache.len()).rev() {
            let cache = self.cache[t].clone();
            let mut dh = d_outputs[t].clone();
            for j in 0..h {
                dh[j] += dh_next[j];
            }
            let mut dz = vec![0.0f32; 4 * h];
            let mut dc = dc_next.clone();
            for j in 0..h {
                let tanh_c = cache.c[j].tanh();
                let do_ = dh[j] * tanh_c;
                dc[j] += dh[j] * cache.o[j] * (1.0 - tanh_c * tanh_c);
                let di = dc[j] * cache.g[j];
                let df = dc[j] * cache.c_prev[j];
                let dg = dc[j] * cache.i[j];
                dz[j] = di * cache.i[j] * (1.0 - cache.i[j]);
                dz[h + j] = df * cache.f[j] * (1.0 - cache.f[j]);
                dz[2 * h + j] = dg * (1.0 - cache.g[j] * cache.g[j]);
                dz[3 * h + j] = do_ * cache.o[j] * (1.0 - cache.o[j]);
                dc_next[j] = dc[j] * cache.f[j];
            }
            // Parameter grads + input/hidden grads.
            dh_next.fill(0.0);
            self.w_x
                .backward_matvec(&cache.x, &dz, Some(&mut d_inputs[t]));
            self.w_h
                .backward_matvec(&cache.h_prev, &dz, Some(&mut dh_next));
            for (bg, d) in self.b.grad.iter_mut().zip(&dz) {
                *bg += d;
            }
        }
        d_inputs
    }

    /// All parameter tensors, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Tensor> {
        vec![&mut self.w_x, &mut self.w_h, &mut self.b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn layer(inp: usize, hid: usize) -> LstmLayer {
        let mut rng = StdRng::seed_from_u64(3);
        LstmLayer::new(inp, hid, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let mut l = layer(4, 8);
        let seq = vec![vec![0.1; 4]; 5];
        let out = l.forward(&seq);
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|h| h.len() == 8));
    }

    #[test]
    fn outputs_bounded_by_tanh() {
        let mut l = layer(4, 8);
        let seq = vec![vec![10.0; 4]; 3];
        let out = l.forward(&seq);
        assert!(out.iter().flatten().all(|&h| h.abs() <= 1.0));
    }

    #[test]
    fn state_carries_across_steps() {
        let mut l = layer(2, 4);
        let out = l.forward(&vec![vec![1.0, -1.0]; 2]);
        // Same input at t=0 and t=1 but different hidden state ⇒ different
        // outputs (recurrence has an effect).
        assert_ne!(out[0], out[1]);
    }

    #[test]
    fn numerical_gradient_check() {
        // Finite-difference check on a couple of w_x entries.
        let mut l = layer(3, 4);
        let seq = vec![vec![0.3, -0.2, 0.5], vec![0.1, 0.4, -0.6]];
        // Loss = sum of final hidden state.
        let loss = |l: &mut LstmLayer| -> f32 {
            let out = l.forward(&seq);
            out.last().unwrap().iter().sum()
        };
        let base = loss(&mut l);
        let _ = base;
        // Analytic gradient.
        let out_len = 2;
        let mut d_out = vec![vec![0.0f32; 4]; out_len];
        d_out[out_len - 1] = vec![1.0; 4];
        l.forward(&seq);
        l.backward(&d_out);
        for &idx in &[0usize, 5, 11] {
            let analytic = l.w_x.grad[idx];
            let eps = 1e-3f32;
            l.w_x.data[idx] += eps;
            let up = loss(&mut l);
            l.w_x.data[idx] -= 2.0 * eps;
            let down = loss(&mut l);
            l.w_x.data[idx] += eps;
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2_f32.max(0.1 * numeric.abs()),
                "grad mismatch at {idx}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn backward_rejects_wrong_length() {
        let mut l = layer(2, 2);
        l.forward(&vec![vec![0.0, 0.0]; 3]);
        let _ = l.backward(&[vec![0.0, 0.0]]);
    }
}
