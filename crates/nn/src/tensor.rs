//! A minimal dense 2-D parameter tensor with gradient and Adam moment
//! buffers.

use rand::rngs::StdRng;
use rand::Rng;

/// A row-major `rows x cols` parameter matrix carrying its own gradient and
/// optimizer state.
#[derive(Debug, Clone)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    /// Parameter values.
    pub data: Vec<f32>,
    /// Accumulated gradient (same layout as `data`).
    pub grad: Vec<f32>,
    /// Adam first-moment estimate.
    pub m: Vec<f32>,
    /// Adam second-moment estimate.
    pub v: Vec<f32>,
}

impl Tensor {
    /// Creates a zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let n = rows * cols;
        Tensor {
            rows,
            cols,
            data: vec![0.0; n],
            grad: vec![0.0; n],
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Creates a tensor with Xavier-uniform initialization.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let mut t = Tensor::zeros(rows, cols);
        let bound = (6.0f32 / (rows + cols) as f32).sqrt();
        for x in &mut t.data {
            *x = rng.gen_range(-bound..bound);
        }
        t
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable row view.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable gradient row view.
    #[inline]
    pub fn grad_row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.grad[r * self.cols..(r + 1) * self.cols]
    }

    /// `y += W x` where `W` is this `rows x cols` tensor and
    /// `x.len() == cols`, `y.len() == rows`.
    pub fn matvec_acc(&self, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for (yr, row) in y.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut acc = 0.0f32;
            for (w, xi) in row.iter().zip(x) {
                acc += w * xi;
            }
            *yr += acc;
        }
    }

    /// Accumulates the rank-1 outer-product gradient `grad += dy * x^T` and
    /// back-propagates `dx += W^T dy`.
    pub fn backward_matvec(&mut self, x: &[f32], dy: &[f32], dx: Option<&mut [f32]>) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(dy.len(), self.rows);
        for (&d, g) in dy.iter().zip(self.grad.chunks_exact_mut(self.cols)) {
            if d != 0.0 {
                for (gi, xi) in g.iter_mut().zip(x) {
                    *gi += d * xi;
                }
            }
        }
        if let Some(dx) = dx {
            debug_assert_eq!(dx.len(), self.cols);
            for (&d, row) in dy.iter().zip(self.data.chunks_exact(self.cols)) {
                if d != 0.0 {
                    for (dxi, w) in dx.iter_mut().zip(row) {
                        *dxi += d * w;
                    }
                }
            }
        }
    }

    /// Clears the gradient buffer.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn matvec_matches_manual() {
        let mut t = Tensor::zeros(2, 3);
        t.data = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let x = [1.0, 0.5, -1.0];
        let mut y = [0.0, 10.0];
        t.matvec_acc(&x, &mut y);
        assert_eq!(y[0], 1.0 + 1.0 - 3.0);
        assert_eq!(y[1], 10.0 + 4.0 + 2.5 - 6.0);
    }

    #[test]
    fn backward_accumulates_outer_product() {
        let mut t = Tensor::zeros(2, 2);
        t.data = vec![1.0, 2.0, 3.0, 4.0];
        let x = [0.5, -1.0];
        let dy = [2.0, 1.0];
        let mut dx = [0.0, 0.0];
        t.backward_matvec(&x, &dy, Some(&mut dx));
        // grad = dy ⊗ x
        assert_eq!(t.grad, vec![1.0, -2.0, 0.5, -1.0]);
        // dx = W^T dy
        assert_eq!(dx[0], 1.0 * 2.0 + 3.0 * 1.0);
        assert_eq!(dx[1], 2.0 * 2.0 + 4.0 * 1.0);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = Tensor::xavier(16, 16, &mut rng);
        let bound = (6.0f32 / 32.0).sqrt();
        assert!(t.data.iter().all(|&x| x.abs() <= bound));
        assert!(t.data.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn zero_grad_clears() {
        let mut t = Tensor::zeros(2, 2);
        t.grad = vec![1.0; 4];
        t.zero_grad();
        assert!(t.grad.iter().all(|&g| g == 0.0));
    }
}
