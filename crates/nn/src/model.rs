//! A token-sequence classifier: embedding → stacked LSTM → dense softmax.
//!
//! This is the workhorse behind the Delta-LSTM baseline (two LSTM layers of
//! 128 units plus a dense layer in the paper; scaled down here) and the
//! Voyager surrogate's page/offset predictors.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::adam::Adam;
use crate::lstm::LstmLayer;
use crate::tensor::Tensor;

/// Configuration for a [`SequenceClassifier`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Token vocabulary size (input and output).
    pub vocab: usize,
    /// Embedding width.
    pub embed: usize,
    /// Hidden width per LSTM layer.
    pub hidden: usize,
    /// Number of stacked LSTM layers (the paper's Delta-LSTM uses 2).
    pub layers: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            vocab: 128,
            embed: 32,
            hidden: 64,
            layers: 2,
        }
    }
}

/// An LSTM next-token classifier trained with softmax cross-entropy.
///
/// # Examples
///
/// ```
/// use pathfinder_nn::{ModelConfig, SequenceClassifier};
///
/// let cfg = ModelConfig { vocab: 8, embed: 4, hidden: 8, layers: 1 };
/// let mut model = SequenceClassifier::new(cfg, 1);
/// // Learn the rule "after [1,2,3] comes 4".
/// for _ in 0..200 {
///     model.train_step(&[1, 2, 3], 4, 0.01);
/// }
/// assert_eq!(model.predict_topk(&[1, 2, 3], 1)[0], 4);
/// ```
#[derive(Debug)]
pub struct SequenceClassifier {
    cfg: ModelConfig,
    embedding: Tensor,
    lstms: Vec<LstmLayer>,
    out_w: Tensor,
    out_b: Tensor,
    adam: Adam,
}

impl SequenceClassifier {
    /// Creates a model with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if any dimension in `cfg` is zero.
    pub fn new(cfg: ModelConfig, seed: u64) -> Self {
        assert!(
            cfg.vocab > 0 && cfg.embed > 0 && cfg.hidden > 0 && cfg.layers > 0,
            "model dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lstms = Vec::with_capacity(cfg.layers);
        for l in 0..cfg.layers {
            let input = if l == 0 { cfg.embed } else { cfg.hidden };
            lstms.push(LstmLayer::new(input, cfg.hidden, &mut rng));
        }
        SequenceClassifier {
            embedding: Tensor::xavier(cfg.vocab, cfg.embed, &mut rng),
            out_w: Tensor::xavier(cfg.vocab, cfg.hidden, &mut rng),
            out_b: Tensor::zeros(cfg.vocab, 1),
            lstms,
            adam: Adam::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    fn forward_logits(&mut self, tokens: &[usize]) -> Vec<f32> {
        let mut seq: Vec<Vec<f32>> = tokens
            .iter()
            .map(|&t| self.embedding.row(t % self.cfg.vocab).to_vec())
            .collect();
        for lstm in &mut self.lstms {
            seq = lstm.forward(&seq);
        }
        let h_last = seq.last().expect("non-empty sequence");
        let mut logits = self.out_b.data.clone();
        self.out_w.matvec_acc(h_last, &mut logits);
        logits
    }

    /// Softmax class probabilities for the next token after `tokens`.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty.
    pub fn predict_probs(&mut self, tokens: &[usize]) -> Vec<f32> {
        assert!(!tokens.is_empty(), "need at least one input token");
        softmax(&self.forward_logits(tokens))
    }

    /// The `k` most likely next tokens, most likely first.
    pub fn predict_topk(&mut self, tokens: &[usize], k: usize) -> Vec<usize> {
        let probs = self.predict_probs(tokens);
        let mut idx: Vec<usize> = (0..probs.len()).collect();
        idx.sort_unstable_by(|&a, &b| probs[b].partial_cmp(&probs[a]).expect("finite probs"));
        idx.truncate(k);
        idx
    }

    /// One SGD step on `(tokens → target)`; returns the cross-entropy loss.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is empty or `target >= vocab`.
    pub fn train_step(&mut self, tokens: &[usize], target: usize, lr: f32) -> f32 {
        assert!(!tokens.is_empty(), "need at least one input token");
        assert!(target < self.cfg.vocab, "target out of vocabulary");

        // Forward with caches.
        let emb_seq: Vec<Vec<f32>> = tokens
            .iter()
            .map(|&t| self.embedding.row(t % self.cfg.vocab).to_vec())
            .collect();
        let mut acts: Vec<Vec<Vec<f32>>> = vec![emb_seq];
        for lstm in &mut self.lstms {
            let next = lstm.forward(acts.last().expect("layer input"));
            acts.push(next);
        }
        let h_last = acts.last().unwrap().last().unwrap().clone();
        let mut logits = self.out_b.data.clone();
        self.out_w.matvec_acc(&h_last, &mut logits);
        let probs = softmax(&logits);
        let loss = -(probs[target].max(1e-12)).ln();

        // Backward: dlogits = p - y.
        let mut dlogits = probs;
        dlogits[target] -= 1.0;
        let mut dh_last = vec![0.0f32; self.cfg.hidden];
        self.out_w
            .backward_matvec(&h_last, &dlogits, Some(&mut dh_last));
        for (bg, d) in self.out_b.grad.iter_mut().zip(&dlogits) {
            *bg += d;
        }

        // Through the LSTM stack (loss applies only to the final step).
        let seq_len = tokens.len();
        let mut d_seq: Vec<Vec<f32>> = vec![vec![0.0; self.cfg.hidden]; seq_len];
        d_seq[seq_len - 1] = dh_last;
        for lstm in self.lstms.iter_mut().rev() {
            d_seq = lstm.backward(&d_seq);
        }
        // Into the embedding rows.
        for (t, d) in tokens.iter().zip(&d_seq) {
            let row = self.embedding.grad_row_mut(*t % self.cfg.vocab);
            for (g, di) in row.iter_mut().zip(d) {
                *g += di;
            }
        }

        // Update.
        let mut params: Vec<&mut Tensor> =
            vec![&mut self.embedding, &mut self.out_w, &mut self.out_b];
        for lstm in &mut self.lstms {
            params.extend(lstm.params_mut());
        }
        self.adam.step(&mut params, lr);
        for p in params {
            p.zero_grad();
        }
        loss
    }
}

/// Numerically stable softmax.
pub fn softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SequenceClassifier {
        SequenceClassifier::new(
            ModelConfig {
                vocab: 10,
                embed: 8,
                hidden: 16,
                layers: 2,
            },
            7,
        )
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn learns_a_fixed_mapping() {
        let mut m = tiny();
        let examples = [
            (vec![1usize, 2, 3], 4usize),
            (vec![5, 5, 5], 6),
            (vec![2, 4, 6], 8),
        ];
        for _ in 0..300 {
            for (seq, tgt) in &examples {
                m.train_step(seq, *tgt, 0.01);
            }
        }
        for (seq, tgt) in &examples {
            assert_eq!(m.predict_topk(seq, 1)[0], *tgt, "sequence {seq:?}");
        }
    }

    #[test]
    fn loss_decreases_with_training() {
        let mut m = tiny();
        let first = m.train_step(&[1, 2, 3], 4, 0.01);
        let mut last = first;
        for _ in 0..100 {
            last = m.train_step(&[1, 2, 3], 4, 0.01);
        }
        assert!(last < first * 0.5, "loss should drop: {first} -> {last}");
    }

    #[test]
    fn topk_orders_by_probability() {
        let mut m = tiny();
        for _ in 0..200 {
            m.train_step(&[3, 3, 3], 7, 0.01);
        }
        let top2 = m.predict_topk(&[3, 3, 3], 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0], 7);
        let probs = m.predict_probs(&[3, 3, 3]);
        assert!(probs[top2[0]] >= probs[top2[1]]);
    }

    #[test]
    fn unseen_input_still_predicts_something() {
        let mut m = tiny();
        let p = m.predict_probs(&[9, 0, 9]);
        assert_eq!(p.len(), 10);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn rejects_bad_target() {
        let mut m = tiny();
        m.train_step(&[1], 10, 0.01);
    }
}
