//! 1-D k-means, used by the Delta-LSTM baseline to cluster memory addresses
//! by locality before training (the paper follows Hashemi et al.'s
//! recommendation of 6 clusters per trace).

/// Result of a clustering run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Sorted cluster centroids.
    pub centroids: Vec<f64>,
}

impl Clustering {
    /// Runs Lloyd's algorithm on scalar `values` with `k` clusters.
    ///
    /// Centroids are seeded at evenly spaced quantiles, which makes the run
    /// deterministic. Returns `k.min(distinct values)` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or `k == 0`.
    pub fn fit(values: &[f64], k: usize, iterations: usize) -> Self {
        assert!(!values.is_empty(), "cannot cluster an empty set");
        assert!(k > 0, "need at least one cluster");
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        sorted.dedup();
        let k = k.min(sorted.len());

        // Midpoint-quantile seeding: one seed per k-th of the sorted values.
        let mut centroids: Vec<f64> = (0..k)
            .map(|i| sorted[(2 * i + 1) * (sorted.len() - 1) / (2 * k)])
            .collect();
        centroids.dedup();

        for _ in 0..iterations {
            let mut sums = vec![0.0f64; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for &v in values {
                let c = Self::nearest(&centroids, v);
                sums[c] += v;
                counts[c] += 1;
            }
            let mut moved = false;
            for (c, (&s, &n)) in sums.iter().zip(&counts).enumerate() {
                if n > 0 {
                    let new = s / n as f64;
                    if (new - centroids[c]).abs() > 1e-9 {
                        centroids[c] = new;
                        moved = true;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        centroids.sort_by(|a, b| a.partial_cmp(b).expect("finite centroids"));
        Clustering { centroids }
    }

    fn nearest(centroids: &[f64], v: f64) -> usize {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &c) in centroids.iter().enumerate() {
            let d = (v - c).abs();
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Cluster index of `v`.
    pub fn assign(&self, v: f64) -> usize {
        Self::nearest(&self.centroids, v)
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.centroids.len()
    }

    /// Whether the clustering has no centroids (never true after `fit`).
    pub fn is_empty(&self) -> bool {
        self.centroids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_obvious_groups() {
        let mut vals: Vec<f64> = (0..50).map(|i| i as f64).collect();
        vals.extend((0..50).map(|i| 1000.0 + i as f64));
        let c = Clustering::fit(&vals, 2, 20);
        assert_eq!(c.len(), 2);
        assert!(c.centroids[0] < 100.0);
        assert!(c.centroids[1] > 900.0);
        assert_eq!(c.assign(10.0), 0);
        assert_eq!(c.assign(1020.0), 1);
    }

    #[test]
    fn handles_fewer_distinct_values_than_k() {
        let vals = vec![1.0, 1.0, 2.0, 2.0];
        let c = Clustering::fit(&vals, 6, 10);
        assert!(c.len() <= 2);
    }

    #[test]
    fn deterministic() {
        let vals: Vec<f64> = (0..100).map(|i| ((i * 37) % 100) as f64).collect();
        assert_eq!(Clustering::fit(&vals, 4, 25), Clustering::fit(&vals, 4, 25));
    }

    #[test]
    fn six_cluster_address_use_case() {
        // Addresses in six well-separated regions, like the Delta-LSTM
        // clustering step.
        let vals: Vec<f64> = (0..6)
            .flat_map(|r| (0..100).map(move |i| (r as f64) * 1e9 + i as f64 * 64.0))
            .collect();
        let c = Clustering::fit(&vals, 6, 30);
        assert_eq!(c.len(), 6);
        // Every region maps to its own cluster.
        let ids: std::collections::HashSet<usize> = (0..6)
            .map(|r| c.assign((r as f64) * 1e9 + 50.0 * 64.0))
            .collect();
        assert_eq!(ids.len(), 6);
    }
}
