//! # pathfinder-nn
//!
//! A deliberately small neural-network library — dense/LSTM layers,
//! softmax cross-entropy, Adam, and 1-D k-means — implementing just enough
//! machinery for the PATHFINDER reproduction's artificial-neural baselines:
//!
//! * **Delta-LSTM** (Hashemi et al.): address clustering (k-means) + a
//!   2-layer LSTM next-delta classifier trained offline on a trace prefix.
//! * **Voyager** (Shi et al.): hierarchical page/offset LSTM predictors.
//!
//! The point of these baselines in the paper is the *workflow contrast* with
//! PATHFINDER's on-line STDP (epoch training vs continuous learning), so the
//! library optimizes for clarity and determinism, not throughput.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_nn::{ModelConfig, SequenceClassifier};
//!
//! let cfg = ModelConfig { vocab: 16, embed: 8, hidden: 16, layers: 1 };
//! let mut model = SequenceClassifier::new(cfg, 42);
//! for _ in 0..150 {
//!     model.train_step(&[2, 4, 6], 8, 0.01);
//! }
//! assert_eq!(model.predict_topk(&[2, 4, 6], 1)[0], 8);
//! ```

#![warn(missing_docs)]

pub mod adam;
pub mod kmeans;
pub mod lstm;
pub mod model;
pub mod tensor;

pub use adam::Adam;
pub use kmeans::Clustering;
pub use lstm::LstmLayer;
pub use model::{softmax, ModelConfig, SequenceClassifier};
pub use tensor::Tensor;
