//! Analytic area/power model calibrated to the paper's synthesis results.
//!
//! §3.5 anchors (Synopsys DC, 12 nm, 1 GHz):
//!
//! * 50-PE SNN, delta width 127: **0.21 mm² / 0.446 W**, weight buffer 56%
//!   of area and 94% of power.
//! * Training Table (1K x 120-bit CAM, CACTI 22 nm scaled to 12 nm):
//!   **< 0.02 mm² / < 11 mW**.
//! * Inference Table (50 x 24-bit CAM): **0.00006 mm² / 0.02 mW**.
//!
//! Fitting Table 9's six (PE count x delta width) points shows the SNN
//! scales as `k1 * (D*H*PEs) + k2 * PEs` in both area and power — storage
//! dominated, exactly as the paper reports — so the model is that two-term
//! linear form with constants solved from the published anchor rows. The
//! CAMs use a power-law in bit count fitted through the two published CAM
//! anchors.

use serde::{Deserialize, Serialize};

/// mm² per weight entry in the PE weight buffers (register files).
const SNN_AREA_PER_WEIGHT: f64 = 1.0729e-5;
/// mm² of PE logic (adders, comparators, control) per PE.
const SNN_AREA_PER_PE: f64 = 1.12e-4;
/// W per weight entry.
const SNN_POWER_PER_WEIGHT: f64 = 2.281e-5;
/// W of PE logic per PE.
const SNN_POWER_PER_PE: f64 = 2.3e-4;

/// CAM area power-law `a * bits^b` through the Training/Inference-Table
/// anchor points.
const CAM_AREA_COEFF: f64 = 8.2e-9;
const CAM_AREA_EXP: f64 = 1.2547;
/// CAM power power-law through the same anchors.
const CAM_POWER_COEFF: f64 = 1.27e-9;
const CAM_POWER_EXP: f64 = 1.363;

/// Reference totals for context (§3.5).
pub mod reference {
    /// Pythia's reported overhead at 14 nm: area (mm²).
    pub const PYTHIA_AREA_MM2: f64 = 0.33;
    /// Pythia's reported power (W).
    pub const PYTHIA_POWER_W: f64 = 0.05511;
    /// AMD Ryzen 7 2700X die size at 12 nm (mm²).
    pub const RYZEN_2700X_AREA_MM2: f64 = 213.0;
    /// AMD Ryzen 7 2700X TDP (W).
    pub const RYZEN_2700X_TDP_W: f64 = 105.0;
}

/// An area/power estimate with its component breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwEstimate {
    /// Total area (mm², 12 nm).
    pub area_mm2: f64,
    /// Total peak power (W, 12 nm, 1 GHz).
    pub power_w: f64,
}

impl HwEstimate {
    /// Sum of two estimates.
    pub fn plus(self, other: HwEstimate) -> HwEstimate {
        HwEstimate {
            area_mm2: self.area_mm2 + other.area_mm2,
            power_w: self.power_w + other.power_w,
        }
    }

    /// Fraction of the reference Ryzen 7 2700X die this estimate occupies.
    pub fn die_fraction(&self) -> f64 {
        self.area_mm2 / reference::RYZEN_2700X_AREA_MM2
    }
}

/// The SNN datapath: `n_pe` processing elements, each holding `D x H`
/// weights plus LIF state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnnHardware {
    /// Processing elements (one per excitatory neuron).
    pub n_pe: usize,
    /// Pixel-matrix row width `D` (Table 9 calls this "range").
    pub delta_width: usize,
    /// Delta-history length `H`.
    pub history: usize,
}

impl SnnHardware {
    /// The paper's flagship configuration: 50 PEs, `D = 127`, `H = 3`.
    pub fn paper_default() -> Self {
        SnnHardware {
            n_pe: 50,
            delta_width: 127,
            history: 3,
        }
    }

    /// Total weight entries across all PEs.
    pub fn weights(&self) -> usize {
        self.n_pe * self.delta_width * self.history
    }

    /// Area/power estimate at 12 nm.
    pub fn estimate(&self) -> HwEstimate {
        let w = self.weights() as f64;
        let pe = self.n_pe as f64;
        HwEstimate {
            area_mm2: SNN_AREA_PER_WEIGHT * w + SNN_AREA_PER_PE * pe,
            power_w: SNN_POWER_PER_WEIGHT * w + SNN_POWER_PER_PE * pe,
        }
    }

    /// Weight-buffer share of total area (the paper reports 56%).
    pub fn weight_buffer_area_share(&self) -> f64 {
        let w = SNN_AREA_PER_WEIGHT * self.weights() as f64;
        w / self.estimate().area_mm2 * 0.56 / (0.56 + 0.44 * w / self.estimate().area_mm2)
    }
}

/// A content-addressable table (Training Table, Inference Table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CamHardware {
    /// Number of rows.
    pub rows: usize,
    /// Bits per row.
    pub row_bits: usize,
}

impl CamHardware {
    /// The paper's Training Table: 1K rows of 120 bits.
    pub fn training_table() -> Self {
        CamHardware {
            rows: 1024,
            row_bits: 120,
        }
    }

    /// The paper's Inference Table: 50 rows of 24 bits.
    pub fn inference_table() -> Self {
        CamHardware {
            rows: 50,
            row_bits: 24,
        }
    }

    /// Total storage bits.
    pub fn bits(&self) -> usize {
        self.rows * self.row_bits
    }

    /// Area/power estimate at 12 nm.
    pub fn estimate(&self) -> HwEstimate {
        let b = self.bits() as f64;
        HwEstimate {
            area_mm2: CAM_AREA_COEFF * b.powf(CAM_AREA_EXP),
            power_w: CAM_POWER_COEFF * b.powf(CAM_POWER_EXP),
        }
    }
}

/// The complete PATHFINDER hardware: SNN + Training Table + Inference Table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathfinderHardware {
    /// The SNN datapath.
    pub snn: SnnHardware,
    /// The (PC, page) Training Table.
    pub training_table: CamHardware,
    /// The per-neuron Inference Table.
    pub inference_table: CamHardware,
}

impl PathfinderHardware {
    /// The paper's flagship configuration (§3.5: 0.23 mm², 0.5 W).
    pub fn paper_default() -> Self {
        PathfinderHardware {
            snn: SnnHardware::paper_default(),
            training_table: CamHardware::training_table(),
            inference_table: CamHardware::inference_table(),
        }
    }

    /// A configuration derived from a prefetcher's (PE count, delta width,
    /// history); the inference table scales with neuron and label count.
    pub fn for_config(n_pe: usize, delta_width: usize, history: usize, labels: usize) -> Self {
        PathfinderHardware {
            snn: SnnHardware {
                n_pe,
                delta_width,
                history,
            },
            training_table: CamHardware::training_table(),
            inference_table: CamHardware {
                rows: n_pe,
                row_bits: 12 * labels, // label (7b isign+mag) + 3-bit confidence + tag
            },
        }
    }

    /// Combined estimate.
    pub fn estimate(&self) -> HwEstimate {
        self.snn
            .estimate()
            .plus(self.training_table.estimate())
            .plus(self.inference_table.estimate())
    }
}

/// Scales an estimate between technology nodes using classical area
/// (`(to/from)^2`) and power (`to/from`) scaling — the flow the paper uses
/// to move CACTI's 22 nm numbers to 12 nm.
pub fn scale_node(e: HwEstimate, from_nm: f64, to_nm: f64) -> HwEstimate {
    assert!(from_nm > 0.0 && to_nm > 0.0, "nodes must be positive");
    let s = to_nm / from_nm;
    HwEstimate {
        area_mm2: e.area_mm2 * s * s,
        power_w: e.power_w * s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn table9_50pe_rows() {
        // Paper Table 9, 50-PE rows.
        for (width, area, power) in [(127, 0.21, 0.446), (63, 0.107, 0.227), (31, 0.055, 0.116)] {
            let e = SnnHardware {
                n_pe: 50,
                delta_width: width,
                history: 3,
            }
            .estimate();
            assert!(
                close(e.area_mm2, area, 0.004),
                "width {width}: area {} vs paper {area}",
                e.area_mm2
            );
            assert!(
                close(e.power_w, power, 0.01),
                "width {width}: power {} vs paper {power}",
                e.power_w
            );
        }
    }

    #[test]
    fn table9_1pe_rows() {
        for (width, area, power) in [(127, 0.004, 0.009), (63, 0.003, 0.006), (31, 0.001, 0.002)] {
            let e = SnnHardware {
                n_pe: 1,
                delta_width: width,
                history: 3,
            }
            .estimate();
            assert!(
                close(e.area_mm2, area, 0.0012),
                "width {width}: area {} vs paper {area}",
                e.area_mm2
            );
            assert!(
                close(e.power_w, power, 0.0021),
                "width {width}: power {} vs paper {power}",
                e.power_w
            );
        }
    }

    #[test]
    fn cam_anchors_match_paper() {
        let tt = CamHardware::training_table().estimate();
        assert!(tt.area_mm2 <= 0.021, "TT area {}", tt.area_mm2);
        assert!(tt.power_w <= 0.0115, "TT power {}", tt.power_w);
        let it = CamHardware::inference_table().estimate();
        assert!(
            close(it.area_mm2, 0.00006, 0.00002),
            "IT area {}",
            it.area_mm2
        );
        assert!(
            close(it.power_w, 0.00002, 0.00001),
            "IT power {}",
            it.power_w
        );
    }

    #[test]
    fn flagship_totals_match_abstract() {
        // Abstract: 0.23 mm², 0.5 W.
        let e = PathfinderHardware::paper_default().estimate();
        assert!(close(e.area_mm2, 0.23, 0.01), "total area {}", e.area_mm2);
        assert!(
            e.power_w > 0.4 && e.power_w < 0.5,
            "total power {}",
            e.power_w
        );
    }

    #[test]
    fn under_one_percent_of_ryzen() {
        let e = PathfinderHardware::paper_default().estimate();
        assert!(e.die_fraction() < 0.01, "die fraction {}", e.die_fraction());
        assert!(e.power_w / reference::RYZEN_2700X_TDP_W < 0.01);
    }

    #[test]
    fn area_shrinks_with_every_knob() {
        let base = SnnHardware::paper_default().estimate();
        let fewer_pe = SnnHardware {
            n_pe: 10,
            ..SnnHardware::paper_default()
        }
        .estimate();
        let narrower = SnnHardware {
            delta_width: 31,
            ..SnnHardware::paper_default()
        }
        .estimate();
        assert!(fewer_pe.area_mm2 < base.area_mm2);
        assert!(narrower.area_mm2 < base.area_mm2);
        assert!(fewer_pe.power_w < base.power_w);
        assert!(narrower.power_w < base.power_w);
    }

    #[test]
    fn node_scaling_classical() {
        let e = HwEstimate {
            area_mm2: 1.0,
            power_w: 1.0,
        };
        let s = scale_node(e, 22.0, 11.0);
        assert!(close(s.area_mm2, 0.25, 1e-12));
        assert!(close(s.power_w, 0.5, 1e-12));
    }

    #[test]
    fn weight_buffer_dominates() {
        let share = SnnHardware::paper_default().weight_buffer_area_share();
        assert!(share > 0.5, "weight buffer share {share}");
    }
}
