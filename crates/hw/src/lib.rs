//! # pathfinder-hw
//!
//! Analytic area/power model for the PATHFINDER hardware (§3.5, Table 9):
//! per-neuron processing elements with register-file weight buffers, plus
//! the Training and Inference Table CAMs. Constants are calibrated to the
//! paper's published Synopsys DC (12 nm) and CACTI anchor points, so the
//! model reproduces Table 9 and the 0.23 mm² / 0.5 W headline within
//! rounding.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_hw::PathfinderHardware;
//!
//! let hw = PathfinderHardware::paper_default();
//! let e = hw.estimate();
//! assert!((e.area_mm2 - 0.23).abs() < 0.01);
//! assert!(e.die_fraction() < 0.01); // < 1% of a Ryzen 2700X die
//! ```

#![warn(missing_docs)]

pub mod model;

pub use model::{reference, scale_node, CamHardware, HwEstimate, PathfinderHardware, SnnHardware};
