//! # pathfinder-accel
//!
//! Shared runtime SIMD dispatch for the workspace's hot loops, plus the
//! integer scan kernels the flat replay engine is built on.
//!
//! The dispatch machinery ([`CpuCapabilities`], [`KernelTier`],
//! [`active_tier`], and the `PATHFINDER_FORCE_SCALAR` override) started
//! life in `snn::accel` (PR 6) gating the f32 presentation kernels; this
//! crate lifts it out so the `sim` crate's integer scans — and any future
//! accelerated subsystem — share one capability probe, one tier enum, and
//! one override, instead of each crate growing its own. `pathfinder-snn`
//! re-exports these types unchanged, so existing `snn::accel` users are
//! unaffected.
//!
//! ## The integer kernel family
//!
//! The timed replay's hot loops are contiguous `u64` walks: the packed
//! tag+valid lookup scan in `Cache::find`, the LRU victim min-scan in
//! `Cache::fill_victim`, and the threshold/min scans in `MshrTracker` and
//! `DramModel`. This crate provides them as tier-dispatched kernels:
//!
//! * [`find_eq_u64`] — position of the first element equal to a needle
//!   (`_mm256_cmpeq_epi64` + movemask on the AVX2 tier).
//! * [`min_u64`] — minimum value (lane-wise `u64` min reduction).
//! * [`min_index_u64`] — index of the **first** minimum, matching a
//!   scalar strict-`<` walk.
//! * [`min2_index_u64`] — first-minimum index, the minimum, and the
//!   runner-up minimum in one call (the MSHR `pop_earliest` shape).
//!
//! ## The bit-identity contract
//!
//! Unlike the SNN's f32 kernels — which keep bit-identity only by
//! carefully avoiding FMA contraction and re-associated reductions —
//! integer comparisons and minima are exact: any evaluation order yields
//! the same minimum, and "first index equal to the minimum" is exactly
//! the index a strict-`<` scalar scan keeps. The AVX2 tier is therefore
//! bit-identical to the scalar tier **by construction**, for every input.
//! The `sim::reference` engine/cache equivalence proptests pin both tiers
//! with no tolerance machinery, and CI re-runs them under
//! `PATHFINDER_FORCE_SCALAR=1`.
//!
//! AVX2 has no unsigned 64-bit compare, so the SIMD min kernels operate
//! on sign-bias-flipped values (`x ^ (1 << 63)`), under which signed
//! `_mm256_cmpgt_epi64` ordering coincides with unsigned `u64` ordering
//! across the whole domain — including values at and above `2^63`.
//!
//! ## Forcing the scalar tier
//!
//! Setting `PATHFINDER_FORCE_SCALAR` to anything other than `0`, `false`,
//! or the empty string makes [`active_tier`] return [`KernelTier::Scalar`]
//! regardless of CPU support. The variable is read once per process (the
//! tier is cached in a `OnceLock`); changing it at runtime has no effect
//! on structures already constructed or on later [`active_tier`] calls.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::OnceLock;

/// The CPU features (and process-level overrides) relevant to kernel
/// dispatch, probed once via [`CpuCapabilities::detect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCapabilities {
    /// Host supports AVX2 (256-bit lanes), per
    /// `is_x86_feature_detected!("avx2")`. Always `false` off x86-64.
    pub avx2: bool,
    /// The `PATHFINDER_FORCE_SCALAR` environment override is active, which
    /// pins dispatch to [`KernelTier::Scalar`] regardless of `avx2`.
    pub force_scalar: bool,
}

impl CpuCapabilities {
    /// Probes the host CPU and the process environment.
    pub fn detect() -> Self {
        CpuCapabilities {
            avx2: avx2_available(),
            force_scalar: force_scalar_from(
                std::env::var("PATHFINDER_FORCE_SCALAR").ok().as_deref(),
            ),
        }
    }

    /// The kernel tier this capability set dispatches to: the widest
    /// supported SIMD tier, unless `force_scalar` pins it to
    /// [`KernelTier::Scalar`].
    pub fn tier(self) -> KernelTier {
        if self.force_scalar {
            return KernelTier::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if self.avx2 {
            return KernelTier::Avx2;
        }
        KernelTier::Scalar
    }
}

/// Whether the host CPU supports AVX2 (always `false` off x86-64).
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Parses the `PATHFINDER_FORCE_SCALAR` value: unset, empty, `0`, and
/// `false` (any case) leave dispatch alone; anything else forces scalar.
fn force_scalar_from(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => {
            let v = v.trim();
            !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
        }
    }
}

/// Which kernel implementation a structure dispatches its hot loops to.
///
/// A tier is selected once per structure at construction (from
/// [`active_tier`] by default, or explicitly via the `with_tier` /
/// `with_kernel_tier` constructors on `LifLayer`, `DiehlCookNetwork`,
/// `Cache`, and `Simulator`) and used for every operation that structure
/// runs. Tiers are *behaviourally identical* — see the bit-identity
/// contract in the [crate docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable scalar loops; always available, and the semantic baseline
    /// the SIMD tiers are pinned against.
    Scalar,
    /// AVX2 kernels: 8-wide f32 lanes for the SNN arithmetic and 4-wide
    /// `u64` lanes for the replay scans. Only constructible on hosts where
    /// `is_x86_feature_detected!("avx2")` holds (checked constructors
    /// refuse it elsewhere).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl KernelTier {
    /// Stable lowercase name for reports and bench documents
    /// (`"scalar"` / `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => "avx2",
        }
    }

    /// Whether the host CPU can execute this tier. [`KernelTier::Scalar`]
    /// is always supported; SIMD tiers require their feature probe to
    /// pass. Constructors that accept an explicit tier call this and
    /// reject unsupported requests, which keeps "a tier value exists" from
    /// ever implying "its instructions are safe to run here".
    pub fn supported(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => is_x86_feature_detected!("avx2"),
        }
    }
}

/// The process-wide dispatch decision: [`CpuCapabilities::detect`]
/// evaluated once and cached. Default constructors across the workspace
/// (`DiehlCookNetwork::new`, `LifLayer::new`, `Cache::new`,
/// `Simulator::new`, ...) capture this value at construction.
pub fn active_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| CpuCapabilities::detect().tier())
}

// ---------------------------------------------------------------------------
// Integer scan kernels. Each dispatch wrapper routes to the scalar loop or
// (behind the capability check encoded in the tier's construction) the AVX2
// kernel; results are bit-identical by construction.
// ---------------------------------------------------------------------------

/// Position of the first element equal to `needle` — the packed tag+valid
/// lookup scan of `Cache::find`.
#[inline]
pub fn find_eq_u64(tier: KernelTier, xs: &[u64], needle: u64) -> Option<usize> {
    match tier {
        KernelTier::Scalar => find_eq_u64_scalar(xs, needle),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an Avx2 tier is only constructed after a successful
        // `is_x86_feature_detected!("avx2")` probe (see KernelTier docs).
        KernelTier::Avx2 => unsafe { avx2::find_eq_u64(xs, needle) },
    }
}

/// Minimum value of a slice (`u64::MAX` when empty) — the cached-earliest
/// recompute in `MshrTracker` and `DramModel` threshold drains.
#[inline]
pub fn min_u64(tier: KernelTier, xs: &[u64]) -> u64 {
    match tier {
        KernelTier::Scalar => min_u64_scalar(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `find_eq_u64`.
        KernelTier::Avx2 => unsafe { avx2::min_u64(xs) },
    }
}

/// Index of the **first** minimum — the LRU victim scan of
/// `Cache::fill_victim`. Identical to a scalar strict-`<` walk: the AVX2
/// tier reduces the minimum value lane-wise, then takes the first index
/// equal to it, which is the same element the strict-`<` walk keeps.
///
/// # Panics
///
/// Panics if `xs` is empty (a victim scan over zero ways is a caller bug).
#[inline]
pub fn min_index_u64(tier: KernelTier, xs: &[u64]) -> usize {
    assert!(!xs.is_empty(), "accel: min_index_u64 over an empty slice");
    match tier {
        KernelTier::Scalar => min_index_u64_scalar(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `find_eq_u64`.
        KernelTier::Avx2 => unsafe {
            let m = avx2::min_u64(xs);
            avx2::find_eq_u64(xs, m).expect("minimum value must be present")
        },
    }
}

/// One-call min-and-runner-up: returns `(first_min_index, min, runner_up)`
/// where `runner_up` is the second-smallest element counting duplicates
/// (`u64::MAX` for a one-element slice) — so after removing the element at
/// `first_min_index`, the minimum of the remainder is exactly `runner_up`.
/// This is the `MshrTracker::pop_earliest` shape: one scan replaces the
/// old find-the-min pass plus rebuild-the-minimum pass.
///
/// # Panics
///
/// Panics if `xs` is empty.
#[inline]
pub fn min2_index_u64(tier: KernelTier, xs: &[u64]) -> (usize, u64, u64) {
    assert!(!xs.is_empty(), "accel: min2_index_u64 over an empty slice");
    match tier {
        KernelTier::Scalar => min2_index_u64_scalar(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `find_eq_u64`.
        KernelTier::Avx2 => unsafe { avx2::min2_index_u64(xs) },
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels — the semantic baseline. The AVX2 kernels reuse these for
// their non-multiple-of-4 tails.
// ---------------------------------------------------------------------------

fn find_eq_u64_scalar(xs: &[u64], needle: u64) -> Option<usize> {
    xs.iter().position(|&x| x == needle)
}

fn min_u64_scalar(xs: &[u64]) -> u64 {
    xs.iter().copied().fold(u64::MAX, u64::min)
}

fn min_index_u64_scalar(xs: &[u64]) -> usize {
    let mut min_idx = 0;
    let mut min = u64::MAX;
    for (i, &x) in xs.iter().enumerate() {
        if x < min {
            min = x;
            min_idx = i;
        }
    }
    min_idx
}

/// The single-pass min-and-runner-up scan: strictly-smaller elements
/// displace the minimum (so the first minimum's index is kept) and the
/// displaced value — or any later duplicate of the minimum — becomes the
/// runner-up candidate.
fn min2_index_u64_scalar(xs: &[u64]) -> (usize, u64, u64) {
    let mut min_idx = 0;
    let mut min = xs[0];
    let mut runner = u64::MAX;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < min {
            runner = min;
            min = x;
            min_idx = i;
        } else if x < runner {
            runner = x;
        }
    }
    (min_idx, min, runner)
}

// ---------------------------------------------------------------------------
// AVX2 kernels. 4 u64 lanes per 256-bit vector. Unsigned order is obtained
// from the signed `_mm256_cmpgt_epi64` by flipping the sign bit of both
// operands (`x ^ (1 << 63)`), which is an order-isomorphism from u64 to
// i64 — exact for every input, so the tiers stay bit-identical.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    const LANES: usize = 4;

    /// The sign-bias vector: `x ^ SIGN` maps unsigned order onto signed.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sign_bias() -> __m256i {
        _mm256_set1_epi64x(i64::MIN)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn find_eq_u64(xs: &[u64], needle: u64) -> Option<usize> {
        let n = xs.len();
        let nv = _mm256_set1_epi64x(needle as i64);
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
            let eq = _mm256_cmpeq_epi64(x, nv);
            let mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
            if mask != 0 {
                // Lowest set lane first, so the first match wins even when
                // several lanes of this vector match.
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += LANES;
        }
        super::find_eq_u64_scalar(&xs[i..], needle).map(|j| i + j)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn min_u64(xs: &[u64]) -> u64 {
        let n = xs.len();
        let mut i = 0;
        let mut acc = u64::MAX;
        if n >= LANES {
            let bias = sign_bias();
            // u64::MAX biased is i64::MAX: the identity of the biased min.
            let mut vmin = _mm256_set1_epi64x(i64::MAX);
            while i + LANES <= n {
                let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
                let xb = _mm256_xor_si256(x, bias);
                let gt = _mm256_cmpgt_epi64(vmin, xb);
                vmin = _mm256_blendv_epi8(vmin, xb, gt);
                i += LANES;
            }
            let mut lanes = [0u64; LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), vmin);
            for lane in lanes {
                // Un-bias while folding; u64 min is order-insensitive.
                acc = acc.min(lane ^ (1u64 << 63));
            }
        }
        acc.min(super::min_u64_scalar(&xs[i..]))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn min2_index_u64(xs: &[u64]) -> (usize, u64, u64) {
        let n = xs.len();
        let mut i = 0;
        // Two-smallest fold over candidate values; the multiset of
        // candidates always contains the two smallest elements of `xs`.
        let mut min = u64::MAX;
        let mut runner = u64::MAX;
        let mut fold = |v: u64| {
            if v < min {
                runner = min;
                min = v;
            } else if v < runner {
                runner = v;
            }
        };
        if n >= LANES {
            let bias = sign_bias();
            let mut vmin = _mm256_set1_epi64x(i64::MAX);
            let mut vrun = _mm256_set1_epi64x(i64::MAX);
            while i + LANES <= n {
                let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
                let xb = _mm256_xor_si256(x, bias);
                // Where the new value beats the stripe minimum, the old
                // minimum is displaced into the runner-up race; elsewhere
                // the new value itself races for runner-up.
                let gt = _mm256_cmpgt_epi64(vmin, xb);
                let cand = _mm256_blendv_epi8(xb, vmin, gt);
                vmin = _mm256_blendv_epi8(vmin, xb, gt);
                let gt2 = _mm256_cmpgt_epi64(vrun, cand);
                vrun = _mm256_blendv_epi8(vrun, cand, gt2);
                i += LANES;
            }
            // Each lane holds its stripe's min and runner-up, so the two
            // global smallest are among these 8 values (plus the tail).
            let mut lanes = [0u64; 2 * LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), vmin);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(LANES).cast(), vrun);
            for lane in lanes {
                fold(lane ^ (1u64 << 63));
            }
        }
        for &x in &xs[i..] {
            fold(x);
        }
        // First index equal to the minimum == the index a strict-`<` scan
        // keeps (later duplicates never displace it).
        let idx = find_eq_u64(xs, min).expect("minimum value must be present");
        (idx, min, runner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_parsing() {
        assert!(!force_scalar_from(None));
        assert!(!force_scalar_from(Some("")));
        assert!(!force_scalar_from(Some("0")));
        assert!(!force_scalar_from(Some("false")));
        assert!(!force_scalar_from(Some("FALSE")));
        assert!(!force_scalar_from(Some("  ")));
        assert!(force_scalar_from(Some("1")));
        assert!(force_scalar_from(Some("true")));
        assert!(force_scalar_from(Some("yes")));
    }

    #[test]
    fn forced_scalar_overrides_simd() {
        let caps = CpuCapabilities {
            avx2: true,
            force_scalar: true,
        };
        assert_eq!(caps.tier(), KernelTier::Scalar);
        let caps = CpuCapabilities {
            avx2: false,
            force_scalar: false,
        };
        assert_eq!(caps.tier(), KernelTier::Scalar);
    }

    #[test]
    fn scalar_tier_is_always_supported() {
        assert!(KernelTier::Scalar.supported());
        assert_eq!(KernelTier::Scalar.name(), "scalar");
        // The active tier is by construction executable on this host.
        assert!(active_tier().supported());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_tier_matches_detection() {
        assert_eq!(
            KernelTier::Avx2.supported(),
            is_x86_feature_detected!("avx2")
        );
        assert_eq!(KernelTier::Avx2.name(), "avx2");
    }

    /// Every tier executable on this host.
    fn tiers() -> Vec<KernelTier> {
        let mut t = vec![KernelTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        if KernelTier::Avx2.supported() {
            t.push(KernelTier::Avx2);
        }
        t
    }

    /// Splitmix-ish deterministic u64 stream.
    fn rand_vec(seed: u64, n: usize, mask: u64) -> Vec<u64> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 7) & mask
            })
            .collect()
    }

    /// Lengths straddling the 4-lane boundary: pure tail, exact lanes,
    /// lanes + tail, and way-count-sized cases (12/16 are the Table 3 L1D
    /// and LLC associativities).
    const LENGTHS: [usize; 9] = [1, 2, 3, 4, 5, 8, 12, 13, 16];

    #[test]
    fn find_eq_matches_scalar_across_tiers() {
        for (seed, n) in LENGTHS.iter().enumerate().map(|(s, &n)| (s as u64, n)) {
            // A small mask forces duplicates, so "first match" is tested.
            let xs = rand_vec(seed, n, 0xF);
            for needle in 0..=0x10u64 {
                let want = find_eq_u64_scalar(&xs, needle);
                for tier in tiers() {
                    assert_eq!(
                        find_eq_u64(tier, &xs, needle),
                        want,
                        "tier {tier:?}, n={n}, needle={needle}, xs={xs:?}"
                    );
                }
            }
            assert_eq!(find_eq_u64(active_tier(), &[], 7), None);
        }
    }

    #[test]
    fn min_kernels_match_scalar_across_tiers() {
        for (seed, n) in LENGTHS.iter().enumerate().map(|(s, &n)| (s as u64, n)) {
            // Full-range values (including above 2^63) exercise the
            // sign-bias trick; a masked copy forces duplicate minima.
            for xs in [rand_vec(seed, n, u64::MAX), rand_vec(seed, n, 0x7)] {
                let want_min = min_u64_scalar(&xs);
                let want_idx = min_index_u64_scalar(&xs);
                let want2 = min2_index_u64_scalar(&xs);
                for tier in tiers() {
                    assert_eq!(min_u64(tier, &xs), want_min, "tier {tier:?}, xs={xs:?}");
                    assert_eq!(
                        min_index_u64(tier, &xs),
                        want_idx,
                        "tier {tier:?}, xs={xs:?}"
                    );
                    assert_eq!(min2_index_u64(tier, &xs), want2, "tier {tier:?}, xs={xs:?}");
                }
            }
        }
        for tier in tiers() {
            assert_eq!(min_u64(tier, &[]), u64::MAX);
        }
    }

    #[test]
    fn min2_runner_up_is_min_of_remainder() {
        // The pop_earliest contract: after swap-removing the element at the
        // returned index, the remainder's minimum equals the runner-up.
        for seed in 0..32u64 {
            for n in LENGTHS {
                let xs = rand_vec(seed, n, 0x3F);
                for tier in tiers() {
                    let (idx, min, runner) = min2_index_u64(tier, &xs);
                    assert_eq!(xs[idx], min);
                    assert_eq!(xs.iter().position(|&x| x == min), Some(idx), "first min");
                    let mut rest = xs.clone();
                    rest.swap_remove(idx);
                    assert_eq!(min_u64_scalar(&rest), runner, "xs={xs:?}");
                }
            }
        }
    }

    #[test]
    fn boundary_values_survive_the_sign_bias() {
        // Values straddling 2^63 would order wrongly under a plain signed
        // compare; the bias must keep true unsigned order.
        let xs = [
            u64::MAX,
            1u64 << 63,
            (1u64 << 63) - 1,
            0,
            u64::MAX - 1,
            1,
            1u64 << 62,
            (1u64 << 63) + 1,
        ];
        for tier in tiers() {
            assert_eq!(min_u64(tier, &xs), 0);
            assert_eq!(min_index_u64(tier, &xs), 3);
            assert_eq!(min2_index_u64(tier, &xs), (3, 0, 1));
        }
        // All-duplicate slice: index 0, runner-up equals the minimum.
        let dup = [5u64; 7];
        for tier in tiers() {
            assert_eq!(min2_index_u64(tier, &dup), (0, 5, 5));
        }
    }
}
