//! # pathfinder-accel
//!
//! Shared runtime SIMD dispatch for the workspace's hot loops, plus the
//! integer scan kernels the flat replay engine is built on and the
//! elementwise f32 kernel family the SNN's single- and multi-lane
//! presentation paths dispatch through.
//!
//! The dispatch machinery ([`CpuCapabilities`], [`KernelTier`],
//! [`active_tier`], and the `PATHFINDER_FORCE_SCALAR` override) started
//! life in `snn::accel` (PR 6) gating the f32 presentation kernels; this
//! crate lifts it out so the `sim` crate's integer scans — and any future
//! accelerated subsystem — share one capability probe, one tier enum, and
//! one override, instead of each crate growing its own. `pathfinder-snn`
//! re-exports these types unchanged, so existing `snn::accel` users are
//! unaffected.
//!
//! ## The f32 kernel family (single- and multi-lane LIF state)
//!
//! The SNN presentation loops are elementwise over per-neuron state:
//! membrane integration gated on refractory counters, threshold/reset
//! with a per-neuron adaptive theta, exponential theta decay, and
//! synaptic-drive accumulation. Because the operations are elementwise,
//! the *same* kernels serve two layouts:
//!
//! * a single presentation's `[n]` state vectors (`LifLayer`), and
//! * the cross-query batched kernel's lane-major `[lanes × n]` state
//!   (lane `l`'s neurons are the contiguous slice `[l * n .. (l + 1) * n]`),
//!   where one call integrates every lane of every neuron.
//!
//! The family: [`add_assign`], [`scale_in_place`], [`masked_scaled_add`],
//! [`masked_add_uniform`], and [`lif_step`] with its [`LifStepParams`].
//! Spike extraction in [`lif_step`] emits ascending flat indices, which in
//! the lane-major layout is grouped by lane with ascending neuron order
//! inside each group — exactly the order the scalar singleton walk
//! produces per lane.
//!
//! ## The integer kernel family
//!
//! The timed replay's hot loops are contiguous `u64` walks: the packed
//! tag+valid lookup scan in `Cache::find`, the LRU victim min-scan in
//! `Cache::fill_victim`, and the threshold/min scans in `MshrTracker` and
//! `DramModel`. This crate provides them as tier-dispatched kernels:
//!
//! * [`find_eq_u64`] — position of the first element equal to a needle
//!   (`_mm256_cmpeq_epi64` + movemask on the AVX2 tier).
//! * [`min_u64`] — minimum value (lane-wise `u64` min reduction).
//! * [`min_index_u64`] — index of the **first** minimum, matching a
//!   scalar strict-`<` walk.
//! * [`min2_index_u64`] — first-minimum index, the minimum, and the
//!   runner-up minimum in one call (the MSHR `pop_earliest` shape).
//!
//! ## The bit-identity contract
//!
//! Unlike the SNN's f32 kernels — which keep bit-identity only by
//! carefully avoiding FMA contraction and re-associated reductions —
//! integer comparisons and minima are exact: any evaluation order yields
//! the same minimum, and "first index equal to the minimum" is exactly
//! the index a strict-`<` scalar scan keeps. The AVX2 tier is therefore
//! bit-identical to the scalar tier **by construction**, for every input.
//! The `sim::reference` engine/cache equivalence proptests pin both tiers
//! with no tolerance machinery, and CI re-runs them under
//! `PATHFINDER_FORCE_SCALAR=1`.
//!
//! AVX2 has no unsigned 64-bit compare, so the SIMD min kernels operate
//! on sign-bias-flipped values (`x ^ (1 << 63)`), under which signed
//! `_mm256_cmpgt_epi64` ordering coincides with unsigned `u64` ordering
//! across the whole domain — including values at and above `2^63`.
//!
//! ## Forcing the scalar tier
//!
//! Setting `PATHFINDER_FORCE_SCALAR` to anything other than `0`, `false`,
//! or the empty string makes [`active_tier`] return [`KernelTier::Scalar`]
//! regardless of CPU support. The variable is read once per process (the
//! tier is cached in a `OnceLock`); changing it at runtime has no effect
//! on structures already constructed or on later [`active_tier`] calls.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::OnceLock;

/// The CPU features (and process-level overrides) relevant to kernel
/// dispatch, probed once via [`CpuCapabilities::detect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuCapabilities {
    /// Host supports AVX2 (256-bit lanes), per
    /// `is_x86_feature_detected!("avx2")`. Always `false` off x86-64.
    pub avx2: bool,
    /// The `PATHFINDER_FORCE_SCALAR` environment override is active, which
    /// pins dispatch to [`KernelTier::Scalar`] regardless of `avx2`.
    pub force_scalar: bool,
}

impl CpuCapabilities {
    /// Probes the host CPU and the process environment.
    pub fn detect() -> Self {
        CpuCapabilities {
            avx2: avx2_available(),
            force_scalar: force_scalar_from(
                std::env::var("PATHFINDER_FORCE_SCALAR").ok().as_deref(),
            ),
        }
    }

    /// The kernel tier this capability set dispatches to: the widest
    /// supported SIMD tier, unless `force_scalar` pins it to
    /// [`KernelTier::Scalar`].
    pub fn tier(self) -> KernelTier {
        if self.force_scalar {
            return KernelTier::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if self.avx2 {
            return KernelTier::Avx2;
        }
        KernelTier::Scalar
    }
}

/// Whether the host CPU supports AVX2 (always `false` off x86-64).
fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Parses the `PATHFINDER_FORCE_SCALAR` value: unset, empty, `0`, and
/// `false` (any case) leave dispatch alone; anything else forces scalar.
fn force_scalar_from(value: Option<&str>) -> bool {
    match value {
        None => false,
        Some(v) => {
            let v = v.trim();
            !(v.is_empty() || v == "0" || v.eq_ignore_ascii_case("false"))
        }
    }
}

/// Which kernel implementation a structure dispatches its hot loops to.
///
/// A tier is selected once per structure at construction (from
/// [`active_tier`] by default, or explicitly via the `with_tier` /
/// `with_kernel_tier` constructors on `LifLayer`, `DiehlCookNetwork`,
/// `Cache`, and `Simulator`) and used for every operation that structure
/// runs. Tiers are *behaviourally identical* — see the bit-identity
/// contract in the [crate docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// Portable scalar loops; always available, and the semantic baseline
    /// the SIMD tiers are pinned against.
    Scalar,
    /// AVX2 kernels: 8-wide f32 lanes for the SNN arithmetic and 4-wide
    /// `u64` lanes for the replay scans. Only constructible on hosts where
    /// `is_x86_feature_detected!("avx2")` holds (checked constructors
    /// refuse it elsewhere).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl KernelTier {
    /// Stable lowercase name for reports and bench documents
    /// (`"scalar"` / `"avx2"`).
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => "avx2",
        }
    }

    /// Whether the host CPU can execute this tier. [`KernelTier::Scalar`]
    /// is always supported; SIMD tiers require their feature probe to
    /// pass. Constructors that accept an explicit tier call this and
    /// reject unsupported requests, which keeps "a tier value exists" from
    /// ever implying "its instructions are safe to run here".
    pub fn supported(self) -> bool {
        match self {
            KernelTier::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 => is_x86_feature_detected!("avx2"),
        }
    }
}

/// The process-wide dispatch decision: [`CpuCapabilities::detect`]
/// evaluated once and cached. Default constructors across the workspace
/// (`DiehlCookNetwork::new`, `LifLayer::new`, `Cache::new`,
/// `Simulator::new`, ...) capture this value at construction.
pub fn active_tier() -> KernelTier {
    static TIER: OnceLock<KernelTier> = OnceLock::new();
    *TIER.get_or_init(|| CpuCapabilities::detect().tier())
}

// ---------------------------------------------------------------------------
// Integer scan kernels. Each dispatch wrapper routes to the scalar loop or
// (behind the capability check encoded in the tier's construction) the AVX2
// kernel; results are bit-identical by construction.
// ---------------------------------------------------------------------------

/// Position of the first element equal to `needle` — the packed tag+valid
/// lookup scan of `Cache::find`.
#[inline]
pub fn find_eq_u64(tier: KernelTier, xs: &[u64], needle: u64) -> Option<usize> {
    match tier {
        KernelTier::Scalar => find_eq_u64_scalar(xs, needle),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an Avx2 tier is only constructed after a successful
        // `is_x86_feature_detected!("avx2")` probe (see KernelTier docs).
        KernelTier::Avx2 => unsafe { avx2::find_eq_u64(xs, needle) },
    }
}

/// Minimum value of a slice (`u64::MAX` when empty) — the cached-earliest
/// recompute in `MshrTracker` and `DramModel` threshold drains.
#[inline]
pub fn min_u64(tier: KernelTier, xs: &[u64]) -> u64 {
    match tier {
        KernelTier::Scalar => min_u64_scalar(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `find_eq_u64`.
        KernelTier::Avx2 => unsafe { avx2::min_u64(xs) },
    }
}

/// Index of the **first** minimum — the LRU victim scan of
/// `Cache::fill_victim`. Identical to a scalar strict-`<` walk: the AVX2
/// tier reduces the minimum value lane-wise, then takes the first index
/// equal to it, which is the same element the strict-`<` walk keeps.
///
/// # Panics
///
/// Panics if `xs` is empty (a victim scan over zero ways is a caller bug).
#[inline]
pub fn min_index_u64(tier: KernelTier, xs: &[u64]) -> usize {
    assert!(!xs.is_empty(), "accel: min_index_u64 over an empty slice");
    match tier {
        KernelTier::Scalar => min_index_u64_scalar(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `find_eq_u64`.
        KernelTier::Avx2 => unsafe {
            let m = avx2::min_u64(xs);
            avx2::find_eq_u64(xs, m).expect("minimum value must be present")
        },
    }
}

/// One-call min-and-runner-up: returns `(first_min_index, min, runner_up)`
/// where `runner_up` is the second-smallest element counting duplicates
/// (`u64::MAX` for a one-element slice) — so after removing the element at
/// `first_min_index`, the minimum of the remainder is exactly `runner_up`.
/// This is the `MshrTracker::pop_earliest` shape: one scan replaces the
/// old find-the-min pass plus rebuild-the-minimum pass.
///
/// # Panics
///
/// Panics if `xs` is empty.
#[inline]
pub fn min2_index_u64(tier: KernelTier, xs: &[u64]) -> (usize, u64, u64) {
    assert!(!xs.is_empty(), "accel: min2_index_u64 over an empty slice");
    match tier {
        KernelTier::Scalar => min2_index_u64_scalar(xs),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `find_eq_u64`.
        KernelTier::Avx2 => unsafe { avx2::min2_index_u64(xs) },
    }
}

// ---------------------------------------------------------------------------
// The f32 kernel family. Elementwise over per-neuron (or per-neuron-per-
// lane) LIF state; every AVX2 kernel performs exactly the same IEEE-754
// operations per element, in the same order, as its scalar fallback (no
// FMA contraction, no re-associated reductions, masked lanes keep their
// input bits), so the tiers are bit-identical for every input.
// ---------------------------------------------------------------------------

/// Parameters of one LIF integration tick, hoisted out of
/// [`lif_step`]'s lane loop.
#[derive(Debug, Clone, Copy)]
pub struct LifStepParams {
    /// Resting potential the membrane decays toward.
    pub v_rest: f32,
    /// Precomputed per-tick decay factor `exp(-1/tc_decay)`.
    pub decay: f32,
    /// Base firing threshold (the adaptive theta is added per neuron).
    pub v_thresh: f32,
    /// Potential after a spike.
    pub v_reset: f32,
    /// Refractory ticks after a spike.
    pub refractory: u32,
}

/// `dst[i] += src[i]` — per-spike weight-row accumulation into a drive
/// buffer (one call per `(spiking input, lane)` in the batched kernel, so
/// a weight row loaded once is reused across every lane that spiked it).
#[inline]
pub fn add_assign(tier: KernelTier, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => add_assign_scalar(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an Avx2 tier is only constructed after a successful
        // `is_x86_feature_detected!("avx2")` probe (see KernelTier docs).
        KernelTier::Avx2 => unsafe { avx2_f32::add_assign(dst, src) },
    }
}

/// `xs[i] *= factor` — theta decay with a precomputed per-tick factor,
/// over one neuron vector or the whole lane-major `[lanes × n]` block.
#[inline]
pub fn scale_in_place(tier: KernelTier, xs: &mut [f32], factor: f32) {
    match tier {
        KernelTier::Scalar => scale_in_place_scalar(xs, factor),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2_f32::scale_in_place(xs, factor) },
    }
}

/// `v[i] += currents[i] * gain` for every non-refractory element
/// (`refrac[i] == 0`) — bulk synaptic injection. Refractory elements keep
/// their exact input bits.
#[inline]
pub fn masked_scaled_add(
    tier: KernelTier,
    v: &mut [f32],
    refrac: &[u32],
    currents: &[f32],
    gain: f32,
) {
    assert_eq!(v.len(), refrac.len(), "accel: slice length mismatch");
    assert_eq!(v.len(), currents.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => masked_scaled_add_scalar(v, refrac, currents, gain),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2_f32::masked_scaled_add(v, refrac, currents, gain) },
    }
}

/// `v[i] += current` for every non-refractory element — the lateral-
/// inhibition term of a single presentation.
#[inline]
pub fn masked_add_uniform(tier: KernelTier, v: &mut [f32], refrac: &[u32], current: f32) {
    assert_eq!(v.len(), refrac.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => masked_add_uniform_scalar(v, refrac, current),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2_f32::masked_add_uniform(v, refrac, current) },
    }
}

/// One LIF tick over a whole population (or every lane of one in the
/// lane-major multi-lane layout): refractory elements count down and
/// skip integration; the rest leak toward rest and fire when they cross
/// `v_thresh + theta[i]`, resetting to `v_reset` and entering the
/// refractory period. Spiking indices are appended to `spikes_out`
/// (cleared first) in ascending order — the AVX2 path extracts them from
/// the lane movemask lowest-lane-first, so the order matches the scalar
/// walk exactly. Ascending flat order over a lane-major block is grouped
/// by lane, i.e. each lane sees its own spikes in ascending neuron order.
#[inline]
pub fn lif_step(
    tier: KernelTier,
    v: &mut [f32],
    refrac: &mut [u32],
    theta: &[f32],
    p: LifStepParams,
    spikes_out: &mut Vec<usize>,
) {
    assert_eq!(v.len(), refrac.len(), "accel: slice length mismatch");
    assert_eq!(v.len(), theta.len(), "accel: slice length mismatch");
    spikes_out.clear();
    match tier {
        KernelTier::Scalar => lif_step_scalar(v, refrac, theta, p, 0, spikes_out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2_f32::lif_step(v, refrac, theta, p, spikes_out) },
    }
}

fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn scale_in_place_scalar(xs: &mut [f32], factor: f32) {
    for x in xs {
        *x *= factor;
    }
}

fn masked_scaled_add_scalar(v: &mut [f32], refrac: &[u32], currents: &[f32], gain: f32) {
    for ((v, &r), &c) in v.iter_mut().zip(refrac).zip(currents) {
        if r == 0 {
            *v += c * gain;
        }
    }
}

fn masked_add_uniform_scalar(v: &mut [f32], refrac: &[u32], current: f32) {
    for (v, &r) in v.iter_mut().zip(refrac) {
        if r == 0 {
            *v += current;
        }
    }
}

/// The scalar LIF tick; `base` offsets pushed spike indices so the AVX2
/// kernel can reuse it for its tail lanes.
fn lif_step_scalar(
    v: &mut [f32],
    refrac: &mut [u32],
    theta: &[f32],
    p: LifStepParams,
    base: usize,
    spikes_out: &mut Vec<usize>,
) {
    for i in 0..v.len() {
        if refrac[i] > 0 {
            refrac[i] -= 1;
            continue;
        }
        v[i] = p.v_rest + (v[i] - p.v_rest) * p.decay;
        if v[i] >= p.v_thresh + theta[i] {
            spikes_out.push(base + i);
            v[i] = p.v_reset;
            refrac[i] = p.refractory;
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels — the semantic baseline. The AVX2 kernels reuse these for
// their non-multiple-of-4 tails.
// ---------------------------------------------------------------------------

fn find_eq_u64_scalar(xs: &[u64], needle: u64) -> Option<usize> {
    xs.iter().position(|&x| x == needle)
}

fn min_u64_scalar(xs: &[u64]) -> u64 {
    xs.iter().copied().fold(u64::MAX, u64::min)
}

fn min_index_u64_scalar(xs: &[u64]) -> usize {
    let mut min_idx = 0;
    let mut min = u64::MAX;
    for (i, &x) in xs.iter().enumerate() {
        if x < min {
            min = x;
            min_idx = i;
        }
    }
    min_idx
}

/// The single-pass min-and-runner-up scan: strictly-smaller elements
/// displace the minimum (so the first minimum's index is kept) and the
/// displaced value — or any later duplicate of the minimum — becomes the
/// runner-up candidate.
fn min2_index_u64_scalar(xs: &[u64]) -> (usize, u64, u64) {
    let mut min_idx = 0;
    let mut min = xs[0];
    let mut runner = u64::MAX;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x < min {
            runner = min;
            min = x;
            min_idx = i;
        } else if x < runner {
            runner = x;
        }
    }
    (min_idx, min, runner)
}

// ---------------------------------------------------------------------------
// AVX2 kernels. 4 u64 lanes per 256-bit vector. Unsigned order is obtained
// from the signed `_mm256_cmpgt_epi64` by flipping the sign bit of both
// operands (`x ^ (1 << 63)`), which is an order-isomorphism from u64 to
// i64 — exact for every input, so the tiers stay bit-identical.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    const LANES: usize = 4;

    /// The sign-bias vector: `x ^ SIGN` maps unsigned order onto signed.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sign_bias() -> __m256i {
        _mm256_set1_epi64x(i64::MIN)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn find_eq_u64(xs: &[u64], needle: u64) -> Option<usize> {
        let n = xs.len();
        let nv = _mm256_set1_epi64x(needle as i64);
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
            let eq = _mm256_cmpeq_epi64(x, nv);
            let mask = _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u32;
            if mask != 0 {
                // Lowest set lane first, so the first match wins even when
                // several lanes of this vector match.
                return Some(i + mask.trailing_zeros() as usize);
            }
            i += LANES;
        }
        super::find_eq_u64_scalar(&xs[i..], needle).map(|j| i + j)
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn min_u64(xs: &[u64]) -> u64 {
        let n = xs.len();
        let mut i = 0;
        let mut acc = u64::MAX;
        if n >= LANES {
            let bias = sign_bias();
            // u64::MAX biased is i64::MAX: the identity of the biased min.
            let mut vmin = _mm256_set1_epi64x(i64::MAX);
            while i + LANES <= n {
                let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
                let xb = _mm256_xor_si256(x, bias);
                let gt = _mm256_cmpgt_epi64(vmin, xb);
                vmin = _mm256_blendv_epi8(vmin, xb, gt);
                i += LANES;
            }
            let mut lanes = [0u64; LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), vmin);
            for lane in lanes {
                // Un-bias while folding; u64 min is order-insensitive.
                acc = acc.min(lane ^ (1u64 << 63));
            }
        }
        acc.min(super::min_u64_scalar(&xs[i..]))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn min2_index_u64(xs: &[u64]) -> (usize, u64, u64) {
        let n = xs.len();
        let mut i = 0;
        // Two-smallest fold over candidate values; the multiset of
        // candidates always contains the two smallest elements of `xs`.
        let mut min = u64::MAX;
        let mut runner = u64::MAX;
        let mut fold = |v: u64| {
            if v < min {
                runner = min;
                min = v;
            } else if v < runner {
                runner = v;
            }
        };
        if n >= LANES {
            let bias = sign_bias();
            let mut vmin = _mm256_set1_epi64x(i64::MAX);
            let mut vrun = _mm256_set1_epi64x(i64::MAX);
            while i + LANES <= n {
                let x = _mm256_loadu_si256(xs.as_ptr().add(i).cast());
                let xb = _mm256_xor_si256(x, bias);
                // Where the new value beats the stripe minimum, the old
                // minimum is displaced into the runner-up race; elsewhere
                // the new value itself races for runner-up.
                let gt = _mm256_cmpgt_epi64(vmin, xb);
                let cand = _mm256_blendv_epi8(xb, vmin, gt);
                vmin = _mm256_blendv_epi8(vmin, xb, gt);
                let gt2 = _mm256_cmpgt_epi64(vrun, cand);
                vrun = _mm256_blendv_epi8(vrun, cand, gt2);
                i += LANES;
            }
            // Each lane holds its stripe's min and runner-up, so the two
            // global smallest are among these 8 values (plus the tail).
            let mut lanes = [0u64; 2 * LANES];
            _mm256_storeu_si256(lanes.as_mut_ptr().cast(), vmin);
            _mm256_storeu_si256(lanes.as_mut_ptr().add(LANES).cast(), vrun);
            for lane in lanes {
                fold(lane ^ (1u64 << 63));
            }
        }
        for &x in &xs[i..] {
            fold(x);
        }
        // First index equal to the minimum == the index a strict-`<` scan
        // keeps (later duplicates never displace it).
        let idx = find_eq_u64(xs, min).expect("minimum value must be present");
        (idx, min, runner)
    }
}

// ---------------------------------------------------------------------------
// AVX2 f32 kernels. Each processes 8 lanes per iteration with the *same*
// per-element operations as its scalar counterpart (separate mul/add
// roundings, masked lanes untouched bitwise) and hands the remainder to
// the scalar loop.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2_f32 {
    use std::arch::x86_64::*;

    use super::LifStepParams;

    const LANES: usize = 8;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
            i += LANES;
        }
        super::add_assign_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_in_place(xs: &mut [f32], factor: f32) {
        let n = xs.len();
        let f = _mm256_set1_ps(factor);
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            _mm256_storeu_ps(xs.as_mut_ptr().add(i), _mm256_mul_ps(x, f));
            i += LANES;
        }
        super::scale_in_place_scalar(&mut xs[i..], factor);
    }

    /// All-ones lanes where `refrac == 0` (the non-refractory mask).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn active_mask(refrac: &[u32], i: usize) -> __m256i {
        let r = _mm256_loadu_si256(refrac.as_ptr().add(i).cast());
        _mm256_cmpeq_epi32(r, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn masked_scaled_add(
        v: &mut [f32],
        refrac: &[u32],
        currents: &[f32],
        gain: f32,
    ) {
        let n = v.len();
        let g = _mm256_set1_ps(gain);
        let mut i = 0;
        while i + LANES <= n {
            let active = _mm256_castsi256_ps(active_mask(refrac, i));
            let vv = _mm256_loadu_ps(v.as_ptr().add(i));
            let c = _mm256_loadu_ps(currents.as_ptr().add(i));
            // mul then add as two roundings — no FMA, matching scalar.
            let bumped = _mm256_add_ps(vv, _mm256_mul_ps(c, g));
            // Refractory lanes keep their exact input bits.
            _mm256_storeu_ps(v.as_mut_ptr().add(i), _mm256_blendv_ps(vv, bumped, active));
            i += LANES;
        }
        super::masked_scaled_add_scalar(&mut v[i..], &refrac[i..], &currents[i..], gain);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn masked_add_uniform(v: &mut [f32], refrac: &[u32], current: f32) {
        let n = v.len();
        let c = _mm256_set1_ps(current);
        let mut i = 0;
        while i + LANES <= n {
            let active = _mm256_castsi256_ps(active_mask(refrac, i));
            let vv = _mm256_loadu_ps(v.as_ptr().add(i));
            let bumped = _mm256_add_ps(vv, c);
            _mm256_storeu_ps(v.as_mut_ptr().add(i), _mm256_blendv_ps(vv, bumped, active));
            i += LANES;
        }
        super::masked_add_uniform_scalar(&mut v[i..], &refrac[i..], current);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lif_step(
        v: &mut [f32],
        refrac: &mut [u32],
        theta: &[f32],
        p: LifStepParams,
        spikes_out: &mut Vec<usize>,
    ) {
        let n = v.len();
        let v_rest = _mm256_set1_ps(p.v_rest);
        let decay = _mm256_set1_ps(p.decay);
        let v_thresh = _mm256_set1_ps(p.v_thresh);
        let v_reset = _mm256_set1_ps(p.v_reset);
        let refr = _mm256_set1_epi32(p.refractory as i32);
        let one = _mm256_set1_epi32(1);
        let mut i = 0;
        while i + LANES <= n {
            let r = _mm256_loadu_si256(refrac.as_ptr().add(i).cast());
            let active = _mm256_cmpeq_epi32(r, _mm256_setzero_si256());
            let active_ps = _mm256_castsi256_ps(active);

            // Leak toward rest on active lanes: v_rest + (v - v_rest) * decay.
            let vv = _mm256_loadu_ps(v.as_ptr().add(i));
            let leaked = _mm256_add_ps(v_rest, _mm256_mul_ps(_mm256_sub_ps(vv, v_rest), decay));
            let v_new = _mm256_blendv_ps(vv, leaked, active_ps);

            // Spike where an active lane crosses v_thresh + theta.
            let th = _mm256_add_ps(v_thresh, _mm256_loadu_ps(theta.as_ptr().add(i)));
            let crossed = _mm256_cmp_ps::<_CMP_GE_OQ>(v_new, th);
            let spike = _mm256_and_ps(crossed, active_ps);

            // Spiking lanes reset; refractory lanes count down; active
            // non-spiking lanes keep refrac == 0 (blend keeps `r`).
            let v_fin = _mm256_blendv_ps(v_new, v_reset, spike);
            _mm256_storeu_ps(v.as_mut_ptr().add(i), v_fin);
            let r_dec = _mm256_sub_epi32(r, one);
            let r_keep = _mm256_blendv_epi8(r_dec, r, active);
            let r_fin = _mm256_blendv_epi8(r_keep, refr, _mm256_castps_si256(spike));
            _mm256_storeu_si256(refrac.as_mut_ptr().add(i).cast(), r_fin);

            // Extract spiking lanes lowest-first so indices stay ascending.
            let mut mask = _mm256_movemask_ps(spike) as u32;
            while mask != 0 {
                spikes_out.push(i + mask.trailing_zeros() as usize);
                mask &= mask - 1;
            }
            i += LANES;
        }
        super::lif_step_scalar(&mut v[i..], &mut refrac[i..], &theta[i..], p, i, spikes_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_scalar_parsing() {
        assert!(!force_scalar_from(None));
        assert!(!force_scalar_from(Some("")));
        assert!(!force_scalar_from(Some("0")));
        assert!(!force_scalar_from(Some("false")));
        assert!(!force_scalar_from(Some("FALSE")));
        assert!(!force_scalar_from(Some("  ")));
        assert!(force_scalar_from(Some("1")));
        assert!(force_scalar_from(Some("true")));
        assert!(force_scalar_from(Some("yes")));
    }

    #[test]
    fn forced_scalar_overrides_simd() {
        let caps = CpuCapabilities {
            avx2: true,
            force_scalar: true,
        };
        assert_eq!(caps.tier(), KernelTier::Scalar);
        let caps = CpuCapabilities {
            avx2: false,
            force_scalar: false,
        };
        assert_eq!(caps.tier(), KernelTier::Scalar);
    }

    #[test]
    fn scalar_tier_is_always_supported() {
        assert!(KernelTier::Scalar.supported());
        assert_eq!(KernelTier::Scalar.name(), "scalar");
        // The active tier is by construction executable on this host.
        assert!(active_tier().supported());
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_tier_matches_detection() {
        assert_eq!(
            KernelTier::Avx2.supported(),
            is_x86_feature_detected!("avx2")
        );
        assert_eq!(KernelTier::Avx2.name(), "avx2");
    }

    /// Every tier executable on this host.
    fn tiers() -> Vec<KernelTier> {
        let mut t = vec![KernelTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        if KernelTier::Avx2.supported() {
            t.push(KernelTier::Avx2);
        }
        t
    }

    /// Splitmix-ish deterministic u64 stream.
    fn rand_vec(seed: u64, n: usize, mask: u64) -> Vec<u64> {
        let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 7) & mask
            })
            .collect()
    }

    /// Lengths straddling the 4-lane boundary: pure tail, exact lanes,
    /// lanes + tail, and way-count-sized cases (12/16 are the Table 3 L1D
    /// and LLC associativities).
    const LENGTHS: [usize; 9] = [1, 2, 3, 4, 5, 8, 12, 13, 16];

    #[test]
    fn find_eq_matches_scalar_across_tiers() {
        for (seed, n) in LENGTHS.iter().enumerate().map(|(s, &n)| (s as u64, n)) {
            // A small mask forces duplicates, so "first match" is tested.
            let xs = rand_vec(seed, n, 0xF);
            for needle in 0..=0x10u64 {
                let want = find_eq_u64_scalar(&xs, needle);
                for tier in tiers() {
                    assert_eq!(
                        find_eq_u64(tier, &xs, needle),
                        want,
                        "tier {tier:?}, n={n}, needle={needle}, xs={xs:?}"
                    );
                }
            }
            assert_eq!(find_eq_u64(active_tier(), &[], 7), None);
        }
    }

    #[test]
    fn min_kernels_match_scalar_across_tiers() {
        for (seed, n) in LENGTHS.iter().enumerate().map(|(s, &n)| (s as u64, n)) {
            // Full-range values (including above 2^63) exercise the
            // sign-bias trick; a masked copy forces duplicate minima.
            for xs in [rand_vec(seed, n, u64::MAX), rand_vec(seed, n, 0x7)] {
                let want_min = min_u64_scalar(&xs);
                let want_idx = min_index_u64_scalar(&xs);
                let want2 = min2_index_u64_scalar(&xs);
                for tier in tiers() {
                    assert_eq!(min_u64(tier, &xs), want_min, "tier {tier:?}, xs={xs:?}");
                    assert_eq!(
                        min_index_u64(tier, &xs),
                        want_idx,
                        "tier {tier:?}, xs={xs:?}"
                    );
                    assert_eq!(min2_index_u64(tier, &xs), want2, "tier {tier:?}, xs={xs:?}");
                }
            }
        }
        for tier in tiers() {
            assert_eq!(min_u64(tier, &[]), u64::MAX);
        }
    }

    #[test]
    fn min2_runner_up_is_min_of_remainder() {
        // The pop_earliest contract: after swap-removing the element at the
        // returned index, the remainder's minimum equals the runner-up.
        for seed in 0..32u64 {
            for n in LENGTHS {
                let xs = rand_vec(seed, n, 0x3F);
                for tier in tiers() {
                    let (idx, min, runner) = min2_index_u64(tier, &xs);
                    assert_eq!(xs[idx], min);
                    assert_eq!(xs.iter().position(|&x| x == min), Some(idx), "first min");
                    let mut rest = xs.clone();
                    rest.swap_remove(idx);
                    assert_eq!(min_u64_scalar(&rest), runner, "xs={xs:?}");
                }
            }
        }
    }

    /// Deterministic f32 stream in `[lo, hi)` off the LCG above.
    fn rand_f32(seed: u64, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        rand_vec(seed, n, u64::MAX)
            .into_iter()
            .map(|x| lo + (hi - lo) * ((x >> 11) as f32 / (1u64 << 53) as f32))
            .collect()
    }

    /// Refractory counters in 0..3 off the LCG.
    fn rand_refrac(seed: u64, n: usize) -> Vec<u32> {
        rand_vec(seed, n, 0x3).iter().map(|&x| x as u32).collect()
    }

    /// Runs `f` once per tier and asserts the mutated buffer is bitwise
    /// identical. On hosts without AVX2 this degenerates to scalar-vs-
    /// scalar, which is still a valid (if trivial) check.
    fn assert_tiers_bitwise<F: Fn(KernelTier, &mut [f32])>(init: &[f32], f: F) {
        let mut scalar = init.to_vec();
        f(KernelTier::Scalar, &mut scalar);
        #[cfg(target_arch = "x86_64")]
        if KernelTier::Avx2.supported() {
            let mut simd = init.to_vec();
            f(KernelTier::Avx2, &mut simd);
            let scalar_bits: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
            let simd_bits: Vec<u32> = simd.iter().map(|x| x.to_bits()).collect();
            assert_eq!(scalar_bits, simd_bits, "tiers diverged bitwise");
        }
    }

    #[test]
    fn f32_elementwise_kernels_are_bitwise_identical_across_tiers() {
        // Lengths straddle the 8-lane boundary: pure tail, exact lanes,
        // lanes + tail, and lane-major multi-lane block sizes
        // (n_exc × lanes for the paper-default 50-neuron population).
        for (seed, n) in [1usize, 5, 8, 13, 16, 27, 50, 400, 1600]
            .into_iter()
            .enumerate()
            .map(|(s, n)| (s as u64, n))
        {
            let src = rand_f32(seed, n, -2.0, 2.0);
            let init = rand_f32(seed ^ 0x55, n, -70.0, -40.0);
            let refrac = rand_refrac(seed ^ 0xAA, n);

            assert_tiers_bitwise(&init, |t, d| add_assign(t, d, &src));
            assert_tiers_bitwise(&init, |t, d| scale_in_place(t, d, 0.99731));
            assert_tiers_bitwise(&init, |t, d| masked_scaled_add(t, d, &refrac, &src, 2.1));
            assert_tiers_bitwise(&init, |t, d| masked_add_uniform(t, d, &refrac, -17.5));
        }
    }

    #[test]
    fn lif_step_is_bitwise_identical_across_tiers() {
        let p = LifStepParams {
            v_rest: -65.0,
            decay: 0.99,
            v_thresh: -52.0,
            v_reset: -60.0,
            refractory: 5,
        };
        // Single-population and lane-major multi-lane block sizes.
        for n in [1usize, 7, 8, 9, 24, 50, 50 * 8, 50 * 32] {
            let seed = n as u64;
            let v0 = rand_f32(seed, n, -70.0, -45.0);
            let theta0 = rand_f32(seed ^ 0x33, n, 0.0, 5.0);
            let refrac0 = rand_refrac(seed ^ 0x66, n);

            let run = |tier: KernelTier| {
                let mut v = v0.clone();
                let mut refrac = refrac0.clone();
                let mut spikes = Vec::new();
                let mut all_spikes = Vec::new();
                // Several ticks so reset/refractory state feeds back.
                for _ in 0..6 {
                    lif_step(tier, &mut v, &mut refrac, &theta0, p, &mut spikes);
                    all_spikes.push(spikes.clone());
                }
                let bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
                (bits, refrac, all_spikes)
            };

            let scalar = run(KernelTier::Scalar);
            // Spikes come out in ascending flat order (grouped by
            // lane in the lane-major layout).
            for tick in &scalar.2 {
                assert!(tick.windows(2).all(|w| w[0] < w[1]), "unsorted spikes");
            }
            #[cfg(target_arch = "x86_64")]
            if KernelTier::Avx2.supported() {
                let simd = run(KernelTier::Avx2);
                assert_eq!(scalar.0, simd.0, "potentials diverged (n={n})");
                assert_eq!(scalar.1, simd.1, "refractory state diverged (n={n})");
                assert_eq!(scalar.2, simd.2, "spike trains diverged (n={n})");
            }
        }
    }

    #[test]
    fn boundary_values_survive_the_sign_bias() {
        // Values straddling 2^63 would order wrongly under a plain signed
        // compare; the bias must keep true unsigned order.
        let xs = [
            u64::MAX,
            1u64 << 63,
            (1u64 << 63) - 1,
            0,
            u64::MAX - 1,
            1,
            1u64 << 62,
            (1u64 << 63) + 1,
        ];
        for tier in tiers() {
            assert_eq!(min_u64(tier, &xs), 0);
            assert_eq!(min_index_u64(tier, &xs), 3);
            assert_eq!(min2_index_u64(tier, &xs), (3, 0, 1));
        }
        // All-duplicate slice: index 0, runner-up equals the minimum.
        let dup = [5u64; 7];
        for tier in tiers() {
            assert_eq!(min2_index_u64(tier, &dup), (0, 5, 5));
        }
    }
}
