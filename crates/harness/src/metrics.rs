//! Evaluation results and the §4.5 metrics.

use pathfinder_sim::SimReport;
use pathfinder_traces::Workload;
use serde::{Deserialize, Serialize};

/// Outcome of evaluating one prefetcher on one workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Prefetcher label.
    pub prefetcher: String,
    /// Workload evaluated.
    pub workload: Workload,
    /// Timed-replay report.
    pub report: SimReport,
    /// LLC load misses of the no-prefetch baseline on the same trace
    /// (coverage denominator, §4.5).
    pub baseline_misses: u64,
}

impl Evaluation {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        self.report.ipc()
    }

    /// useful / issued (§4.5).
    pub fn accuracy(&self) -> f64 {
        self.report.accuracy()
    }

    /// useful / baseline misses (§4.5).
    pub fn coverage(&self) -> f64 {
        self.report.coverage(self.baseline_misses)
    }

    /// Prefetch requests the prefetcher submitted, before the simulator's
    /// residency/duplicate filtering and DRAM shedding (Table 6's "issued
    /// prefetches", which the paper caps at 2 per access).
    ///
    /// Distinct from [`SimReport::prefetches_issued`] — the post-filter
    /// count the `sim.prefetch.issued` telemetry counter tracks. This
    /// accessor was named `issued()` before PR 2; it was renamed because it
    /// never returned the issued count.
    pub fn requested(&self) -> u64 {
        self.report.prefetches_requested
    }
}

/// Arithmetic mean over a metric of a result slice.
pub fn mean<F: Fn(&Evaluation) -> f64>(evals: &[Evaluation], f: F) -> f64 {
    if evals.is_empty() {
        return 0.0;
    }
    evals.iter().map(f).sum::<f64>() / evals.len() as f64
}

/// Geometric-mean speedup of `a` over `b`, matched by workload.
///
/// # Panics
///
/// Panics if the slices do not cover identical workload sets.
pub fn geomean_speedup(a: &[Evaluation], b: &[Evaluation]) -> f64 {
    assert_eq!(a.len(), b.len(), "mismatched result sets");
    let mut log_sum = 0.0f64;
    for ea in a {
        let eb = b
            .iter()
            .find(|e| e.workload == ea.workload)
            .expect("workload present in both sets");
        log_sum += (ea.ipc() / eb.ipc()).ln();
    }
    (log_sum / a.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(w: Workload, ipc_cycles: u64) -> Evaluation {
        Evaluation {
            prefetcher: "x".into(),
            workload: w,
            report: SimReport {
                instructions: 1000,
                cycles: ipc_cycles,
                prefetches_requested: 10,
                prefetches_issued: 8,
                prefetches_useful: 4,
                ..SimReport::default()
            },
            baseline_misses: 16,
        }
    }

    #[test]
    fn metrics_derive() {
        let e = eval(Workload::Cc5, 500);
        assert!((e.ipc() - 2.0).abs() < 1e-12);
        assert!((e.accuracy() - 0.5).abs() < 1e-12);
        assert!((e.coverage() - 0.25).abs() < 1e-12);
        assert_eq!(e.requested(), 10);
    }

    /// `requested()` (prefetches submitted) and `SimReport::prefetches_issued`
    /// (post-filter injections) are different quantities: on a schedule that
    /// re-requests the same resident block, requested counts every submission
    /// while the simulator issues only the first.
    #[test]
    fn requested_differs_from_issued_on_duplicate_schedule() {
        use pathfinder_sim::{Block, MemoryAccess, PrefetchRequest, SimConfig, Simulator, Trace};

        let trace: Trace = (0..10u64)
            .map(|i| MemoryAccess::new(i * 4, 0x400, 0x10_0000 + i * 4096 * 7))
            .collect();
        let target = Block(999_999);
        let schedule: Vec<PrefetchRequest> = trace
            .iter()
            .map(|a| PrefetchRequest::new(a.instr_id, target))
            .collect();
        let report = Simulator::new(SimConfig::default()).run(&trace, &schedule);
        let e = Evaluation {
            prefetcher: "dup".into(),
            workload: Workload::Cc5,
            report,
            baseline_misses: 10,
        };
        assert_eq!(e.requested(), 10, "every submission counts as requested");
        assert_eq!(
            e.report.prefetches_issued, 1,
            "the resident-block filter passes only the first"
        );
        assert!(e.requested() > e.report.prefetches_issued);
    }

    #[test]
    fn mean_and_geomean() {
        let a = vec![eval(Workload::Cc5, 500), eval(Workload::Mcf, 250)];
        let b = vec![eval(Workload::Cc5, 1000), eval(Workload::Mcf, 500)];
        assert!((mean(&a, |e| e.ipc()) - 3.0).abs() < 1e-12);
        assert!((geomean_speedup(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn geomean_rejects_uneven_sets() {
        let a = vec![eval(Workload::Cc5, 500)];
        let _ = geomean_speedup(&a, &[]);
    }
}
