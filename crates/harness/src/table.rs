//! Plain-text table rendering for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        TextTable {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<w$}"));
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

impl std::fmt::Display for TextTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a count with thousands separators.
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new("demo", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.9312), "93.1%");
        assert_eq!(count(1_234_567), "1,234,567");
        assert_eq!(count(999), "999");
    }
}
