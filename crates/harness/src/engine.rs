//! The parallel sweep engine: every experiment decomposes into
//! (prefetcher × workload) cells scheduled on a bounded worker pool, with
//! traces and no-prefetch baselines memoized process-wide.
//!
//! Two properties make the engine safe to use everywhere:
//!
//! * **Bit-determinism.** A cell's result depends only on its own
//!   `(seed, workload, prefetcher)` derivation — cells share nothing mutable
//!   but the [`TraceStore`], whose entries are immutable once initialized —
//!   so results are identical at `--threads 1` and `--threads N`, and the
//!   engine reassembles them in Table 5 × line-up order regardless of which
//!   worker finished first.
//! * **Generate-once memoization.** [`TraceStore`] keys each trace by
//!   `(workload, loads, seed)` and generates it exactly once per process
//!   (concurrent requesters block on the same `OnceLock`), sharing it as an
//!   `Arc<Trace>` across all cells and experiments; no-prefetch baselines
//!   are memoized the same way, additionally keyed by the simulator
//!   configuration they were measured under.
//!
//! The pool size defaults to the machine's available parallelism and is
//! configurable with `repro --threads N` (see [`set_threads`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use pathfinder_sim::{Simulator, Trace};
use pathfinder_telemetry as telemetry;
use pathfinder_telemetry::Snapshot;
use pathfinder_traces::Workload;

use crate::metrics::Evaluation;
use crate::runner::{PrefetcherKind, Scenario};

/// Configured pool size; 0 means "unset, use available parallelism".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker-pool size used by [`parallel_map`] and [`run_grid`]
/// (the `repro --threads N` flag). Passing 0 restores the default.
pub fn set_threads(n: usize) {
    THREADS.store(n, Ordering::Relaxed);
}

/// The worker-pool size currently in effect: the [`set_threads`] override,
/// or the machine's available parallelism.
pub fn threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `items` on the configured worker pool, preserving input
/// order in the output.
pub fn parallel_map<I, T, F>(items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    parallel_map_threads(threads(), items, f)
}

/// Like [`parallel_map`] with an explicit pool size (used by the
/// determinism tests to pin `--threads 1` vs `--threads N`).
///
/// Workers pull the next unclaimed item from a shared cursor, so load
/// balances dynamically: a worker that drew a cheap cell immediately steals
/// the next one instead of idling behind a slow sibling.
pub fn parallel_map_threads<I, T, F>(pool: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    let workers = pool.max(1).min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let per_worker = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let f = &f;
                s.spawn(move |_| {
                    let mut local: Vec<(usize, T)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("sweep worker panicked"))
            .collect::<Vec<_>>()
    })
    .expect("sweep pool scope failed");

    let mut slots: Vec<Option<T>> = (0..items.len()).map(|_| None).collect();
    for (i, value) in per_worker.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|v| v.expect("every cell index claimed exactly once"))
        .collect()
}

/// A trace (or baseline) memoization key: the complete derivation of the
/// generated data.
type TraceKey = (Workload, usize, u64);

/// A once-per-key memo table: the map lock is held only to find or insert a
/// slot; generation itself happens inside the slot's [`OnceLock`], so
/// concurrent requesters of one key block on the single in-flight
/// computation without serializing unrelated keys.
type MemoMap<K, V> = Mutex<HashMap<K, Arc<OnceLock<V>>>>;

/// One memoized trace plus the recency bookkeeping the LRU bound needs.
#[derive(Debug, Default)]
struct TraceSlot {
    slot: Arc<OnceLock<Arc<Trace>>>,
    last_used: u64,
}

/// Default bound on distinct memoized traces. Batch experiments touch at
/// most |Table 5| × a few `(loads, seed)` scales and never approach it; the
/// bound exists for long-running serves, where an unbounded memo over
/// client-chosen derivations is a slow leak.
pub const DEFAULT_TRACE_CAPACITY: usize = 64;

/// Process-wide memoization of generated traces and their no-prefetch
/// baselines.
///
/// Each entry is generated exactly once (concurrent requesters block on the
/// in-flight generation) and then shared as an `Arc<Trace>` by every cell
/// and experiment in the process. Baselines carry an additional simulator
/// configuration fingerprint in their key because the same trace replays to
/// different miss counts under different cache hierarchies.
///
/// The trace map is **bounded**: beyond [`DEFAULT_TRACE_CAPACITY`] (or the
/// [`TraceStore::with_capacity`] override), the least-recently-used
/// *initialized* entries are dropped — in-flight generations are never
/// evicted out from under their waiters, and outstanding `Arc<Trace>`
/// references keep evicted traces alive until their holders finish. A
/// re-request of an evicted key regenerates deterministically, so eviction
/// affects memory and time, never results. Lookups and evictions feed the
/// `harness.trace_store.{hits,evictions}` telemetry counters. Baseline
/// entries are bare `u64`s and stay unbounded.
#[derive(Debug)]
pub struct TraceStore {
    traces: Mutex<HashMap<TraceKey, TraceSlot>>,
    baselines: MemoMap<(TraceKey, String), u64>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    evictions: AtomicU64,
}

impl Default for TraceStore {
    fn default() -> Self {
        TraceStore::new()
    }
}

impl TraceStore {
    /// Creates an empty store with the default trace capacity (tests;
    /// production code shares [`TraceStore::global`]).
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Creates an empty store bounded to `capacity` memoized traces
    /// (clamped to at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceStore {
            traces: Mutex::new(HashMap::new()),
            baselines: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The process-wide store every experiment shares.
    pub fn global() -> &'static TraceStore {
        static GLOBAL: OnceLock<TraceStore> = OnceLock::new();
        GLOBAL.get_or_init(TraceStore::new)
    }

    /// The workload's trace at the scenario's `(loads, seed)` scale,
    /// generated on first request and shared afterwards (until evicted by
    /// the LRU bound).
    pub fn trace(&self, scenario: &Scenario, workload: Workload) -> Arc<Trace> {
        let key = (workload, scenario.loads, scenario.seed);
        let slot = {
            let mut map = self.traces.lock().expect("trace map lock");
            let tick = self.tick.fetch_add(1, Ordering::Relaxed);
            let slot = match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    e.get_mut().last_used = tick;
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter!("harness.trace_store.hits", 1);
                    e.get().slot.clone()
                }
                std::collections::hash_map::Entry::Vacant(e) => e
                    .insert(TraceSlot {
                        slot: Arc::default(),
                        last_used: tick,
                    })
                    .slot
                    .clone(),
            };
            if map.len() > self.capacity {
                // Oldest initialized entries first; uninitialized slots are
                // in-flight generations with waiters and must stay. (The
                // just-inserted slot is uninitialized, so it survives too.)
                let mut victims: Vec<(u64, TraceKey)> = map
                    .iter()
                    .filter(|(_, v)| v.slot.get().is_some())
                    .map(|(k, v)| (v.last_used, *k))
                    .collect();
                victims.sort_unstable_by_key(|&(t, _)| t);
                for (_, victim) in victims {
                    if map.len() <= self.capacity {
                        break;
                    }
                    map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    telemetry::counter!("harness.trace_store.evictions", 1);
                }
            }
            slot
        };
        slot.get_or_init(|| {
            let _span = telemetry::timer!("harness.trace_gen");
            Arc::new(workload.generate(scenario.loads, scenario.seed))
        })
        .clone()
    }

    /// LLC load misses of a no-prefetch replay of the workload's trace (the
    /// coverage denominator), measured once per (trace key, sim config).
    pub fn baseline_misses(&self, scenario: &Scenario, workload: Workload) -> u64 {
        let key = (
            (workload, scenario.loads, scenario.seed),
            format!("{:?}", scenario.sim),
        );
        let slot = self
            .baselines
            .lock()
            .expect("baseline map lock")
            .entry(key)
            .or_default()
            .clone();
        *slot.get_or_init(|| {
            let trace = self.trace(scenario, workload);
            let _span = telemetry::timer!("harness.baseline");
            Simulator::new(scenario.sim).run(&trace, &[]).llc_misses
        })
    }

    /// Number of distinct traces currently memoized (test observability).
    pub fn traces_cached(&self) -> usize {
        self.traces.lock().expect("trace map lock").len()
    }

    /// Lifetime count of trace lookups that found an existing entry.
    pub fn trace_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lifetime count of traces dropped by the LRU bound.
    pub fn trace_evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

/// Results of one grid sweep: `cells[workload_index][kind_index]`, i.e.
/// workload-major in Table 5 order, each row in line-up order.
pub type Grid = Vec<Vec<(Evaluation, Snapshot)>>;

/// Evaluates every (prefetcher × workload) cell on the configured worker
/// pool and returns the grid in deterministic workload-major order.
pub fn run_grid(scenario: &Scenario, kinds: &[PrefetcherKind], workloads: &[Workload]) -> Grid {
    run_grid_threads(threads(), scenario, kinds, workloads)
}

/// Like [`run_grid`] with an explicit pool size.
pub fn run_grid_threads(
    pool: usize,
    scenario: &Scenario,
    kinds: &[PrefetcherKind],
    workloads: &[Workload],
) -> Grid {
    // Kind-major scheduling order: the first `pool` cells touch distinct
    // workloads, so trace generation itself saturates the pool instead of
    // serializing behind one workload's OnceLock.
    let cells: Vec<(usize, usize)> = (0..kinds.len())
        .flat_map(|ki| (0..workloads.len()).map(move |wi| (wi, ki)))
        .collect();
    let store = TraceStore::global();
    let results = parallel_map_threads(pool, &cells, |&(wi, ki)| {
        let w = workloads[wi];
        let trace = store.trace(scenario, w);
        let baseline = store.baseline_misses(scenario, w);
        scenario.evaluate_with_telemetry(&kinds[ki], w, &trace, baseline)
    });

    let mut grid: Vec<Vec<Option<(Evaluation, Snapshot)>>> = (0..workloads.len())
        .map(|_| (0..kinds.len()).map(|_| None).collect())
        .collect();
    for (&(wi, ki), cell) in cells.iter().zip(results) {
        grid[wi][ki] = Some(cell);
    }
    grid.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|c| c.expect("every grid cell evaluated"))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order_at_any_pool_size() {
        let items: Vec<usize> = (0..37).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for pool in [1, 2, 5, 16, 64] {
            assert_eq!(
                parallel_map_threads(pool, &items, |&i| i * 3),
                expect,
                "pool={pool}"
            );
        }
        let empty: Vec<usize> = Vec::new();
        assert!(parallel_map_threads(4, &empty, |&i: &usize| i).is_empty());
    }

    #[test]
    fn trace_store_generates_once_and_shares() {
        let store = TraceStore::new();
        let sc = Scenario::with_loads(1500);
        let a = store.trace(&sc, Workload::Sphinx);
        let b = store.trace(&sc, Workload::Sphinx);
        assert!(Arc::ptr_eq(&a, &b), "same key must share one Arc<Trace>");
        assert_eq!(store.traces_cached(), 1);
        // Different derivation -> different entry.
        let other = Scenario {
            seed: sc.seed + 1,
            ..sc
        };
        let c = store.trace(&other, Workload::Sphinx);
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(store.traces_cached(), 2);
        // Baselines agree with a direct no-prefetch replay.
        let direct = Simulator::new(sc.sim).run(&a, &[]).llc_misses;
        assert_eq!(store.baseline_misses(&sc, Workload::Sphinx), direct);
        assert_eq!(store.baseline_misses(&sc, Workload::Sphinx), direct);
    }

    #[test]
    fn trace_store_is_shared_across_threads() {
        let store = TraceStore::new();
        let sc = Scenario::with_loads(1200);
        let traces = parallel_map_threads(4, &[(); 8], |_| store.trace(&sc, Workload::Cc5));
        for t in &traces[1..] {
            assert!(Arc::ptr_eq(&traces[0], t));
        }
        assert_eq!(store.traces_cached(), 1);
    }

    #[test]
    fn trace_store_evicts_least_recently_used_beyond_capacity() {
        let store = TraceStore::with_capacity(2);
        let sc = Scenario::with_loads(1000);
        let a = store.trace(&sc, Workload::Cc5);
        let _b = store.trace(&sc, Workload::Bfs10);
        assert_eq!(store.trace_hits(), 0);
        assert_eq!(store.trace_evictions(), 0);

        // Touch Cc5 so Bfs10 becomes the LRU victim when Sphinx arrives.
        let a2 = store.trace(&sc, Workload::Cc5);
        assert!(Arc::ptr_eq(&a, &a2));
        assert_eq!(store.trace_hits(), 1);
        let _c = store.trace(&sc, Workload::Sphinx);
        assert_eq!(store.trace_evictions(), 1);
        assert_eq!(store.traces_cached(), 2);

        // Cc5 survived (hit); the evicted Bfs10 regenerates on re-request
        // as a fresh allocation with identical contents.
        let a3 = store.trace(&sc, Workload::Cc5);
        assert!(Arc::ptr_eq(&a, &a3));
        let before = store.trace_evictions();
        let b2 = store.trace(&sc, Workload::Bfs10);
        assert_eq!(*b2, Workload::Bfs10.generate(sc.loads, sc.seed));
        assert!(
            store.trace_evictions() > before,
            "refill evicts again at capacity"
        );
    }

    #[test]
    fn grid_is_workload_major_in_lineup_order() {
        let sc = Scenario::with_loads(1500);
        let kinds = [PrefetcherKind::NoPrefetch, PrefetcherKind::NextLine];
        let ws = [Workload::Sphinx, Workload::Cc5];
        let grid = run_grid_threads(3, &sc, &kinds, &ws);
        assert_eq!(grid.len(), 2);
        for (wi, row) in grid.iter().enumerate() {
            assert_eq!(row.len(), 2);
            for (ki, (eval, _)) in row.iter().enumerate() {
                assert_eq!(eval.workload, ws[wi]);
                assert_eq!(eval.prefetcher, kinds[ki].label());
            }
        }
    }
}
