//! The `repro` command-line interface — regenerates every table and figure of the PATHFINDER paper.
//!
//! ```text
//! repro <experiment> [--loads N] [--seed S] [--threads T]
//!
//! experiments:
//!   all    every experiment below, in order
//!   fig4   prefetcher shootout: IPC/accuracy/coverage (+ Table 6)
//!   fig5   delta-range sweep
//!   fig6   neuron-count sweep (1-label vs 2-label)
//!   fig7   1-tick vs 32-tick readout
//!   fig8   STDP duty-cycle sweep
//!   fig9   implementation-variant ladder
//!   tab1   first-tick argmax vs 32-tick winner match rate
//!   tab2   SNN learning demonstration (§3.6, Figure 3 data)
//!   tab5   workload inventory
//!   tab7   deltas within range
//!   tab8   per-1K-access delta statistics
//!   tab9   hardware area/power model
//!   ext    beyond-the-paper: dynamic ensembles and cold-page prediction
//!   report structured run report with telemetry (also writes run_report.json
//!          and run_report.md next to the working directory)
//! ```
//!
//! `--threads T` bounds the sweep engine's worker pool (default: available
//! parallelism). Results are bit-identical at any thread count; traces and
//! no-prefetch baselines are generated once per process and shared across
//! experiments (see [`crate::engine`]).

use std::process::ExitCode;

use crate::experiments::{extensions, fig4, hardware, report, snn_analysis, sweeps, trace_stats};
use crate::runner::Scenario;
use pathfinder_traces::Workload;

struct Args {
    experiment: String,
    loads: usize,
    sweep_loads: usize,
    seed: u64,
    threads: Option<usize>,
    workloads: Vec<Workload>,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = String::from("all");
    let mut loads = 100_000usize;
    let mut sweep_loads = 0usize;
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut workloads: Vec<Workload> = Workload::ALL.to_vec();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0usize;
    let mut saw_experiment = false;
    while i < argv.len() {
        match argv[i].as_str() {
            "--loads" => {
                i += 1;
                loads = argv
                    .get(i)
                    .ok_or("--loads needs a value")?
                    .parse()
                    .map_err(|e| format!("--loads: {e}"))?;
            }
            "--sweep-loads" => {
                i += 1;
                sweep_loads = argv
                    .get(i)
                    .ok_or("--sweep-loads needs a value")?
                    .parse()
                    .map_err(|e| format!("--sweep-loads: {e}"))?;
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                i += 1;
                let n: usize = argv
                    .get(i)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--workload" => {
                i += 1;
                let name = argv.get(i).ok_or("--workload needs a trace name")?;
                let w: Workload = name.parse().map_err(|e| format!("{e}"))?;
                if workloads.len() == Workload::ALL.len() {
                    workloads = vec![w];
                } else {
                    workloads.push(w);
                }
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            exp if !saw_experiment && !exp.starts_with('-') => {
                experiment = exp.to_string();
                saw_experiment = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if sweep_loads == 0 {
        // Sweeps run many PATHFINDER configurations; default to a smaller
        // per-configuration trace than the shootout.
        sweep_loads = (loads / 2).max(1000);
    }
    Ok(Args {
        experiment,
        loads,
        sweep_loads,
        seed,
        threads,
        workloads,
    })
}

/// Parses CLI arguments and runs the selected experiment(s).
pub fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: repro [all|fig4|fig5|fig6|fig7|fig8|fig9|tab1|tab2|tab5|tab7|tab8|tab9|ext|report] \
                 [--loads N] [--sweep-loads N] [--seed S] [--threads T] [--workload NAME]..."
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    if let Some(n) = args.threads {
        crate::engine::set_threads(n);
    }

    let scenario = Scenario {
        loads: args.loads,
        seed: args.seed,
        ..Scenario::default()
    };
    let sweep_scenario = Scenario {
        loads: args.sweep_loads,
        seed: args.seed,
        ..Scenario::default()
    };
    let all = args.workloads.clone();

    eprintln!(
        "# repro: experiment={} loads={} sweep_loads={} seed={} workloads={} threads={}",
        args.experiment,
        args.loads,
        args.sweep_loads,
        args.seed,
        all.len(),
        crate::engine::threads()
    );

    let run_one = |name: &str| -> Option<String> {
        let t0 = std::time::Instant::now();
        let text = match name {
            "fig4" => fig4::render(&fig4::run_with(&scenario, &all)),
            "fig5" => sweeps::fig5(&sweep_scenario, &all).1,
            "fig6" => sweeps::fig6(&sweep_scenario, &all).1,
            "fig7" => sweeps::fig7(&sweep_scenario, &all).1,
            "fig8" => sweeps::fig8(&sweep_scenario, &all).1,
            "fig9" => sweeps::fig9(&sweep_scenario, &all).1,
            "tab1" => snn_analysis::tab1(&sweep_scenario, &all).1,
            "tab2" => snn_analysis::tab2(args.seed).2,
            "tab5" => trace_stats::tab5(&scenario),
            "tab7" => trace_stats::tab7(&scenario, &all).1,
            "tab8" => trace_stats::tab8(&scenario, &all).1,
            "tab9" => hardware::tab9(),
            "ext" => extensions::run(&sweep_scenario, &all).1,
            "report" => {
                let rep = report::run(&scenario, &report::default_lineup(), &all);
                match std::fs::write("run_report.json", rep.to_json()) {
                    Ok(()) => eprintln!("# report: wrote run_report.json"),
                    Err(e) => eprintln!("# report: could not write run_report.json: {e}"),
                }
                match std::fs::write("run_report.md", rep.to_markdown()) {
                    Ok(()) => eprintln!("# report: wrote run_report.md"),
                    Err(e) => eprintln!("# report: could not write run_report.md: {e}"),
                }
                rep.render_text()
            }
            _ => return None,
        };
        eprintln!("# {name} finished in {:.1}s", t0.elapsed().as_secs_f64());
        Some(text)
    };

    let experiments: Vec<&str> = if args.experiment == "all" {
        vec![
            "tab5", "tab7", "tab8", "tab9", "tab2", "tab1", "fig4", "fig5", "fig6", "fig7",
            "fig8", "fig9", "ext", "report",
        ]
    } else {
        vec![args.experiment.as_str()]
    };

    for name in experiments {
        match run_one(name) {
            Some(text) => {
                println!("{text}");
            }
            None => {
                eprintln!("error: unknown experiment `{name}`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
