//! The `repro` command-line interface — regenerates every table and figure of the PATHFINDER paper.
//!
//! ```text
//! repro <experiment> [--loads N] [--seed S] [--threads T]
//!
//! experiments:
//!   all    every experiment below, in order (except bench)
//!   fig4   prefetcher shootout: IPC/accuracy/coverage (+ Table 6)
//!   fig5   delta-range sweep
//!   fig6   neuron-count sweep (1-label vs 2-label)
//!   fig7   1-tick vs 32-tick readout
//!   fig8   STDP duty-cycle sweep
//!   fig9   implementation-variant ladder
//!   tab1   first-tick argmax vs 32-tick winner match rate
//!   tab2   SNN learning demonstration (§3.6, Figure 3 data)
//!   tab5   workload inventory
//!   tab7   deltas within range
//!   tab8   per-1K-access delta statistics
//!   tab9   hardware area/power model
//!   ext    beyond-the-paper: dynamic ensembles and cold-page prediction
//!   report structured run report with telemetry (also writes run_report.json
//!          and run_report.md next to the working directory)
//!   bench  perf micro-suite: SNN presentation kernels (including the
//!          SIMD-dispatched vs forced-scalar tier pair), encoding,
//!          per-prefetcher per-access cost, the replay engine's
//!          dispatched vs pinned-scalar pair, the serve daemon's
//!          sharded stream throughput (singleton and `access_batch`
//!          frame cells), one end-to-end report cell.
//!          Writes BENCH_pr10.json (override with --bench-out). With
//!          --baseline <json> the run becomes a gate: exits nonzero when
//!          any suite's median regressed more than --threshold percent
//!          (default 40) versus the baseline document; snn.*, sim.*, and
//!          serve.* suites are skipped when the baseline was recorded on
//!          a different kernel tier (the document's kernel_tier field).
//!   serve  prefetch-as-a-service daemon: listens on --socket (default
//!          /tmp/pathfinder-serve.sock) with --shards workers, serving
//!          access/predict/train/status/configure/drain verbs until a
//!          full drain shuts it down.
//!   serve-smoke
//!          drives --clients concurrent streams of Table-5 trace
//!          prefixes (--loads each) through a running daemon and fails
//!          unless every stream's drained schedule/report/stats are
//!          bit-identical to a batch run; --batch sends the streamed
//!          half as 16-record access_batch frames over each client's
//!          sticky connection instead of singleton accesses;
//!          --no-shutdown leaves the daemon running afterwards.
//! ```
//!
//! `--threads T` bounds the sweep engine's worker pool (default: available
//! parallelism). Results are bit-identical at any thread count; traces and
//! no-prefetch baselines are generated once per process and shared across
//! experiments (see [`crate::engine`]).

use std::process::ExitCode;

use crate::experiments::{
    bench, extensions, fig4, hardware, report, service, snn_analysis, sweeps, trace_stats,
};
use crate::runner::Scenario;
use pathfinder_traces::Workload;

struct Args {
    experiment: String,
    loads: usize,
    sweep_loads: usize,
    seed: u64,
    threads: Option<usize>,
    workloads: Vec<Workload>,
    baseline: Option<String>,
    threshold: f64,
    bench_out: String,
    socket: String,
    shards: usize,
    clients: usize,
    shutdown: bool,
    batch: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut experiment = String::from("all");
    let mut loads = 100_000usize;
    let mut sweep_loads = 0usize;
    let mut seed = 42u64;
    let mut threads: Option<usize> = None;
    let mut workloads: Vec<Workload> = Workload::ALL.to_vec();
    let mut baseline: Option<String> = None;
    let mut threshold = 40.0f64;
    let mut bench_out = String::from("BENCH_pr10.json");
    let mut socket = String::from("/tmp/pathfinder-serve.sock");
    let mut shards = 4usize;
    let mut clients = 8usize;
    let mut shutdown = true;
    let mut batch = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0usize;
    let mut saw_experiment = false;
    while i < argv.len() {
        match argv[i].as_str() {
            "--loads" => {
                i += 1;
                loads = argv
                    .get(i)
                    .ok_or("--loads needs a value")?
                    .parse()
                    .map_err(|e| format!("--loads: {e}"))?;
            }
            "--sweep-loads" => {
                i += 1;
                sweep_loads = argv
                    .get(i)
                    .ok_or("--sweep-loads needs a value")?
                    .parse()
                    .map_err(|e| format!("--sweep-loads: {e}"))?;
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                i += 1;
                let n: usize = argv
                    .get(i)
                    .ok_or("--threads needs a value")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
            }
            "--workload" => {
                i += 1;
                let name = argv.get(i).ok_or("--workload needs a trace name")?;
                let w: Workload = name.parse().map_err(|e| format!("{e}"))?;
                if workloads.len() == Workload::ALL.len() {
                    workloads = vec![w];
                } else {
                    workloads.push(w);
                }
            }
            "--baseline" => {
                i += 1;
                baseline = Some(argv.get(i).ok_or("--baseline needs a path")?.clone());
            }
            "--threshold" => {
                i += 1;
                threshold = argv
                    .get(i)
                    .ok_or("--threshold needs a percentage")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if threshold.is_nan() || threshold < 0.0 {
                    return Err("--threshold must be non-negative".to_string());
                }
            }
            "--bench-out" => {
                i += 1;
                bench_out = argv.get(i).ok_or("--bench-out needs a path")?.clone();
            }
            "--socket" => {
                i += 1;
                socket = argv.get(i).ok_or("--socket needs a path")?.clone();
            }
            "--shards" => {
                i += 1;
                shards = argv
                    .get(i)
                    .ok_or("--shards needs a value")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if shards == 0 {
                    return Err("--shards must be at least 1".to_string());
                }
            }
            "--clients" => {
                i += 1;
                clients = argv
                    .get(i)
                    .ok_or("--clients needs a value")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
                if clients == 0 {
                    return Err("--clients must be at least 1".to_string());
                }
            }
            "--no-shutdown" => {
                shutdown = false;
            }
            "--batch" => {
                batch = true;
            }
            "--help" | "-h" => {
                return Err(String::new());
            }
            exp if !saw_experiment && !exp.starts_with('-') => {
                experiment = exp.to_string();
                saw_experiment = true;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
        i += 1;
    }
    if sweep_loads == 0 {
        // Sweeps run many PATHFINDER configurations; default to a smaller
        // per-configuration trace than the shootout.
        sweep_loads = (loads / 2).max(1000);
    }
    Ok(Args {
        experiment,
        loads,
        sweep_loads,
        seed,
        threads,
        workloads,
        baseline,
        threshold,
        bench_out,
        socket,
        shards,
        clients,
        shutdown,
        batch,
    })
}

/// Parses CLI arguments and runs the selected experiment(s).
pub fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: repro [all|fig4|fig5|fig6|fig7|fig8|fig9|tab1|tab2|tab5|tab7|tab8|tab9|ext|report|bench|serve|serve-smoke] \
                 [--loads N] [--sweep-loads N] [--seed S] [--threads T] [--workload NAME]... \
                 [--baseline JSON] [--threshold PCT] [--bench-out PATH] \
                 [--socket PATH] [--shards N] [--clients N] [--batch] [--no-shutdown]"
            );
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
    };

    if let Some(n) = args.threads {
        crate::engine::set_threads(n);
    }

    // `bench` controls its own exit code (the baseline gate), isn't part of
    // `all`, and interprets --loads as the per-access/e2e trace scale.
    if args.experiment == "bench" {
        return run_bench(&args);
    }

    // Service mode: long-running daemon / its CI smoke driver. Neither is
    // part of `all` (they don't regenerate a paper artifact).
    if args.experiment == "serve" {
        return match service::serve(&service::ServeOpts {
            socket: args.socket.clone(),
            shards: args.shards,
        }) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.experiment == "serve-smoke" {
        let t0 = std::time::Instant::now();
        return match service::smoke(&service::SmokeOpts {
            socket: args.socket.clone(),
            clients: args.clients,
            loads: args.loads,
            seed: args.seed,
            shutdown: args.shutdown,
            batch: args.batch,
        }) {
            Ok(text) => {
                println!("{text}");
                eprintln!(
                    "# serve-smoke finished in {:.1}s",
                    t0.elapsed().as_secs_f64()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: serve-smoke: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let scenario = Scenario {
        loads: args.loads,
        seed: args.seed,
        ..Scenario::default()
    };
    let sweep_scenario = Scenario {
        loads: args.sweep_loads,
        seed: args.seed,
        ..Scenario::default()
    };
    let all = args.workloads.clone();

    eprintln!(
        "# repro: experiment={} loads={} sweep_loads={} seed={} workloads={} threads={}",
        args.experiment,
        args.loads,
        args.sweep_loads,
        args.seed,
        all.len(),
        crate::engine::threads()
    );

    let run_one = |name: &str| -> Option<String> {
        let t0 = std::time::Instant::now();
        let text = match name {
            "fig4" => fig4::render(&fig4::run_with(&scenario, &all)),
            "fig5" => sweeps::fig5(&sweep_scenario, &all).1,
            "fig6" => sweeps::fig6(&sweep_scenario, &all).1,
            "fig7" => sweeps::fig7(&sweep_scenario, &all).1,
            "fig8" => sweeps::fig8(&sweep_scenario, &all).1,
            "fig9" => sweeps::fig9(&sweep_scenario, &all).1,
            "tab1" => snn_analysis::tab1(&sweep_scenario, &all).1,
            "tab2" => snn_analysis::tab2(args.seed).2,
            "tab5" => trace_stats::tab5(&scenario),
            "tab7" => trace_stats::tab7(&scenario, &all).1,
            "tab8" => trace_stats::tab8(&scenario, &all).1,
            "tab9" => hardware::tab9(),
            "ext" => extensions::run(&sweep_scenario, &all).1,
            "report" => {
                let rep = report::run(&scenario, &report::default_lineup(), &all);
                match std::fs::write("run_report.json", rep.to_json()) {
                    Ok(()) => eprintln!("# report: wrote run_report.json"),
                    Err(e) => eprintln!("# report: could not write run_report.json: {e}"),
                }
                match std::fs::write("run_report.md", rep.to_markdown()) {
                    Ok(()) => eprintln!("# report: wrote run_report.md"),
                    Err(e) => eprintln!("# report: could not write run_report.md: {e}"),
                }
                rep.render_text()
            }
            _ => return None,
        };
        eprintln!("# {name} finished in {:.1}s", t0.elapsed().as_secs_f64());
        Some(text)
    };

    let experiments: Vec<&str> = if args.experiment == "all" {
        vec![
            "tab5", "tab7", "tab8", "tab9", "tab2", "tab1", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "ext", "report",
        ]
    } else {
        vec![args.experiment.as_str()]
    };

    for name in experiments {
        match run_one(name) {
            Some(text) => {
                println!("{text}");
            }
            None => {
                eprintln!("error: unknown experiment `{name}`");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Runs the perf micro-suite, writes the bench document, and (when
/// `--baseline` was given) gates on per-suite median regressions.
fn run_bench(args: &Args) -> ExitCode {
    let t0 = std::time::Instant::now();
    let opts = bench::BenchOpts {
        loads: args.loads,
        seed: args.seed,
    };
    eprintln!("# bench: loads={} seed={}", opts.loads, opts.seed);
    let report = bench::run(&opts);
    println!("{}", report.render_text());

    match std::fs::write(&args.bench_out, report.to_json()) {
        Ok(()) => eprintln!("# bench: wrote {}", args.bench_out),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", args.bench_out);
            return ExitCode::FAILURE;
        }
    }

    let mut verdict = ExitCode::SUCCESS;
    if let Some(path) = &args.baseline {
        let baseline_json = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: could not read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let cmp = match bench::compare_to_baseline(&report, &baseline_json, args.threshold) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        println!("{}", bench::render_deltas(&cmp, args.threshold));
        if cmp.tier_mismatch {
            eprintln!(
                "# bench: baseline tier {} != current tier {}; {} tier-sensitive suite(s) (snn.*/sim.*/serve.*) not gated",
                cmp.baseline_tier.as_deref().unwrap_or("unknown"),
                report.kernel_tier,
                cmp.skipped.len()
            );
        }
        let regressed: Vec<&str> = cmp
            .deltas
            .iter()
            .filter(|d| d.regressed)
            .map(|d| d.name.as_str())
            .collect();
        if regressed.is_empty() {
            eprintln!(
                "# bench: gate passed ({} suites within +{:.0}% of {path})",
                cmp.deltas.len(),
                args.threshold
            );
        } else {
            eprintln!(
                "error: {} suite(s) regressed more than {:.0}% vs {path}: {}",
                regressed.len(),
                args.threshold,
                regressed.join(", ")
            );
            verdict = ExitCode::FAILURE;
        }
    }
    eprintln!("# bench finished in {:.1}s", t0.elapsed().as_secs_f64());
    verdict
}
