//! # pathfinder-harness
//!
//! The experiment harness regenerating every table and figure in the
//! PATHFINDER paper's evaluation:
//!
//! * [`experiments::fig4`] — Figure 4a/b/c (IPC / accuracy / coverage of all
//!   prefetchers) and Table 6 (issued prefetches).
//! * [`experiments::sweeps`] — Figures 5-9 (delta range, neuron count,
//!   1-tick approximation, STDP duty cycle, variant ladder).
//! * [`experiments::snn_analysis`] — Table 1 (1-tick match rate) and
//!   Table 2 / Figure 3 (the §3.6 learning demonstration).
//! * [`experiments::trace_stats`] — Tables 5, 7, 8 (workload inventory and
//!   delta statistics).
//! * [`experiments::hardware`] — Table 9 and the §3.5 cost summary.
//! * [`experiments::extensions`] — the paper's stated future work (§3.4
//!   cold-page prediction, §5 dynamic ensemble priority), measured.
//! * [`experiments::report`] — structured run reports: every evaluation
//!   plus the per-prefetcher telemetry snapshot that
//!   [`Scenario::evaluate_with_telemetry`] captures, rendered as JSON and
//!   Markdown (`repro report`).
//!
//! All of them run on the [`engine`] module's sweep engine: experiments
//! decompose into (prefetcher × workload) cells scheduled on a bounded
//! worker pool (`repro --threads N`, default = available parallelism), and
//! traces/no-prefetch baselines are generated once per process in the
//! shared [`TraceStore`]. Results are bit-identical at any thread count.
//!
//! Telemetry is on by default here (the `telemetry` feature forwards
//! `pathfinder-telemetry/enabled` through the whole dependency graph);
//! build with `--no-default-features` to measure the instrumented hot
//! paths at their zero-cost baseline.
//!
//! The `repro` binary drives all of them:
//!
//! ```text
//! cargo run --release -p pathfinder-harness --bin repro -- all --loads 100000
//! ```
//!
//! ## Library quick start
//!
//! ```
//! use pathfinder_harness::runner::{PrefetcherKind, Scenario};
//! use pathfinder_traces::Workload;
//!
//! let scenario = Scenario::with_loads(2_000);
//! let evals = scenario.evaluate_all(
//!     &[PrefetcherKind::NoPrefetch, PrefetcherKind::NextLine],
//!     Workload::Sphinx,
//! );
//! assert!(evals[1].ipc() >= evals[0].ipc());
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod engine;
pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod table;

pub use engine::TraceStore;
pub use metrics::Evaluation;
pub use runner::{PrefetcherKind, Scenario};
pub use table::TextTable;
