//! # pathfinder-harness
//!
//! The experiment harness regenerating every table and figure in the
//! PATHFINDER paper's evaluation:
//!
//! * [`experiments::fig4`] — Figure 4a/b/c (IPC / accuracy / coverage of all
//!   prefetchers) and Table 6 (issued prefetches).
//! * [`experiments::sweeps`] — Figures 5-9 (delta range, neuron count,
//!   1-tick approximation, STDP duty cycle, variant ladder).
//! * [`experiments::snn_analysis`] — Table 1 (1-tick match rate) and
//!   Table 2 / Figure 3 (the §3.6 learning demonstration).
//! * [`experiments::trace_stats`] — Tables 5, 7, 8 (workload inventory and
//!   delta statistics).
//! * [`experiments::hardware`] — Table 9 and the §3.5 cost summary.
//!
//! The `repro` binary drives all of them:
//!
//! ```text
//! cargo run --release -p pathfinder-harness --bin repro -- all --loads 100000
//! ```
//!
//! ## Library quick start
//!
//! ```
//! use pathfinder_harness::runner::{PrefetcherKind, Scenario};
//! use pathfinder_traces::Workload;
//!
//! let scenario = Scenario::with_loads(2_000);
//! let evals = scenario.evaluate_all(
//!     &[PrefetcherKind::NoPrefetch, PrefetcherKind::NextLine],
//!     Workload::Sphinx,
//! );
//! assert!(evals[1].ipc() >= evals[0].ipc());
//! ```

#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod runner;
pub mod table;

pub use metrics::Evaluation;
pub use runner::{PrefetcherKind, Scenario};
pub use table::TextTable;
