//! `repro` — regenerates every table and figure of the PATHFINDER paper.
//! See [`pathfinder_harness::cli`] for the experiment list and flags.

use std::process::ExitCode;

fn main() -> ExitCode {
    pathfinder_harness::cli::main()
}
