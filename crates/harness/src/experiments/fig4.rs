//! Figure 4 (+ Table 6): IPC, accuracy, and coverage of every prefetcher on
//! all eleven workloads.

use pathfinder_traces::Workload;

use crate::engine::run_grid;
use crate::metrics::{mean, Evaluation};
use crate::runner::{PrefetcherKind, Scenario};
use crate::table::{count, f3, pct, TextTable};

/// Results indexed `[workload][prefetcher]` in line-up order.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Evaluations per workload (Table 5 order), per prefetcher (Figure 4
    /// legend order).
    pub evals: Vec<Vec<Evaluation>>,
}

impl Fig4Result {
    /// All results for one prefetcher label.
    pub fn for_prefetcher(&self, label: &str) -> Vec<&Evaluation> {
        self.evals
            .iter()
            .flat_map(|ws| ws.iter())
            .filter(|e| e.prefetcher == label)
            .collect()
    }

    /// Mean IPC over workloads for one prefetcher.
    pub fn mean_ipc(&self, label: &str) -> f64 {
        let evals: Vec<Evaluation> = self.for_prefetcher(label).into_iter().cloned().collect();
        mean(&evals, |e| e.ipc())
    }
}

/// Runs the full Figure 4 comparison.
pub fn run(scenario: &Scenario) -> Fig4Result {
    run_with(scenario, &Workload::ALL)
}

/// Runs Figure 4 on a workload subset (used by tests and benches).
///
/// Every (prefetcher × workload) cell is an independent unit of work on the
/// sweep engine's pool; the shared [`crate::engine::TraceStore`] generates
/// each trace and baseline once.
pub fn run_with(scenario: &Scenario, workloads: &[Workload]) -> Fig4Result {
    let kinds = PrefetcherKind::figure4_lineup();
    let evals = run_grid(scenario, &kinds, workloads)
        .into_iter()
        .map(|row| row.into_iter().map(|(eval, _)| eval).collect())
        .collect();
    Fig4Result { evals }
}

/// Renders Figure 4a/b/c and Table 6.
pub fn render(r: &Fig4Result) -> String {
    let labels: Vec<&str> = PrefetcherKind::figure4_lineup()
        .iter()
        .map(|k| k.label())
        .collect();
    let mut out = String::new();

    for (title, metric) in [
        ("Figure 4a: IPC", 0usize),
        ("Figure 4b: Accuracy", 1),
        ("Figure 4c: Coverage", 2),
    ] {
        let mut header = vec!["trace"];
        header.extend(labels.iter().copied());
        let mut t = TextTable::new(title, &header);
        for ws in &r.evals {
            let mut row = vec![ws[0].workload.trace_name().to_string()];
            for e in ws {
                row.push(match metric {
                    0 => f3(e.ipc()),
                    1 => pct(e.accuracy()),
                    _ => pct(e.coverage()),
                });
            }
            t.row(row);
        }
        // Average row.
        let mut avg = vec!["average".to_string()];
        for (i, _) in labels.iter().enumerate() {
            let col: Vec<Evaluation> = r.evals.iter().map(|ws| ws[i].clone()).collect();
            avg.push(match metric {
                0 => f3(mean(&col, |e| e.ipc())),
                1 => pct(mean(&col, |e| e.accuracy())),
                _ => pct(mean(&col, |e| e.coverage())),
            });
        }
        t.row(avg);
        out.push_str(&t.render());
        out.push('\n');
    }

    // Table 6: issued prefetches for the paper's three columns.
    let mut t = TextTable::new(
        "Table 6: issued prefetches (SPP lowest-coverage, Pythia highest-coverage, PATHFINDER)",
        &["trace", "SPP", "Pythia", "PATHFINDER"],
    );
    let mut sums = [0u64; 3];
    for ws in &r.evals {
        // Table 6 counts prefetches the *prefetcher* submitted (the paper
        // caps them at 2 per access), not the post-filter injections.
        let find = |label: &str| {
            ws.iter()
                .find(|e| e.prefetcher == label)
                .map_or(0, |e| e.requested())
        };
        let (s, p, pf) = (find("SPP"), find("Pythia"), find("PATHFINDER"));
        sums[0] += s;
        sums[1] += p;
        sums[2] += pf;
        t.row(vec![
            ws[0].workload.trace_name().to_string(),
            count(s),
            count(p),
            count(pf),
        ]);
    }
    let n = r.evals.len().max(1) as u64;
    t.row(vec![
        "average".into(),
        count(sums[0] / n),
        count(sums[1] / n),
        count(sums[2] / n),
    ]);
    out.push_str(&t.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fig4_runs_and_renders() {
        let sc = Scenario::with_loads(1500);
        let r = run_with(&sc, &[Workload::Sphinx]);
        assert_eq!(r.evals.len(), 1);
        assert_eq!(r.evals[0].len(), 9);
        let text = render(&r);
        assert!(text.contains("Figure 4a"));
        assert!(text.contains("Table 6"));
        assert!(text.contains("482-sphinx-s0"));
    }
}
