//! One module per paper table/figure.

pub mod bench;
pub mod extensions;
pub mod fig4;
pub mod hardware;
pub mod report;
pub mod service;
pub mod snn_analysis;
pub mod sweeps;
pub mod trace_stats;
