//! Service mode: the `repro serve` daemon entry point and the
//! `repro serve-smoke` client driver the CI `service-smoke` job runs.
//!
//! The smoke driver is itself the parity referee: each client thread drives
//! one Table-5 trace prefix through the daemon as a live stream, drains it,
//! and compares the returned schedule, replay report, and prefetcher stats
//! against a batch run it computes locally from the shared
//! [`StreamTemplate`]. Any byte of divergence is a failure — the same
//! flat-vs-reference equivalence discipline the simulator crates use,
//! extended across the daemon's wire protocol.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use pathfinder_core::PathfinderPrefetcher;
use pathfinder_prefetch::generate_prefetches;
use pathfinder_serve::{
    serve_unix, AccessRecord, Request, Response, ServeEngine, StreamTemplate, UnixClient,
};
use pathfinder_sim::{MemoryAccess, Simulator, Trace};
use pathfinder_traces::Workload;

use crate::table::TextTable;

/// Options for `repro serve`.
#[derive(Debug, Clone)]
pub struct ServeOpts {
    /// Unix-socket path to listen on.
    pub socket: String,
    /// Shard worker count.
    pub shards: usize,
}

/// Options for `repro serve-smoke`.
#[derive(Debug, Clone)]
pub struct SmokeOpts {
    /// Unix-socket path of the daemon to drive.
    pub socket: String,
    /// Concurrent client count (one stream each).
    pub clients: usize,
    /// Trace-prefix length per stream.
    pub loads: usize,
    /// Trace generation seed.
    pub seed: u64,
    /// When true, the smoke finishes by draining the daemon itself
    /// (`drain` with no stream), shutting it down.
    pub shutdown: bool,
    /// When true, each client drives part of its trace as `access_batch`
    /// frames over its long-lived (sticky) connection instead of pure
    /// singleton `access` calls, exercising the batched hot path.
    pub batch: bool,
}

/// Runs the daemon on `opts.socket` until a full `drain` shuts it down.
///
/// # Errors
///
/// Returns bind/accept failures as strings for the CLI to print.
pub fn serve(opts: &ServeOpts) -> Result<(), String> {
    let engine = Arc::new(ServeEngine::new(opts.shards));
    eprintln!(
        "# serve: listening on {} with {} shard(s); send `drain` with no stream to stop",
        opts.socket,
        engine.shards()
    );
    serve_unix(engine, Path::new(&opts.socket)).map_err(|e| format!("serve: {e}"))
}

fn record(a: &MemoryAccess) -> AccessRecord {
    AccessRecord {
        instr_id: a.instr_id,
        pc: a.pc.0,
        vaddr: a.vaddr.0,
        depends_on_prev: a.depends_on_prev,
    }
}

/// One smoke client's verdict.
struct ClientOutcome {
    stream: u64,
    workload: Workload,
    accesses: u64,
    schedule_len: u64,
    llc_misses: u64,
    parity: Result<(), String>,
}

/// Drives one stream through the daemon and referees it against batch.
fn drive_stream(
    socket: &Path,
    template: &StreamTemplate,
    stream: u64,
    workload: Workload,
    trace: &Trace,
    batch: bool,
) -> Result<ClientOutcome, String> {
    let mut client = UnixClient::connect_with_retry(socket, Duration::from_secs(30))
        .map_err(|e| format!("stream {stream}: connect to {}: {e}", socket.display()))?;
    let fail = |what: &str, resp: &Response| format!("stream {stream}: {what} replied {resp:?}");

    // First half one access at a time (echoed prefetches each reply) —
    // or, under `--batch`, as 16-record `access_batch` frames — second
    // half as one `train` frame. Every ingestion verb that crosses the
    // wire must compose into one bit-identical schedule.
    let accesses = trace.accesses();
    let (head, tail) = accesses.split_at(accesses.len() / 2);
    if batch {
        for chunk in head.chunks(16) {
            let resp = client
                .request(&Request::AccessBatch {
                    accesses: chunk.iter().map(|a| (stream, record(a))).collect(),
                })
                .map_err(|e| format!("stream {stream}: access_batch: {e}"))?;
            let Response::PrefetchBatch(parts) = resp else {
                return Err(fail("access_batch", &resp));
            };
            if parts.len() != chunk.len() {
                return Err(format!(
                    "stream {stream}: access_batch returned {} reply slots for {} records",
                    parts.len(),
                    chunk.len()
                ));
            }
        }
    } else {
        for a in head {
            let resp = client
                .request(&Request::Access {
                    stream,
                    access: record(a),
                })
                .map_err(|e| format!("stream {stream}: access: {e}"))?;
            if !matches!(resp, Response::Prefetches(_)) {
                return Err(fail("access", &resp));
            }
        }
    }
    let resp = client
        .request(&Request::Train {
            stream,
            accesses: tail.iter().map(record).collect(),
        })
        .map_err(|e| format!("stream {stream}: train: {e}"))?;
    if !matches!(resp, Response::Trained { .. }) {
        return Err(fail("train", &resp));
    }

    let resp = client
        .request(&Request::Drain {
            stream: Some(stream),
        })
        .map_err(|e| format!("stream {stream}: drain: {e}"))?;
    let Response::Drained(mut drained) = resp else {
        return Err(fail("drain", &resp));
    };
    let served = drained
        .pop()
        .ok_or_else(|| format!("stream {stream}: drain returned no streams"))?;

    // The batch referee: same derivation, zero daemon involvement.
    let mut pf = PathfinderPrefetcher::new(template.config_for_stream(stream))
        .map_err(|e| format!("stream {stream}: config: {e}"))?;
    let schedule = generate_prefetches(&mut pf, trace, template.sim.max_prefetch_degree);
    let report = Simulator::new(template.sim).run(trace, &schedule);
    let pairs: Vec<(u64, u64)> = schedule
        .iter()
        .map(|r| (r.trigger_instr_id, r.block.0))
        .collect();

    let parity = if served.schedule != pairs {
        Err(format!(
            "schedule diverged ({} served vs {} batch entries)",
            served.schedule.len(),
            pairs.len()
        ))
    } else if served.report != report {
        Err("replay report diverged".to_string())
    } else if &served.pf != pf.stats() {
        Err("prefetcher stats diverged".to_string())
    } else {
        Ok(())
    };
    Ok(ClientOutcome {
        stream,
        workload,
        accesses: trace.len() as u64,
        schedule_len: served.schedule.len() as u64,
        llc_misses: served.report.llc_misses,
        parity,
    })
}

/// Runs the smoke: `opts.clients` concurrent clients, one Table-5 stream
/// each, every one refereed against batch. Returns the rendered result
/// table, or an error describing the first failure.
///
/// # Errors
///
/// Any transport failure or parity divergence on any stream.
pub fn smoke(opts: &SmokeOpts) -> Result<String, String> {
    let template = StreamTemplate::default();
    let socket = Path::new(&opts.socket).to_path_buf();

    let outcomes: Vec<Result<ClientOutcome, String>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..opts.clients as u64)
            .map(|stream| {
                let socket = socket.clone();
                let template = &template;
                let workload = Workload::ALL[stream as usize % Workload::ALL.len()];
                let loads = opts.loads;
                let seed = opts.seed ^ stream;
                let batch = opts.batch;
                scope.spawn(move |_| {
                    let trace = workload.generate(loads, seed);
                    drive_stream(&socket, template, stream, workload, &trace, batch)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("smoke client panicked"))
            .collect()
    })
    .expect("smoke client scope failed");

    let mut table = TextTable::new(
        "Service smoke: per-stream daemon-vs-batch parity",
        &[
            "stream",
            "trace",
            "accesses",
            "schedule",
            "llc_misses",
            "parity",
        ],
    );
    let mut failures: Vec<String> = Vec::new();
    for outcome in outcomes {
        match outcome {
            Ok(c) => {
                let verdict = match &c.parity {
                    Ok(()) => "bit-identical".to_string(),
                    Err(e) => {
                        failures.push(format!("stream {}: {e}", c.stream));
                        "DIVERGED".to_string()
                    }
                };
                table.row(vec![
                    c.stream.to_string(),
                    c.workload.trace_name().to_string(),
                    c.accesses.to_string(),
                    c.schedule_len.to_string(),
                    c.llc_misses.to_string(),
                    verdict,
                ]);
            }
            Err(e) => failures.push(e),
        }
    }

    // Exercise daemon-wide status, then (optionally) the clean shutdown.
    let mut client = UnixClient::connect_with_retry(&socket, Duration::from_secs(30))
        .map_err(|e| format!("status client: {e}"))?;
    let status_line = match client
        .request(&Request::Status { stream: None })
        .map_err(|e| format!("status: {e}"))?
    {
        Response::Status(s) => format!(
            "# serve-smoke: daemon status: shards={} live_streams={} accesses={} schedule={}",
            s.shards, s.streams, s.accesses, s.schedule_len
        ),
        other => return Err(format!("status replied {other:?}")),
    };
    if opts.shutdown {
        match client
            .request(&Request::Drain { stream: None })
            .map_err(|e| format!("shutdown drain: {e}"))?
        {
            Response::Drained(rest) => {
                if !rest.is_empty() {
                    failures.push(format!(
                        "shutdown drain returned {} undrained stream(s)",
                        rest.len()
                    ));
                }
            }
            other => return Err(format!("shutdown drain replied {other:?}")),
        }
    }

    if !failures.is_empty() {
        return Err(format!(
            "{} of {} stream(s) failed:\n  {}",
            failures.len(),
            opts.clients,
            failures.join("\n  ")
        ));
    }
    let mode = if opts.batch {
        "access_batch x16 frames"
    } else {
        "singleton accesses"
    };
    Ok(format!(
        "## serve-smoke: {} concurrent client(s), {} loads each via {mode} — all bit-identical to batch\n\n{}\n{status_line}",
        opts.clients,
        opts.loads,
        table.render()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full daemon + smoke pair, in-process: daemon thread on a temp
    /// socket, the real smoke driver against it, clean shutdown at the end.
    /// Runs once per ingestion mode (singleton and `--batch`).
    fn smoke_round_trip(tag: &str, batch: bool) {
        let socket = std::env::temp_dir().join(format!(
            "pf-serve-smoke-unit-{tag}-{}.sock",
            std::process::id()
        ));
        let opts = ServeOpts {
            socket: socket.to_string_lossy().into_owned(),
            shards: 2,
        };
        let daemon = {
            let opts = opts.clone();
            std::thread::spawn(move || serve(&opts))
        };
        let text = smoke(&SmokeOpts {
            socket: opts.socket.clone(),
            clients: 3,
            loads: 600,
            seed: 42,
            shutdown: true,
            batch,
        })
        .expect("smoke passes");
        assert!(text.contains("bit-identical"));
        assert!(!text.contains("DIVERGED"));
        if batch {
            assert!(text.contains("access_batch"));
        }
        daemon.join().expect("daemon thread").expect("clean exit");
        assert!(!socket.exists());
    }

    #[test]
    fn smoke_passes_against_a_live_daemon() {
        smoke_round_trip("single", false);
    }

    #[test]
    fn batched_smoke_passes_against_a_live_daemon() {
        smoke_round_trip("batch", true);
    }
}
