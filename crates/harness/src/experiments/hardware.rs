//! Table 9 and the §3.5 hardware-cost summary.

use pathfinder_hw::{CamHardware, PathfinderHardware, SnnHardware};

use crate::table::TextTable;

/// Renders Table 9 (SNN area/power across PE count x delta width) plus the
/// supporting-table and total estimates of §3.5.
pub fn tab9() -> String {
    let mut t = TextTable::new(
        "Table 9: area and power of PATHFINDER SNN implementations (12 nm)",
        &["configuration", "total area (mm^2)", "total power (W)"],
    );
    for &n_pe in &[50usize, 1] {
        for &width in &[127usize, 63, 31] {
            let e = SnnHardware {
                n_pe,
                delta_width: width,
                history: 3,
            }
            .estimate();
            t.row(vec![
                format!("{n_pe} pe, range {width}"),
                format!("{:.3}", e.area_mm2),
                format!("{:.3}", e.power_w),
            ]);
        }
    }
    let mut out = t.render();

    let mut s = TextTable::new(
        "§3.5 supporting structures and totals",
        &["structure", "area (mm^2)", "power (W)"],
    );
    let snn = SnnHardware::paper_default().estimate();
    let tt = CamHardware::training_table().estimate();
    let it = CamHardware::inference_table().estimate();
    let total = PathfinderHardware::paper_default().estimate();
    for (name, e) in [
        ("SNN (50 PE, D=127)", snn),
        ("Training Table (1K x 120b CAM)", tt),
        ("Inference Table (50 x 24b CAM)", it),
        ("PATHFINDER total", total),
    ] {
        s.row(vec![
            name.to_string(),
            format!("{:.5}", e.area_mm2),
            format!("{:.5}", e.power_w),
        ]);
    }
    s.row(vec![
        "fraction of Ryzen 7 2700X die".to_string(),
        format!("{:.3}%", total.die_fraction() * 100.0),
        format!(
            "{:.3}%",
            total.power_w / pathfinder_hw::reference::RYZEN_2700X_TDP_W * 100.0
        ),
    ]);
    out.push('\n');
    out.push_str(&s.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab9_renders_all_rows() {
        let text = tab9();
        assert!(text.contains("50 pe, range 127"));
        assert!(text.contains("1 pe, range 31"));
        assert!(text.contains("PATHFINDER total"));
        assert!(text.contains("Ryzen"));
    }
}
