//! Table 1 (1-tick argmax vs 32-tick winner match rate) and Table 2 /
//! Figure 3 (the SNN learning demonstration of §3.6).

use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher, PixelMatrixEncoder, Readout};
use pathfinder_prefetch::generate_prefetches;
use pathfinder_snn::{DiehlCookNetwork, SnnConfig, SpikeMonitor};
use pathfinder_traces::Workload;

use crate::runner::{per_workload, Scenario};
use crate::table::{pct, TextTable};

/// One Table 1 row.
#[derive(Debug, Clone)]
pub struct Tab1Row {
    /// Workload measured.
    pub workload: Workload,
    /// Fraction of queries where the first-tick argmax matched the
    /// 32-tick winner.
    pub match_rate: f64,
    /// Number of compared queries.
    pub comparisons: u64,
}

/// Runs Table 1: PATHFINDER in full-interval mode, recording how often the
/// highest-potential neuron after tick 1 is also the most-firing neuron
/// after 32 ticks.
pub fn tab1(scenario: &Scenario, workloads: &[Workload]) -> (Vec<Tab1Row>, String) {
    let rows = per_workload(workloads, |w| {
        let trace = scenario.shared_trace(w);
        let mut pf = PathfinderPrefetcher::new(PathfinderConfig {
            readout: Readout::FullInterval,
            ..PathfinderConfig::default()
        })
        .expect("valid config");
        let _ = generate_prefetches(&mut pf, &trace, scenario.sim.max_prefetch_degree);
        Tab1Row {
            workload: w,
            match_rate: pf.stats().one_tick_match_rate(),
            comparisons: pf.stats().one_tick_comparisons,
        }
    });
    let mut t = TextTable::new(
        "Table 1: % of first-tick argmax neurons matching the 32-tick firing neuron",
        &["suite", "trace", "matched neuron", "queries"],
    );
    for r in &rows {
        t.row(vec![
            r.workload.suite().to_string(),
            r.workload.trace_name().to_string(),
            pct(r.match_rate),
            r.comparisons.to_string(),
        ]);
    }
    (rows, t.render())
}

/// One Table 2 row: the SNN's reaction to one scripted input pattern.
#[derive(Debug, Clone)]
pub struct Tab2Row {
    /// The delta pattern presented.
    pub pattern: Vec<i16>,
    /// Neuron that fired (most-firing in the interval), if any.
    pub firing_neuron: Option<usize>,
    /// Tick of the first spike.
    pub firing_tick: Option<u32>,
    /// End-of-interval potential of the best non-winning neuron.
    pub runner_up_potential: f32,
}

/// Runs the §3.6 demonstration: feed `{1,2,4}` repeatedly (with a few noisy
/// variants) to a fresh SNN over 100-tick intervals and watch one neuron
/// claim the pattern. Returns the rows plus the monitor for Figure 3-style
/// potential traces.
pub fn tab2(seed: u64) -> (Vec<Tab2Row>, SpikeMonitor, String) {
    // The §3.6 example runs 100-tick input intervals.
    let cfg = PathfinderConfig::default();
    let snn_cfg = SnnConfig {
        ticks: 100,
        ..cfg.snn_config()
    };
    let encoder = PixelMatrixEncoder::new(&cfg);
    let mut net = DiehlCookNetwork::new(snn_cfg, seed).expect("valid SNN config");
    let mut monitor = SpikeMonitor::new();

    // Table 2's script: six repetitions, three noisy variants, one repeat.
    let script: Vec<Vec<i16>> = vec![
        vec![1, 2, 4],
        vec![1, 2, 4],
        vec![1, 2, 4],
        vec![1, 2, 4],
        vec![1, 2, 4],
        vec![1, 2, 4],
        vec![1, 3, 4],
        vec![1, 2, 5],
        vec![1, 4, 2],
        vec![1, 3, 6],
        vec![1, 2, 4],
    ];
    let mut rows = Vec::with_capacity(script.len());
    for pattern in &script {
        let rates = encoder.encode(pattern);
        let out = net.present_monitored(&rates, true, &mut monitor);
        rows.push(Tab2Row {
            pattern: pattern.clone(),
            firing_neuron: out.winner,
            firing_tick: out.first_fire_tick,
            runner_up_potential: out.runner_up_potential,
        });
    }

    let mut t = TextTable::new(
        "Table 2: SNN firing/learning behaviour on the scripted patterns of §3.6",
        &[
            "input pattern",
            "firing neuron",
            "firing tick",
            "runner-up potential",
        ],
    );
    for r in &rows {
        t.row(vec![
            format!("{:?}", r.pattern),
            r.firing_neuron.map_or("-".to_string(), |n| n.to_string()),
            r.firing_tick.map_or("-".to_string(), |t| t.to_string()),
            format!("{:.1}", r.runner_up_potential),
        ]);
    }
    (rows, monitor, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tab1_produces_rates_in_range() {
        let sc = Scenario::with_loads(2500);
        let (rows, text) = tab1(&sc, &[Workload::Sphinx]);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].comparisons > 0, "some queries should fire");
        assert!((0.0..=1.0).contains(&rows[0].match_rate));
        assert!(text.contains("Table 1"));
    }

    #[test]
    fn tab2_pattern_claims_a_neuron() {
        let (rows, monitor, text) = tab2(7);
        assert_eq!(rows.len(), 11);
        assert!(text.contains("Table 2"));
        // The repeated {1,2,4} pattern should settle on a stable winner.
        let winners: Vec<Option<usize>> = rows[..6].iter().map(|r| r.firing_neuron).collect();
        let trained = winners.iter().rev().flatten().next().copied();
        assert!(
            trained.is_some(),
            "pattern should trigger firing: {winners:?}"
        );
        let stable = winners.iter().filter(|w| **w == trained).count();
        assert!(stable >= 3, "winner should recur: {winners:?}");
        // Monitor recorded 11 intervals of 100 ticks.
        assert_eq!(monitor.interval_starts().len(), 11);
        assert_eq!(monitor.ticks(), 1100);
    }
}
