//! Structured run reports (`repro report`): one evaluation sweep with
//! per-prefetcher telemetry snapshots, emitted as JSON (machine-readable)
//! and Markdown (human-readable).
//!
//! This is the top of the telemetry pipeline: the instrumented crates
//! (`pathfinder-snn`, `pathfinder-core`, `pathfinder-sim`) record into the
//! per-thread recorder that [`Scenario::evaluate_with_telemetry`] installs,
//! and this module aggregates those snapshots across workloads into one
//! document per run. See EXPERIMENTS.md ("Reading the telemetry") for what
//! each metric means and which paper figure or table it supports.

use pathfinder_telemetry::{json, Snapshot};
use pathfinder_traces::Workload;

use crate::engine;
use crate::runner::{PrefetcherKind, Scenario};
use crate::table::{count, f3, pct, TextTable};

/// One (workload, prefetcher) evaluation in a [`RunReport`].
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// Workload trace name.
    pub workload: String,
    /// Prefetcher label.
    pub prefetcher: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// useful / issued (§4.5).
    pub accuracy: f64,
    /// useful / baseline misses (§4.5).
    pub coverage: f64,
    /// Prefetch requests submitted by the prefetcher (Table 6).
    pub requested: u64,
    /// Prefetches the simulator actually injected (post residency/shedding
    /// filters).
    pub sim_issued: u64,
    /// The same count as seen by the telemetry layer
    /// (`sim.prefetch.issued`); equals `sim_issued` whenever telemetry is
    /// compiled in.
    pub telemetry_issued: u64,
}

/// A full evaluation sweep plus per-prefetcher telemetry.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Loads per trace.
    pub loads: usize,
    /// Master seed.
    pub seed: u64,
    /// Whether telemetry recording was compiled in.
    pub telemetry_enabled: bool,
    /// One row per (workload, prefetcher), workload-major.
    pub rows: Vec<ReportRow>,
    /// Per-prefetcher telemetry merged across all workloads, in line-up
    /// order.
    pub per_prefetcher: Vec<(String, Snapshot)>,
}

/// The default `repro report` line-up: the baselines the paper leans on
/// most, PATHFINDER itself, and the best ensemble.
pub fn default_lineup() -> Vec<PrefetcherKind> {
    vec![
        PrefetcherKind::NoPrefetch,
        PrefetcherKind::BestOffset,
        PrefetcherKind::Sisb,
        PrefetcherKind::Pathfinder(pathfinder_core::PathfinderConfig::default()),
        PrefetcherKind::PathfinderNlSisb(pathfinder_core::PathfinderConfig::default()),
    ]
}

/// Evaluates `kinds` on `workloads` — every (prefetcher × workload) cell in
/// parallel on the sweep engine — and gathers each prefetcher's telemetry.
pub fn run(scenario: &Scenario, kinds: &[PrefetcherKind], workloads: &[Workload]) -> RunReport {
    run_threads(engine::threads(), scenario, kinds, workloads)
}

/// Like [`run`] with an explicit worker-pool size.
///
/// Rows and merged snapshots are assembled from the deterministic grid in
/// Table 5 × line-up order, so the report's content does not depend on the
/// pool size or scheduling order (wall-clock timer durations excepted; see
/// [`RunReport::canonical`]).
pub fn run_threads(
    pool: usize,
    scenario: &Scenario,
    kinds: &[PrefetcherKind],
    workloads: &[Workload],
) -> RunReport {
    let per_w = engine::run_grid_threads(pool, scenario, kinds, workloads);

    let mut rows = Vec::new();
    let mut merged: Vec<(String, Snapshot)> = kinds
        .iter()
        .map(|k| (k.label().to_string(), Snapshot::default()))
        .collect();
    for per_kind in &per_w {
        for (i, (eval, snap)) in per_kind.iter().enumerate() {
            rows.push(ReportRow {
                workload: eval.workload.trace_name().to_string(),
                prefetcher: eval.prefetcher.clone(),
                ipc: eval.ipc(),
                accuracy: eval.accuracy(),
                coverage: eval.coverage(),
                requested: eval.requested(),
                sim_issued: eval.report.prefetches_issued,
                telemetry_issued: snap.counter("sim.prefetch.issued"),
            });
            merged[i].1.merge(snap);
        }
    }

    RunReport {
        loads: scenario.loads,
        seed: scenario.seed,
        telemetry_enabled: pathfinder_telemetry::enabled(),
        rows,
        per_prefetcher: merged,
    }
}

impl RunReport {
    /// Returns a copy with every wall-clock timer duration zeroed (span
    /// counts are kept — they are deterministic).
    ///
    /// Everything else in a report is bit-deterministic for a given
    /// `(loads, seed, line-up, workloads)`, so two canonical reports are
    /// byte-identical regardless of `--threads` or host speed; the
    /// determinism suite compares them with [`RunReport::to_json`].
    pub fn canonical(&self) -> RunReport {
        let mut rep = self.clone();
        for (_, snap) in &mut rep.per_prefetcher {
            for timer in snap.timers.values_mut() {
                timer.total_ns = 0;
            }
        }
        rep
    }

    /// Renders the report as a self-contained JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        out.push_str("\"loads\":");
        out.push_str(&self.loads.to_string());
        out.push_str(",\"seed\":");
        out.push_str(&self.seed.to_string());
        out.push_str(",\"telemetry_enabled\":");
        out.push_str(if self.telemetry_enabled {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"rows\":[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"workload\":");
            json::write_string(&mut out, &r.workload);
            out.push_str(",\"prefetcher\":");
            json::write_string(&mut out, &r.prefetcher);
            out.push_str(",\"ipc\":");
            json::write_f64(&mut out, r.ipc);
            out.push_str(",\"accuracy\":");
            json::write_f64(&mut out, r.accuracy);
            out.push_str(",\"coverage\":");
            json::write_f64(&mut out, r.coverage);
            out.push_str(",\"prefetches_requested\":");
            out.push_str(&r.requested.to_string());
            out.push_str(",\"prefetches_issued\":");
            out.push_str(&r.sim_issued.to_string());
            out.push_str(",\"telemetry_issued\":");
            out.push_str(&r.telemetry_issued.to_string());
            out.push('}');
        }
        out.push_str("],\"telemetry\":{");
        for (i, (label, snap)) in self.per_prefetcher.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, label);
            out.push(':');
            snap.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Renders the report as Markdown: the evaluation table followed by one
    /// telemetry section per prefetcher.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("# Run report\n\n");
        out.push_str(&format!(
            "{} loads per trace, seed {}, telemetry {}.\n\n",
            self.loads,
            self.seed,
            if self.telemetry_enabled {
                "enabled"
            } else {
                "disabled (build the harness with default features to record)"
            }
        ));
        out.push_str(
            "| workload | prefetcher | IPC | accuracy | coverage | requested | issued |\n",
        );
        out.push_str("|---|---|---:|---:|---:|---:|---:|\n");
        for r in &self.rows {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                r.workload,
                r.prefetcher,
                f3(r.ipc),
                pct(r.accuracy),
                pct(r.coverage),
                r.requested,
                r.sim_issued
            ));
        }
        out.push('\n');
        for (label, snap) in &self.per_prefetcher {
            out.push_str(&format!("## Telemetry: {label}\n\n"));
            let md = snap.to_markdown();
            if md.is_empty() {
                out.push_str("(no metrics recorded)\n\n");
            } else {
                out.push_str(&md);
            }
        }
        out
    }

    /// Renders the compact stdout summary (the `repro` text-table style used
    /// by every other experiment).
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(
            "Run report: evaluations",
            &[
                "trace",
                "prefetcher",
                "IPC",
                "acc",
                "cov",
                "requested",
                "issued",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.workload.clone(),
                r.prefetcher.clone(),
                f3(r.ipc),
                pct(r.accuracy),
                pct(r.coverage),
                count(r.requested),
                count(r.sim_issued),
            ]);
        }
        let mut out = t.render();
        out.push('\n');
        for (label, snap) in &self.per_prefetcher {
            let timers = &snap.timers;
            if timers.is_empty() {
                continue;
            }
            let mut tt = TextTable::new(
                format!("Run report: {label} phase timings"),
                &["phase", "spans", "total (s)"],
            );
            for (name, timer) in timers {
                tt.row(vec![
                    name.clone(),
                    count(timer.count),
                    format!("{:.3}", timer.total_secs()),
                ]);
            }
            out.push_str(&tt.render());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_report_round_trips() {
        let scenario = Scenario::with_loads(3000);
        let kinds = [PrefetcherKind::NoPrefetch, PrefetcherKind::NextLine];
        let report = run(&scenario, &kinds, &[Workload::Sphinx]);
        assert_eq!(report.rows.len(), 2);
        assert_eq!(report.per_prefetcher.len(), 2);

        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"prefetcher\":\"NextLine\""));

        let md = report.to_markdown();
        assert!(md.contains("| workload | prefetcher |"));
        assert!(md.contains("## Telemetry: NextLine"));

        let text = report.render_text();
        assert!(text.contains("Run report: evaluations"));
    }

    #[test]
    fn telemetry_issue_counter_matches_simulator() {
        if !pathfinder_telemetry::enabled() {
            return;
        }
        let scenario = Scenario::with_loads(4000);
        let report = run(&scenario, &[PrefetcherKind::NextLine], &[Workload::Sphinx]);
        let row = &report.rows[0];
        assert!(row.sim_issued > 0, "next-line issues prefetches");
        assert_eq!(
            row.telemetry_issued, row.sim_issued,
            "telemetry counter must track SimReport.prefetches_issued"
        );
    }
}
