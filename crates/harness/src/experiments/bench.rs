//! `repro bench` — the perf-gate micro-suite.
//!
//! Runs a fixed set of microbenchmarks over the hot paths the ROADMAP
//! cares about (SNN presentation 32-tick event-driven vs the retained
//! reference kernel, the SIMD-dispatched vs forced-scalar tier pair
//! (`snn.present32.simd` / `snn.present32.scalar`), the frozen-weight
//! inference kernel and its cross-query batched counterpart
//! (`snn.present32.frozen_batch{8,32}` vs `snn.present32.frozen_singleton32`,
//! bit-identical lane outcomes), the 1-tick readout, pixel encoding, per-prefetcher
//! per-access cost, the duty-cycled cached vs always-on steady-state
//! pair, the flat-layout timed replay vs the retained reference engine
//! (`sim.replay.{demand,prefetch,e2e}` plus `sim.replay.e2e.reference`),
//! the replay engine's dispatched vs forced-scalar tier pair
//! (`sim.replay.e2e.simd` / `sim.replay.e2e.scalar`), the serve daemon's
//! sharded stream-serving throughput at widening concurrency
//! (`serve.throughput.{1,64,1024}streams`, sustained aggregate
//! accesses/sec through the in-process engine), and one end-to-end
//! report cell), then emits the results as `BENCH_pr8.json`: suite →
//! median ns/op + throughput, the dispatched kernel tier, plus a
//! telemetry snapshot of the end-to-end cell.
//!
//! With `--baseline <json>` the run becomes a *gate*: each suite's median
//! is compared against the checked-in baseline (`benches/baseline.json`)
//! and the process exits nonzero when any suite regressed by more than the
//! `--threshold` percentage. When the baseline records a different
//! `kernel_tier` than the current run dispatches to (e.g. an AVX2-recorded
//! baseline gated on a scalar-only host), the tier-sensitive `snn.*`,
//! `sim.*`, and `serve.*` suites are skipped rather than spuriously flagged — see
//! [`compare_to_baseline`]. CI's `perf-smoke` job runs exactly this (see
//! `.github/workflows/ci.yml` and EXPERIMENTS.md § "Benchmark gate").
//!
//! This is deliberately *not* Criterion: the vendored Criterion stub under
//! `vendor/` drives the `cargo bench` suites for local exploration, while
//! this module produces a small, stable, machine-readable document the CI
//! gate and the perf trajectory in git history consume.

use std::hint::black_box;
use std::time::Instant;

use pathfinder_core::{PathfinderConfig, PixelMatrixEncoder, StdpDutyCycle};
use pathfinder_prefetch::generate_prefetches;
use pathfinder_serve::{AccessRecord, Request, ServeEngine, StreamTemplate};
use pathfinder_sim::{MemoryAccess, ReferenceSimulator, Simulator, Trace};
use pathfinder_snn::{DiehlCookNetwork, KernelTier};
use pathfinder_telemetry::{json, Snapshot};
use pathfinder_traces::Workload;

use crate::runner::{PrefetcherKind, Scenario};
use crate::table::TextTable;

/// Schema tag written into every bench document.
pub const SCHEMA: &str = "pathfinder-bench/1";

/// Scale parameters for one bench run.
#[derive(Debug, Clone, Copy)]
pub struct BenchOpts {
    /// Loads per trace for the per-access and end-to-end suites.
    pub loads: usize,
    /// Master seed (traces and SNN weights).
    pub seed: u64,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            loads: 20_000,
            seed: 42,
        }
    }
}

/// One measured suite.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Stable suite name (the baseline-matching key).
    pub name: &'static str,
    /// Median ns per operation across samples.
    pub median_ns: f64,
    /// Mean ns per operation across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns per operation.
    pub min_ns: f64,
    /// Operations per second at the median.
    pub ops_per_sec: f64,
    /// Timed samples taken.
    pub samples: usize,
    /// Operations per timed sample.
    pub ops_per_sample: u64,
}

/// A full bench run: every suite plus derived figures and telemetry.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Scale parameters used.
    pub opts: BenchOpts,
    /// All suite results, in execution order.
    pub suites: Vec<SuiteResult>,
    /// Median-speedup of the event-driven 32-tick kernel over the retained
    /// reference kernel (the PR-3 acceptance figure).
    pub present32_speedup: f64,
    /// Median-speedup of the duty-cycled, cache-backed prefetcher over the
    /// always-on one on the steady repeating-delta trace (the PR-4
    /// acceptance figure; target ≥ 5x).
    pub pathfinder_cached_speedup: f64,
    /// Median-speedup of the flat-layout replay engine over the retained
    /// reference engine on the end-to-end report cell's trace and schedule
    /// (the PR-5 acceptance figure; target ≥ 1.3x).
    pub sim_replay_speedup: f64,
    /// Paired-median speedup of the dispatched (SIMD where available)
    /// event kernel over the forced-scalar tier on the 32-tick
    /// presentation (the PR-6 acceptance figure). Exactly 1.0-ish on
    /// hosts whose dispatched tier *is* scalar — check `kernel_tier`.
    pub snn_simd_speedup: f64,
    /// Median-speedup of the batched serving hot path
    /// (`serve.throughput.batch16`: `access_batch` frames, sticky
    /// requester, duty-cycled serving template) over the single-access
    /// serve path (`serve.throughput.1streams`), per access.
    pub serve_batch_speedup: f64,
    /// Paired-median speedup of the dispatched replay engine over the
    /// pinned-scalar tier on the end-to-end cell's trace and schedule (the
    /// PR-7 acceptance figure). ~1.0 on scalar-dispatched hosts — check
    /// `kernel_tier`.
    pub sim_simd_speedup: f64,
    /// Paired-median speedup of one 32-lane `present_frozen_batch` call
    /// over 32 singleton `present_frozen` calls on an identically trained
    /// twin network (the PR-10 acceptance figure; target ≥ 1.3x). Both
    /// sides produce bit-identical lane outcomes.
    pub frozen_batch_speedup: f64,
    /// The kernel tier this run's SNN suites dispatched to (`"avx2"` or
    /// `"scalar"`), from `pathfinder_snn::active_tier`.
    pub kernel_tier: &'static str,
    /// Telemetry snapshot of one end-to-end report cell (empty when the
    /// harness is built without the `telemetry` feature).
    pub telemetry: Snapshot,
}

/// Times `f`, which performs `ops` operations per call, over `samples`
/// timed samples (after one warmup call used for calibration) and returns
/// per-operation statistics. Each sample may batch multiple calls of `f`
/// so that it lasts long enough for the clock to resolve.
fn measure<F: FnMut()>(name: &'static str, samples: usize, ops: u64, mut f: F) -> SuiteResult {
    let calls_per_sample = calibrate(&mut f);
    let mut per_op: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        per_op.push(time_batch(&mut f, calls_per_sample, ops));
    }
    suite_from_samples(name, per_op, calls_per_sample * ops)
}

/// Each timed sample should last ~2 ms (or one call, whichever is longer)
/// so short operations aren't dominated by clock granularity.
const TARGET_SAMPLE_NS: u64 = 2_000_000;

/// Runs `f` once (warmup) and returns how many calls a timed sample needs
/// to reach [`TARGET_SAMPLE_NS`].
fn calibrate<F: FnMut()>(f: &mut F) -> u64 {
    let t0 = Instant::now();
    f();
    let once_ns = (t0.elapsed().as_nanos() as u64).max(1);
    (TARGET_SAMPLE_NS / once_ns).clamp(1, 1_000_000)
}

/// Times one sample of `calls` invocations of `f` and returns ns per
/// operation, where each call performs `ops` operations.
fn time_batch<F: FnMut()>(f: &mut F, calls: u64, ops: u64) -> f64 {
    let t = Instant::now();
    for _ in 0..calls {
        f();
    }
    t.elapsed().as_nanos() as f64 / (calls * ops) as f64
}

/// Folds raw per-op samples into a [`SuiteResult`].
fn suite_from_samples(
    name: &'static str,
    mut per_op: Vec<f64>,
    ops_per_sample: u64,
) -> SuiteResult {
    let samples = per_op.len();
    per_op.sort_by(f64::total_cmp);
    let median_ns = per_op[per_op.len() / 2];
    let mean_ns = per_op.iter().sum::<f64>() / per_op.len() as f64;
    SuiteResult {
        name,
        median_ns,
        mean_ns,
        min_ns: per_op[0],
        ops_per_sec: if median_ns > 0.0 {
            1e9 / median_ns
        } else {
            0.0
        },
        samples,
        ops_per_sample,
    }
}

/// Times two workloads in interleaved rounds — `a` then `b` within every
/// round — and returns their suite statistics plus the median of the
/// per-round `b`/`a` time ratios.
///
/// The paired ratio is the point: on a contended host the two sides of a
/// round run under (nearly) the same interference epoch, so dividing
/// within the round cancels machine-speed drift that dividing two
/// independently measured medians would fold straight into a derived
/// speedup. Used for the report's flat-vs-reference replay figure.
fn measure_ratio<A: FnMut(), B: FnMut()>(
    name_a: &'static str,
    name_b: &'static str,
    samples: usize,
    ops: u64,
    mut a: A,
    mut b: B,
) -> (SuiteResult, SuiteResult, f64) {
    let calls_a = calibrate(&mut a);
    let calls_b = calibrate(&mut b);
    let mut per_op_a: Vec<f64> = Vec::with_capacity(samples);
    let mut per_op_b: Vec<f64> = Vec::with_capacity(samples);
    let mut ratios: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let pa = time_batch(&mut a, calls_a, ops);
        let pb = time_batch(&mut b, calls_b, ops);
        per_op_a.push(pa);
        per_op_b.push(pb);
        ratios.push(if pa > 0.0 { pb / pa } else { f64::NAN });
    }
    ratios.sort_by(f64::total_cmp);
    let ratio = ratios[ratios.len() / 2];
    (
        suite_from_samples(name_a, per_op_a, calls_a * ops),
        suite_from_samples(name_b, per_op_b, calls_b * ops),
        ratio,
    )
}

/// Runs the full micro-suite at the given scale.
pub fn run(opts: &BenchOpts) -> BenchReport {
    let mut suites = Vec::new();

    // --- SNN presentation: the paper's central cost tradeoff. -----------
    let cfg = PathfinderConfig::default();
    let encoder = PixelMatrixEncoder::new(&cfg);
    let rates = encoder.encode(&[1, 2, 3]);

    let mut event_net = DiehlCookNetwork::new(cfg.snn_config(), opts.seed).unwrap();
    suites.push(measure("snn.present32.event", 25, 1, || {
        black_box(event_net.present(black_box(&rates), true));
    }));

    let mut ref_net = DiehlCookNetwork::new(cfg.snn_config(), opts.seed).unwrap();
    suites.push(measure("snn.present32.reference", 25, 1, || {
        black_box(ref_net.present_reference(black_box(&rates), true));
    }));

    // The tier pair (PR 6): the same event kernel through the dispatched
    // tier (AVX2 where detected) and pinned to the scalar fallback. The
    // two networks are same-seeded and bit-identical in behaviour (see
    // snn::accel), so the paired ratio below isolates pure kernel cost.
    // Measured in interleaved rounds for the same drift-cancelling reason
    // as the replay pair. On a host whose dispatched tier is already
    // scalar the pair measures scalar-vs-scalar and the ratio sits at
    // ~1.0 — the report's `kernel_tier` field says which case this was.
    let mut simd_net = DiehlCookNetwork::new(cfg.snn_config(), opts.seed).unwrap();
    let mut scalar_net =
        DiehlCookNetwork::with_kernel_tier(cfg.snn_config(), opts.seed, KernelTier::Scalar)
            .unwrap();
    let (simd_suite, scalar_suite, snn_simd_speedup) = measure_ratio(
        "snn.present32.simd",
        "snn.present32.scalar",
        25,
        1,
        || {
            black_box(simd_net.present(black_box(&rates), true));
        },
        || {
            black_box(scalar_net.present(black_box(&rates), true));
        },
    );
    suites.push(simd_suite);
    suites.push(scalar_suite);

    // The frozen-weight inference kernel (PR 4): a few training rounds
    // first so the measured presentation reflects realistic spiking, then
    // pure frozen queries (no STDP, no traces, weight version fixed).
    let mut frozen_net = DiehlCookNetwork::new(cfg.snn_config(), opts.seed).unwrap();
    for _ in 0..8 {
        frozen_net.present(&rates, true);
    }
    suites.push(measure("snn.present32.frozen", 25, 1, || {
        black_box(frozen_net.present_frozen(black_box(&rates)));
    }));

    // Cross-query batched frozen inference (PR 10): 32 distinct delta
    // histories encoded as 32 pixel matrices, presented as lockstep lanes
    // of one `present_frozen_batch` call against 32 singleton
    // `present_frozen` calls on a same-seeded, identically trained twin.
    // Lane results are bit-identical across the two sides (pinned by
    // snn/tests/frozen_batch_equivalence.rs), so the paired ratio isolates
    // the shared weight-row gathers and query-dimension vectorization.
    // ops = lanes, so per-op figures stay per query and comparable with
    // the singleton cell above.
    let batch_rates: Vec<Vec<f32>> = (0..32)
        .map(|i| encoder.encode(&[1 + (i % 5) as i16, 2 + (i % 7) as i16, 3 + (i % 11) as i16]))
        .collect();
    let mut batch_net = DiehlCookNetwork::new(cfg.snn_config(), opts.seed).unwrap();
    let mut single_net = DiehlCookNetwork::new(cfg.snn_config(), opts.seed).unwrap();
    for _ in 0..8 {
        batch_net.present(&rates, true);
        single_net.present(&rates, true);
    }
    let lanes32: Vec<&[f32]> = batch_rates.iter().map(|r| r.as_slice()).collect();
    let (batch32_suite, single32_suite, frozen_batch_speedup) = measure_ratio(
        "snn.present32.frozen_batch32",
        "snn.present32.frozen_singleton32",
        25,
        32,
        || {
            black_box(batch_net.present_frozen_batch(black_box(&lanes32)));
        },
        || {
            for r in &batch_rates {
                black_box(single_net.present_frozen(black_box(r)));
            }
        },
    );
    suites.push(batch32_suite);
    suites.push(single32_suite);
    // The 8-lane cell tracks small bursts (typical serve frame tails),
    // where fixed per-call costs amortize over fewer lanes.
    let lanes8: Vec<&[f32]> = batch_rates[..8].iter().map(|r| r.as_slice()).collect();
    suites.push(measure("snn.present32.frozen_batch8", 25, 8, || {
        black_box(batch_net.present_frozen_batch(black_box(&lanes8)));
    }));

    let mut one_tick_net = DiehlCookNetwork::new(cfg.snn_config(), opts.seed).unwrap();
    suites.push(measure("snn.present1.event", 25, 1, || {
        black_box(one_tick_net.present_one_tick(black_box(&rates), true));
    }));

    suites.push(measure("encode.pixel_matrix", 25, 1, || {
        black_box(encoder.encode(black_box(&[1, 2, 3])));
    }));

    // --- Per-prefetcher per-access generation cost. ----------------------
    // Each sample rebuilds the prefetcher and replays the whole trace, so
    // state never accumulates across samples; cost is reported per access.
    let scenario = Scenario {
        loads: opts.loads,
        seed: opts.seed,
        ..Scenario::default()
    };
    let micro_trace = scenario.shared_trace(Workload::Mcf);
    let per_access: &[(&'static str, PrefetcherKind)] = &[
        ("prefetcher.nextline", PrefetcherKind::NextLine),
        ("prefetcher.best_offset", PrefetcherKind::BestOffset),
        ("prefetcher.spp", PrefetcherKind::Spp),
        ("prefetcher.sisb", PrefetcherKind::Sisb),
        ("prefetcher.pythia", PrefetcherKind::Pythia),
        (
            "prefetcher.pathfinder",
            PrefetcherKind::Pathfinder(PathfinderConfig::default()),
        ),
    ];
    for (name, kind) in per_access {
        suites.push(measure(name, 11, micro_trace.len() as u64, || {
            let mut p = kind.build(opts.seed);
            black_box(generate_prefetches(p.as_mut(), black_box(&micro_trace), 2));
        }));
    }

    // --- Steady-state delta workload: the PR-4 acceptance pair. ----------
    // The same repeating-delta trace is replayed by an always-on PATHFINDER
    // (every access trains and queries the SNN) and by a duty-cycled one
    // whose inference-only accesses hit the frozen-query prediction cache.
    // Both produce bit-identical schedules for a given config; the derived
    // ratio below is the memoization speedup on this steady-state pattern.
    let steady_trace = steady_delta_trace(opts.loads);
    let steady_kind = PrefetcherKind::Pathfinder(PathfinderConfig::default());
    suites.push(measure(
        "prefetcher.pathfinder.steady",
        11,
        steady_trace.len() as u64,
        || {
            let mut p = steady_kind.build(opts.seed);
            black_box(generate_prefetches(p.as_mut(), black_box(&steady_trace), 2));
        },
    ));
    let cached_kind = PrefetcherKind::Pathfinder(PathfinderConfig {
        stdp_duty: StdpDutyCycle::first_n_of_5000(250),
        ..PathfinderConfig::default()
    });
    suites.push(measure(
        "prefetcher.pathfinder.cached",
        11,
        steady_trace.len() as u64,
        || {
            let mut p = cached_kind.build(opts.seed);
            black_box(generate_prefetches(p.as_mut(), black_box(&steady_trace), 2));
        },
    ));

    // --- Timed replay: flat engine vs the retained reference engine. ------
    // Same trace and schedule through both engines; they produce
    // bit-identical reports (pinned by `sim/tests/engine_equivalence.rs`),
    // so the median ratio below isolates the flat layout's win. The demand
    // suite replays the scattered Mcf trace with no schedule (miss-heavy,
    // DRAM-bound); the prefetch suite replays the steady delta trace under
    // a dense next-line schedule (probe/fill-heavy); the e2e pair replays
    // the exact trace + schedule of the report cell measured below.
    suites.push(measure(
        "sim.replay.demand",
        11,
        micro_trace.len() as u64,
        || {
            black_box(Simulator::new(scenario.sim).run(black_box(&micro_trace), &[]));
        },
    ));
    let steady_schedule = {
        let mut p = PrefetcherKind::NextLine.build(opts.seed);
        generate_prefetches(p.as_mut(), &steady_trace, scenario.sim.max_prefetch_degree)
    };
    suites.push(measure(
        "sim.replay.prefetch",
        11,
        steady_trace.len() as u64,
        || {
            black_box(
                Simulator::new(scenario.sim)
                    .run(black_box(&steady_trace), black_box(&steady_schedule)),
            );
        },
    ));
    let replay_trace = scenario.shared_trace(Workload::Sphinx);
    let replay_schedule = {
        let mut p = PrefetcherKind::NextLine.build(opts.seed);
        generate_prefetches(p.as_mut(), &replay_trace, scenario.sim.max_prefetch_degree)
    };
    // The e2e pair is measured in interleaved rounds (flat then reference
    // within each round) so the derived speedup is a median of *paired*
    // ratios — robust to machine-speed drift between the two cells.
    let (flat_e2e, ref_e2e, replay_ratio) = measure_ratio(
        "sim.replay.e2e",
        "sim.replay.e2e.reference",
        15,
        replay_trace.len() as u64,
        || {
            black_box(
                Simulator::new(scenario.sim)
                    .run(black_box(&replay_trace), black_box(&replay_schedule)),
            );
        },
        || {
            black_box(
                ReferenceSimulator::new(scenario.sim)
                    .run(black_box(&replay_trace), black_box(&replay_schedule)),
            );
        },
    );
    suites.push(flat_e2e);
    suites.push(ref_e2e);

    // The sim tier pair (PR 7): the same flat engine through the
    // dispatched tier (AVX2 tag/victim/queue scans where detected) and
    // pinned to the scalar fallback, on the same trace and schedule as the
    // e2e pair above. The integer kernels are bit-identical across tiers
    // (pinned by `sim/tests/engine_equivalence.rs` under
    // `PATHFINDER_FORCE_SCALAR`), so the paired ratio isolates pure scan
    // cost. ~1.0 on hosts whose dispatched tier is already scalar — the
    // report's `kernel_tier` field says which case this was.
    let (sim_simd_suite, sim_scalar_suite, sim_simd_speedup) = measure_ratio(
        "sim.replay.e2e.simd",
        "sim.replay.e2e.scalar",
        15,
        replay_trace.len() as u64,
        || {
            black_box(
                Simulator::new(scenario.sim)
                    .run(black_box(&replay_trace), black_box(&replay_schedule)),
            );
        },
        || {
            black_box(
                Simulator::with_kernel_tier(scenario.sim, KernelTier::Scalar)
                    .expect("scalar tier is supported everywhere")
                    .run(black_box(&replay_trace), black_box(&replay_schedule)),
            );
        },
    );
    suites.push(sim_simd_suite);
    suites.push(sim_scalar_suite);

    // --- Serve daemon throughput: sharded serving of concurrent streams. --
    // The same trace is partitioned round-robin over N live streams and
    // pushed through an in-process ServeEngine (4 shards) by 4 client
    // threads, client c owning the streams with s % 4 == c so per-stream
    // order is preserved. ops = total accesses, so ops/s is the sustained
    // aggregate access rate — the ROADMAP's serving success metric. Each
    // call builds a fresh engine (stream setup is part of serving cost)
    // and drops it without a drain (ingestion throughput, not replay).
    // The widening stream counts move the bottleneck: 1 stream serializes
    // behind one shard, 64 exercises shard parallelism with warm learners,
    // 1024 (clamped to the trace length at tiny scales) is dominated by
    // cold-stream setup and cross-stream cache pressure.
    const SERVE_CLIENTS: usize = 4;
    for &(name, want_streams) in &[
        ("serve.throughput.1streams", 1usize),
        ("serve.throughput.64streams", 64),
        ("serve.throughput.1024streams", 1024),
    ] {
        let n_streams = want_streams.min(micro_trace.len()).max(1);
        suites.push(measure(name, 7, micro_trace.len() as u64, || {
            let engine = ServeEngine::with_template(StreamTemplate::default(), 4);
            crossbeam::thread::scope(|scope| {
                for client in 0..SERVE_CLIENTS {
                    let engine = &engine;
                    let trace = &micro_trace;
                    scope.spawn(move |_| {
                        for (i, a) in trace.iter().enumerate() {
                            let stream = i % n_streams;
                            if stream % SERVE_CLIENTS != client {
                                continue;
                            }
                            black_box(engine.request(Request::Access {
                                stream: stream as u64,
                                access: AccessRecord {
                                    instr_id: a.instr_id,
                                    pc: a.pc.0,
                                    vaddr: a.vaddr.0,
                                    depends_on_prev: a.depends_on_prev,
                                },
                            }));
                        }
                    });
                }
            })
            .expect("serve bench client scope");
        }));
    }

    // --- Batched serving hot path: `access_batch` frames on a sticky
    // requester. The single-access cells above keep the default always-on
    // template for baseline continuity; the batch cells run the
    // configuration the service is built for — STDP duty-cycled (paper §5,
    // first 250 of every 5000 accesses) with the frozen-query cache on —
    // where per-access inference is cheap enough that framing and
    // round-trip overhead dominate, which is exactly what batching
    // amortizes. One stream, one requester thread: the single-shard frame
    // takes the sticky direct path, and each frame's records run
    // back-to-back as one grouped inference run on the shard thread. The
    // derived `serve_batch_vs_single_speedup` compares the PR-8-style
    // single-access path against this full batched serving stack.
    let serving_template = || {
        let mut t = StreamTemplate::default();
        t.config.stdp_duty = StdpDutyCycle::first_n_of_5000(250);
        t
    };
    for &(name, frame) in &[
        ("serve.throughput.batch16", 16usize),
        ("serve.throughput.batch256", 256),
    ] {
        suites.push(measure(name, 7, micro_trace.len() as u64, || {
            let engine = ServeEngine::with_template(serving_template(), 4);
            let mut requester = engine.requester();
            for chunk in micro_trace.accesses().chunks(frame) {
                let accesses: Vec<(u64, AccessRecord)> = chunk
                    .iter()
                    .map(|a| {
                        (
                            0u64,
                            AccessRecord {
                                instr_id: a.instr_id,
                                pc: a.pc.0,
                                vaddr: a.vaddr.0,
                                depends_on_prev: a.depends_on_prev,
                            },
                        )
                    })
                    .collect();
                black_box(requester.request(Request::AccessBatch { accesses }));
            }
        }));
    }

    // --- End-to-end report cell (generate + replay + metrics), with the
    // --- telemetry the cell recorded attached to the document. -----------
    let e2e_trace = scenario.shared_trace(Workload::Sphinx);
    let e2e_baseline = scenario.shared_baseline(Workload::Sphinx);
    let (_, telemetry) = scenario.evaluate_with_telemetry(
        &PrefetcherKind::NextLine,
        Workload::Sphinx,
        &e2e_trace,
        e2e_baseline,
    );
    suites.push(measure("e2e.report_cell", 5, 1, || {
        black_box(scenario.evaluate(
            &PrefetcherKind::NextLine,
            Workload::Sphinx,
            black_box(&e2e_trace),
            e2e_baseline,
        ));
    }));

    let median = |n: &str| {
        suites
            .iter()
            .find(|s| s.name == n)
            .map(|s| s.median_ns)
            .unwrap_or(f64::NAN)
    };
    let present32_speedup = median("snn.present32.reference") / median("snn.present32.event");
    let pathfinder_cached_speedup =
        median("prefetcher.pathfinder.steady") / median("prefetcher.pathfinder.cached");
    let sim_replay_speedup = replay_ratio;
    let serve_batch_speedup =
        median("serve.throughput.1streams") / median("serve.throughput.batch16");

    BenchReport {
        opts: *opts,
        suites,
        present32_speedup,
        pathfinder_cached_speedup,
        sim_replay_speedup,
        snn_simd_speedup,
        sim_simd_speedup,
        serve_batch_speedup,
        frozen_batch_speedup,
        kernel_tier: pathfinder_snn::active_tier().name(),
        telemetry,
    }
}

/// Pages visited with a repeating in-page delta pattern — the steady-state
/// workload of the PR-4 acceptance figure. Pixel matrices repeat heavily
/// across pages, so a duty-cycled prefetcher answers most inference-only
/// accesses from the frozen-query prediction cache.
fn steady_delta_trace(loads: usize) -> Trace {
    const DELTAS: [u64; 2] = [2, 3];
    let mut accesses = Vec::with_capacity(loads);
    let mut id = 0u64;
    let mut page = 100u64;
    'outer: loop {
        let mut off = 0u64;
        loop {
            accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
            id += 1;
            if accesses.len() >= loads {
                break 'outer;
            }
            let d = DELTAS[id as usize % DELTAS.len()];
            if off + d >= 64 {
                break;
            }
            off += d;
        }
        page += 1;
    }
    Trace::from_accesses(accesses)
}

impl BenchReport {
    /// Renders the machine-readable JSON document (`BENCH_pr7.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\"schema\":");
        json::write_string(&mut out, SCHEMA);
        out.push_str(",\"loads\":");
        out.push_str(&self.opts.loads.to_string());
        out.push_str(",\"seed\":");
        out.push_str(&self.opts.seed.to_string());
        out.push_str(",\"kernel_tier\":");
        json::write_string(&mut out, self.kernel_tier);
        out.push_str(",\"suites\":{");
        for (i, s) in self.suites.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_string(&mut out, s.name);
            out.push_str(":{\"median_ns\":");
            json::write_f64(&mut out, s.median_ns);
            out.push_str(",\"mean_ns\":");
            json::write_f64(&mut out, s.mean_ns);
            out.push_str(",\"min_ns\":");
            json::write_f64(&mut out, s.min_ns);
            out.push_str(",\"ops_per_sec\":");
            json::write_f64(&mut out, s.ops_per_sec);
            out.push_str(",\"samples\":");
            out.push_str(&s.samples.to_string());
            out.push_str(",\"ops_per_sample\":");
            out.push_str(&s.ops_per_sample.to_string());
            out.push('}');
        }
        out.push_str("},\"derived\":{\"snn_present32_event_vs_reference_speedup\":");
        json::write_f64(&mut out, self.present32_speedup);
        out.push_str(",\"pathfinder_cached_vs_steady_speedup\":");
        json::write_f64(&mut out, self.pathfinder_cached_speedup);
        out.push_str(",\"sim_replay_flat_vs_reference_speedup\":");
        json::write_f64(&mut out, self.sim_replay_speedup);
        out.push_str(",\"snn_present32_simd_vs_scalar_speedup\":");
        json::write_f64(&mut out, self.snn_simd_speedup);
        out.push_str(",\"sim_replay_simd_vs_scalar_speedup\":");
        json::write_f64(&mut out, self.sim_simd_speedup);
        out.push_str(",\"serve_batch_vs_single_speedup\":");
        json::write_f64(&mut out, self.serve_batch_speedup);
        out.push_str(",\"frozen_batch_vs_singleton_speedup\":");
        json::write_f64(&mut out, self.frozen_batch_speedup);
        out.push_str("},\"telemetry\":");
        self.telemetry.write_json(&mut out);
        out.push('}');
        out
    }

    /// Renders the human-facing stdout table.
    pub fn render_text(&self) -> String {
        let mut t = TextTable::new(
            "Benchmark micro-suite (median per op)",
            &["suite", "median", "min", "ops/s"],
        );
        for s in &self.suites {
            t.row(vec![
                s.name.to_string(),
                fmt_ns(s.median_ns),
                fmt_ns(s.min_ns),
                format!("{:.0}", s.ops_per_sec),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nSNN 32-tick presentation: event-driven kernel is {:.2}x the reference kernel\n",
            self.present32_speedup
        ));
        out.push_str(&format!(
            "Steady-state deltas: duty-cycled cached prefetcher is {:.2}x the always-on one\n",
            self.pathfinder_cached_speedup
        ));
        out.push_str(&format!(
            "Timed replay (e2e cell): flat engine is {:.2}x the reference engine\n",
            self.sim_replay_speedup
        ));
        out.push_str(&format!(
            "Kernel tier: {} — dispatched event kernel is {:.2}x the forced-scalar tier\n",
            self.kernel_tier, self.snn_simd_speedup
        ));
        out.push_str(&format!(
            "Replay engine: dispatched scans are {:.2}x the pinned-scalar tier\n",
            self.sim_simd_speedup
        ));
        out.push_str(&format!(
            "Serve daemon: batched hot path (access_batch x16, sticky, duty-cycled) is {:.2}x the single-access path\n",
            self.serve_batch_speedup
        ));
        out.push_str(&format!(
            "Frozen inference: one 32-lane batched presentation is {:.2}x 32 singleton queries\n",
            self.frozen_batch_speedup
        ));
        out
    }
}

/// Formats a nanosecond figure with an adaptive unit.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// One suite's comparison against the baseline document.
#[derive(Debug, Clone)]
pub struct BaselineDelta {
    /// Suite name.
    pub name: String,
    /// Baseline median ns/op.
    pub baseline_ns: f64,
    /// This run's median ns/op.
    pub current_ns: f64,
    /// `current / baseline` (> 1 is slower).
    pub ratio: f64,
    /// Whether the slowdown exceeds the gate threshold.
    pub regressed: bool,
}

/// The outcome of gating a run against a baseline document: per-suite
/// deltas plus what (if anything) was excluded because the two runs
/// dispatched to different kernel tiers.
#[derive(Debug, Clone)]
pub struct BaselineComparison {
    /// Per-suite comparisons, in the report's suite order.
    pub deltas: Vec<BaselineDelta>,
    /// The tier the baseline document recorded (`None` for pre-tier
    /// documents, which compare everything).
    pub baseline_tier: Option<String>,
    /// Whether the baseline's tier differs from the current run's — when
    /// true, the tier-sensitive `snn.*`, `sim.*`, and `serve.*` suites
    /// were skipped.
    pub tier_mismatch: bool,
    /// Names of suites excluded from the gate by the tier mismatch.
    pub skipped: Vec<String>,
}

/// Compares `report` against a baseline JSON document (produced by an
/// earlier [`BenchReport::to_json`]). A suite regresses when its median
/// exceeds the baseline median by more than `threshold_pct` percent.
/// Suites missing on either side are skipped (the gate only compares what
/// both runs measured).
///
/// When the baseline records a `kernel_tier` different from the current
/// run's, every `snn.*`, `sim.*`, and `serve.*` suite is excluded from the
/// gate and listed in [`BaselineComparison::skipped`] instead: an
/// AVX2-recorded median is not a meaningful bound for a scalar-dispatched
/// run (or vice versa), and flagging the tier difference as a "regression"
/// would gate on hardware, not code. (Since PR 7 the replay engine's tag,
/// victim, and queue scans dispatch by tier too, and the serve daemon's
/// streams run SNN inference on every access, so both families are as
/// tier-sensitive as the SNN kernels.) Baselines without the field
/// (written before tiers existed) compare everything, preserving the old
/// behaviour.
///
/// # Errors
///
/// Returns a message when the baseline document cannot be parsed or has no
/// `suites` object.
pub fn compare_to_baseline(
    report: &BenchReport,
    baseline_json: &str,
    threshold_pct: f64,
) -> Result<BaselineComparison, String> {
    let doc = json::parse(baseline_json).map_err(|e| format!("baseline JSON: {e}"))?;
    let suites = doc
        .get("suites")
        .and_then(json::Value::as_object)
        .ok_or("baseline JSON has no \"suites\" object")?;
    let baseline_tier = doc
        .get("kernel_tier")
        .and_then(json::Value::as_str)
        .map(str::to_string);
    let tier_mismatch = baseline_tier
        .as_deref()
        .is_some_and(|t| t != report.kernel_tier);
    let mut deltas = Vec::new();
    let mut skipped = Vec::new();
    for s in &report.suites {
        if tier_mismatch
            && (s.name.starts_with("snn.")
                || s.name.starts_with("sim.")
                || s.name.starts_with("serve."))
        {
            skipped.push(s.name.to_string());
            continue;
        }
        let Some(baseline_ns) = suites
            .get(s.name)
            .and_then(|v| v.get("median_ns"))
            .and_then(json::Value::as_f64)
        else {
            continue;
        };
        if !baseline_ns.is_finite() || baseline_ns <= 0.0 || !s.median_ns.is_finite() {
            continue;
        }
        let ratio = s.median_ns / baseline_ns;
        deltas.push(BaselineDelta {
            name: s.name.to_string(),
            baseline_ns,
            current_ns: s.median_ns,
            ratio,
            regressed: ratio > 1.0 + threshold_pct / 100.0,
        });
    }
    Ok(BaselineComparison {
        deltas,
        baseline_tier,
        tier_mismatch,
        skipped,
    })
}

/// Renders the gate verdict table for [`compare_to_baseline`] output,
/// including a note about suites the tier mismatch excluded.
pub fn render_deltas(cmp: &BaselineComparison, threshold_pct: f64) -> String {
    let mut t = TextTable::new(
        format!("Baseline gate (threshold +{threshold_pct:.0}%)"),
        &["suite", "baseline", "current", "ratio", "verdict"],
    );
    for d in &cmp.deltas {
        t.row(vec![
            d.name.clone(),
            fmt_ns(d.baseline_ns),
            fmt_ns(d.current_ns),
            format!("{:.2}x", d.ratio),
            if d.regressed { "REGRESSED" } else { "ok" }.to_string(),
        ]);
    }
    let mut out = t.render();
    if cmp.tier_mismatch {
        out.push_str(&format!(
            "note: baseline was recorded on the {} kernel tier; skipped {} tier-sensitive suite(s): {}\n",
            cmp.baseline_tier.as_deref().unwrap_or("unknown"),
            cmp.skipped.len(),
            cmp.skipped.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        // A real (tiny) run so the JSON document reflects actual fields.
        run(&BenchOpts {
            loads: 600,
            seed: 42,
        })
    }

    #[test]
    fn bench_report_emits_all_suites_and_valid_json() {
        let rep = tiny_report();
        let names: Vec<&str> = rep.suites.iter().map(|s| s.name).collect();
        for expected in [
            "snn.present32.event",
            "snn.present32.reference",
            "snn.present32.simd",
            "snn.present32.scalar",
            "snn.present32.frozen",
            "snn.present32.frozen_batch32",
            "snn.present32.frozen_singleton32",
            "snn.present32.frozen_batch8",
            "snn.present1.event",
            "encode.pixel_matrix",
            "prefetcher.nextline",
            "prefetcher.pathfinder",
            "prefetcher.pathfinder.steady",
            "prefetcher.pathfinder.cached",
            "sim.replay.demand",
            "sim.replay.prefetch",
            "sim.replay.e2e",
            "sim.replay.e2e.reference",
            "sim.replay.e2e.simd",
            "sim.replay.e2e.scalar",
            "serve.throughput.1streams",
            "serve.throughput.64streams",
            "serve.throughput.1024streams",
            "serve.throughput.batch16",
            "serve.throughput.batch256",
            "e2e.report_cell",
        ] {
            assert!(names.contains(&expected), "missing suite {expected}");
        }
        assert!(rep.suites.iter().all(|s| s.median_ns > 0.0));
        assert!(rep.serve_batch_speedup.is_finite() && rep.serve_batch_speedup > 0.0);
        assert!(rep.present32_speedup.is_finite() && rep.present32_speedup > 0.0);
        assert!(rep.pathfinder_cached_speedup.is_finite() && rep.pathfinder_cached_speedup > 0.0);
        assert!(rep.sim_replay_speedup.is_finite() && rep.sim_replay_speedup > 0.0);
        assert!(rep.snn_simd_speedup.is_finite() && rep.snn_simd_speedup > 0.0);
        assert!(rep.sim_simd_speedup.is_finite() && rep.sim_simd_speedup > 0.0);
        assert!(rep.frozen_batch_speedup.is_finite() && rep.frozen_batch_speedup > 0.0);
        assert_eq!(rep.kernel_tier, pathfinder_snn::active_tier().name());

        let doc = json::parse(&rep.to_json()).expect("bench JSON parses");
        assert_eq!(
            doc.get("schema").and_then(json::Value::as_str),
            Some(SCHEMA)
        );
        assert_eq!(
            doc.get("kernel_tier").and_then(json::Value::as_str),
            Some(rep.kernel_tier)
        );
        let suites = doc.get("suites").and_then(json::Value::as_object).unwrap();
        assert_eq!(suites.len(), rep.suites.len());
        assert!(doc
            .get("derived")
            .and_then(|d| d.get("snn_present32_event_vs_reference_speedup"))
            .and_then(json::Value::as_f64)
            .is_some());
        assert!(doc
            .get("derived")
            .and_then(|d| d.get("pathfinder_cached_vs_steady_speedup"))
            .and_then(json::Value::as_f64)
            .is_some());
        assert!(doc
            .get("derived")
            .and_then(|d| d.get("sim_replay_flat_vs_reference_speedup"))
            .and_then(json::Value::as_f64)
            .is_some());
        assert!(doc
            .get("derived")
            .and_then(|d| d.get("snn_present32_simd_vs_scalar_speedup"))
            .and_then(json::Value::as_f64)
            .is_some());
        assert!(doc
            .get("derived")
            .and_then(|d| d.get("sim_replay_simd_vs_scalar_speedup"))
            .and_then(json::Value::as_f64)
            .is_some());

        let text = rep.render_text();
        assert!(text.contains("snn.present32.event"));
        assert!(text.contains("Kernel tier:"));
    }

    #[test]
    fn baseline_gate_round_trips_and_flags_regressions() {
        let rep = tiny_report();
        // Against its own document nothing regresses, at any threshold.
        let cmp = compare_to_baseline(&rep, &rep.to_json(), 0.5).unwrap();
        assert_eq!(cmp.deltas.len(), rep.suites.len());
        assert!(
            cmp.deltas.iter().all(|d| !d.regressed),
            "self-compare is clean"
        );
        assert!(!cmp.tier_mismatch, "same tier on both sides");
        assert_eq!(cmp.baseline_tier.as_deref(), Some(rep.kernel_tier));

        // Against a 10x-faster fabricated baseline everything regresses.
        let mut fast = rep.clone();
        for s in &mut fast.suites {
            s.median_ns /= 10.0;
        }
        let cmp = compare_to_baseline(&rep, &fast.to_json(), 40.0).unwrap();
        assert!(cmp.deltas.iter().all(|d| d.regressed));
        let rendered = render_deltas(&cmp, 40.0);
        assert!(rendered.contains("REGRESSED"));

        // Unknown suites in the baseline are skipped, not fatal.
        let partial = r#"{"suites":{"snn.present32.event":{"median_ns":1e12}}}"#;
        let cmp = compare_to_baseline(&rep, partial, 40.0).unwrap();
        assert_eq!(cmp.deltas.len(), 1);
        assert!(!cmp.deltas[0].regressed, "1e12 ns baseline cannot regress");
        assert_eq!(
            cmp.baseline_tier, None,
            "pre-tier baselines compare everything"
        );
        assert!(!cmp.tier_mismatch);

        assert!(compare_to_baseline(&rep, "not json", 40.0).is_err());
        assert!(compare_to_baseline(&rep, "{}", 40.0).is_err());
    }

    #[test]
    fn baseline_gate_skips_tier_sensitive_suites_on_tier_mismatch() {
        let rep = tiny_report();
        // Fabricate a baseline recorded on a different tier with absurdly
        // fast tier-sensitive medians: without the tier skip every snn.*,
        // sim.*, and serve.* suite would be flagged, with it none are
        // compared.
        let mut other = rep.clone();
        other.kernel_tier = if rep.kernel_tier == "scalar" {
            "avx2"
        } else {
            "scalar"
        };
        for s in &mut other.suites {
            if s.name.starts_with("snn.")
                || s.name.starts_with("sim.")
                || s.name.starts_with("serve.")
            {
                s.median_ns /= 1000.0;
            }
        }
        let cmp = compare_to_baseline(&rep, &other.to_json(), 40.0).unwrap();
        assert!(cmp.tier_mismatch);
        assert_eq!(cmp.baseline_tier.as_deref(), Some(other.kernel_tier));
        assert!(
            !cmp.skipped.is_empty()
                && cmp.skipped.iter().all(|n| {
                    n.starts_with("snn.") || n.starts_with("sim.") || n.starts_with("serve.")
                }),
            "exactly the snn.*, sim.*, and serve.* suites are skipped: {:?}",
            cmp.skipped
        );
        assert!(
            cmp.skipped.iter().any(|n| n.starts_with("snn."))
                && cmp.skipped.iter().any(|n| n.starts_with("sim."))
                && cmp.skipped.iter().any(|n| n.starts_with("serve.")),
            "all three tier-sensitive families are excluded: {:?}",
            cmp.skipped
        );
        assert!(
            cmp.deltas.iter().all(|d| !d.name.starts_with("snn.")
                && !d.name.starts_with("sim.")
                && !d.name.starts_with("serve.")
                && !d.regressed),
            "tier-insensitive suites still gate, and none regress against itself"
        );
        let rendered = render_deltas(&cmp, 40.0);
        assert!(rendered.contains("skipped"), "note surfaces the skip");
    }
}
