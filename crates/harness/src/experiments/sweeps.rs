//! The PATHFINDER parameter sweeps: Figure 5 (delta range), Figure 6
//! (neuron count x label count), Figure 7 (1-tick vs 32-tick), Figure 8
//! (STDP duty cycle), and Figure 9 (variant ladder).

use pathfinder_core::{PathfinderConfig, Readout, StdpDutyCycle, Variant};
use pathfinder_traces::Workload;

use crate::engine::run_grid;
use crate::metrics::Evaluation;
use crate::runner::{PrefetcherKind, Scenario};
use crate::table::{f3, pct, TextTable};

/// One sweep cell: a configuration label and its per-workload evaluations.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Configuration label (e.g. "range 63", "25 neurons / 2 labels").
    pub label: String,
    /// Per-workload results, in the order of the sweep's workload list.
    pub evals: Vec<Evaluation>,
}

impl SweepPoint {
    /// Mean IPC across workloads.
    pub fn mean_ipc(&self) -> f64 {
        crate::metrics::mean(&self.evals, |e| e.ipc())
    }

    /// Mean accuracy across workloads.
    pub fn mean_accuracy(&self) -> f64 {
        crate::metrics::mean(&self.evals, |e| e.accuracy())
    }

    /// Mean coverage across workloads.
    pub fn mean_coverage(&self) -> f64 {
        crate::metrics::mean(&self.evals, |e| e.coverage())
    }
}

/// Sweeps PATHFINDER configurations over workloads: every
/// (configuration × workload) cell runs independently on the sweep
/// engine's pool, sharing each workload's memoized trace and baseline.
pub fn sweep(
    scenario: &Scenario,
    workloads: &[Workload],
    configs: &[(String, PathfinderConfig)],
) -> Vec<SweepPoint> {
    let kinds: Vec<PrefetcherKind> = configs
        .iter()
        .map(|(_, cfg)| PrefetcherKind::Pathfinder(*cfg))
        .collect();
    let grid = run_grid(scenario, &kinds, workloads);
    // Transpose the workload-major grid into per-config sweep points.
    configs
        .iter()
        .enumerate()
        .map(|(ci, (label, _))| SweepPoint {
            label: label.clone(),
            evals: grid.iter().map(|ws| ws[ci].0.clone()).collect(),
        })
        .collect()
}

fn render_sweep(title: &str, workloads: &[Workload], points: &[SweepPoint]) -> String {
    let mut header = vec!["config"];
    let names: Vec<&str> = workloads.iter().map(|w| w.trace_name()).collect();
    header.extend(names.iter().copied());
    header.push("avg IPC");
    header.push("avg acc");
    header.push("avg cov");
    let mut t = TextTable::new(title, &header);
    for p in points {
        let mut row = vec![p.label.clone()];
        row.extend(p.evals.iter().map(|e| f3(e.ipc())));
        row.push(f3(p.mean_ipc()));
        row.push(pct(p.mean_accuracy()));
        row.push(pct(p.mean_coverage()));
        t.row(row);
    }
    t.render()
}

/// Figure 5: delta range sweep (pixel-row widths 31, 63, 127) at 50 neurons
/// and a 32-tick interval.
pub fn fig5(scenario: &Scenario, workloads: &[Workload]) -> (Vec<SweepPoint>, String) {
    let configs: Vec<(String, PathfinderConfig)> = [15u8, 31, 63]
        .iter()
        .map(|&range| {
            (
                format!("range {} (D={})", range, 2 * range as usize + 1),
                PathfinderConfig {
                    delta_range: range,
                    ..PathfinderConfig::default()
                },
            )
        })
        .collect();
    let points = sweep(scenario, workloads, &configs);
    let text = render_sweep(
        "Figure 5: PATHFINDER vs delta range (50 neurons, 32 ticks)",
        workloads,
        &points,
    );
    (points, text)
}

/// Figure 6: neuron-count sweep (10..=100) for the 1-label and 2-label
/// configurations.
pub fn fig6(scenario: &Scenario, workloads: &[Workload]) -> (Vec<SweepPoint>, String) {
    let mut configs = Vec::new();
    for &labels in &[2usize, 1] {
        for &n in &[10usize, 25, 50, 75, 100] {
            configs.push((
                format!("{n} neurons / {labels} label"),
                PathfinderConfig {
                    neurons: n,
                    labels_per_neuron: labels,
                    ..PathfinderConfig::default()
                },
            ));
        }
    }
    let points = sweep(scenario, workloads, &configs);
    let text = render_sweep(
        "Figure 6: PATHFINDER vs neuron count (1-label vs 2-label)",
        workloads,
        &points,
    );
    (points, text)
}

/// Figure 7: IPC of the 1-tick approximation relative to the 32-tick
/// full interval.
pub fn fig7(scenario: &Scenario, workloads: &[Workload]) -> (Vec<SweepPoint>, String) {
    let configs = vec![
        (
            "32-tick".to_string(),
            PathfinderConfig {
                readout: Readout::FullInterval,
                ..PathfinderConfig::default()
            },
        ),
        (
            "1-tick".to_string(),
            PathfinderConfig {
                readout: Readout::OneTick,
                ..PathfinderConfig::default()
            },
        ),
    ];
    let points = sweep(scenario, workloads, &configs);
    let mut text = render_sweep(
        "Figure 7: 1-tick approximation vs full 32-tick interval",
        workloads,
        &points,
    );
    // The paper plots the per-workload IPC delta of 1-tick over 32-tick.
    let mut t = TextTable::new(
        "Figure 7 (derived): IPC improvement of 1-tick over 32-tick",
        &["trace", "improvement"],
    );
    for (i, w) in workloads.iter().enumerate() {
        let full = points[0].evals[i].ipc();
        let one = points[1].evals[i].ipc();
        t.row(vec![
            w.trace_name().to_string(),
            pct(one / full.max(1e-9) - 1.0),
        ]);
    }
    text.push('\n');
    text.push_str(&t.render());
    (points, text)
}

/// Figure 8: STDP duty-cycling — learning on for the first K of every 5000
/// accesses.
pub fn fig8(scenario: &Scenario, workloads: &[Workload]) -> (Vec<SweepPoint>, String) {
    let mut configs = vec![("always on".to_string(), PathfinderConfig::default())];
    for &on in &[10u64, 20, 50, 100, 1000, 2000, 4000] {
        configs.push((
            format!("first {on} of 5000"),
            PathfinderConfig {
                stdp_duty: StdpDutyCycle::first_n_of_5000(on),
                ..PathfinderConfig::default()
            },
        ));
    }
    let points = sweep(scenario, workloads, &configs);
    let text = render_sweep(
        "Figure 8: periodic STDP (learning on for the first K of every 5K accesses)",
        workloads,
        &points,
    );
    (points, text)
}

/// Figure 9: the implementation-variant ladder.
pub fn fig9(scenario: &Scenario, workloads: &[Workload]) -> (Vec<SweepPoint>, String) {
    let configs: Vec<(String, PathfinderConfig)> = Variant::ALL
        .iter()
        .map(|v| (v.label().to_string(), v.config()))
        .collect();
    let points = sweep(scenario, workloads, &configs);
    let text = render_sweep("Figure 9: PATHFINDER variants", workloads, &points);
    (points, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reuses_traces_and_orders_points() {
        let sc = Scenario::with_loads(1200);
        let (points, text) = fig5(&sc, &[Workload::Sphinx]);
        assert_eq!(points.len(), 3);
        assert!(points[0].label.contains("range 15"));
        assert!(text.contains("Figure 5"));
        for p in &points {
            assert_eq!(p.evals.len(), 1);
        }
    }

    #[test]
    fn fig7_reports_both_modes() {
        let sc = Scenario::with_loads(1200);
        let (points, text) = fig7(&sc, &[Workload::Soplex]);
        assert_eq!(points.len(), 2);
        assert!(text.contains("1-tick"));
        assert!(points.iter().all(|p| p.mean_ipc() > 0.0));
    }

    #[test]
    fn fig9_covers_all_variants() {
        let sc = Scenario::with_loads(800);
        let (points, _) = fig9(&sc, &[Workload::Sphinx]);
        assert_eq!(points.len(), Variant::ALL.len());
    }
}
