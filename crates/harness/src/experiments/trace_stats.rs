//! Trace-statistics experiments: Table 5 (workload inventory), Table 7
//! (delta-range population), and Table 8 (per-1K-access delta diversity).

use std::collections::HashMap;

use pathfinder_sim::Trace;
use pathfinder_traces::Workload;

use crate::runner::{per_workload, Scenario};
use crate::table::{count, TextTable};

/// Renders Table 5: the workload inventory with instruction counts.
pub fn tab5(scenario: &Scenario) -> String {
    let mut t = TextTable::new(
        "Table 5: tested workloads",
        &["suite", "trace", "total instructions (at this scale)"],
    );
    for w in Workload::ALL {
        let instr = scenario.loads as u64 * w.instructions_per_load();
        t.row(vec![
            w.suite().to_string(),
            w.trace_name().to_string(),
            format!("{}M", instr / 1_000_000),
        ]);
    }
    t.render()
}

/// One Table 7 row.
#[derive(Debug, Clone, Copy)]
pub struct Tab7Row {
    /// Workload measured.
    pub workload: Workload,
    /// Consecutive-access block deltas with |delta| < 31.
    pub within_31: u64,
    /// Consecutive-access block deltas with |delta| < 15.
    pub within_15: u64,
    /// Total loads examined.
    pub loads: u64,
}

/// Table 7: how many consecutive-access deltas fall inside the smaller
/// delta ranges — the coverage/cost tradeoff behind Figure 5.
pub fn tab7(scenario: &Scenario, workloads: &[Workload]) -> (Vec<Tab7Row>, String) {
    let rows = per_workload(workloads, |w| {
        let trace = scenario.shared_trace(w);
        let mut within_31 = 0u64;
        let mut within_15 = 0u64;
        for pair in trace.accesses().windows(2) {
            let d = pair[0].block().delta(pair[1].block());
            if d.abs() < 31 {
                within_31 += 1;
            }
            if d.abs() < 15 {
                within_15 += 1;
            }
        }
        Tab7Row {
            workload: w,
            within_31,
            within_15,
            loads: trace.len() as u64,
        }
    });
    let mut t = TextTable::new(
        "Table 7: deltas within range, per trace",
        &[
            "trace",
            "#deltas in (-31,31)",
            "#deltas in (-15,15)",
            "loads",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.workload.trace_name().to_string(),
            count(r.within_31),
            count(r.within_15),
            count(r.loads),
        ]);
    }
    (rows, t.render())
}

/// One Table 8 row.
#[derive(Debug, Clone, Copy)]
pub struct Tab8Row {
    /// Workload measured.
    pub workload: Workload,
    /// Average same-(PC,page) delta events per 1K accesses.
    pub avg_deltas: f64,
    /// Average distinct delta values per 1K accesses.
    pub avg_distinct: f64,
    /// Average summed occurrences of the top-5 distinct deltas per 1K.
    pub avg_top5: f64,
}

/// Computes Table 8's per-window statistics for one trace.
pub fn tab8_stats(trace: &Trace) -> (f64, f64, f64) {
    const WINDOW: usize = 1000;
    let mut window_deltas: Vec<i16> = Vec::new();
    let mut last: HashMap<(u64, u64), u8> = HashMap::new();
    let mut sums = (0.0f64, 0.0f64, 0.0f64);
    let mut windows = 0usize;

    for (i, a) in trace.iter().enumerate() {
        let key = (a.pc.raw(), a.vaddr.page().0);
        let offset = a.vaddr.page_offset_blocks();
        if let Some(prev) = last.insert(key, offset) {
            let d = offset as i16 - prev as i16;
            if d != 0 {
                window_deltas.push(d);
            }
        }
        if (i + 1) % WINDOW == 0 {
            let mut counts: HashMap<i16, usize> = HashMap::new();
            for &d in &window_deltas {
                *counts.entry(d).or_insert(0) += 1;
            }
            let mut freq: Vec<usize> = counts.values().copied().collect();
            freq.sort_unstable_by(|a, b| b.cmp(a));
            sums.0 += window_deltas.len() as f64;
            sums.1 += counts.len() as f64;
            sums.2 += freq.iter().take(5).sum::<usize>() as f64;
            windows += 1;
            window_deltas.clear();
        }
    }
    if windows == 0 {
        (0.0, 0.0, 0.0)
    } else {
        let n = windows as f64;
        (sums.0 / n, sums.1 / n, sums.2 / n)
    }
}

/// Table 8: the delta-diversity statistics that explain why a small neuron
/// count with 2 labels suffices (§5).
pub fn tab8(scenario: &Scenario, workloads: &[Workload]) -> (Vec<Tab8Row>, String) {
    let rows = per_workload(workloads, |w| {
        let trace = scenario.shared_trace(w);
        let (avg_deltas, avg_distinct, avg_top5) = tab8_stats(&trace);
        Tab8Row {
            workload: w,
            avg_deltas,
            avg_distinct,
            avg_top5,
        }
    });
    let mut t = TextTable::new(
        "Table 8: per-1K-access delta statistics (PC/page-qualified)",
        &[
            "trace",
            "avg #deltas",
            "avg #distinct deltas",
            "top-5 occurrences",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.workload.trace_name().to_string(),
            format!("{:.0}", r.avg_deltas),
            format!("{:.0}", r.avg_distinct),
            format!("{:.0}", r.avg_top5),
        ]);
    }
    (rows, t.render())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathfinder_sim::MemoryAccess;

    #[test]
    fn tab7_counts_ranges() {
        let sc = Scenario::with_loads(5000);
        let (rows, text) = tab7(&sc, &[Workload::Sphinx, Workload::Mcf]);
        assert_eq!(rows.len(), 2);
        // Stream-heavy sphinx has far more small deltas than mcf.
        assert!(rows[0].within_15 > rows[1].within_15);
        assert!(rows[0].within_31 >= rows[0].within_15);
        assert!(text.contains("Table 7"));
    }

    #[test]
    fn tab8_stats_on_synthetic_stream() {
        // One PC walking one page with +1 deltas: every access after the
        // first yields a delta of 1; distinct = 1; top5 = all.
        let trace: Trace = (0..4000u64)
            .map(|i| MemoryAccess::new(i, 0x400, (i % 60) * 64))
            .collect();
        let (avg, distinct, top5) = tab8_stats(&trace);
        assert!(avg > 900.0, "avg {avg}");
        assert!(distinct <= 2.5, "distinct {distinct}");
        assert!((top5 - avg).abs() < 1.0, "top5 {top5} vs avg {avg}");
    }

    #[test]
    fn tab5_lists_all_workloads() {
        let text = tab5(&Scenario::default());
        for w in Workload::ALL {
            assert!(text.contains(w.trace_name()), "{w}");
        }
    }
}
