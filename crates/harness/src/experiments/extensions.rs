//! Beyond-the-paper experiment: the two future-work directions §3.4/§5 name
//! (cold-page prediction and dynamic ensemble priority), evaluated against
//! the paper's fixed-priority best design point.

use pathfinder_core::PathfinderConfig;
use pathfinder_traces::Workload;

use crate::engine::run_grid;
use crate::metrics::{mean, Evaluation};
use crate::runner::{PrefetcherKind, Scenario};
use crate::table::{f3, pct, TextTable};

/// The extension line-up: PATHFINDER alone, the paper's fixed ensemble, the
/// dynamic-priority ensemble, and PATHFINDER + cross-page prediction.
pub fn lineup() -> Vec<PrefetcherKind> {
    let cfg = PathfinderConfig::default();
    vec![
        PrefetcherKind::Pathfinder(cfg),
        PrefetcherKind::PathfinderNlSisb(cfg),
        PrefetcherKind::DynamicPfNlSisb(cfg),
        PrefetcherKind::PathfinderCrossPage(cfg),
    ]
}

/// Runs the extension comparison on the given workloads, cell-parallel on
/// the sweep engine.
pub fn run(scenario: &Scenario, workloads: &[Workload]) -> (Vec<Vec<Evaluation>>, String) {
    let kinds = lineup();
    let evals: Vec<Vec<Evaluation>> = run_grid(scenario, &kinds, workloads)
        .into_iter()
        .map(|row| row.into_iter().map(|(eval, _)| eval).collect())
        .collect();

    let mut header = vec!["trace"];
    let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
    header.extend(labels.iter().copied());
    let mut ipc_table = TextTable::new(
        "Extensions: IPC of future-work designs vs the paper's fixed ensemble",
        &header,
    );
    let mut cov_table = TextTable::new("Extensions: coverage", &header);
    for ws in &evals {
        let mut ipc_row = vec![ws[0].workload.trace_name().to_string()];
        let mut cov_row = ipc_row.clone();
        for e in ws {
            ipc_row.push(f3(e.ipc()));
            cov_row.push(pct(e.coverage()));
        }
        ipc_table.row(ipc_row);
        cov_table.row(cov_row);
    }
    let mut avg_ipc = vec!["average".to_string()];
    let mut avg_cov = vec!["average".to_string()];
    for (i, _) in labels.iter().enumerate() {
        let col: Vec<Evaluation> = evals.iter().map(|ws| ws[i].clone()).collect();
        avg_ipc.push(f3(mean(&col, |e| e.ipc())));
        avg_cov.push(pct(mean(&col, |e| e.coverage())));
    }
    ipc_table.row(avg_ipc);
    cov_table.row(avg_cov);

    let mut text = ipc_table.render();
    text.push('\n');
    text.push_str(&cov_table.render());
    (evals, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extension_lineup_runs() {
        let sc = Scenario::with_loads(2_000);
        let (evals, text) = run(&sc, &[Workload::Sphinx]);
        assert_eq!(evals.len(), 1);
        assert_eq!(evals[0].len(), 4);
        assert!(text.contains("PF+XPage"));
        assert!(text.contains("dyn(PF,NL,SISB)"));
    }
}
