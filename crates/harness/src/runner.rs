//! Scenario setup and prefetcher construction for all experiments.

use pathfinder_core::{PathfinderConfig, PathfinderPrefetcher};
use pathfinder_prefetch::{
    generate_prefetches, BestOffsetPrefetcher, DeltaLstmConfig, DeltaLstmPrefetcher,
    EnsemblePrefetcher, NextLinePrefetcher, NoPrefetcher, Prefetcher, PythiaPrefetcher,
    SisbPrefetcher, SppPrefetcher, VoyagerConfig, VoyagerPrefetcher,
};
use std::sync::Arc;

use pathfinder_sim::{SimConfig, Simulator, Trace};
use pathfinder_telemetry as telemetry;
use pathfinder_telemetry::Snapshot;
use pathfinder_traces::Workload;

use crate::engine::TraceStore;
use crate::metrics::Evaluation;

/// Whether `REPRO_TIMING` was set when first consulted (cached so the hot
/// evaluation path reads the environment once per process, and so CI can
/// exercise the timing eprintln deliberately).
fn timing_enabled() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("REPRO_TIMING").is_some())
}

/// A reproducible experiment context: trace scale, seed, and simulator
/// configuration.
#[derive(Debug, Clone, Copy)]
pub struct Scenario {
    /// Loads per trace (the paper uses 1M; smaller values keep sweeps
    /// tractable on a laptop and preserve the comparisons' shape).
    pub loads: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulator configuration (Table 3).
    pub sim: SimConfig,
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario {
            loads: 100_000,
            seed: 42,
            sim: SimConfig::default(),
        }
    }
}

impl Scenario {
    /// Creates a scenario with the given trace length.
    pub fn with_loads(loads: usize) -> Self {
        Scenario {
            loads,
            ..Scenario::default()
        }
    }

    /// Generates the workload's trace at this scenario's scale.
    ///
    /// Always generates afresh; experiments should prefer
    /// [`Scenario::shared_trace`], which memoizes through the process-wide
    /// [`TraceStore`].
    pub fn trace(&self, workload: Workload) -> Trace {
        let _span = telemetry::timer!("harness.trace_gen");
        workload.generate(self.loads, self.seed)
    }

    /// The workload's trace from the process-wide [`TraceStore`]: generated
    /// once per `(workload, loads, seed)` and shared across all experiments.
    pub fn shared_trace(&self, workload: Workload) -> Arc<Trace> {
        TraceStore::global().trace(self, workload)
    }

    /// LLC load misses of a no-prefetch replay (coverage denominator).
    ///
    /// Always replays afresh; experiments should prefer
    /// [`Scenario::shared_baseline`], which memoizes through the
    /// process-wide [`TraceStore`].
    pub fn baseline_misses(&self, trace: &Trace) -> u64 {
        let _span = telemetry::timer!("harness.baseline");
        Simulator::new(self.sim).run(trace, &[]).llc_misses
    }

    /// The workload's no-prefetch baseline misses from the process-wide
    /// [`TraceStore`], measured once per (trace derivation, sim config).
    pub fn shared_baseline(&self, workload: Workload) -> u64 {
        TraceStore::global().baseline_misses(self, workload)
    }

    /// Evaluates one prefetcher on one pre-generated trace.
    pub fn evaluate(
        &self,
        kind: &PrefetcherKind,
        workload: Workload,
        trace: &Trace,
        baseline_misses: u64,
    ) -> Evaluation {
        self.evaluate_with_telemetry(kind, workload, trace, baseline_misses)
            .0
    }

    /// Like [`Scenario::evaluate`], but also returns every telemetry metric
    /// the run recorded, scoped to exactly this prefetcher on exactly this
    /// trace (a fresh recorder is installed for the duration).
    ///
    /// With the harness's `telemetry` feature disabled the snapshot is
    /// empty.
    pub fn evaluate_with_telemetry(
        &self,
        kind: &PrefetcherKind,
        workload: Workload,
        trace: &Trace,
        baseline_misses: u64,
    ) -> (Evaluation, Snapshot) {
        let t0 = std::time::Instant::now();
        let (eval, snapshot) = telemetry::capture(|| {
            let mut prefetcher = telemetry::time!("harness.build", kind.build(self.seed));
            let schedule = telemetry::time!(
                "harness.generate",
                generate_prefetches(prefetcher.as_mut(), trace, self.sim.max_prefetch_degree)
            );
            let t_gen = t0.elapsed();
            let report = telemetry::time!(
                "harness.replay",
                Simulator::new(self.sim).run(trace, &schedule)
            );
            if timing_enabled() {
                eprintln!(
                    "# timing {:>12} on {:<22} generate {:6.1}s replay {:5.1}s",
                    kind.label(),
                    workload.trace_name(),
                    t_gen.as_secs_f64(),
                    (t0.elapsed() - t_gen).as_secs_f64()
                );
            }
            Evaluation {
                prefetcher: kind.label().to_string(),
                workload,
                report,
                baseline_misses,
            }
        });
        (eval, snapshot)
    }

    /// Convenience: fetch the shared trace and baseline, then evaluate
    /// several prefetchers on one workload (serially; for parallel grids use
    /// [`crate::engine::run_grid`]).
    pub fn evaluate_all(&self, kinds: &[PrefetcherKind], workload: Workload) -> Vec<Evaluation> {
        let trace = self.shared_trace(workload);
        let baseline = self.shared_baseline(workload);
        kinds
            .iter()
            .map(|k| self.evaluate(k, workload, &trace, baseline))
            .collect()
    }
}

/// Every prefetcher Figure 4 compares, plus parameterized PATHFINDER
/// configurations for the sweeps.
#[derive(Debug, Clone)]
pub enum PrefetcherKind {
    /// No prefetching.
    NoPrefetch,
    /// Degree-2 next-line.
    NextLine,
    /// Best-Offset with throttling disabled (competition configuration).
    BestOffset,
    /// Idealized ISB.
    Sisb,
    /// Signature Path Prefetcher.
    Spp,
    /// Pythia RL prefetcher (ported to the LLC).
    Pythia,
    /// Offline-trained Delta-LSTM.
    DeltaLstm,
    /// Offline-trained hierarchical Voyager.
    Voyager,
    /// PATHFINDER with an explicit configuration.
    Pathfinder(PathfinderConfig),
    /// The paper's best design point: PATHFINDER prioritized, NL and SISB
    /// filling remaining slots.
    PathfinderNlSisb(PathfinderConfig),
    /// Extension (paper future work §5): the same ensemble under a
    /// dynamic, recent-hit-rate priority policy.
    DynamicPfNlSisb(PathfinderConfig),
    /// Extension (paper future work §3.4): PATHFINDER plus the cold-page
    /// cross-page predictor.
    PathfinderCrossPage(PathfinderConfig),
}

impl PrefetcherKind {
    /// The Figure 4 line-up, in the paper's presentation order.
    pub fn figure4_lineup() -> Vec<PrefetcherKind> {
        vec![
            PrefetcherKind::NoPrefetch,
            PrefetcherKind::BestOffset,
            PrefetcherKind::Sisb,
            PrefetcherKind::Voyager,
            PrefetcherKind::DeltaLstm,
            PrefetcherKind::Spp,
            PrefetcherKind::Pythia,
            PrefetcherKind::Pathfinder(PathfinderConfig::default()),
            PrefetcherKind::PathfinderNlSisb(PathfinderConfig::default()),
        ]
    }

    /// Display label (matches the paper's figure legends).
    pub fn label(&self) -> &'static str {
        match self {
            PrefetcherKind::NoPrefetch => "No Prefetch",
            PrefetcherKind::NextLine => "NextLine",
            PrefetcherKind::BestOffset => "BO",
            PrefetcherKind::Sisb => "SISB",
            PrefetcherKind::Spp => "SPP",
            PrefetcherKind::Pythia => "Pythia",
            PrefetcherKind::DeltaLstm => "Delta-LSTM",
            PrefetcherKind::Voyager => "Voyager",
            PrefetcherKind::Pathfinder(_) => "PATHFINDER",
            PrefetcherKind::PathfinderNlSisb(_) => "PF+NL+SISB",
            PrefetcherKind::DynamicPfNlSisb(_) => "dyn(PF,NL,SISB)",
            PrefetcherKind::PathfinderCrossPage(_) => "PF+XPage",
        }
    }

    /// Instantiates the prefetcher.
    ///
    /// # Panics
    ///
    /// Panics if a PATHFINDER configuration fails validation (configurations
    /// produced by this crate's sweeps are always valid).
    pub fn build(&self, seed: u64) -> Box<dyn Prefetcher + Send> {
        match self {
            PrefetcherKind::NoPrefetch => Box::new(NoPrefetcher::new()),
            PrefetcherKind::NextLine => Box::new(NextLinePrefetcher::with_degree(2)),
            PrefetcherKind::BestOffset => Box::new(BestOffsetPrefetcher::new(2)),
            PrefetcherKind::Sisb => Box::new(SisbPrefetcher::new(2)),
            PrefetcherKind::Spp => Box::new(SppPrefetcher::new()),
            PrefetcherKind::Pythia => Box::new(PythiaPrefetcher::new(seed ^ 0x9717)),
            PrefetcherKind::DeltaLstm => Box::new(DeltaLstmPrefetcher::new(DeltaLstmConfig {
                seed: seed ^ 0xDE,
                ..DeltaLstmConfig::default()
            })),
            PrefetcherKind::Voyager => Box::new(VoyagerPrefetcher::new(VoyagerConfig {
                seed: seed ^ 0x70,
                ..VoyagerConfig::default()
            })),
            PrefetcherKind::Pathfinder(cfg) => Box::new(
                PathfinderPrefetcher::new(PathfinderConfig {
                    seed: seed ^ cfg.seed,
                    ..*cfg
                })
                .expect("valid pathfinder config"),
            ),
            PrefetcherKind::PathfinderNlSisb(cfg) => {
                let pf = PathfinderPrefetcher::new(PathfinderConfig {
                    seed: seed ^ cfg.seed,
                    ..*cfg
                })
                .expect("valid pathfinder config");
                Box::new(
                    EnsemblePrefetcher::new("PF+NL+SISB", 2)
                        .with(pf)
                        .with(NextLinePrefetcher::new())
                        .with(SisbPrefetcher::new(2)),
                )
            }
            PrefetcherKind::DynamicPfNlSisb(cfg) => {
                let pf = PathfinderPrefetcher::new(PathfinderConfig {
                    seed: seed ^ cfg.seed,
                    ..*cfg
                })
                .expect("valid pathfinder config");
                Box::new(
                    pathfinder_prefetch::DynamicEnsemblePrefetcher::new("dyn(PF,NL,SISB)", 2)
                        .with(pf)
                        .with(NextLinePrefetcher::new())
                        .with(SisbPrefetcher::new(2)),
                )
            }
            PrefetcherKind::PathfinderCrossPage(cfg) => {
                let pf = PathfinderPrefetcher::new(PathfinderConfig {
                    seed: seed ^ cfg.seed,
                    ..*cfg
                })
                .expect("valid pathfinder config");
                Box::new(
                    EnsemblePrefetcher::new("PF+XPage", 2)
                        .with(pf)
                        .with(pathfinder_core::CrossPagePredictor::new(2)),
                )
            }
        }
    }
}

/// Runs `f` over all workloads on the sweep engine's bounded worker pool
/// and returns the results in Table 5 order.
pub fn per_workload<T, F>(workloads: &[Workload], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Workload) -> T + Sync,
{
    crate::engine::parallel_map(workloads, |&w| f(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_end_to_end_tiny() {
        let sc = Scenario::with_loads(6000);
        let evals = sc.evaluate_all(
            &[PrefetcherKind::NoPrefetch, PrefetcherKind::NextLine],
            Workload::Sphinx,
        );
        assert_eq!(evals.len(), 2);
        assert_eq!(evals[0].prefetcher, "No Prefetch");
        assert_eq!(evals[0].requested(), 0);
        assert!(evals[1].requested() > 0);
        // Next-line should help the stream-dominated sphinx workload (small
        // tolerance: at this tiny scale prefetch traffic also contends).
        assert!(
            evals[1].ipc() >= evals[0].ipc() * 0.98,
            "NL {} vs none {}",
            evals[1].ipc(),
            evals[0].ipc()
        );
    }

    #[test]
    fn per_workload_preserves_order() {
        let ws = [Workload::Cc5, Workload::Mcf, Workload::Nutch];
        let names = per_workload(&ws, |w| w.trace_name().to_string());
        assert_eq!(names, vec!["cc-5", "605-mcf-s1", "nutch-phase0-core0"]);
    }

    #[test]
    fn all_kinds_build() {
        for kind in PrefetcherKind::figure4_lineup() {
            let p = kind.build(7);
            assert!(!p.name().is_empty());
        }
    }
}
