//! The Diehl & Cook spiking network PATHFINDER is built on: an input layer
//! rate-coding the memory-access pixel matrix, an excitatory layer learning
//! via STDP, and a one-to-one inhibitory layer providing lateral inhibition
//! (§3.1, Figure 1).

use pathfinder_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::config::SnnConfig;
use crate::encoding::PoissonEncoder;
use crate::lif::LifLayer;
use crate::monitor::SpikeMonitor;

/// Everything one input presentation produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Spike count per excitatory neuron over the interval.
    pub spike_counts: Vec<u32>,
    /// Most-firing neuron (ties broken by earliest first spike), if any
    /// neuron fired at all.
    pub winner: Option<usize>,
    /// Distinct neurons that fired, in first-fire order. Useful for
    /// multi-degree prefetching where several neurons are allowed to fire.
    pub fired: Vec<usize>,
    /// Tick of the first spike in the interval.
    pub first_fire_tick: Option<u32>,
    /// Neuron with the highest potential after the first tick — the paper's
    /// 1-tick approximation target (§3.4, Table 1).
    pub first_tick_argmax: usize,
    /// Highest end-of-interval potential among neurons other than the
    /// winner (Table 2's "potential of the next-best neuron").
    pub runner_up_potential: f32,
}

/// The 3-layer SNN with on-line STDP learning.
///
/// # Examples
///
/// ```
/// use pathfinder_snn::{DiehlCookNetwork, SnnConfig};
///
/// let mut cfg = SnnConfig::default();
/// cfg.n_input = 16;
/// cfg.n_exc = 4;
/// let mut net = DiehlCookNetwork::new(cfg, 42).unwrap();
///
/// let mut rates = vec![0.0f32; 16];
/// rates[3] = 1.0;
/// rates[7] = 1.0;
/// let out = net.present(&rates, true);
/// assert_eq!(out.spike_counts.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DiehlCookNetwork {
    cfg: SnnConfig,
    /// Input→excitatory weights, input-major: `w[i * n_exc + j]`.
    weights: Vec<f32>,
    exc: LifLayer,
    inh: LifLayer,
    /// Presynaptic eligibility traces (per input).
    x_pre: Vec<f32>,
    /// Postsynaptic eligibility traces (per excitatory neuron).
    x_post: Vec<f32>,
    /// Excitatory columns touched by STDP since the last normalization.
    dirty_cols: Vec<bool>,
    encoder: PoissonEncoder,
    rng: StdRng,
    trace_decay: f32,
    /// Total input presentations so far.
    presentations: u64,
}

impl DiehlCookNetwork {
    /// Creates a network with uniformly random initial weights in
    /// `[0, 0.3]` (BindsNet's DiehlAndCook2015 default), normalized to the
    /// configured per-neuron sum.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `cfg` is inconsistent.
    pub fn new(cfg: SnnConfig, seed: u64) -> Result<Self, String> {
        cfg.validate()?;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = vec![0.0f32; cfg.n_input * cfg.n_exc];
        for w in &mut weights {
            *w = rng.gen_range(0.0f32..0.3);
        }
        let mut net = DiehlCookNetwork {
            encoder: PoissonEncoder::new(cfg.max_rate),
            exc: LifLayer::new(cfg.n_exc, cfg.exc_lif),
            inh: LifLayer::new(cfg.n_exc, cfg.inh_lif),
            x_pre: vec![0.0; cfg.n_input],
            x_post: vec![0.0; cfg.n_exc],
            dirty_cols: vec![true; cfg.n_exc],
            weights,
            rng,
            trace_decay: (-1.0 / cfg.stdp.tc_trace).exp(),
            presentations: 0,
            cfg,
        };
        net.normalize_dirty();
        Ok(net)
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnnConfig {
        &self.cfg
    }

    /// Input presentations processed so far.
    pub fn presentations(&self) -> u64 {
        self.presentations
    }

    /// Borrow of the input→excitatory weight matrix (input-major).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// The incoming weights of excitatory neuron `j`.
    pub fn neuron_weights(&self, j: usize) -> Vec<f32> {
        (0..self.cfg.n_input)
            .map(|i| self.weights[i * self.cfg.n_exc + j])
            .collect()
    }

    /// Presents `rates` (pixel intensities in `[0,1]`, length `n_input`) for
    /// one `ticks`-long interval. STDP weight updates apply only when
    /// `learn` is true (the paper's Figure 8 duty-cycles this flag).
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != n_input`.
    pub fn present(&mut self, rates: &[f32], learn: bool) -> RunOutcome {
        self.present_inner(rates, learn, None)
    }

    /// Like [`DiehlCookNetwork::present`] but records every tick into the
    /// monitor (Figure 3 / Table 2 instrumentation).
    pub fn present_monitored(
        &mut self,
        rates: &[f32],
        learn: bool,
        monitor: &mut SpikeMonitor,
    ) -> RunOutcome {
        monitor.begin_interval();
        self.present_inner(rates, learn, Some(monitor))
    }

    fn present_inner(
        &mut self,
        rates: &[f32],
        learn: bool,
        mut monitor: Option<&mut SpikeMonitor>,
    ) -> RunOutcome {
        assert_eq!(
            rates.len(),
            self.cfg.n_input,
            "rates length must equal n_input"
        );
        self.presentations += 1;
        let _present_span = telemetry::timer!("snn.present");
        let mut input_spike_total = 0u64;
        let mut stdp_updates = 0u64;
        // Fresh state per presentation (weights and theta persist).
        self.exc.reset_state();
        self.inh.reset_state();
        self.x_pre.fill(0.0);
        self.x_post.fill(0.0);

        let n_exc = self.cfg.n_exc;
        let mut input_spikes: Vec<usize> = Vec::new();
        let mut exc_spikes: Vec<usize> = Vec::new();
        let mut inh_spikes: Vec<usize> = Vec::new();

        let mut spike_counts = vec![0u32; n_exc];
        let mut first_fire: Vec<Option<u32>> = vec![None; n_exc];
        let mut fired_order: Vec<usize> = Vec::new();
        let mut first_fire_tick: Option<u32> = None;

        // The §3.4 1-tick approximation target: argmax of the *expected*
        // first-tick drive (input rates x weights), adjusted for adaptive
        // thresholds — computable in hardware after a single tick of
        // expected-current injection (Table 1 compares it with the
        // stochastic 32-tick winner).
        let drive_scores = self.expected_drive_scores(rates);
        let first_tick_argmax = argmax_f32(&drive_scores);

        for tick in 0..self.cfg.ticks {
            // 1. Sample this tick's input spikes.
            self.encoder
                .sample_tick(rates, &mut self.rng, &mut input_spikes);

            // 2. Synaptic propagation: inputs drive excitatory neurons.
            let gain = self.cfg.input_gain;
            for &i in &input_spikes {
                let row = &self.weights[i * n_exc..(i + 1) * n_exc];
                for (j, &w) in row.iter().enumerate() {
                    self.exc.inject(j, w * gain);
                }
            }
            // 3. Advance the excitatory population.
            self.exc.step(&mut exc_spikes);
            self.exc.decay_theta(self.cfg.tc_theta_decay);

            // 4. Lateral inhibition: each firing excitatory neuron drives
            //    its one-to-one inhibitory partner, which suppresses every
            //    *other* excitatory neuron. The suppression is injected
            //    right away (landing on next tick's membrane state) so a
            //    single winner can silence the rest of the population
            //    before they cascade across threshold.
            for &j in &exc_spikes {
                self.inh.inject(j, self.cfg.exc_strength);
                for k in 0..n_exc {
                    if k != j {
                        self.exc.inject(k, -self.cfg.inh_strength);
                    }
                }
            }
            // The inhibitory population is stepped for observability; its
            // functional effect is the suppression applied above.
            self.inh.step(&mut inh_spikes);

            // 6. Bookkeeping.
            for &j in &exc_spikes {
                spike_counts[j] += 1;
                if first_fire[j].is_none() {
                    first_fire[j] = Some(tick);
                    fired_order.push(j);
                }
                first_fire_tick.get_or_insert(tick);
                self.exc.bump_theta(j, self.cfg.theta_plus);
            }
            if let Some(m) = monitor.as_deref_mut() {
                m.record_tick(self.exc.potentials(), &exc_spikes);
            }

            // 7. STDP (PostPre): traces decay, then spikes update weights.
            if learn {
                stdp_updates += self.stdp_tick(&input_spikes, &exc_spikes);
            }
            if telemetry::enabled() {
                input_spike_total += input_spikes.len() as u64;
            }
        }

        if learn {
            self.normalize_dirty();
        }

        // Batched per presentation so the hot tick loop pays at most a few
        // local adds even with telemetry compiled in; the whole block folds
        // away when the feature is off.
        if telemetry::enabled() {
            telemetry::counter!("snn.presentations", 1);
            telemetry::counter!(
                "snn.exc.spikes",
                spike_counts.iter().map(|&c| c as u64).sum::<u64>()
            );
            telemetry::counter!("snn.input.spikes", input_spike_total);
            if learn {
                telemetry::counter!("snn.stdp.weight_updates", stdp_updates);
            }
        }

        let winner = Self::pick_winner(&spike_counts, &first_fire, &drive_scores);
        let runner_up_potential = self
            .exc
            .potentials()
            .iter()
            .enumerate()
            .filter(|(j, _)| Some(*j) != winner)
            .map(|(_, &v)| v)
            .fold(f32::NEG_INFINITY, f32::max);

        RunOutcome {
            spike_counts,
            winner,
            fired: fired_order,
            first_fire_tick,
            first_tick_argmax,
            runner_up_potential,
        }
    }

    /// Per-neuron expected *time-to-fire* scores for `rates` — the
    /// deterministic quantity the 1-tick hardware readout computes. A
    /// neuron fires once its accumulated drive crosses
    /// `(v_thresh - v_rest) + theta`, so the first to fire is the one
    /// maximizing `drive / (gap + theta)`.
    fn expected_drive_scores(&self, rates: &[f32]) -> Vec<f32> {
        let n_exc = self.cfg.n_exc;
        let mut drive = vec![0.0f32; n_exc];
        for (i, &r) in rates.iter().enumerate() {
            if r > 0.0 {
                let row = &self.weights[i * n_exc..(i + 1) * n_exc];
                for (j, &w) in row.iter().enumerate() {
                    drive[j] += r * w;
                }
            }
        }
        let gap = self.cfg.exc_lif.v_thresh - self.cfg.exc_lif.v_rest;
        let thetas = self.exc.thetas();
        for (j, d) in drive.iter_mut().enumerate() {
            *d /= gap + thetas[j].max(0.0);
        }
        drive
    }

    fn expected_drive_argmax(&self, rates: &[f32]) -> usize {
        argmax_f32(&self.expected_drive_scores(rates))
    }

    fn pick_winner(
        counts: &[u32],
        first_fire: &[Option<u32>],
        drive_scores: &[f32],
    ) -> Option<usize> {
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by(|(a, ca), (b, cb)| {
                ca.cmp(cb)
                    // On equal counts prefer the earlier first spike
                    // (note reversed operands: smaller tick wins a max_by).
                    .then_with(|| first_fire[*b].cmp(&first_fire[*a]))
                    // Same-tick co-firers are tied at tick granularity; a
                    // hardware winner-take-all resolves by potential, i.e.
                    // deterministically by drive.
                    .then_with(|| {
                        drive_scores[*a]
                            .partial_cmp(&drive_scores[*b])
                            .expect("finite drive")
                    })
            })
            .map(|(j, _)| j)
    }

    /// Applies one tick of PostPre STDP; returns the number of synapses
    /// touched (0 when telemetry is compiled out — the count is only
    /// maintained for observability).
    fn stdp_tick(&mut self, input_spikes: &[usize], exc_spikes: &[usize]) -> u64 {
        let mut touched = 0u64;
        let n_exc = self.cfg.n_exc;
        let stdp = self.cfg.stdp;
        // Trace decay.
        for x in &mut self.x_pre {
            *x *= self.trace_decay;
        }
        for x in &mut self.x_post {
            *x *= self.trace_decay;
        }
        // Presynaptic spikes: bump pre trace, depress synapses onto
        // recently-fired neurons (post-before-pre).
        for &i in input_spikes {
            self.x_pre[i] = 1.0;
            let row = &mut self.weights[i * n_exc..(i + 1) * n_exc];
            for (j, w) in row.iter_mut().enumerate() {
                let xp = self.x_post[j];
                if xp > 1e-3 {
                    *w = (*w - stdp.nu_pre * xp).max(0.0);
                    self.dirty_cols[j] = true;
                    if telemetry::enabled() {
                        touched += 1;
                    }
                }
            }
        }
        // Postsynaptic spikes: bump post trace, potentiate synapses from
        // recently-spiked inputs (pre-before-post).
        for &j in exc_spikes {
            self.x_post[j] = 1.0;
            self.dirty_cols[j] = true;
            for i in 0..self.cfg.n_input {
                let xp = self.x_pre[i];
                if xp > 1e-3 {
                    let w = &mut self.weights[i * n_exc + j];
                    *w = (*w + stdp.nu_post * xp).min(stdp.w_max);
                    if telemetry::enabled() {
                        touched += 1;
                    }
                }
            }
        }
        touched
    }

    /// Renormalizes the incoming-weight sum of every column STDP touched to
    /// `norm` (Table 4: 38.4), as BindsNet does after each sample.
    fn normalize_dirty(&mut self) {
        let n_exc = self.cfg.n_exc;
        let mut normalized = 0u64;
        for j in 0..n_exc {
            if !self.dirty_cols[j] {
                continue;
            }
            self.dirty_cols[j] = false;
            if telemetry::enabled() {
                normalized += 1;
            }
            let mut sum = 0.0f32;
            for i in 0..self.cfg.n_input {
                sum += self.weights[i * n_exc + j];
            }
            if sum > 0.0 {
                let scale = self.cfg.stdp.norm / sum;
                for i in 0..self.cfg.n_input {
                    self.weights[i * n_exc + j] *= scale;
                }
            }
        }
        if telemetry::enabled() && normalized > 0 {
            telemetry::counter!("snn.norm.passes", 1);
            telemetry::counter!("snn.norm.columns", normalized);
        }
    }

    /// The paper's 1-tick approximation (§3.4): injects the *expected*
    /// synaptic current for one tick and returns the argmax-potential
    /// neuron, avoiding the full `ticks`-long stochastic simulation.
    ///
    /// When `learn` is true, an approximate STDP step potentiates the
    /// winning neuron's synapses from the active inputs (and normalizes),
    /// preserving the continuous-learning property at 1-tick cost.
    pub fn present_one_tick(&mut self, rates: &[f32], learn: bool) -> usize {
        assert_eq!(
            rates.len(),
            self.cfg.n_input,
            "rates length must equal n_input"
        );
        self.presentations += 1;
        telemetry::counter!("snn.one_tick.presentations", 1);
        self.exc.reset_state();
        let n_exc = self.cfg.n_exc;
        let winner = self.expected_drive_argmax(rates);
        if learn {
            // One presentation stands for a full input interval: decay theta
            // by the same amount the tick-by-tick path would.
            self.exc
                .decay_theta(self.cfg.tc_theta_decay / self.cfg.ticks as f32);
            self.exc.bump_theta(winner, self.cfg.theta_plus);
            for (i, &r) in rates.iter().enumerate() {
                if r > 0.0 {
                    let w = &mut self.weights[i * n_exc + winner];
                    *w = (*w + self.cfg.stdp.nu_post * r).min(self.cfg.stdp.w_max);
                }
            }
            self.dirty_cols[winner] = true;
            self.normalize_dirty();
        }
        winner
    }
}

/// Index of the maximum value (first on exact ties).
fn argmax_f32(xs: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &x) in xs.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SnnConfig {
        let mut cfg = SnnConfig {
            n_input: 24,
            n_exc: 8,
            ..SnnConfig::default()
        };
        // Keep the same average initial weight (norm / n_input = 0.1) as
        // the paper-sized network so the dynamics scale down faithfully,
        // then double it so a 3-pixel pattern can reach threshold within
        // one 32-tick interval.
        cfg.stdp.norm = 4.8;
        cfg
    }

    fn pattern(idxs: &[usize], n: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; n];
        for &i in idxs {
            v[i] = 1.0;
        }
        v
    }

    #[test]
    fn weights_normalized_at_init() {
        let cfg = small_cfg();
        let net = DiehlCookNetwork::new(cfg, 1).unwrap();
        for j in 0..8 {
            let sum: f32 = net.neuron_weights(j).iter().sum();
            assert!(
                (sum - cfg.stdp.norm).abs() < 1e-3,
                "column {j} sum {sum} should be norm {}",
                cfg.stdp.norm
            );
        }
    }

    #[test]
    fn repeated_pattern_stabilizes_winner() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 7).unwrap();
        let rates = pattern(&[2, 10, 19], 24);
        // Train on the pattern a few times.
        let mut last_winner = None;
        for _ in 0..6 {
            let out = net.present(&rates, true);
            last_winner = out.winner.or(last_winner);
        }
        let trained_winner = last_winner.expect("some neuron fires after training");
        // The same neuron should now win consistently.
        let mut consistent = 0;
        for _ in 0..5 {
            let out = net.present(&rates, true);
            if out.winner == Some(trained_winner) {
                consistent += 1;
            }
        }
        assert!(consistent >= 4, "winner should be stable, got {consistent}/5");
    }

    #[test]
    fn different_patterns_recruit_different_neurons() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 11).unwrap();
        let a = pattern(&[0, 1, 2], 24);
        let b = pattern(&[20, 21, 22], 24);
        for _ in 0..8 {
            net.present(&a, true);
            net.present(&b, true);
        }
        let wa = net.present(&a, false).winner;
        let wb = net.present(&b, false).winner;
        assert!(wa.is_some() && wb.is_some());
        assert_ne!(wa, wb, "disjoint patterns should map to distinct neurons");
    }

    #[test]
    fn stdp_concentrates_weight_on_active_inputs() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 3).unwrap();
        let rates = pattern(&[5, 6, 7], 24);
        let mut winner = None;
        for _ in 0..40 {
            let out = net.present(&rates, true);
            winner = out.winner.or(winner);
        }
        let j = winner.expect("winner exists");
        let w = net.neuron_weights(j);
        let active: f32 = [5, 6, 7].iter().map(|&i| w[i]).sum();
        let total: f32 = w.iter().sum();
        assert!(
            active / total > 3.0 * 3.0 / 24.0,
            "active-input weight share should grow: {}",
            active / total
        );
    }

    #[test]
    fn learning_disabled_freezes_weights() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 5).unwrap();
        let rates = pattern(&[1, 12, 23], 24);
        let before = net.weights().to_vec();
        net.present(&rates, false);
        assert_eq!(net.weights(), &before[..], "no-learn run must not move weights");
    }

    #[test]
    fn lateral_inhibition_limits_firing() {
        // With strong inhibition only one or two neurons fire per interval.
        let mut cfg = small_cfg();
        cfg.inh_strength = 60.0;
        let mut net = DiehlCookNetwork::new(cfg, 9).unwrap();
        let rates = pattern(&[3, 9, 15], 24);
        for _ in 0..5 {
            net.present(&rates, true);
        }
        let out = net.present(&rates, true);
        assert!(
            out.fired.len() <= 2,
            "strong inhibition should keep firing sparse, got {:?}",
            out.fired
        );
    }

    #[test]
    fn weak_inhibition_lets_multiple_neurons_fire() {
        // The multi-degree knob (§3.4): reducing inhibition yields 2-5 firing
        // neurons.
        let mut cfg = small_cfg();
        cfg.inh_strength = 0.5;
        let mut net = DiehlCookNetwork::new(cfg, 13).unwrap();
        let rates = pattern(&[3, 9, 15, 20], 24);
        let mut max_fired = 0usize;
        for _ in 0..8 {
            let out = net.present(&rates, true);
            max_fired = max_fired.max(out.fired.len());
        }
        assert!(
            max_fired >= 2,
            "weak inhibition should allow multiple firers, got {max_fired}"
        );
    }

    #[test]
    fn one_tick_mode_is_deterministic_and_learns() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 21).unwrap();
        let rates = pattern(&[4, 11, 18], 24);
        let w0 = net.present_one_tick(&rates, true);
        // After learning, the same input keeps selecting the same neuron.
        for _ in 0..5 {
            assert_eq!(net.present_one_tick(&rates, true), w0);
        }
    }

    #[test]
    fn monitored_run_records_all_ticks() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 2).unwrap();
        let rates = pattern(&[1, 2, 3], 24);
        let mut mon = SpikeMonitor::new();
        net.present_monitored(&rates, true, &mut mon);
        assert_eq!(mon.ticks(), 32);
        assert_eq!(mon.n_neurons(), 8);
        assert_eq!(mon.interval_starts(), &[0]);
    }

    #[test]
    fn empty_input_produces_no_spikes() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 4).unwrap();
        let out = net.present(&[0.0; 24], true);
        assert_eq!(out.winner, None);
        assert!(out.fired.is_empty());
        assert_eq!(out.spike_counts.iter().sum::<u32>(), 0);
    }

    #[test]
    fn seeded_networks_are_reproducible() {
        let mut a = DiehlCookNetwork::new(small_cfg(), 77).unwrap();
        let mut b = DiehlCookNetwork::new(small_cfg(), 77).unwrap();
        let rates = pattern(&[2, 8, 14], 24);
        for _ in 0..4 {
            assert_eq!(a.present(&rates, true), b.present(&rates, true));
        }
        assert_eq!(a.weights(), b.weights());
    }
}
