//! The Diehl & Cook spiking network PATHFINDER is built on: an input layer
//! rate-coding the memory-access pixel matrix, an excitatory layer learning
//! via STDP, and a one-to-one inhibitory layer providing lateral inhibition
//! (§3.1, Figure 1).
//!
//! The presentation hot path is an *event-driven* kernel: each tick's
//! synaptic drive is accumulated into a reusable per-neuron buffer and
//! landed on the membrane in one [`LifLayer::inject_all`] pass, lateral
//! inhibition is batched as `total spike drive − own contribution`, and all
//! per-presentation buffers live in scratch owned by the network. The
//! pre-rewrite per-synapse kernel is retained in [`crate::reference`] as
//! the equivalence/benchmark baseline.

use pathfinder_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use crate::accel::{self, KernelTier};
use crate::config::SnnConfig;
use crate::encoding::PoissonEncoder;
use crate::lif::LifLayer;
use crate::monitor::SpikeMonitor;

/// Everything one input presentation produces.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Spike count per excitatory neuron over the interval.
    pub spike_counts: Vec<u32>,
    /// Most-firing neuron (ties broken by earliest first spike), if any
    /// neuron fired at all.
    pub winner: Option<usize>,
    /// Distinct neurons that fired, in first-fire order. Useful for
    /// multi-degree prefetching where several neurons are allowed to fire.
    pub fired: Vec<usize>,
    /// Tick of the first spike in the interval.
    pub first_fire_tick: Option<u32>,
    /// Neuron with the highest potential after the first tick — the paper's
    /// 1-tick approximation target (§3.4, Table 1).
    pub first_tick_argmax: usize,
    /// Highest end-of-interval potential among neurons other than the
    /// winner (Table 2's "potential of the next-best neuron"). For a
    /// single-neuron population (no runner-up exists) this is clamped to
    /// the excitatory resting potential.
    pub runner_up_potential: f32,
}

/// Reusable per-presentation buffers. Hoisting these into the network means
/// a presentation allocates nothing in its tick loop; the buffers hold no
/// state between presentations beyond their capacity ([`PresentScratch::reset`]
/// re-initializes every value before use).
#[derive(Debug, Clone, Default)]
pub(crate) struct PresentScratch {
    /// Indices of inputs with a non-zero rate (computed once per
    /// presentation; per-tick sampling only visits these).
    pub(crate) active_inputs: Vec<usize>,
    /// This tick's input spikes.
    pub(crate) input_spikes: Vec<usize>,
    /// This tick's excitatory spikes.
    pub(crate) exc_spikes: Vec<usize>,
    /// This tick's inhibitory spikes.
    pub(crate) inh_spikes: Vec<usize>,
    /// Per-excitatory-neuron synaptic drive accumulated within one tick.
    pub(crate) drive: Vec<f32>,
    /// Expected-drive scores for the presentation (the §3.4 readout, also
    /// the winner tie-breaker).
    pub(crate) drive_scores: Vec<f32>,
    /// Spike count per excitatory neuron.
    pub(crate) spike_counts: Vec<u32>,
    /// First-fire tick per excitatory neuron.
    pub(crate) first_fire: Vec<Option<u32>>,
    /// Distinct firing neurons in first-fire order.
    pub(crate) fired_order: Vec<usize>,
    /// Inference-repacked weight rows: the active inputs' rows gathered
    /// into one contiguous matrix (frozen kernel only).
    pub(crate) packed_weights: Vec<f32>,
    /// Per-active-input spike probability, hoisted out of the tick loop
    /// (frozen kernel only).
    pub(crate) probs: Vec<f32>,
    /// Theta snapshot taken before a frozen presentation and restored
    /// after it, so inference leaves no persistent trace.
    pub(crate) saved_theta: Vec<f32>,
}

impl PresentScratch {
    /// Clears all buffers and sizes the per-neuron ones to `n_exc`.
    fn reset(&mut self, n_exc: usize) {
        self.drive.clear();
        self.drive.resize(n_exc, 0.0);
        self.spike_counts.clear();
        self.spike_counts.resize(n_exc, 0);
        self.first_fire.clear();
        self.first_fire.resize(n_exc, None);
        self.fired_order.clear();
        // active_inputs / input_spikes / exc_spikes / inh_spikes /
        // drive_scores are cleared by their producers.
    }
}

/// Reusable buffers for the cross-query batched frozen kernel
/// ([`DiehlCookNetwork::present_frozen_batch`]). All lane state is private
/// to the batch — the network's excitatory/inhibitory layers are never
/// touched — so a batch leaves strictly less residue than the singleton
/// path (which reuses the layers under a theta snapshot/restore).
///
/// Every per-neuron buffer is *lane-major* `[lanes × n_exc]`: lane `l`'s
/// state is the contiguous slice `[l * n_exc .. (l + 1) * n_exc]`, so the
/// sparse per-lane phases (drive accumulation, injection, lateral
/// inhibition) run on exactly the singleton's contiguous 50-element
/// slices and quiet lanes cost nothing, while the dense always-on phases
/// (LIF integrate, theta decay) sweep the whole `lanes × n_exc` block in
/// a single full-width kernel call per tick.
#[derive(Debug, Clone, Default)]
pub(crate) struct BatchScratch {
    /// Per-lane active-input indices, concatenated (CSR layout with
    /// `act_offsets`).
    act_inputs: Vec<u32>,
    /// Per-active-input spike probability, parallel to `act_inputs`.
    act_probs: Vec<f32>,
    /// CSR offsets: lane `l`'s actives are `act_inputs[act_offsets[l]..
    /// act_offsets[l + 1]]`.
    act_offsets: Vec<usize>,
    /// Per-lane private spike-sampling generators (the frozen purity
    /// contract: one stream per query, seeded from `frozen_query_seed`).
    rngs: Vec<StdRng>,
    /// Lane-major membrane potentials.
    v: Vec<f32>,
    /// Lane-major refractory counters.
    refrac: Vec<u32>,
    /// Lane-major adaptive thresholds (each lane starts from a copy of
    /// the network's thetas; the network's own stay untouched).
    theta: Vec<f32>,
    /// Lane-major per-tick drive accumulators.
    drive_lm: Vec<f32>,
    /// Lane-major expected-drive scores (§3.4 readout / tie-breaker).
    scores: Vec<f32>,
    /// Lane-major spike counts.
    counts: Vec<u32>,
    /// Lane-major first-fire ticks.
    first_fire: Vec<Option<u32>>,
    /// Per-input bitmask of lanes whose input `i` spiked this tick.
    mask: Vec<u64>,
    /// Bitmap over inputs with at least one spiking lane this tick — the
    /// gather's iteration order (ascending input index, no sort).
    input_bitmap: Vec<u64>,
    /// This tick's excitatory spikes as flat lane-major indices.
    spikes: Vec<usize>,
    /// Per-lane first-tick argmax (drive-score readout).
    argmax: Vec<usize>,
    /// Per-lane tick of the first spike.
    first_fire_tick: Vec<Option<u32>>,
    /// Per-lane distinct firing neurons in first-fire order.
    fired_order: Vec<Vec<usize>>,
    /// Reusable per-lane staging for active-input and score computation.
    tmp_active: Vec<usize>,
    /// Reusable per-lane staging for the expected-drive scores.
    tmp_scores: Vec<f32>,
}

/// The 3-layer SNN with on-line STDP learning.
///
/// # Examples
///
/// ```
/// use pathfinder_snn::{DiehlCookNetwork, SnnConfig};
///
/// let mut cfg = SnnConfig::default();
/// cfg.n_input = 16;
/// cfg.n_exc = 4;
/// let mut net = DiehlCookNetwork::new(cfg, 42).unwrap();
///
/// let mut rates = vec![0.0f32; 16];
/// rates[3] = 1.0;
/// rates[7] = 1.0;
/// let out = net.present(&rates, true);
/// assert_eq!(out.spike_counts.len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct DiehlCookNetwork {
    pub(crate) cfg: SnnConfig,
    /// Input→excitatory weights, input-major: `w[i * n_exc + j]`.
    pub(crate) weights: Vec<f32>,
    pub(crate) exc: LifLayer,
    pub(crate) inh: LifLayer,
    /// Presynaptic eligibility traces (per input).
    pub(crate) x_pre: Vec<f32>,
    /// Postsynaptic eligibility traces (per excitatory neuron).
    pub(crate) x_post: Vec<f32>,
    /// Excitatory columns touched by STDP since the last normalization.
    pub(crate) dirty_cols: Vec<bool>,
    pub(crate) encoder: PoissonEncoder,
    pub(crate) rng: StdRng,
    pub(crate) trace_decay: f32,
    /// Precomputed per-tick theta decay factor `exp(-1/tc_theta_decay)`,
    /// hoisted out of the tick loop.
    pub(crate) theta_decay: f32,
    /// Total input presentations so far.
    pub(crate) presentations: u64,
    /// Monotonic version of the inference-relevant state (weights and
    /// adaptive thresholds). Bumped by every presentation that may mutate
    /// them — STDP, normalization, and theta adaptation all happen inside
    /// such presentations — and left untouched by the pure frozen-inference
    /// paths ([`DiehlCookNetwork::present_frozen`],
    /// [`DiehlCookNetwork::present_one_tick`] with `learn == false`).
    pub(crate) weight_version: u64,
    /// Salt mixed into [`DiehlCookNetwork::frozen_query_seed`], derived
    /// from the construction seed so same-seeded networks derive identical
    /// per-query streams.
    pub(crate) frozen_salt: u64,
    /// Reusable presentation buffers (see [`PresentScratch`]).
    pub(crate) scratch: PresentScratch,
    /// Reusable batched-inference buffers (see [`BatchScratch`]).
    pub(crate) batch_scratch: BatchScratch,
    /// Reusable list of neurons with a live post trace, rebuilt each STDP
    /// tick (kept outside [`PresentScratch`] because both kernels' STDP
    /// shares it).
    pub(crate) hot_posts: Vec<usize>,
    /// The kernel tier the network's dense loops dispatch to (captured at
    /// construction; see [`crate::accel`]).
    pub(crate) tier: KernelTier,
    /// Per-column weight sums for the vectorized normalization pass (kept
    /// outside [`PresentScratch`] because `normalize_dirty` runs while the
    /// scratch is taken out of `self`).
    pub(crate) norm_sums: Vec<f32>,
    /// Per-column scale factors for the vectorized normalization pass.
    pub(crate) norm_scales: Vec<f32>,
}

impl DiehlCookNetwork {
    /// Creates a network with uniformly random initial weights in
    /// `[0, 0.3]` (BindsNet's DiehlAndCook2015 default), normalized to the
    /// configured per-neuron sum. Dense loops dispatch to the process-wide
    /// [`accel::active_tier`] (AVX2 where detected, scalar otherwise, or
    /// scalar when `PATHFINDER_FORCE_SCALAR` is set).
    ///
    /// # Errors
    ///
    /// Returns the validation message if `cfg` is inconsistent.
    pub fn new(cfg: SnnConfig, seed: u64) -> Result<Self, String> {
        Self::with_kernel_tier(cfg, seed, accel::active_tier())
    }

    /// Like [`DiehlCookNetwork::new`] but with an explicit [`KernelTier`]
    /// instead of the auto-detected one. The tiers are bit-identical (see
    /// the [`crate::accel`] contract), so this exists for tier-pinning
    /// tests and benchmarks that compare the dispatched kernels against
    /// the scalar fallback — production code should call `new`.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `cfg` is inconsistent, or an
    /// error if `tier` is not supported on this host (running SIMD
    /// kernels without their CPU feature would be undefined behaviour,
    /// so construction refuses).
    pub fn with_kernel_tier(cfg: SnnConfig, seed: u64, tier: KernelTier) -> Result<Self, String> {
        cfg.validate()?;
        if !tier.supported() {
            return Err(format!(
                "kernel tier {:?} is not supported on this host",
                tier
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut weights = vec![0.0f32; cfg.n_input * cfg.n_exc];
        for w in &mut weights {
            *w = rng.gen_range(0.0f32..0.3);
        }
        let mut net = DiehlCookNetwork {
            encoder: PoissonEncoder::new(cfg.max_rate),
            exc: LifLayer::with_tier(cfg.n_exc, cfg.exc_lif, tier),
            inh: LifLayer::with_tier(cfg.n_exc, cfg.inh_lif, tier),
            x_pre: vec![0.0; cfg.n_input],
            x_post: vec![0.0; cfg.n_exc],
            dirty_cols: vec![true; cfg.n_exc],
            weights,
            rng,
            trace_decay: (-1.0 / cfg.stdp.tc_trace).exp(),
            theta_decay: (-1.0 / cfg.tc_theta_decay).exp(),
            presentations: 0,
            weight_version: 0,
            frozen_salt: splitmix64(seed ^ 0xF0E1_D2C3_B4A5_9687),
            scratch: PresentScratch::default(),
            batch_scratch: BatchScratch::default(),
            hot_posts: Vec::new(),
            tier,
            norm_sums: Vec::new(),
            norm_scales: Vec::new(),
            cfg,
        };
        net.normalize_dirty();
        Ok(net)
    }

    /// The kernel tier this network's dense loops dispatch to.
    pub fn kernel_tier(&self) -> KernelTier {
        self.tier
    }

    /// The configuration in use.
    pub fn config(&self) -> &SnnConfig {
        &self.cfg
    }

    /// Input presentations processed so far.
    pub fn presentations(&self) -> u64 {
        self.presentations
    }

    /// Monotonic version of the inference-relevant state (weights plus
    /// adaptive thresholds). Any presentation that may update that state —
    /// STDP weight updates, normalization, theta bumps/decay — increments
    /// it; the pure inference paths ([`DiehlCookNetwork::present_frozen`]
    /// and [`DiehlCookNetwork::present_one_tick`] with `learn == false`)
    /// leave it unchanged. Callers memoizing query results key their cache
    /// validity on this value.
    pub fn weight_version(&self) -> u64 {
        self.weight_version
    }

    /// The RNG seed a [`DiehlCookNetwork::present_frozen`] call for `rates`
    /// derives its private spike-sampling stream from: a pure hash of the
    /// construction-seed salt, the current [`weight_version`], and the
    /// active pixel intensities. Exposed so equivalence tests can align a
    /// reference network's generator (via
    /// [`DiehlCookNetwork::reseed_rng`]) with the frozen kernel's stream.
    ///
    /// [`weight_version`]: DiehlCookNetwork::weight_version
    pub fn frozen_query_seed(&self, rates: &[f32]) -> u64 {
        let mut h = self.frozen_salt ^ splitmix64(self.weight_version);
        for (i, &r) in rates.iter().enumerate() {
            if r > 0.0 {
                h = splitmix64(h ^ (((i as u64) << 32) | r.to_bits() as u64));
            }
        }
        splitmix64(h)
    }

    /// Replaces the presentation RNG with a freshly seeded one. Only used
    /// by equivalence tests to put a reference network's generator in
    /// lockstep with the derived per-query stream of
    /// [`DiehlCookNetwork::present_frozen`]; production paths never reseed.
    pub fn reseed_rng(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Borrow of the input→excitatory weight matrix (input-major).
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Iterator over the incoming weights of excitatory neuron `j`
    /// (a strided column view; no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `j >= n_exc`.
    pub fn column_weights(&self, j: usize) -> impl Iterator<Item = f32> + '_ {
        assert!(j < self.cfg.n_exc, "neuron index {j} out of range");
        self.weights[j..].iter().step_by(self.cfg.n_exc).copied()
    }

    /// The incoming weights of excitatory neuron `j`, collected into a
    /// fresh vector. Prefer [`DiehlCookNetwork::column_weights`] in loops.
    pub fn neuron_weights(&self, j: usize) -> Vec<f32> {
        self.column_weights(j).collect()
    }

    /// Presents `rates` (pixel intensities in `[0,1]`, length `n_input`) for
    /// one `ticks`-long interval. STDP weight updates apply only when
    /// `learn` is true (the paper's Figure 8 duty-cycles this flag).
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != n_input`.
    pub fn present(&mut self, rates: &[f32], learn: bool) -> RunOutcome {
        self.present_inner(rates, learn, None)
    }

    /// Like [`DiehlCookNetwork::present`] but records every tick into the
    /// monitor (Figure 3 / Table 2 instrumentation).
    pub fn present_monitored(
        &mut self,
        rates: &[f32],
        learn: bool,
        monitor: &mut SpikeMonitor,
    ) -> RunOutcome {
        monitor.begin_interval();
        self.present_inner(rates, learn, Some(monitor))
    }

    fn present_inner(
        &mut self,
        rates: &[f32],
        learn: bool,
        mut monitor: Option<&mut SpikeMonitor>,
    ) -> RunOutcome {
        assert_eq!(
            rates.len(),
            self.cfg.n_input,
            "rates length must equal n_input"
        );
        self.presentations += 1;
        // Theta adapts below (decay plus per-spike bumps) even when `learn`
        // is false, so every pass through this kernel invalidates memoized
        // frozen-query results.
        self.weight_version = self.weight_version.wrapping_add(1);
        let _present_span = telemetry::timer!("snn.present");
        let mut input_spike_total = 0u64;
        let mut stdp_updates = 0u64;
        // Fresh state per presentation (weights and theta persist).
        self.exc.reset_state();
        self.inh.reset_state();
        self.x_pre.fill(0.0);
        self.x_post.fill(0.0);

        let n_exc = self.cfg.n_exc;
        // Take the scratch out of `self` so helper methods borrowing
        // `&mut self` can run while its buffers are in use.
        let mut s = std::mem::take(&mut self.scratch);
        s.reset(n_exc);
        let mut first_fire_tick: Option<u32> = None;

        // The active-input list drives per-tick sampling: only inputs with a
        // non-zero rate can spike, so each tick visits O(active) inputs
        // instead of scanning all n_input rates.
        self.encoder.active_inputs(rates, &mut s.active_inputs);

        // The §3.4 1-tick approximation target: argmax of the *expected*
        // first-tick drive (input rates x weights), adjusted for adaptive
        // thresholds — computable in hardware after a single tick of
        // expected-current injection (Table 1 compares it with the
        // stochastic 32-tick winner).
        self.expected_drive_scores_into(rates, &mut s.drive_scores);
        let first_tick_argmax = argmax_f32(&s.drive_scores);

        let gain = self.cfg.input_gain;
        let inh_strength = self.cfg.inh_strength;

        for tick in 0..self.cfg.ticks {
            // 1. Sample this tick's input spikes. The active-list path
            //    consumes the RNG exactly like the reference kernel's full
            //    scan, so spike trains are bit-identical across kernels.
            self.encoder.sample_tick_active(
                rates,
                &s.active_inputs,
                &mut self.rng,
                &mut s.input_spikes,
            );

            // 2. Event-driven synaptic propagation: accumulate each spiking
            //    input's weight row into the per-neuron drive buffer (one
            //    contiguous add-pass per spike), then land the tick's total
            //    drive on the membrane in a single bulk injection.
            if !s.input_spikes.is_empty() {
                s.drive.fill(0.0);
                for &i in &s.input_spikes {
                    let row = &self.weights[i * n_exc..(i + 1) * n_exc];
                    accel::add_assign(self.tier, &mut s.drive, row);
                }
                self.exc.inject_all(&s.drive, gain);
            }

            // 3. Advance the excitatory population.
            self.exc.step(&mut s.exc_spikes);
            self.exc.decay_theta_by(self.theta_decay);

            // 4. Lateral inhibition, batched: each firing excitatory neuron
            //    suppresses every *other* excitatory neuron, which is a
            //    uniform `-(spikes x inh_strength)` across the population
            //    plus each firer's own contribution added back —
            //    O(spikes + n_exc) where the reference kernel scatters
            //    O(spikes x n_exc) individual injections. The suppression
            //    lands on next tick's membrane state so a single winner can
            //    silence the rest before they cascade across threshold.
            if !s.exc_spikes.is_empty() {
                self.exc
                    .inject_uniform(-(s.exc_spikes.len() as f32) * inh_strength);
                for &j in &s.exc_spikes {
                    self.exc.inject(j, inh_strength);
                    self.inh.inject(j, self.cfg.exc_strength);
                }
            }
            // The inhibitory population is stepped for observability; its
            // functional effect is the suppression applied above.
            self.inh.step(&mut s.inh_spikes);

            // 6. Bookkeeping.
            for &j in &s.exc_spikes {
                s.spike_counts[j] += 1;
                if s.first_fire[j].is_none() {
                    s.first_fire[j] = Some(tick);
                    s.fired_order.push(j);
                }
                first_fire_tick.get_or_insert(tick);
                self.exc.bump_theta(j, self.cfg.theta_plus);
            }
            if let Some(m) = monitor.as_deref_mut() {
                m.record_tick(self.exc.potentials(), &s.exc_spikes);
            }

            // 7. STDP (PostPre): traces decay, then spikes update weights.
            if learn {
                stdp_updates +=
                    self.stdp_tick_active(&s.active_inputs, &s.input_spikes, &s.exc_spikes);
            }
            if telemetry::enabled() {
                input_spike_total += s.input_spikes.len() as u64;
            }
        }

        if learn {
            self.normalize_dirty();
        }

        // Batched per presentation so the hot tick loop pays at most a few
        // local adds even with telemetry compiled in; the whole block folds
        // away when the feature is off.
        if telemetry::enabled() {
            telemetry::counter!("snn.presentations", 1);
            telemetry::counter!(
                "snn.exc.spikes",
                s.spike_counts.iter().map(|&c| c as u64).sum::<u64>()
            );
            telemetry::counter!("snn.input.spikes", input_spike_total);
            if learn {
                telemetry::counter!("snn.stdp.weight_updates", stdp_updates);
            }
        }

        let winner = Self::pick_winner(&s.spike_counts, &s.first_fire, &s.drive_scores);
        let runner_up_potential = self.runner_up_potential(winner);

        let outcome = RunOutcome {
            spike_counts: s.spike_counts.clone(),
            winner,
            fired: s.fired_order.clone(),
            first_fire_tick,
            first_tick_argmax,
            runner_up_potential,
        };
        self.scratch = s;
        outcome
    }

    /// Highest end-of-interval potential among neurons other than `winner`,
    /// clamped to `v_rest` when no other neuron exists (`n_exc == 1` with a
    /// winner) so callers never see the fold's `-inf` sentinel.
    pub(crate) fn runner_up_potential(&self, winner: Option<usize>) -> f32 {
        self.exc
            .potentials()
            .iter()
            .enumerate()
            .filter(|(j, _)| Some(*j) != winner)
            .map(|(_, &v)| v)
            .fold(None, |acc: Option<f32>, v| {
                Some(acc.map_or(v, |a| a.max(v)))
            })
            .unwrap_or(self.cfg.exc_lif.v_rest)
    }

    /// Per-neuron expected *time-to-fire* scores for `rates` — the
    /// deterministic quantity the 1-tick hardware readout computes. A
    /// neuron fires once its accumulated drive crosses
    /// `(v_thresh - v_rest) + theta`, so the first to fire is the one
    /// maximizing `drive / (gap + theta)`. Writes into `out` (cleared and
    /// resized) so hot paths can reuse a scratch buffer.
    pub(crate) fn expected_drive_scores_into(&self, rates: &[f32], out: &mut Vec<f32>) {
        let n_exc = self.cfg.n_exc;
        out.clear();
        out.resize(n_exc, 0.0);
        for (i, &r) in rates.iter().enumerate() {
            if r > 0.0 {
                let row = &self.weights[i * n_exc..(i + 1) * n_exc];
                accel::scaled_add_assign(self.tier, out, row, r);
            }
        }
        let gap = self.cfg.exc_lif.v_thresh - self.cfg.exc_lif.v_rest;
        accel::div_by_theta_gap(self.tier, out, self.exc.thetas(), gap);
    }

    /// Allocating wrapper around
    /// [`DiehlCookNetwork::expected_drive_scores_into`]; the reference
    /// kernel keeps the pre-rewrite per-presentation allocation profile.
    pub(crate) fn expected_drive_scores(&self, rates: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.expected_drive_scores_into(rates, &mut out);
        out
    }

    pub(crate) fn pick_winner(
        counts: &[u32],
        first_fire: &[Option<u32>],
        drive_scores: &[f32],
    ) -> Option<usize> {
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .max_by(|(a, ca), (b, cb)| {
                ca.cmp(cb)
                    // On equal counts prefer the earlier first spike
                    // (note reversed operands: smaller tick wins a max_by).
                    .then_with(|| first_fire[*b].cmp(&first_fire[*a]))
                    // Same-tick co-firers are tied at tick granularity; a
                    // hardware winner-take-all resolves by potential, i.e.
                    // deterministically by drive.
                    .then_with(|| {
                        drive_scores[*a]
                            .partial_cmp(&drive_scores[*b])
                            .expect("finite drive")
                    })
            })
            .map(|(j, _)| j)
    }

    /// Applies one tick of PostPre STDP; returns the number of synapses
    /// touched (0 when telemetry is compiled out — the count is only
    /// maintained for observability).
    pub(crate) fn stdp_tick(&mut self, input_spikes: &[usize], exc_spikes: &[usize]) -> u64 {
        // Trace decay over every input (the pre-rewrite behaviour; the
        // event kernel uses the sparse variant below).
        for x in &mut self.x_pre {
            *x *= self.trace_decay;
        }
        self.stdp_spikes(input_spikes, exc_spikes)
    }

    /// [`DiehlCookNetwork::stdp_tick`] with the pre-trace decay restricted
    /// to `active` inputs. Bit-identical to the full decay: an input whose
    /// rate is zero never spikes, so its pre trace is exactly 0.0 forever
    /// and decaying it is a no-op. The event-driven kernel already holds
    /// the active-input list, turning the O(n_input) decay into O(active).
    pub(crate) fn stdp_tick_active(
        &mut self,
        active: &[usize],
        input_spikes: &[usize],
        exc_spikes: &[usize],
    ) -> u64 {
        for &i in active {
            self.x_pre[i] *= self.trace_decay;
        }
        self.stdp_spikes(input_spikes, exc_spikes)
    }

    /// The spike-driven half of a PostPre STDP tick: post-trace decay plus
    /// depression/potentiation updates. Shared by both decay variants.
    fn stdp_spikes(&mut self, input_spikes: &[usize], exc_spikes: &[usize]) -> u64 {
        let mut touched = 0u64;
        let n_exc = self.cfg.n_exc;
        let stdp = self.cfg.stdp;
        for x in &mut self.x_post {
            *x *= self.trace_decay;
        }
        // Presynaptic spikes: bump pre trace, depress synapses onto
        // recently-fired neurons (post-before-pre). Only neurons with a
        // live post trace can be depressed — usually none or a handful —
        // so they are gathered once per tick and each spiking input's row
        // is touched at exactly those columns, in the same ascending-j
        // order (and therefore bit-identically) as a full row scan.
        if !input_spikes.is_empty() {
            let mut hot = std::mem::take(&mut self.hot_posts);
            hot.clear();
            hot.extend(
                self.x_post
                    .iter()
                    .enumerate()
                    .filter(|(_, &x)| x > 1e-3)
                    .map(|(j, _)| j),
            );
            for &i in input_spikes {
                self.x_pre[i] = 1.0;
                let row = &mut self.weights[i * n_exc..(i + 1) * n_exc];
                for &j in &hot {
                    row[j] = (row[j] - stdp.nu_pre * self.x_post[j]).max(0.0);
                    self.dirty_cols[j] = true;
                    if telemetry::enabled() {
                        touched += 1;
                    }
                }
            }
            self.hot_posts = hot;
        }
        // Postsynaptic spikes: bump post trace, potentiate synapses from
        // recently-spiked inputs (pre-before-post). The column is walked as
        // a strided view zipped with the pre traces — same visit order as
        // an indexed gather, without per-element bounds checks.
        for &j in exc_spikes {
            self.x_post[j] = 1.0;
            self.dirty_cols[j] = true;
            for (w, &xp) in self.weights[j..].iter_mut().step_by(n_exc).zip(&self.x_pre) {
                if xp > 1e-3 {
                    *w = (*w + stdp.nu_post * xp).min(stdp.w_max);
                    if telemetry::enabled() {
                        touched += 1;
                    }
                }
            }
        }
        touched
    }

    /// Renormalizes the incoming-weight sum of every column STDP touched to
    /// `norm` (Table 4: 38.4), as BindsNet does after each sample.
    ///
    /// Two equivalent passes, picked by how much of the matrix is dirty:
    /// when most columns need renormalizing (a learning presentation
    /// typically dirties them all), a *row-major* pass accumulates every
    /// column's sum in contiguous [`accel`]-dispatched sweeps over the
    /// weight rows and then rescales rows elementwise, with clean columns
    /// held at the exact-identity scale `1.0`; when only a few columns are
    /// dirty, the original strided per-column walk
    /// ([`DiehlCookNetwork::column_weights`]) touches just those. Both
    /// paths visit each column's weights in the same ascending-input order,
    /// so their results are bit-identical.
    pub(crate) fn normalize_dirty(&mut self) {
        let n_exc = self.cfg.n_exc;
        let dirty = self.dirty_cols.iter().filter(|&&d| d).count();
        if dirty == 0 {
            return;
        }
        // Row-major pays one full-matrix sweep regardless of the dirty
        // count; it wins once a quarter or more of the columns need work.
        if dirty * 4 >= n_exc {
            let mut sums = std::mem::take(&mut self.norm_sums);
            let mut scales = std::mem::take(&mut self.norm_scales);
            accel::column_sums(self.tier, &self.weights, n_exc, &mut sums);
            scales.clear();
            scales.extend(sums.iter().zip(&self.dirty_cols).map(|(&sum, &d)| {
                // Columns left alone (clean, or an all-zero sum the strided
                // path would skip) scale by exactly 1.0 — an IEEE identity.
                if d && sum > 0.0 {
                    self.cfg.stdp.norm / sum
                } else {
                    1.0
                }
            }));
            accel::scale_columns(self.tier, &mut self.weights, n_exc, &scales);
            self.dirty_cols.fill(false);
            self.norm_sums = sums;
            self.norm_scales = scales;
        } else {
            for j in 0..n_exc {
                if !self.dirty_cols[j] {
                    continue;
                }
                self.dirty_cols[j] = false;
                let sum: f32 = self.column_weights(j).sum();
                if sum > 0.0 {
                    let scale = self.cfg.stdp.norm / sum;
                    for w in self.weights[j..].iter_mut().step_by(n_exc) {
                        *w *= scale;
                    }
                }
            }
        }
        if telemetry::enabled() {
            telemetry::counter!("snn.norm.passes", 1);
            telemetry::counter!("snn.norm.columns", dirty as u64);
        }
    }

    /// The paper's 1-tick approximation (§3.4): injects the *expected*
    /// synaptic current for one tick and returns the argmax-potential
    /// neuron, avoiding the full `ticks`-long stochastic simulation.
    ///
    /// When `learn` is true, an approximate STDP step potentiates the
    /// winning neuron's synapses from the active inputs (and normalizes),
    /// preserving the continuous-learning property at 1-tick cost.
    pub fn present_one_tick(&mut self, rates: &[f32], learn: bool) -> usize {
        assert_eq!(
            rates.len(),
            self.cfg.n_input,
            "rates length must equal n_input"
        );
        self.presentations += 1;
        telemetry::counter!("snn.one_tick.presentations", 1);
        self.exc.reset_state();
        let n_exc = self.cfg.n_exc;
        let mut scores = std::mem::take(&mut self.scratch.drive_scores);
        self.expected_drive_scores_into(rates, &mut scores);
        let winner = argmax_f32(&scores);
        self.scratch.drive_scores = scores;
        if learn {
            self.weight_version = self.weight_version.wrapping_add(1);
            // One presentation stands for a full input interval: decay theta
            // by the same amount the tick-by-tick path would.
            self.exc
                .decay_theta(self.cfg.tc_theta_decay / self.cfg.ticks as f32);
            self.exc.bump_theta(winner, self.cfg.theta_plus);
            for (i, &r) in rates.iter().enumerate() {
                if r > 0.0 {
                    let w = &mut self.weights[i * n_exc + winner];
                    *w = (*w + self.cfg.stdp.nu_post * r).min(self.cfg.stdp.w_max);
                }
            }
            self.dirty_cols[winner] = true;
            self.normalize_dirty();
        }
        winner
    }

    /// Frozen-weight inference: a full `ticks`-long stochastic presentation
    /// that is a *pure function* of `rates` and the current
    /// [`weight_version`], so callers can memoize its outcome exactly.
    ///
    /// Purity is obtained by (a) sampling input spikes from a private
    /// generator seeded with [`DiehlCookNetwork::frozen_query_seed`]
    /// instead of consuming the shared presentation RNG, and (b) running
    /// the intra-interval theta dynamics on a snapshot that is restored
    /// before returning — a duty-cycled off-phase (§3.5, Figure 8) freezes
    /// *all* adaptation, thresholds included. No STDP, eligibility-trace,
    /// or normalization bookkeeping runs at all.
    ///
    /// The kernel also re-packs the weight layout for inference: the active
    /// inputs' weight rows are gathered once into a contiguous matrix and
    /// their spike probabilities hoisted out of the tick loop, so each tick
    /// touches only cache-dense per-active-input column slices.
    ///
    /// Spike structure agrees exactly with
    /// [`DiehlCookNetwork::present_reference`] run with `learn == false`
    /// from the same weights/theta and an RNG reseeded to the derived
    /// query seed (pinned by `tests/kernel_equivalence.rs`).
    ///
    /// [`weight_version`]: DiehlCookNetwork::weight_version
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != n_input`.
    pub fn present_frozen(&mut self, rates: &[f32]) -> RunOutcome {
        assert_eq!(
            rates.len(),
            self.cfg.n_input,
            "rates length must equal n_input"
        );
        self.presentations += 1;
        let _present_span = telemetry::timer!("snn.present");
        let mut input_spike_total = 0u64;
        self.exc.reset_state();
        self.inh.reset_state();

        let n_exc = self.cfg.n_exc;
        let mut s = std::mem::take(&mut self.scratch);
        s.reset(n_exc);
        let mut first_fire_tick: Option<u32> = None;

        self.encoder.active_inputs(rates, &mut s.active_inputs);
        self.expected_drive_scores_into(rates, &mut s.drive_scores);
        let first_tick_argmax = argmax_f32(&s.drive_scores);

        // Inference re-pack: contiguous weight rows and hoisted spike
        // probabilities for just the active inputs. Row `a` of the packed
        // matrix is the weight row of active input `a`, so the tick loop
        // never strides through the full n_input-major matrix.
        let max_rate = self.encoder.max_rate();
        s.packed_weights.clear();
        s.probs.clear();
        for &i in &s.active_inputs {
            s.packed_weights
                .extend_from_slice(&self.weights[i * n_exc..(i + 1) * n_exc]);
            s.probs.push((rates[i] * max_rate).min(1.0));
        }

        // Frozen contract: intra-interval theta dynamics run on a snapshot
        // restored before returning, and spike sampling uses a private
        // stream derived from the query itself.
        self.exc.save_thetas_into(&mut s.saved_theta);
        let mut rng = StdRng::seed_from_u64(self.frozen_query_seed(rates));

        let gain = self.cfg.input_gain;
        let inh_strength = self.cfg.inh_strength;

        for tick in 0..self.cfg.ticks {
            // Sample active-input spikes; `input_spikes` holds *active
            // positions* (indices into the packed matrix), drawn in the
            // same ascending order — and with the same one-draw-per-active
            // consumption — as the other kernels.
            s.input_spikes.clear();
            for (a, &p) in s.probs.iter().enumerate() {
                if rng.gen_range(0.0f32..1.0) < p {
                    s.input_spikes.push(a);
                }
            }

            if !s.input_spikes.is_empty() {
                s.drive.fill(0.0);
                for &a in &s.input_spikes {
                    let row = &s.packed_weights[a * n_exc..(a + 1) * n_exc];
                    accel::add_assign(self.tier, &mut s.drive, row);
                }
                self.exc.inject_all(&s.drive, gain);
            }

            self.exc.step(&mut s.exc_spikes);
            self.exc.decay_theta_by(self.theta_decay);

            if !s.exc_spikes.is_empty() {
                self.exc
                    .inject_uniform(-(s.exc_spikes.len() as f32) * inh_strength);
                for &j in &s.exc_spikes {
                    self.exc.inject(j, inh_strength);
                    self.inh.inject(j, self.cfg.exc_strength);
                }
            }
            self.inh.step(&mut s.inh_spikes);

            for &j in &s.exc_spikes {
                s.spike_counts[j] += 1;
                if s.first_fire[j].is_none() {
                    s.first_fire[j] = Some(tick);
                    s.fired_order.push(j);
                }
                first_fire_tick.get_or_insert(tick);
                self.exc.bump_theta(j, self.cfg.theta_plus);
            }
            if telemetry::enabled() {
                input_spike_total += s.input_spikes.len() as u64;
            }
        }

        let winner = Self::pick_winner(&s.spike_counts, &s.first_fire, &s.drive_scores);
        let runner_up_potential = self.runner_up_potential(winner);

        // Restore the pre-presentation thresholds: a frozen query leaves no
        // persistent state behind (weight_version stays put).
        self.exc.restore_thetas(&s.saved_theta);

        if telemetry::enabled() {
            telemetry::counter!("snn.presentations", 1);
            telemetry::counter!("snn.frozen.presentations", 1);
            telemetry::counter!(
                "snn.exc.spikes",
                s.spike_counts.iter().map(|&c| c as u64).sum::<u64>()
            );
            telemetry::counter!("snn.input.spikes", input_spike_total);
        }

        let outcome = RunOutcome {
            spike_counts: s.spike_counts.clone(),
            winner,
            fired: s.fired_order.clone(),
            first_fire_tick,
            first_tick_argmax,
            runner_up_potential,
        };
        self.scratch = s;
        outcome
    }

    /// Cross-query batched frozen inference: runs N frozen queries in
    /// lockstep lanes through one tick loop and returns their outcomes in
    /// input order. Lane `i`'s [`RunOutcome`] is **bit-identical** to a
    /// singleton `present_frozen(queries[i])` call — and, like the
    /// singleton, a batch is a pure function of the queries and the
    /// current [`weight_version`], leaving weights, thetas, and
    /// `weight_version` untouched.
    ///
    /// What batching amortizes:
    ///
    /// * **one gather of the weight matrix per tick** — each distinct
    ///   input spiked by any lane loads its weight row once and
    ///   accumulates it into every lane that spiked it (ascending input
    ///   order per lane, exactly the singleton's accumulation order);
    /// * **one full-width LIF kernel call per tick** — membrane
    ///   integrate and theta decay sweep all lanes' contiguous
    ///   `lanes × n_exc` state through single calls into the shared
    ///   [`accel`] kernels instead of `2 × lanes` per-layer calls, while
    ///   the sparse phases (injection, lateral inhibition) touch only the
    ///   lanes with events this tick — quiet lanes cost nothing;
    /// * **no inhibitory-layer simulation** — the inhibitory population's
    ///   state is write-only in a frozen presentation (every presentation
    ///   path resets it on entry and nothing reads it), so the batch skips
    ///   it entirely.
    ///
    /// Per-lane bit-identity holds because each lane keeps a private RNG
    /// seeded from [`DiehlCookNetwork::frozen_query_seed`], private
    /// theta/membrane/refractory state, and the exact per-element IEEE-754
    /// op order of the singleton kernel (no FMA, no re-associated
    /// reductions): every arithmetic op lands on a lane's own contiguous
    /// slice in the singleton's sequence, and the full-width sweeps are
    /// elementwise, so batching changes *where* lane state lives, never
    /// what is computed on it.
    ///
    /// Batches larger than 64 lanes are processed in 64-lane chunks (the
    /// per-input lane bitmask is a `u64`); chunking is invisible in the
    /// results. An empty batch is a no-op that still records the batch
    /// telemetry (`snn.frozen.batch.{calls,queries}` counters and the
    /// `snn.frozen.batch.lanes` histogram).
    ///
    /// [`weight_version`]: DiehlCookNetwork::weight_version
    ///
    /// # Panics
    ///
    /// Panics if any query's length differs from `n_input`.
    pub fn present_frozen_batch(&mut self, queries: &[&[f32]]) -> Vec<RunOutcome> {
        for q in queries {
            assert_eq!(q.len(), self.cfg.n_input, "rates length must equal n_input");
        }
        telemetry::counter!("snn.frozen.batch.calls", 1);
        telemetry::counter!("snn.frozen.batch.queries", queries.len() as u64);
        telemetry::histogram!("snn.frozen.batch.lanes", queries.len() as u64);
        let mut outcomes = Vec::with_capacity(queries.len());
        if queries.is_empty() {
            return outcomes;
        }
        let _present_span = telemetry::timer!("snn.present.batch");
        for chunk in queries.chunks(MAX_BATCH_LANES) {
            self.present_frozen_chunk(chunk, &mut outcomes);
        }
        outcomes
    }

    /// One ≤64-lane chunk of [`DiehlCookNetwork::present_frozen_batch`].
    fn present_frozen_chunk(&mut self, queries: &[&[f32]], out: &mut Vec<RunOutcome>) {
        let n_exc = self.cfg.n_exc;
        let n_input = self.cfg.n_input;
        let lanes = queries.len();
        debug_assert!((1..=MAX_BATCH_LANES).contains(&lanes));
        let nl = n_exc * lanes;
        let mut s = std::mem::take(&mut self.batch_scratch);

        // Per-lane presentation prep, in the singleton's order: active
        // inputs + hoisted probabilities, expected-drive scores (read
        // against the network's untouched thetas) + first-tick argmax, and
        // the private query-derived RNG stream.
        let max_rate = self.encoder.max_rate();
        s.act_inputs.clear();
        s.act_probs.clear();
        s.act_offsets.clear();
        s.act_offsets.push(0);
        s.scores.clear();
        s.argmax.clear();
        s.rngs.clear();
        for &rates in queries {
            self.encoder.active_inputs(rates, &mut s.tmp_active);
            for &i in &s.tmp_active {
                s.act_inputs.push(i as u32);
                s.act_probs.push((rates[i] * max_rate).min(1.0));
            }
            s.act_offsets.push(s.act_inputs.len());
            self.expected_drive_scores_into(rates, &mut s.tmp_scores);
            s.argmax.push(argmax_f32(&s.tmp_scores));
            s.scores.extend_from_slice(&s.tmp_scores);
            s.rngs
                .push(StdRng::seed_from_u64(self.frozen_query_seed(rates)));
        }

        // Private lane-major state. Every lane starts exactly where the
        // singleton's `reset_state` + theta snapshot would put it.
        s.v.clear();
        s.v.resize(nl, self.cfg.exc_lif.v_rest);
        s.refrac.clear();
        s.refrac.resize(nl, 0);
        s.theta.clear();
        for _ in 0..lanes {
            s.theta.extend_from_slice(self.exc.thetas());
        }
        s.drive_lm.clear();
        s.drive_lm.resize(nl, 0.0);
        s.counts.clear();
        s.counts.resize(nl, 0);
        s.first_fire.clear();
        s.first_fire.resize(nl, None);
        s.first_fire_tick.clear();
        s.first_fire_tick.resize(lanes, None);
        if s.fired_order.len() < lanes {
            s.fired_order.resize_with(lanes, Vec::new);
        }
        for f in &mut s.fired_order[..lanes] {
            f.clear();
        }
        s.mask.clear();
        s.mask.resize(n_input, 0);
        s.input_bitmap.clear();
        s.input_bitmap.resize(n_input.div_ceil(64), 0);

        let p = accel::LifStepParams {
            v_rest: self.cfg.exc_lif.v_rest,
            decay: (-1.0 / self.cfg.exc_lif.tc_decay).exp(),
            v_thresh: self.cfg.exc_lif.v_thresh,
            v_reset: self.cfg.exc_lif.v_reset,
            refractory: self.cfg.exc_lif.refractory,
        };
        let gain = self.cfg.input_gain;
        let inh_strength = self.cfg.inh_strength;
        let theta_plus = self.cfg.theta_plus;
        let mut input_spike_total = 0u64;

        for tick in 0..self.cfg.ticks {
            // Sample every lane's input spikes from its private stream —
            // same ascending active order and one-draw-per-active
            // consumption as the singleton. Spikes land as per-input lane
            // bitmasks plus a bitmap over spiked inputs, which the gather
            // walks in ascending input order with no sort. The shifted-bit
            // writes are branchless: a miss ORs in 0, so the loop carries
            // no data-dependent branch (the singleton's conditional push
            // mispredicts on a meaningful fraction of draws).
            let mut spiked_lanes = 0u64;
            for (l, rng) in s.rngs.iter_mut().enumerate() {
                let (lo, hi) = (s.act_offsets[l], s.act_offsets[l + 1]);
                for (&i, &p) in s.act_inputs[lo..hi].iter().zip(&s.act_probs[lo..hi]) {
                    let hit = u64::from(rng.gen_range(0.0f32..1.0) < p);
                    let i = i as usize;
                    s.mask[i] |= hit << l;
                    s.input_bitmap[i >> 6] |= hit << (i & 63);
                    spiked_lanes |= hit << l;
                }
            }

            if spiked_lanes != 0 {
                // Zero only the spiked lanes' drive accumulators — quiet
                // lanes never read theirs this tick.
                let mut m = spiked_lanes;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    s.drive_lm[l * n_exc..(l + 1) * n_exc].fill(0.0);
                    m &= m - 1;
                }
                // The shared gather: one weight-row load per distinct
                // spiked input (ascending input order via the bitmap, so
                // each lane sees exactly the singleton's accumulation
                // sequence), fanned out into every lane that spiked it.
                for w in 0..s.input_bitmap.len() {
                    let mut bits = s.input_bitmap[w];
                    s.input_bitmap[w] = 0;
                    while bits != 0 {
                        let i = (w << 6) | bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let row = &self.weights[i * n_exc..(i + 1) * n_exc];
                        let mut lm = s.mask[i];
                        s.mask[i] = 0;
                        if telemetry::enabled() {
                            input_spike_total += u64::from(lm.count_ones());
                        }
                        while lm != 0 {
                            let l = lm.trailing_zeros() as usize;
                            lm &= lm - 1;
                            accel::add_assign(
                                self.tier,
                                &mut s.drive_lm[l * n_exc..(l + 1) * n_exc],
                                row,
                            );
                        }
                    }
                }
                // Land each spiked lane's drive on its own membrane slice
                // — the singleton's `inject_all`, lane by lane.
                let mut m = spiked_lanes;
                while m != 0 {
                    let l = m.trailing_zeros() as usize;
                    m &= m - 1;
                    let b = l * n_exc;
                    let (v_l, refrac_l) = (&mut s.v[b..b + n_exc], &s.refrac[b..b + n_exc]);
                    accel::masked_scaled_add(
                        self.tier,
                        v_l,
                        refrac_l,
                        &s.drive_lm[b..b + n_exc],
                        gain,
                    );
                }
            }

            // Integrate every lane of every neuron in one full-width call;
            // spikes come out in ascending flat order, i.e. grouped by
            // lane with ascending neuron index inside each group. Theta
            // then decays across the whole block — per element, exactly
            // the singleton's step-then-decay sequence.
            accel::lif_step(
                self.tier,
                &mut s.v,
                &mut s.refrac,
                &s.theta,
                p,
                &mut s.spikes,
            );
            accel::scale_in_place(self.tier, &mut s.theta, self.theta_decay);

            // Lateral inhibition + firer bookkeeping, one lane group at a
            // time: the lane's uniform `-k × inh` suppression, each
            // firer's own contribution back (refractory-gated), then
            // counts / first-fire / theta bumps in ascending neuron order
            // — the singleton's exact per-tick sequence. The inhibitory
            // layer itself is skipped (write-only in frozen runs).
            let mut si = 0;
            while si < s.spikes.len() {
                let l = s.spikes[si] / n_exc;
                let b = l * n_exc;
                let mut sj = si + 1;
                while sj < s.spikes.len() && s.spikes[sj] < b + n_exc {
                    sj += 1;
                }
                let fired = &s.spikes[si..sj];
                accel::masked_add_uniform(
                    self.tier,
                    &mut s.v[b..b + n_exc],
                    &s.refrac[b..b + n_exc],
                    -(fired.len() as f32) * inh_strength,
                );
                for &idx in fired {
                    if s.refrac[idx] == 0 {
                        s.v[idx] += inh_strength;
                    }
                }
                for &idx in fired {
                    s.counts[idx] += 1;
                    if s.first_fire[idx].is_none() {
                        s.first_fire[idx] = Some(tick);
                        s.fired_order[l].push(idx - b);
                    }
                    s.theta[idx] += theta_plus;
                }
                s.first_fire_tick[l].get_or_insert(tick);
                si = sj;
            }
        }

        for l in 0..lanes {
            let counts_l = &s.counts[l * n_exc..(l + 1) * n_exc];
            let ff_l = &s.first_fire[l * n_exc..(l + 1) * n_exc];
            let scores_l = &s.scores[l * n_exc..(l + 1) * n_exc];
            let winner = Self::pick_winner(counts_l, ff_l, scores_l);
            // The lane's runner-up potential: same ascending max-fold over
            // end-of-interval potentials as the singleton readout.
            let runner_up_potential = (0..n_exc)
                .filter(|j| Some(*j) != winner)
                .map(|j| s.v[l * n_exc + j])
                .fold(None, |acc: Option<f32>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                })
                .unwrap_or(self.cfg.exc_lif.v_rest);
            out.push(RunOutcome {
                spike_counts: counts_l.to_vec(),
                winner,
                fired: s.fired_order[l].clone(),
                first_fire_tick: s.first_fire_tick[l],
                first_tick_argmax: s.argmax[l],
                runner_up_potential,
            });
        }

        self.presentations += lanes as u64;
        if telemetry::enabled() {
            telemetry::counter!("snn.presentations", lanes as u64);
            telemetry::counter!("snn.frozen.presentations", lanes as u64);
            telemetry::counter!(
                "snn.exc.spikes",
                s.counts.iter().map(|&c| c as u64).sum::<u64>()
            );
            telemetry::counter!("snn.input.spikes", input_spike_total);
        }
        self.batch_scratch = s;
    }
}

/// Lane-chunk ceiling for [`DiehlCookNetwork::present_frozen_batch`]: the
/// per-input spiked-lane bitmask is a `u64`.
const MAX_BATCH_LANES: usize = 64;

/// SplitMix64's finalizer-style mixing step; used to derive frozen-query
/// seeds deterministically without touching the shared RNG.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Index of the maximum value (first on exact ties).
pub(crate) fn argmax_f32(xs: &[f32]) -> usize {
    let mut best = 0usize;
    let mut best_v = f32::NEG_INFINITY;
    for (i, &x) in xs.iter().enumerate() {
        if x > best_v {
            best_v = x;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SnnConfig {
        let mut cfg = SnnConfig {
            n_input: 24,
            n_exc: 8,
            ..SnnConfig::default()
        };
        // Keep the same average initial weight (norm / n_input = 0.1) as
        // the paper-sized network so the dynamics scale down faithfully,
        // then double it so a 3-pixel pattern can reach threshold within
        // one 32-tick interval.
        cfg.stdp.norm = 4.8;
        cfg
    }

    fn pattern(idxs: &[usize], n: usize) -> Vec<f32> {
        let mut v = vec![0.0f32; n];
        for &i in idxs {
            v[i] = 1.0;
        }
        v
    }

    #[test]
    fn weights_normalized_at_init() {
        let cfg = small_cfg();
        let net = DiehlCookNetwork::new(cfg, 1).unwrap();
        for j in 0..8 {
            let sum: f32 = net.neuron_weights(j).iter().sum();
            assert!(
                (sum - cfg.stdp.norm).abs() < 1e-3,
                "column {j} sum {sum} should be norm {}",
                cfg.stdp.norm
            );
        }
    }

    #[test]
    fn column_view_matches_collected_weights() {
        let net = DiehlCookNetwork::new(small_cfg(), 6).unwrap();
        for j in 0..8 {
            let collected = net.neuron_weights(j);
            let viewed: Vec<f32> = net.column_weights(j).collect();
            assert_eq!(collected, viewed);
            assert_eq!(collected.len(), net.config().n_input);
            // The strided view walks w[i * n_exc + j] in input order.
            for (i, &w) in collected.iter().enumerate() {
                assert_eq!(w, net.weights()[i * 8 + j]);
            }
        }
    }

    #[test]
    fn repeated_pattern_stabilizes_winner() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 7).unwrap();
        let rates = pattern(&[2, 10, 19], 24);
        // Train on the pattern a few times.
        let mut last_winner = None;
        for _ in 0..6 {
            let out = net.present(&rates, true);
            last_winner = out.winner.or(last_winner);
        }
        let trained_winner = last_winner.expect("some neuron fires after training");
        // The same neuron should now win consistently.
        let mut consistent = 0;
        for _ in 0..5 {
            let out = net.present(&rates, true);
            if out.winner == Some(trained_winner) {
                consistent += 1;
            }
        }
        assert!(
            consistent >= 4,
            "winner should be stable, got {consistent}/5"
        );
    }

    #[test]
    fn different_patterns_recruit_different_neurons() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 11).unwrap();
        let a = pattern(&[0, 1, 2], 24);
        let b = pattern(&[20, 21, 22], 24);
        for _ in 0..8 {
            net.present(&a, true);
            net.present(&b, true);
        }
        let wa = net.present(&a, false).winner;
        let wb = net.present(&b, false).winner;
        assert!(wa.is_some() && wb.is_some());
        assert_ne!(wa, wb, "disjoint patterns should map to distinct neurons");
    }

    #[test]
    fn stdp_concentrates_weight_on_active_inputs() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 3).unwrap();
        let rates = pattern(&[5, 6, 7], 24);
        let mut winner = None;
        for _ in 0..40 {
            let out = net.present(&rates, true);
            winner = out.winner.or(winner);
        }
        let j = winner.expect("winner exists");
        let w = net.neuron_weights(j);
        let active: f32 = [5, 6, 7].iter().map(|&i| w[i]).sum();
        let total: f32 = w.iter().sum();
        assert!(
            active / total > 3.0 * 3.0 / 24.0,
            "active-input weight share should grow: {}",
            active / total
        );
    }

    #[test]
    fn learning_disabled_freezes_weights() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 5).unwrap();
        let rates = pattern(&[1, 12, 23], 24);
        let before = net.weights().to_vec();
        net.present(&rates, false);
        assert_eq!(
            net.weights(),
            &before[..],
            "no-learn run must not move weights"
        );
    }

    #[test]
    fn lateral_inhibition_limits_firing() {
        // With strong inhibition only one or two neurons fire per interval.
        let mut cfg = small_cfg();
        cfg.inh_strength = 60.0;
        let mut net = DiehlCookNetwork::new(cfg, 9).unwrap();
        let rates = pattern(&[3, 9, 15], 24);
        for _ in 0..5 {
            net.present(&rates, true);
        }
        let out = net.present(&rates, true);
        assert!(
            out.fired.len() <= 2,
            "strong inhibition should keep firing sparse, got {:?}",
            out.fired
        );
    }

    #[test]
    fn weak_inhibition_lets_multiple_neurons_fire() {
        // The multi-degree knob (§3.4): reducing inhibition yields 2-5 firing
        // neurons.
        let mut cfg = small_cfg();
        cfg.inh_strength = 0.5;
        let mut net = DiehlCookNetwork::new(cfg, 13).unwrap();
        let rates = pattern(&[3, 9, 15, 20], 24);
        let mut max_fired = 0usize;
        for _ in 0..8 {
            let out = net.present(&rates, true);
            max_fired = max_fired.max(out.fired.len());
        }
        assert!(
            max_fired >= 2,
            "weak inhibition should allow multiple firers, got {max_fired}"
        );
    }

    #[test]
    fn one_tick_mode_is_deterministic_and_learns() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 21).unwrap();
        let rates = pattern(&[4, 11, 18], 24);
        let w0 = net.present_one_tick(&rates, true);
        // After learning, the same input keeps selecting the same neuron.
        for _ in 0..5 {
            assert_eq!(net.present_one_tick(&rates, true), w0);
        }
    }

    #[test]
    fn monitored_run_records_all_ticks() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 2).unwrap();
        let rates = pattern(&[1, 2, 3], 24);
        let mut mon = SpikeMonitor::new();
        net.present_monitored(&rates, true, &mut mon);
        assert_eq!(mon.ticks(), 32);
        assert_eq!(mon.n_neurons(), 8);
        assert_eq!(mon.interval_starts(), &[0]);
    }

    #[test]
    fn empty_input_produces_no_spikes() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 4).unwrap();
        let out = net.present(&[0.0; 24], true);
        assert_eq!(out.winner, None);
        assert!(out.fired.is_empty());
        assert_eq!(out.spike_counts.iter().sum::<u32>(), 0);
    }

    #[test]
    fn seeded_networks_are_reproducible() {
        let mut a = DiehlCookNetwork::new(small_cfg(), 77).unwrap();
        let mut b = DiehlCookNetwork::new(small_cfg(), 77).unwrap();
        let rates = pattern(&[2, 8, 14], 24);
        for _ in 0..4 {
            assert_eq!(a.present(&rates, true), b.present(&rates, true));
        }
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    fn single_neuron_runner_up_clamps_to_rest() {
        // Regression: with n_exc == 1 the winner is the only neuron, so the
        // runner-up fold is empty; it must clamp to v_rest instead of
        // returning f32::NEG_INFINITY.
        let mut cfg = SnnConfig {
            n_input: 8,
            n_exc: 1,
            ..SnnConfig::default()
        };
        cfg.stdp.norm = 1.6;
        let v_rest = cfg.exc_lif.v_rest;
        let mut net = DiehlCookNetwork::new(cfg, 17).unwrap();
        let rates = pattern(&[0, 3, 6], 8);
        let mut saw_winner = false;
        for _ in 0..10 {
            let out = net.present(&rates, true);
            assert!(
                out.runner_up_potential.is_finite(),
                "runner-up must never be -inf"
            );
            if out.winner.is_some() {
                saw_winner = true;
                assert_eq!(out.runner_up_potential, v_rest);
            }
        }
        assert!(saw_winner, "the lone neuron should fire at least once");
    }

    #[test]
    fn weight_version_tracks_state_mutations() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 5).unwrap();
        let rates = pattern(&[1, 12, 23], 24);
        assert_eq!(net.weight_version(), 0);
        net.present(&rates, true);
        assert_eq!(net.weight_version(), 1);
        // Theta adapts even without STDP, so a no-learn presentation still
        // invalidates frozen-query memoization.
        net.present(&rates, false);
        assert_eq!(net.weight_version(), 2);
        net.present_reference(&rates, false);
        assert_eq!(net.weight_version(), 3);
        net.present_one_tick(&rates, true);
        assert_eq!(net.weight_version(), 4);
        // The pure inference paths leave the version alone.
        net.present_one_tick(&rates, false);
        net.present_frozen(&rates);
        assert_eq!(net.weight_version(), 4);
    }

    #[test]
    fn frozen_presentation_is_pure_and_repeatable() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 8).unwrap();
        let rates = pattern(&[2, 10, 19], 24);
        for _ in 0..4 {
            net.present(&rates, true);
        }
        let weights = net.weights().to_vec();
        let thetas = net.exc.thetas().to_vec();
        let a = net.present_frozen(&rates);
        let b = net.present_frozen(&rates);
        assert_eq!(a, b, "identical queries must yield identical outcomes");
        assert_eq!(net.weights(), &weights[..], "weights untouched");
        assert_eq!(net.exc.thetas(), &thetas[..], "thetas restored");
    }

    #[test]
    fn frozen_seed_depends_on_input_and_version() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 12).unwrap();
        let r1 = pattern(&[1, 2, 3], 24);
        let r2 = pattern(&[1, 2, 4], 24);
        assert_ne!(net.frozen_query_seed(&r1), net.frozen_query_seed(&r2));
        let s0 = net.frozen_query_seed(&r1);
        net.present(&r1, true);
        assert_ne!(
            net.frozen_query_seed(&r1),
            s0,
            "a new weight version derives a fresh stream"
        );
    }

    #[test]
    fn scratch_buffers_are_reused_across_presentations() {
        // The scratch is an implementation detail, but its reuse invariant
        // is observable: back-to-back presentations with different patterns
        // must not leak state (counts, fired order) between intervals.
        let mut net = DiehlCookNetwork::new(small_cfg(), 31).unwrap();
        let a = pattern(&[0, 1, 2], 24);
        net.present(&a, true);
        let out = net.present(&[0.0; 24], false);
        assert_eq!(out.spike_counts, vec![0; 8], "no stale counts");
        assert!(out.fired.is_empty(), "no stale fired order");
        assert_eq!(out.first_fire_tick, None);
    }

    /// Bitwise `RunOutcome` equality: `PartialEq` would already reject any
    /// numeric drift here, but the batch contract is *bit* identity, so the
    /// float field is compared via `to_bits`.
    fn assert_outcome_bits_eq(a: &RunOutcome, b: &RunOutcome, lane: usize) {
        assert_eq!(a.spike_counts, b.spike_counts, "lane {lane} spike_counts");
        assert_eq!(a.winner, b.winner, "lane {lane} winner");
        assert_eq!(a.fired, b.fired, "lane {lane} fired order");
        assert_eq!(
            a.first_fire_tick, b.first_fire_tick,
            "lane {lane} first tick"
        );
        assert_eq!(
            a.first_tick_argmax, b.first_tick_argmax,
            "lane {lane} argmax"
        );
        assert_eq!(
            a.runner_up_potential.to_bits(),
            b.runner_up_potential.to_bits(),
            "lane {lane} runner-up potential bits"
        );
    }

    fn trained_small_net(seed: u64) -> DiehlCookNetwork {
        let mut net = DiehlCookNetwork::new(small_cfg(), seed).unwrap();
        for idxs in [[2usize, 10, 19], [0, 1, 2], [5, 11, 23], [3, 9, 20]] {
            net.present(&pattern(&idxs, 24), true);
        }
        net
    }

    #[test]
    fn frozen_batch_matches_singletons_bitwise() {
        let mut net = trained_small_net(8);
        let patterns: Vec<Vec<f32>> = vec![
            pattern(&[2, 10, 19], 24),
            pattern(&[0, 1, 2], 24),
            pattern(&[5, 11, 23], 24),
            pattern(&[3, 9, 20], 24),
            pattern(&[7, 8, 15, 21], 24),
            vec![0.0; 24], // an all-quiet lane must ride along unperturbed
            pattern(&[4], 24),
            pattern(&[0, 6, 13, 18, 22], 24),
        ];
        for lanes in [1usize, 2, 3, 5, 8] {
            let queries: Vec<&[f32]> = patterns[..lanes].iter().map(|p| p.as_slice()).collect();
            let weights = net.weights().to_vec();
            let thetas = net.exc.thetas().to_vec();
            let version = net.weight_version();
            let pres = net.presentations();

            let batch = net.present_frozen_batch(&queries);

            assert_eq!(batch.len(), lanes);
            assert_eq!(net.weights(), &weights[..], "weights untouched");
            assert_eq!(net.exc.thetas(), &thetas[..], "thetas untouched");
            assert_eq!(net.weight_version(), version, "version untouched");
            assert_eq!(
                net.presentations(),
                pres + lanes as u64,
                "one presentation counted per lane"
            );
            for (l, q) in queries.iter().enumerate() {
                let single = net.present_frozen(q);
                assert_outcome_bits_eq(&batch[l], &single, l);
            }
        }
    }

    #[test]
    fn frozen_batch_empty_is_a_noop() {
        let mut net = trained_small_net(11);
        let pres = net.presentations();
        let out = net.present_frozen_batch(&[]);
        assert!(out.is_empty());
        assert_eq!(net.presentations(), pres);
    }

    #[test]
    fn frozen_batch_duplicate_lanes_agree() {
        let mut net = trained_small_net(13);
        let p = pattern(&[2, 10, 19], 24);
        let q = pattern(&[0, 1, 2], 24);
        let out = net.present_frozen_batch(&[&p, &q, &p, &p, &q]);
        assert_outcome_bits_eq(&out[0], &out[2], 2);
        assert_outcome_bits_eq(&out[0], &out[3], 3);
        assert_outcome_bits_eq(&out[1], &out[4], 4);
        let single = net.present_frozen(&p);
        assert_outcome_bits_eq(&out[0], &single, 0);
    }

    #[test]
    fn frozen_batch_chunks_beyond_64_lanes() {
        // 67 lanes forces a 64-lane chunk plus a 3-lane remainder; results
        // must be indistinguishable from unchunked singleton runs.
        let mut net = trained_small_net(17);
        let patterns: Vec<Vec<f32>> = (0..67)
            .map(|i| pattern(&[i % 24, (i * 7 + 3) % 24, (i * 5 + 1) % 24], 24))
            .collect();
        let queries: Vec<&[f32]> = patterns.iter().map(|p| p.as_slice()).collect();
        let batch = net.present_frozen_batch(&queries);
        assert_eq!(batch.len(), 67);
        for (l, q) in queries.iter().enumerate() {
            let single = net.present_frozen(q);
            assert_outcome_bits_eq(&batch[l], &single, l);
        }
    }
}
