//! Network hyperparameters, defaulting to the paper's Table 4 values
//! (BindsNet `DiehlAndCook2015` initialization).

use serde::{Deserialize, Serialize};

/// Leaky-integrate-and-fire parameters for one neuron population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifConfig {
    /// Resting potential the membrane decays toward (mV).
    pub v_rest: f32,
    /// Potential after a spike (mV).
    pub v_reset: f32,
    /// Base firing threshold (mV); excitatory neurons add an adaptive
    /// `theta` on top.
    pub v_thresh: f32,
    /// Membrane decay time constant (ticks).
    pub tc_decay: f32,
    /// Refractory period after a spike (ticks).
    pub refractory: u32,
}

impl LifConfig {
    /// Diehl & Cook excitatory-population parameters.
    pub const fn excitatory() -> Self {
        LifConfig {
            v_rest: -65.0,
            v_reset: -60.0,
            v_thresh: -52.0,
            tc_decay: 100.0,
            refractory: 5,
        }
    }

    /// Diehl & Cook inhibitory-population parameters.
    pub const fn inhibitory() -> Self {
        LifConfig {
            v_rest: -60.0,
            v_reset: -45.0,
            v_thresh: -40.0,
            tc_decay: 10.0,
            refractory: 2,
        }
    }
}

/// STDP learning-rule parameters (BindsNet `PostPre` with normalization).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StdpConfig {
    /// Learning rate for pre-before-post potentiation (applied on the
    /// postsynaptic spike).
    pub nu_post: f32,
    /// Learning rate for post-before-pre depression (applied on the
    /// presynaptic spike).
    pub nu_pre: f32,
    /// Decay time constant of the pre/post eligibility traces (ticks).
    pub tc_trace: f32,
    /// Maximum synaptic weight.
    pub w_max: f32,
    /// Per-neuron incoming-weight sum after normalization (Table 4: 38.4).
    pub norm: f32,
}

impl Default for StdpConfig {
    fn default() -> Self {
        StdpConfig {
            // Diehl & Cook's MNIST rates; fast enough for few-shot pattern
            // recruitment while slow enough that the leading neuron keeps a
            // weight margin over its rivals (which keeps the 1-tick argmax
            // aligned with the stochastic winner, Table 1).
            nu_post: 1e-2,
            nu_pre: 1e-4,
            tc_trace: 20.0,
            w_max: 1.0,
            norm: 38.4,
        }
    }
}

/// Full network configuration (Table 4 defaults).
///
/// # Examples
///
/// ```
/// use pathfinder_snn::SnnConfig;
///
/// let cfg = SnnConfig::default();
/// assert_eq!(cfg.n_input, 128 * 3);
/// assert_eq!(cfg.n_exc, 50);
/// assert_eq!(cfg.ticks, 32);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnnConfig {
    /// Input-layer size. Table 4: `D x H` with `D = 128`, `H = 3`.
    pub n_input: usize,
    /// Excitatory (and matching inhibitory) neuron count. Table 4: 50.
    pub n_exc: usize,
    /// Excitatory→inhibitory one-to-one weight. Table 4: `exc = 20.5`.
    pub exc_strength: f32,
    /// Inhibitory→excitatory lateral weight magnitude. Table 4: `inh = 17.5`.
    pub inh_strength: f32,
    /// Ticks per input presentation. Table 4: 32.
    pub ticks: u32,
    /// Per-tick spike probability of a fully-on input pixel (Poisson rate
    /// coding intensity).
    pub max_rate: f32,
    /// Synaptic current per unit weight per input spike. BindsNet folds this
    /// into its intensity scaling; pulling it out lets the paper-reported
    /// Table 4 weights (`norm = 38.4` over 384 inputs) drive a 50-neuron
    /// population to threshold within a 32-tick interval.
    pub input_gain: f32,
    /// Excitatory-population LIF parameters.
    pub exc_lif: LifConfig,
    /// Inhibitory-population LIF parameters.
    pub inh_lif: LifConfig,
    /// Adaptive-threshold increment per excitatory spike. Table 4: 0.05.
    pub theta_plus: f32,
    /// Adaptive-threshold decay time constant (ticks). Diehl & Cook use
    /// 1e7 (effectively no decay) because MNIST training is short; a
    /// continuously-learning prefetcher needs theta to *equilibrate*, or a
    /// busy neuron's threshold grows without bound and the population goes
    /// silent. At 1e4 ticks a constantly-winning neuron saturates near
    /// `theta ~= 45` — low enough that its concentrated weights still fire
    /// it within a few ticks (so it keeps its patterns), high enough that
    /// fresh patterns recruit unclaimed neurons.
    pub tc_theta_decay: f32,
    /// STDP parameters.
    pub stdp: StdpConfig,
}

impl Default for SnnConfig {
    fn default() -> Self {
        SnnConfig {
            n_input: 128 * 3,
            n_exc: 50,
            exc_strength: 20.5,
            inh_strength: 17.5,
            ticks: 32,
            max_rate: 0.95,
            input_gain: 2.1,
            exc_lif: LifConfig::excitatory(),
            inh_lif: LifConfig::inhibitory(),
            theta_plus: 0.05,
            tc_theta_decay: 1e4,
            stdp: StdpConfig::default(),
        }
    }
}

impl SnnConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_input == 0 {
            return Err("n_input must be positive".into());
        }
        if self.n_exc == 0 {
            return Err("n_exc must be positive".into());
        }
        if self.ticks == 0 {
            return Err("ticks must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.max_rate) {
            return Err(format!("max_rate {} must be in [0,1]", self.max_rate));
        }
        if self.input_gain <= 0.0 {
            return Err("input_gain must be positive".into());
        }
        if self.stdp.w_max <= 0.0 {
            return Err("w_max must be positive".into());
        }
        if self.stdp.norm <= 0.0 {
            return Err("norm must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_defaults() {
        let c = SnnConfig::default();
        assert_eq!(c.n_input, 384);
        assert_eq!(c.n_exc, 50);
        assert!((c.exc_strength - 20.5).abs() < f32::EPSILON);
        assert!((c.inh_strength - 17.5).abs() < f32::EPSILON);
        assert!((c.stdp.norm - 38.4).abs() < f32::EPSILON);
        assert!((c.theta_plus - 0.05).abs() < f32::EPSILON);
        assert_eq!(c.ticks, 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let c = SnnConfig {
            n_exc: 0,
            ..SnnConfig::default()
        };
        assert!(c.validate().is_err());

        let c = SnnConfig {
            max_rate: 1.5,
            ..SnnConfig::default()
        };
        assert!(c.validate().is_err());

        let mut c = SnnConfig::default();
        c.stdp.norm = 0.0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn diehl_cook_populations_differ() {
        let e = LifConfig::excitatory();
        let i = LifConfig::inhibitory();
        assert!(e.v_thresh < i.v_thresh + 100.0); // both sane mV values
        assert_ne!(e.v_rest, i.v_rest);
        assert!(e.tc_decay > i.tc_decay);
    }
}
