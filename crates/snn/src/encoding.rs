//! Poisson rate coding of pixel intensities into spike trains (§3.2 step 2).

use rand::rngs::StdRng;
use rand::Rng;

/// Converts a vector of pixel intensities in `[0, 1]` into per-tick spike
/// events: an intensity-`p` pixel spikes each tick with probability
/// `p * max_rate`, following the Bernoulli approximation of a Poisson
/// process that BindsNet uses at `dt = 1`.
#[derive(Debug, Clone)]
pub struct PoissonEncoder {
    max_rate: f32,
}

impl PoissonEncoder {
    /// Creates an encoder with the given full-intensity per-tick spike
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if `max_rate` is outside `[0, 1]`.
    pub fn new(max_rate: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&max_rate),
            "max_rate must be a probability, got {max_rate}"
        );
        PoissonEncoder { max_rate }
    }

    /// The configured full-intensity rate.
    pub fn max_rate(&self) -> f32 {
        self.max_rate
    }

    /// Samples one tick of spikes: appends the indices of spiking inputs to
    /// `spikes_out` (cleared first). `rates` holds intensities in `[0, 1]`.
    pub fn sample_tick(&self, rates: &[f32], rng: &mut StdRng, spikes_out: &mut Vec<usize>) {
        spikes_out.clear();
        for (i, &r) in rates.iter().enumerate() {
            if r > 0.0 {
                let p = (r * self.max_rate).min(1.0);
                if rng.gen_range(0.0f32..1.0) < p {
                    spikes_out.push(i);
                }
            }
        }
    }

    /// Appends the indices of all active inputs (`rates[i] > 0`) to
    /// `active_out` (cleared first). Computed once per presentation by the
    /// event-driven kernel so each tick only visits inputs that can spike.
    pub fn active_inputs(&self, rates: &[f32], active_out: &mut Vec<usize>) {
        active_out.clear();
        for (i, &r) in rates.iter().enumerate() {
            if r > 0.0 {
                active_out.push(i);
            }
        }
    }

    /// Like [`PoissonEncoder::sample_tick`] but only visits the
    /// pre-computed `active` index list (all `i` with `rates[i] > 0`, in
    /// ascending order). Consumes the RNG exactly as `sample_tick` does —
    /// one draw per active input — so the two paths produce bit-identical
    /// spike trains from the same generator state.
    pub fn sample_tick_active(
        &self,
        rates: &[f32],
        active: &[usize],
        rng: &mut StdRng,
        spikes_out: &mut Vec<usize>,
    ) {
        spikes_out.clear();
        for &i in active {
            let p = (rates[i] * self.max_rate).min(1.0);
            if rng.gen_range(0.0f32..1.0) < p {
                spikes_out.push(i);
            }
        }
    }

    /// Expected number of spikes for `rates` over `ticks` ticks.
    pub fn expected_spikes(&self, rates: &[f32], ticks: u32) -> f32 {
        rates
            .iter()
            .map(|&r| (r * self.max_rate).min(1.0))
            .sum::<f32>()
            * ticks as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn zero_intensity_never_spikes() {
        let enc = PoissonEncoder::new(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        let mut out = Vec::new();
        for _ in 0..100 {
            enc.sample_tick(&[0.0, 0.0, 0.0], &mut rng, &mut out);
            assert!(out.is_empty());
        }
    }

    #[test]
    fn full_intensity_spikes_at_max_rate() {
        let enc = PoissonEncoder::new(0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut out = Vec::new();
        let mut count = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            enc.sample_tick(&[1.0], &mut rng, &mut out);
            count += out.len();
        }
        let rate = count as f64 / trials as f64;
        assert!((rate - 0.5).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn partial_intensity_scales_rate() {
        let enc = PoissonEncoder::new(0.8);
        let mut rng = StdRng::seed_from_u64(3);
        let mut out = Vec::new();
        let mut count = 0usize;
        let trials = 10_000;
        for _ in 0..trials {
            enc.sample_tick(&[0.5], &mut rng, &mut out);
            count += out.len();
        }
        let rate = count as f64 / trials as f64;
        assert!((rate - 0.4).abs() < 0.03, "observed rate {rate}");
    }

    #[test]
    fn expected_spikes_matches_configuration() {
        let enc = PoissonEncoder::new(0.5);
        let e = enc.expected_spikes(&[1.0, 0.5, 0.0], 32);
        assert!((e - (0.5 + 0.25) * 32.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_rate() {
        let _ = PoissonEncoder::new(1.5);
    }

    #[test]
    fn active_sampling_matches_full_scan() {
        let enc = PoissonEncoder::new(0.7);
        let rates = [0.0, 0.9, 0.0, 0.4, 1.0, 0.0];
        let mut active = Vec::new();
        enc.active_inputs(&rates, &mut active);
        assert_eq!(active, vec![1, 3, 4]);
        // Identical RNG consumption: both paths draw once per active input,
        // so seeded generators stay in lockstep across ticks.
        let mut rng_a = StdRng::seed_from_u64(9);
        let mut rng_b = StdRng::seed_from_u64(9);
        let (mut out_a, mut out_b) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            enc.sample_tick(&rates, &mut rng_a, &mut out_a);
            enc.sample_tick_active(&rates, &active, &mut rng_b, &mut out_b);
            assert_eq!(out_a, out_b);
        }
    }
}
