//! The pre-rewrite per-synapse presentation kernel, retained verbatim as
//! the equivalence baseline for the event-driven hot path in
//! [`crate::network`].
//!
//! Two same-seeded networks, one stepped with
//! [`DiehlCookNetwork::present`] and one with
//! [`DiehlCookNetwork::present_reference`], consume their RNG identically
//! and therefore see bit-identical input spike trains. Membrane arithmetic
//! is *re-associated* by the event-driven kernel (a tick's synaptic drive
//! is pre-summed into a buffer before one bulk injection, and lateral
//! inhibition lands as one batched term instead of per-spike scatters), so
//! potentials may differ in the last few ULPs — which is why the
//! equivalence suite asserts on spike structure (winner, fired order,
//! counts, first-fire ticks) and near-equal weights rather than bitwise
//! membrane state. See `tests/kernel_equivalence.rs`.
//!
//! This module is *not* a second implementation to maintain feature-parity
//! with: it exists to (a) pin the semantics of the optimized kernel and
//! (b) serve as the "before" measurement in `repro bench` and the
//! `snn_present` Criterion group.

use pathfinder_telemetry as telemetry;

use crate::network::{argmax_f32, DiehlCookNetwork, RunOutcome};

impl DiehlCookNetwork {
    /// Presents `rates` through the retained pre-rewrite kernel: a full
    /// rate scan per tick, one [`crate::LifLayer::inject`] call per
    /// (input-spike × excitatory-neuron) synapse, a per-spike O(n_exc)
    /// inhibition scatter, and per-presentation buffer allocations.
    ///
    /// Semantically equivalent to [`DiehlCookNetwork::present`] (identical
    /// RNG consumption; spike trains match up to fp re-association of the
    /// membrane updates). Kept for equivalence tests and as the benchmark
    /// baseline — production paths should call `present`.
    ///
    /// # Panics
    ///
    /// Panics if `rates.len() != n_input`.
    pub fn present_reference(&mut self, rates: &[f32], learn: bool) -> RunOutcome {
        assert_eq!(
            rates.len(),
            self.cfg.n_input,
            "rates length must equal n_input"
        );
        self.presentations += 1;
        // Theta adapts even without learning; see `present_inner`.
        self.weight_version = self.weight_version.wrapping_add(1);
        let _present_span = telemetry::timer!("snn.present");
        let mut input_spike_total = 0u64;
        let mut stdp_updates = 0u64;
        // Fresh state per presentation (weights and theta persist).
        self.exc.reset_state();
        self.inh.reset_state();
        self.x_pre.fill(0.0);
        self.x_post.fill(0.0);

        let n_exc = self.cfg.n_exc;
        let mut input_spikes: Vec<usize> = Vec::new();
        let mut exc_spikes: Vec<usize> = Vec::new();
        let mut inh_spikes: Vec<usize> = Vec::new();

        let mut spike_counts = vec![0u32; n_exc];
        let mut first_fire: Vec<Option<u32>> = vec![None; n_exc];
        let mut fired_order: Vec<usize> = Vec::new();
        let mut first_fire_tick: Option<u32> = None;

        let drive_scores = self.expected_drive_scores(rates);
        let first_tick_argmax = argmax_f32(&drive_scores);

        for tick in 0..self.cfg.ticks {
            // 1. Sample this tick's input spikes (full scan of all rates).
            self.encoder
                .sample_tick(rates, &mut self.rng, &mut input_spikes);

            // 2. Synaptic propagation: one injection per synapse.
            let gain = self.cfg.input_gain;
            for &i in &input_spikes {
                let row = &self.weights[i * n_exc..(i + 1) * n_exc];
                for (j, &w) in row.iter().enumerate() {
                    self.exc.inject(j, w * gain);
                }
            }
            // 3. Advance the excitatory population.
            self.exc.step(&mut exc_spikes);
            self.exc.decay_theta(self.cfg.tc_theta_decay);

            // 4. Lateral inhibition: per-spike O(n_exc) scatter.
            for &j in &exc_spikes {
                self.inh.inject(j, self.cfg.exc_strength);
                for k in 0..n_exc {
                    if k != j {
                        self.exc.inject(k, -self.cfg.inh_strength);
                    }
                }
            }
            self.inh.step(&mut inh_spikes);

            // 6. Bookkeeping.
            for &j in &exc_spikes {
                spike_counts[j] += 1;
                if first_fire[j].is_none() {
                    first_fire[j] = Some(tick);
                    fired_order.push(j);
                }
                first_fire_tick.get_or_insert(tick);
                self.exc.bump_theta(j, self.cfg.theta_plus);
            }

            // 7. STDP (PostPre): traces decay, then spikes update weights.
            if learn {
                stdp_updates += self.stdp_tick(&input_spikes, &exc_spikes);
            }
            if telemetry::enabled() {
                input_spike_total += input_spikes.len() as u64;
            }
        }

        if learn {
            self.normalize_dirty();
        }

        if telemetry::enabled() {
            telemetry::counter!("snn.presentations", 1);
            telemetry::counter!(
                "snn.exc.spikes",
                spike_counts.iter().map(|&c| c as u64).sum::<u64>()
            );
            telemetry::counter!("snn.input.spikes", input_spike_total);
            if learn {
                telemetry::counter!("snn.stdp.weight_updates", stdp_updates);
            }
        }

        let winner = Self::pick_winner(&spike_counts, &first_fire, &drive_scores);
        let runner_up_potential = self.runner_up_potential(winner);

        RunOutcome {
            spike_counts,
            winner,
            fired: fired_order,
            first_fire_tick,
            first_tick_argmax,
            runner_up_potential,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{DiehlCookNetwork, SnnConfig};

    fn small_cfg() -> SnnConfig {
        let mut cfg = SnnConfig {
            n_input: 24,
            n_exc: 8,
            ..SnnConfig::default()
        };
        cfg.stdp.norm = 4.8;
        cfg
    }

    #[test]
    fn reference_kernel_learns_like_the_event_kernel() {
        let mut net = DiehlCookNetwork::new(small_cfg(), 7).unwrap();
        let mut rates = vec![0.0f32; 24];
        for i in [2usize, 10, 19] {
            rates[i] = 1.0;
        }
        let mut last_winner = None;
        for _ in 0..6 {
            last_winner = net.present_reference(&rates, true).winner.or(last_winner);
        }
        let trained = last_winner.expect("some neuron fires");
        let mut consistent = 0;
        for _ in 0..5 {
            if net.present_reference(&rates, true).winner == Some(trained) {
                consistent += 1;
            }
        }
        assert!(consistent >= 4, "stable winner, got {consistent}/5");
    }
}
