//! A vectorized population of leaky-integrate-and-fire neurons.
//!
//! The bulk operations (`inject_all`, `inject_uniform`, `step`,
//! `decay_theta_by`) dispatch through [`crate::accel`]: each layer captures
//! a [`KernelTier`] at construction and routes its hot loops to the scalar
//! or AVX2 kernels accordingly. The tiers are bit-identical (see the
//! `accel` module docs), so the choice is invisible to everything but the
//! clock.

use crate::accel::{self, KernelTier, LifStepParams};
use crate::config::LifConfig;

/// State of one LIF population: potentials, refractory timers, and (for
/// excitatory populations) adaptive thresholds.
#[derive(Debug, Clone)]
pub struct LifLayer {
    config: LifConfig,
    /// Membrane potentials (mV).
    v: Vec<f32>,
    /// Remaining refractory ticks per neuron.
    refrac: Vec<u32>,
    /// Adaptive threshold offsets (Diehl & Cook theta); all-zero unless
    /// [`LifLayer::bump_theta`] is used.
    theta: Vec<f32>,
    /// Precomputed per-tick decay factor `exp(-dt / tc_decay)`.
    decay: f32,
    /// The kernel tier the bulk operations dispatch to.
    tier: KernelTier,
}

impl LifLayer {
    /// Creates a population of `n` neurons at rest, dispatching its bulk
    /// operations to the process-wide [`accel::active_tier`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: LifConfig) -> Self {
        Self::with_tier(n, config, accel::active_tier())
    }

    /// Creates a population of `n` neurons at rest with an explicit kernel
    /// tier. Used by tier-pinning tests and by
    /// `DiehlCookNetwork::with_kernel_tier`; most callers want
    /// [`LifLayer::new`].
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`, or if `tier` is not supported on this host
    /// (`tier.supported()` is false) — running SIMD kernels without their
    /// CPU feature would be undefined behaviour, so construction refuses.
    pub fn with_tier(n: usize, config: LifConfig, tier: KernelTier) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(
            tier.supported(),
            "kernel tier {:?} is not supported on this host",
            tier
        );
        LifLayer {
            config,
            v: vec![config.v_rest; n],
            refrac: vec![0; n],
            theta: vec![0.0; n],
            decay: (-1.0 / config.tc_decay).exp(),
            tier,
        }
    }

    /// The kernel tier this layer's bulk operations dispatch to.
    pub fn kernel_tier(&self) -> KernelTier {
        self.tier
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// Whether the population is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// The LIF parameters in use.
    pub fn config(&self) -> &LifConfig {
        &self.config
    }

    /// Current membrane potentials.
    pub fn potentials(&self) -> &[f32] {
        &self.v
    }

    /// Adaptive threshold offsets.
    pub fn thetas(&self) -> &[f32] {
        &self.theta
    }

    /// Injects synaptic current into neuron `i` (positive = excitatory).
    ///
    /// Refractory neurons ignore input, as in BindsNet.
    #[inline]
    pub fn inject(&mut self, i: usize, current: f32) {
        if self.refrac[i] == 0 {
            self.v[i] += current;
        }
    }

    /// Bulk injection: adds `currents[i] * gain` to every non-refractory
    /// neuron in one contiguous pass. This is the event-driven kernel's
    /// replacement for per-synapse [`LifLayer::inject`] calls — the caller
    /// accumulates a tick's synaptic drive into a scratch buffer and lands
    /// it on the membrane in a single sweep.
    ///
    /// # Panics
    ///
    /// Panics if `currents.len()` differs from the population size.
    #[inline]
    pub fn inject_all(&mut self, currents: &[f32], gain: f32) {
        assert_eq!(currents.len(), self.v.len(), "drive buffer length");
        accel::masked_scaled_add(self.tier, &mut self.v, &self.refrac, currents, gain);
    }

    /// Injects the same `current` into every non-refractory neuron. Batched
    /// lateral inhibition uses this for the population-wide term, then adds
    /// each firing neuron's own contribution back with [`LifLayer::inject`].
    #[inline]
    pub fn inject_uniform(&mut self, current: f32) {
        accel::masked_add_uniform(self.tier, &mut self.v, &self.refrac, current);
    }

    /// Advances one tick: decays potentials toward rest, decrements
    /// refractory timers, and collects spikes into `spikes_out` (indices of
    /// neurons that crossed threshold, in ascending order). Spiking neurons
    /// reset and enter their refractory period.
    pub fn step(&mut self, spikes_out: &mut Vec<usize>) {
        let c = &self.config;
        let p = LifStepParams {
            v_rest: c.v_rest,
            decay: self.decay,
            v_thresh: c.v_thresh,
            v_reset: c.v_reset,
            refractory: c.refractory,
        };
        accel::lif_step(
            self.tier,
            &mut self.v,
            &mut self.refrac,
            &self.theta,
            p,
            spikes_out,
        );
    }

    /// Raises neuron `i`'s adaptive threshold by `theta_plus`.
    pub fn bump_theta(&mut self, i: usize, theta_plus: f32) {
        self.theta[i] += theta_plus;
    }

    /// Decays all adaptive thresholds by `exp(-dt/tc)`; called once per tick
    /// for excitatory populations.
    pub fn decay_theta(&mut self, tc_theta: f32) {
        self.decay_theta_by((-1.0 / tc_theta).exp());
    }

    /// Multiplies every adaptive threshold by a precomputed decay factor.
    /// The event-driven presentation kernel hoists the `exp` in
    /// [`LifLayer::decay_theta`] out of the per-tick path and passes the
    /// cached factor here instead.
    #[inline]
    pub fn decay_theta_by(&mut self, factor: f32) {
        accel::scale_in_place(self.tier, &mut self.theta, factor);
    }

    /// Resets potentials and refractory state (not theta) for the next input
    /// presentation, as BindsNet does between samples.
    pub fn reset_state(&mut self) {
        self.v.fill(self.config.v_rest);
        self.refrac.fill(0);
    }

    /// Copies the adaptive thresholds into `out` (cleared and resized).
    /// Paired with [`LifLayer::restore_thetas`] by frozen-weight inference
    /// kernels that must leave persistent state untouched.
    pub fn save_thetas_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.extend_from_slice(&self.theta);
    }

    /// Restores thresholds previously captured with
    /// [`LifLayer::save_thetas_into`].
    ///
    /// # Panics
    ///
    /// Panics if `saved.len()` differs from the population size.
    pub fn restore_thetas(&mut self, saved: &[f32]) {
        assert_eq!(saved.len(), self.theta.len(), "theta snapshot length");
        self.theta.copy_from_slice(saved);
    }

    /// Index of the neuron with the highest effective drive above its
    /// threshold margin, used by the paper's 1-tick approximation:
    /// "the neuron with the highest potential after 1 tick would have been
    /// the first to fire" (§3.4).
    pub fn argmax_potential(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.v.iter().enumerate() {
            // Compare headroom-to-threshold so adaptive thresholds are
            // honoured: a high-theta neuron needs a higher potential to win.
            let margin = v - self.theta[i];
            if margin > best_v {
                best_v = margin;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LifConfig;

    fn layer(n: usize) -> LifLayer {
        LifLayer::new(n, LifConfig::excitatory())
    }

    #[test]
    fn starts_at_rest() {
        let l = layer(4);
        assert!(l.potentials().iter().all(|&v| v == -65.0));
    }

    #[test]
    fn injection_then_threshold_fires() {
        let mut l = layer(2);
        l.inject(0, 14.0); // -65 + 14 = -51 > -52 threshold
        let mut spikes = Vec::new();
        l.step(&mut spikes);
        assert_eq!(spikes, vec![0]);
        assert_eq!(l.potentials()[0], -60.0, "reset after spike");
    }

    #[test]
    fn subthreshold_input_decays_away() {
        let mut l = layer(1);
        l.inject(0, 5.0);
        let mut spikes = Vec::new();
        let v1 = {
            l.step(&mut spikes);
            l.potentials()[0]
        };
        assert!(spikes.is_empty());
        for _ in 0..1000 {
            l.step(&mut spikes);
        }
        let v_final = l.potentials()[0];
        assert!(v_final > -65.01 && v_final < v1, "decays toward rest");
    }

    #[test]
    fn refractory_neurons_ignore_input() {
        let mut l = layer(1);
        l.inject(0, 20.0);
        let mut spikes = Vec::new();
        l.step(&mut spikes);
        assert_eq!(spikes.len(), 1);
        // During refractory period further input has no effect.
        l.inject(0, 100.0);
        l.step(&mut spikes);
        assert!(spikes.is_empty());
        assert_eq!(l.potentials()[0], -60.0);
    }

    #[test]
    fn theta_raises_effective_threshold() {
        let mut l = layer(1);
        l.bump_theta(0, 2.0);
        l.inject(0, 14.0); // would fire without theta
        let mut spikes = Vec::new();
        l.step(&mut spikes);
        assert!(spikes.is_empty(), "theta blocks the spike");
        l.inject(0, 3.0);
        l.step(&mut spikes);
        assert_eq!(spikes, vec![0], "enough drive overcomes theta");
    }

    #[test]
    fn theta_decays() {
        let mut l = layer(1);
        l.bump_theta(0, 1.0);
        for _ in 0..100 {
            l.decay_theta(10.0);
        }
        assert!(l.thetas()[0] < 1e-3);
    }

    #[test]
    fn reset_state_keeps_theta() {
        let mut l = layer(1);
        l.bump_theta(0, 0.5);
        l.inject(0, 5.0);
        l.reset_state();
        assert_eq!(l.potentials()[0], -65.0);
        assert_eq!(l.thetas()[0], 0.5);
    }

    #[test]
    fn forced_scalar_layer_matches_dispatched_layer_bitwise() {
        let mut native = layer(13);
        let mut scalar = LifLayer::with_tier(13, LifConfig::excitatory(), KernelTier::Scalar);
        assert_eq!(scalar.kernel_tier(), KernelTier::Scalar);
        let currents: Vec<f32> = (0..13).map(|i| (i as f32) * 1.3 - 2.0).collect();
        let mut spikes_a = Vec::new();
        let mut spikes_b = Vec::new();
        for tick in 0..20 {
            for l in [&mut native, &mut scalar] {
                l.inject_all(&currents, 2.1);
                l.inject_uniform(if tick % 3 == 0 { -4.0 } else { 0.5 });
            }
            native.step(&mut spikes_a);
            scalar.step(&mut spikes_b);
            assert_eq!(spikes_a, spikes_b, "spikes diverged at tick {tick}");
            for &j in &spikes_a {
                native.bump_theta(j, 0.05);
                scalar.bump_theta(j, 0.05);
            }
            native.decay_theta_by(0.999);
            scalar.decay_theta_by(0.999);
        }
        let a: Vec<u32> = native.potentials().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = scalar.potentials().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "potentials must be bitwise identical across tiers");
    }

    #[test]
    fn argmax_honours_theta() {
        let mut l = layer(2);
        l.inject(0, 5.0);
        l.inject(1, 4.0);
        // Neuron 0 leads on raw potential but a big theta penalizes it.
        l.bump_theta(0, 3.0);
        assert_eq!(l.argmax_potential(), 1);
    }
}
