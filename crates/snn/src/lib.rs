//! # pathfinder-snn
//!
//! A from-scratch spiking-neural-network engine reproducing the BindsNet
//! `DiehlAndCook2015` setup the PATHFINDER paper builds on (§2.4, §3.1,
//! Table 4): leaky-integrate-and-fire neurons, Poisson rate coding, a
//! one-to-one inhibitory layer for lateral inhibition, adaptive thresholds,
//! and on-line STDP learning with per-neuron weight normalization.
//!
//! The engine also implements the paper's 1-tick approximation (§3.4): the
//! neuron with the highest potential after a single expected-current tick
//! stands in for the full 32-tick winner, cutting inference cost by ~32x at
//! almost no accuracy loss (Table 1, Figure 7).
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_snn::{DiehlCookNetwork, SnnConfig};
//!
//! let mut cfg = SnnConfig::default();
//! cfg.n_input = 32;
//! cfg.n_exc = 10;
//! let mut net = DiehlCookNetwork::new(cfg, 7)?;
//!
//! // Present a 3-pixel pattern repeatedly; STDP makes one neuron own it.
//! let mut rates = vec![0.0f32; 32];
//! for i in [3usize, 12, 21] { rates[i] = 1.0; }
//! let mut winner = None;
//! for _ in 0..8 {
//!     winner = net.present(&rates, true).winner.or(winner);
//! }
//! assert!(winner.is_some());
//! # Ok::<(), String>(())
//! ```

#![warn(missing_docs)]

pub mod accel;
pub mod config;
pub mod encoding;
pub mod lif;
pub mod monitor;
pub mod network;
pub mod reference;

pub use accel::{active_tier, CpuCapabilities, KernelTier};
pub use config::{LifConfig, SnnConfig, StdpConfig};
pub use encoding::PoissonEncoder;
pub use lif::LifLayer;
pub use monitor::SpikeMonitor;
pub use network::{DiehlCookNetwork, RunOutcome};
