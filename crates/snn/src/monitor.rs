//! Run-time observation of neuron behaviour, mirroring the BindsNet monitor
//! classes the paper used to produce Figure 3 and Table 2.

/// Records per-tick excitatory potentials and spikes across one or more
/// input presentations.
#[derive(Debug, Clone, Default)]
pub struct SpikeMonitor {
    n_neurons: usize,
    /// Potentials, tick-major: `potentials[t][j]`.
    potentials: Vec<Vec<f32>>,
    /// Spiking neuron indices per tick.
    spikes: Vec<Vec<usize>>,
    /// Tick indices at which a new input presentation began.
    interval_starts: Vec<usize>,
}

impl SpikeMonitor {
    /// Creates an empty monitor.
    pub fn new() -> Self {
        SpikeMonitor::default()
    }

    /// Marks the start of a new input interval.
    pub fn begin_interval(&mut self) {
        self.interval_starts.push(self.potentials.len());
    }

    /// Records one tick of activity.
    pub fn record_tick(&mut self, potentials: &[f32], spikes: &[usize]) {
        self.n_neurons = potentials.len();
        self.potentials.push(potentials.to_vec());
        self.spikes.push(spikes.to_vec());
    }

    /// Number of ticks recorded.
    pub fn ticks(&self) -> usize {
        self.potentials.len()
    }

    /// Number of neurons observed.
    pub fn n_neurons(&self) -> usize {
        self.n_neurons
    }

    /// The potential trajectory of neuron `j` across all recorded ticks.
    pub fn potential_series(&self, j: usize) -> Vec<f32> {
        self.potentials.iter().map(|p| p[j]).collect()
    }

    /// All ticks at which neuron `j` spiked.
    pub fn spike_ticks(&self, j: usize) -> Vec<usize> {
        self.spikes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.contains(&j))
            .map(|(t, _)| t)
            .collect()
    }

    /// Total spike count per neuron.
    pub fn spike_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_neurons];
        for s in &self.spikes {
            for &j in s {
                counts[j] += 1;
            }
        }
        counts
    }

    /// Tick indices at which input intervals began.
    pub fn interval_starts(&self) -> &[usize] {
        &self.interval_starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut m = SpikeMonitor::new();
        m.begin_interval();
        m.record_tick(&[-65.0, -60.0], &[]);
        m.record_tick(&[-55.0, -61.0], &[0]);
        m.begin_interval();
        m.record_tick(&[-65.0, -59.0], &[1]);

        assert_eq!(m.ticks(), 3);
        assert_eq!(m.n_neurons(), 2);
        assert_eq!(m.potential_series(0), vec![-65.0, -55.0, -65.0]);
        assert_eq!(m.spike_ticks(0), vec![1]);
        assert_eq!(m.spike_ticks(1), vec![2]);
        assert_eq!(m.spike_counts(), vec![1, 1]);
        assert_eq!(m.interval_starts(), &[0, 2]);
    }

    #[test]
    fn empty_monitor_is_sane() {
        let m = SpikeMonitor::new();
        assert_eq!(m.ticks(), 0);
        assert!(m.spike_counts().is_empty());
    }
}
