//! Runtime-dispatched SIMD kernels for the SNN hot loops.
//!
//! The presentation hot path spends nearly all of its time in a handful of
//! dense f32 loops over the excitatory population (drive accumulation,
//! membrane integration, theta decay) and the weight matrix (expected-drive
//! scores, normalization). This module provides AVX2 implementations of
//! those loops behind a *checked* runtime dispatch: capabilities are probed
//! once per process with `is_x86_feature_detected!` (see
//! [`CpuCapabilities::detect`] / [`active_tier`]), every network captures
//! the selected [`KernelTier`] at construction, and hosts without AVX2 —
//! or runs with the `PATHFINDER_FORCE_SCALAR` environment override set —
//! fall back to the portable scalar loops.
//!
//! ## The bit-identity contract
//!
//! Every AVX2 kernel performs **exactly the same IEEE-754 operations per
//! element, in the same order, as its scalar fallback**: multiplies and
//! adds are kept as separate rounding steps (no FMA contraction), no
//! reduction is re-associated (the per-column weight sums accumulate row
//! by row, in the same order a strided column walk visits them), and
//! masked lanes preserve their input bits exactly. Dispatch therefore
//! never changes results — not within a tolerance, but *bitwise* — which
//! is what lets `crates/snn/tests/accel_equivalence.rs` pin the tiers
//! against each other with exact equality on every outcome, and lets the
//! existing kernel-equivalence suite hold unchanged under either tier.
//!
//! ## Forcing the scalar tier
//!
//! Setting `PATHFINDER_FORCE_SCALAR` to anything other than `0`, `false`,
//! or the empty string makes [`active_tier`] return [`KernelTier::Scalar`]
//! regardless of CPU support. CI runs the SNN test suite once under this
//! override so the scalar fallback stays equivalence-pinned even on AVX2
//! runners. The variable is read once per process (the tier is cached in a
//! `OnceLock`); changing it at runtime has no effect on networks already
//! constructed or on later [`active_tier`] calls.
//!
//! ## Shared dispatch machinery
//!
//! The capability probe, tier enum, and override parsing started life in
//! this module (PR 6) and now live in the workspace-shared
//! [`pathfinder_accel`] crate, where the `sim` crate's integer replay
//! kernels dispatch through the same types. The elementwise f32 kernels
//! (`add_assign`, `scale_in_place`, `masked_scaled_add`,
//! `masked_add_uniform`, `lif_step` and its `LifStepParams`) moved there
//! too (PR 10), because the cross-query batched kernel reuses them
//! verbatim over lane-major `[lanes × n]` state — dispatching the single-
//! and multi-lane paths through the *same* functions makes their
//! per-element bit-identity true by construction.
//! This module re-exports everything unchanged and keeps only the kernels
//! with SNN-specific shapes (expected-drive accumulation, theta-gap
//! readout, column-strided normalization).

pub use pathfinder_accel::{active_tier, CpuCapabilities, KernelTier};
pub(crate) use pathfinder_accel::{
    add_assign, lif_step, masked_add_uniform, masked_scaled_add, scale_in_place, LifStepParams,
};

// ---------------------------------------------------------------------------
// Dispatch wrappers. Each asserts slice-shape invariants once, then routes
// to the scalar loop or (behind the capability check encoded in the tier's
// construction) the AVX2 kernel.
// ---------------------------------------------------------------------------

/// `dst[i] += k * src[i]` — the expected-drive accumulation
/// (`rate × weight-row`), kept as separate mul/add roundings.
#[inline]
pub(crate) fn scaled_add_assign(tier: KernelTier, dst: &mut [f32], src: &[f32], k: f32) {
    assert_eq!(dst.len(), src.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => scaled_add_assign_scalar(dst, src, k),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::scaled_add_assign(dst, src, k) },
    }
}

/// `scores[i] /= gap + max(thetas[i], 0)` — the final step of the §3.4
/// expected time-to-fire readout.
#[inline]
pub(crate) fn div_by_theta_gap(tier: KernelTier, scores: &mut [f32], thetas: &[f32], gap: f32) {
    assert_eq!(scores.len(), thetas.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => div_by_theta_gap_scalar(scores, thetas, gap),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::div_by_theta_gap(scores, thetas, gap) },
    }
}

/// Per-column sums of an input-major weight matrix (`weights[i * n_cols
/// + j]`), written into `out` (cleared and resized to `n_cols`). Columns
/// accumulate row by row — the same ascending-`i` order as a strided
/// column walk, so the sums are bit-identical to
/// `DiehlCookNetwork::column_weights(j).sum()`.
#[inline]
pub(crate) fn column_sums(tier: KernelTier, weights: &[f32], n_cols: usize, out: &mut Vec<f32>) {
    assert!(n_cols > 0, "accel: n_cols must be positive");
    assert_eq!(weights.len() % n_cols, 0, "accel: ragged weight matrix");
    out.clear();
    out.resize(n_cols, 0.0);
    for row in weights.chunks_exact(n_cols) {
        add_assign(tier, out, row);
    }
}

/// Scales column `j` of an input-major weight matrix by `scales[j]`,
/// applied row by row. A scale of exactly `1.0` is an IEEE identity, so
/// callers pass `1.0` for columns that must not move.
#[inline]
pub(crate) fn scale_columns(tier: KernelTier, weights: &mut [f32], n_cols: usize, scales: &[f32]) {
    assert!(n_cols > 0, "accel: n_cols must be positive");
    assert_eq!(weights.len() % n_cols, 0, "accel: ragged weight matrix");
    assert_eq!(scales.len(), n_cols, "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => {
            for row in weights.chunks_exact_mut(n_cols) {
                mul_assign_scalar(row, scales);
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe {
            for row in weights.chunks_exact_mut(n_cols) {
                avx2::mul_assign(row, scales);
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels — the semantic baseline. The AVX2 kernels below reuse
// these for their non-multiple-of-8 tails.
// ---------------------------------------------------------------------------

fn scaled_add_assign_scalar(dst: &mut [f32], src: &[f32], k: f32) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += k * s;
    }
}

fn mul_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

fn div_by_theta_gap_scalar(scores: &mut [f32], thetas: &[f32], gap: f32) {
    for (d, &t) in scores.iter_mut().zip(thetas) {
        *d /= gap + t.max(0.0);
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Each processes 8 lanes per iteration with the *same*
// per-element operations as its scalar counterpart (separate mul/add
// roundings, IEEE division, masked lanes untouched bitwise) and hands the
// remainder to the scalar loop.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    const LANES: usize = 8;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scaled_add_assign(dst: &mut [f32], src: &[f32], k: f32) {
        let n = dst.len();
        let kk = _mm256_set1_ps(k);
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            // mul then add as two roundings — no FMA, matching scalar.
            let prod = _mm256_mul_ps(kk, s);
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, prod));
            i += LANES;
        }
        super::scaled_add_assign_scalar(&mut dst[i..], &src[i..], k);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(d, s));
            i += LANES;
        }
        super::mul_assign_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn div_by_theta_gap(scores: &mut [f32], thetas: &[f32], gap: f32) {
        let n = scores.len();
        let g = _mm256_set1_ps(gap);
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(scores.as_ptr().add(i));
            let t = _mm256_loadu_ps(thetas.as_ptr().add(i));
            // max(t, 0): theta is never NaN and never negative in this
            // network, so lane semantics match scalar f32::max exactly.
            let denom = _mm256_add_ps(g, _mm256_max_ps(t, zero));
            _mm256_storeu_ps(scores.as_mut_ptr().add(i), _mm256_div_ps(d, denom));
            i += LANES;
        }
        super::div_by_theta_gap_scalar(&mut scores[i..], &thetas[i..], gap);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // (The dispatch-machinery tests — override parsing, forced-scalar
    // precedence, tier support — moved to `pathfinder-accel` with the
    // machinery itself; what stays here pins the f32 kernels.)

    /// Runs `f` once per tier and asserts the mutated buffer is bitwise
    /// identical. On hosts without AVX2 this degenerates to scalar-vs-
    /// scalar, which is still a valid (if trivial) check.
    fn assert_tiers_bitwise<F: Fn(KernelTier, &mut [f32])>(init: &[f32], f: F) {
        let mut scalar = init.to_vec();
        f(KernelTier::Scalar, &mut scalar);
        #[cfg(target_arch = "x86_64")]
        if KernelTier::Avx2.supported() {
            let mut simd = init.to_vec();
            f(KernelTier::Avx2, &mut simd);
            let scalar_bits: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
            let simd_bits: Vec<u32> = simd.iter().map(|x| x.to_bits()).collect();
            assert_eq!(scalar_bits, simd_bits, "tiers diverged bitwise");
        }
    }

    fn rand_vec(rng: &mut StdRng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    #[test]
    fn elementwise_kernels_are_bitwise_identical_across_tiers() {
        let mut rng = StdRng::seed_from_u64(7);
        // Lengths straddle the 8-lane boundary: pure tail, exact lanes,
        // lanes + tail, and the paper-default population size.
        for n in [1usize, 5, 8, 13, 16, 27, 50, 384] {
            let src = rand_vec(&mut rng, n, -2.0, 2.0);
            let init = rand_vec(&mut rng, n, -70.0, -40.0);
            let thetas = rand_vec(&mut rng, n, 0.0, 40.0);
            let refrac: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..3)).collect();

            assert_tiers_bitwise(&init, |t, d| add_assign(t, d, &src));
            assert_tiers_bitwise(&init, |t, d| scaled_add_assign(t, d, &src, 0.7371));
            assert_tiers_bitwise(&init, |t, d| scale_in_place(t, d, 0.99731));
            assert_tiers_bitwise(&init, |t, d| div_by_theta_gap(t, d, &thetas, 13.0));
            assert_tiers_bitwise(&init, |t, d| masked_scaled_add(t, d, &refrac, &src, 2.1));
            assert_tiers_bitwise(&init, |t, d| masked_add_uniform(t, d, &refrac, -17.5));
        }
    }

    #[test]
    fn lif_step_is_bitwise_identical_across_tiers() {
        let p = LifStepParams {
            v_rest: -65.0,
            decay: 0.99,
            v_thresh: -52.0,
            v_reset: -60.0,
            refractory: 5,
        };
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 7, 8, 9, 24, 50] {
            // Potentials spanning rest-to-above-threshold so some lanes
            // spike, plus a mix of refractory counters.
            let v0 = rand_vec(&mut rng, n, -70.0, -45.0);
            let theta0 = rand_vec(&mut rng, n, 0.0, 5.0);
            let refrac0: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..3)).collect();

            let run = |tier: KernelTier| {
                let mut v = v0.clone();
                let mut refrac = refrac0.clone();
                let mut spikes = Vec::new();
                let mut all_spikes = Vec::new();
                // Several ticks so reset/refractory state feeds back.
                for _ in 0..6 {
                    lif_step(tier, &mut v, &mut refrac, &theta0, p, &mut spikes);
                    all_spikes.push(spikes.clone());
                }
                let bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
                (bits, refrac, all_spikes)
            };

            let scalar = run(KernelTier::Scalar);
            #[cfg(target_arch = "x86_64")]
            if KernelTier::Avx2.supported() {
                let simd = run(KernelTier::Avx2);
                assert_eq!(scalar.0, simd.0, "potentials diverged (n={n})");
                assert_eq!(scalar.1, simd.1, "refractory state diverged (n={n})");
                assert_eq!(scalar.2, simd.2, "spike trains diverged (n={n})");
            }
            // Sanity: something fired in at least one configuration.
            let _ = scalar;
        }
    }

    #[test]
    fn column_kernels_match_strided_walks() {
        let mut rng = StdRng::seed_from_u64(23);
        for (n_input, n_cols) in [(4usize, 3usize), (24, 8), (16, 1), (384, 50)] {
            let weights = rand_vec(&mut rng, n_input * n_cols, 0.0, 0.3);
            let run_sums = |tier: KernelTier| {
                let mut out = Vec::new();
                column_sums(tier, &weights, n_cols, &mut out);
                out.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
            };
            let scalar_sums = run_sums(KernelTier::Scalar);
            // The strided per-column walk the normalization used to do.
            let strided: Vec<u32> = (0..n_cols)
                .map(|j| {
                    weights[j..]
                        .iter()
                        .step_by(n_cols)
                        .copied()
                        .sum::<f32>()
                        .to_bits()
                })
                .collect();
            assert_eq!(scalar_sums, strided, "row-major sums != strided sums");
            #[cfg(target_arch = "x86_64")]
            if KernelTier::Avx2.supported() {
                assert_eq!(scalar_sums, run_sums(KernelTier::Avx2));
            }

            let scales = rand_vec(&mut rng, n_cols, 0.5, 1.5);
            let run_scale = |tier: KernelTier| {
                let mut w = weights.clone();
                scale_columns(tier, &mut w, n_cols, &scales);
                w.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
            };
            let scalar_scaled = run_scale(KernelTier::Scalar);
            #[cfg(target_arch = "x86_64")]
            if KernelTier::Avx2.supported() {
                assert_eq!(scalar_scaled, run_scale(KernelTier::Avx2));
            }
            let _ = scalar_scaled;
        }
    }

    #[test]
    fn scale_by_one_is_identity() {
        // The vectorized normalization leaves clean columns at scale 1.0;
        // x * 1.0 must reproduce x's bits exactly (incl. signed zero).
        let xs = [0.0f32, -0.0, 1.5, -2.25, f32::MIN_POSITIVE, 1e30];
        for tier in tiers() {
            let mut w = xs.to_vec();
            scale_columns(tier, &mut w, xs.len(), &vec![1.0; xs.len()]);
            let got: Vec<u32> = w.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = xs.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "x * 1.0 must be bitwise identity");
        }
    }

    /// Every tier executable on this host.
    fn tiers() -> Vec<KernelTier> {
        let mut t = vec![KernelTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        if KernelTier::Avx2.supported() {
            t.push(KernelTier::Avx2);
        }
        t
    }
}
