//! Runtime-dispatched SIMD kernels for the SNN hot loops.
//!
//! The presentation hot path spends nearly all of its time in a handful of
//! dense f32 loops over the excitatory population (drive accumulation,
//! membrane integration, theta decay) and the weight matrix (expected-drive
//! scores, normalization). This module provides AVX2 implementations of
//! those loops behind a *checked* runtime dispatch: capabilities are probed
//! once per process with `is_x86_feature_detected!` (see
//! [`CpuCapabilities::detect`] / [`active_tier`]), every network captures
//! the selected [`KernelTier`] at construction, and hosts without AVX2 —
//! or runs with the `PATHFINDER_FORCE_SCALAR` environment override set —
//! fall back to the portable scalar loops.
//!
//! ## The bit-identity contract
//!
//! Every AVX2 kernel performs **exactly the same IEEE-754 operations per
//! element, in the same order, as its scalar fallback**: multiplies and
//! adds are kept as separate rounding steps (no FMA contraction), no
//! reduction is re-associated (the per-column weight sums accumulate row
//! by row, in the same order a strided column walk visits them), and
//! masked lanes preserve their input bits exactly. Dispatch therefore
//! never changes results — not within a tolerance, but *bitwise* — which
//! is what lets `crates/snn/tests/accel_equivalence.rs` pin the tiers
//! against each other with exact equality on every outcome, and lets the
//! existing kernel-equivalence suite hold unchanged under either tier.
//!
//! ## Forcing the scalar tier
//!
//! Setting `PATHFINDER_FORCE_SCALAR` to anything other than `0`, `false`,
//! or the empty string makes [`active_tier`] return [`KernelTier::Scalar`]
//! regardless of CPU support. CI runs the SNN test suite once under this
//! override so the scalar fallback stays equivalence-pinned even on AVX2
//! runners. The variable is read once per process (the tier is cached in a
//! `OnceLock`); changing it at runtime has no effect on networks already
//! constructed or on later [`active_tier`] calls.
//!
//! ## Shared dispatch machinery
//!
//! The capability probe, tier enum, and override parsing started life in
//! this module (PR 6) and now live in the workspace-shared
//! [`pathfinder_accel`] crate, where the `sim` crate's integer replay
//! kernels dispatch through the same types; this module re-exports them
//! unchanged and keeps only the SNN-specific f32 kernels.

pub use pathfinder_accel::{active_tier, CpuCapabilities, KernelTier};

/// Parameters of one LIF integration tick, hoisted out of
/// [`lif_step`]'s lane loop.
#[derive(Debug, Clone, Copy)]
pub(crate) struct LifStepParams {
    /// Resting potential the membrane decays toward.
    pub v_rest: f32,
    /// Precomputed per-tick decay factor `exp(-1/tc_decay)`.
    pub decay: f32,
    /// Base firing threshold (the adaptive theta is added per neuron).
    pub v_thresh: f32,
    /// Potential after a spike.
    pub v_reset: f32,
    /// Refractory ticks after a spike.
    pub refractory: u32,
}

// ---------------------------------------------------------------------------
// Dispatch wrappers. Each asserts slice-shape invariants once, then routes
// to the scalar loop or (behind the capability check encoded in the tier's
// construction) the AVX2 kernel.
// ---------------------------------------------------------------------------

/// `dst[i] += src[i]` — the event kernel's per-spike weight-row
/// accumulation into the drive buffer, and the row step of
/// [`column_sums`].
#[inline]
pub(crate) fn add_assign(tier: KernelTier, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => add_assign_scalar(dst, src),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: an Avx2 tier is only constructed after a successful
        // `is_x86_feature_detected!("avx2")` probe (see KernelTier docs).
        KernelTier::Avx2 => unsafe { avx2::add_assign(dst, src) },
    }
}

/// `dst[i] += k * src[i]` — the expected-drive accumulation
/// (`rate × weight-row`), kept as separate mul/add roundings.
#[inline]
pub(crate) fn scaled_add_assign(tier: KernelTier, dst: &mut [f32], src: &[f32], k: f32) {
    assert_eq!(dst.len(), src.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => scaled_add_assign_scalar(dst, src, k),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::scaled_add_assign(dst, src, k) },
    }
}

/// `xs[i] *= factor` — theta decay with a precomputed per-tick factor.
#[inline]
pub(crate) fn scale_in_place(tier: KernelTier, xs: &mut [f32], factor: f32) {
    match tier {
        KernelTier::Scalar => scale_in_place_scalar(xs, factor),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::scale_in_place(xs, factor) },
    }
}

/// `scores[i] /= gap + max(thetas[i], 0)` — the final step of the §3.4
/// expected time-to-fire readout.
#[inline]
pub(crate) fn div_by_theta_gap(tier: KernelTier, scores: &mut [f32], thetas: &[f32], gap: f32) {
    assert_eq!(scores.len(), thetas.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => div_by_theta_gap_scalar(scores, thetas, gap),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::div_by_theta_gap(scores, thetas, gap) },
    }
}

/// `v[i] += currents[i] * gain` for every non-refractory neuron
/// (`refrac[i] == 0`) — the bulk synaptic injection behind
/// [`crate::LifLayer::inject_all`].
#[inline]
pub(crate) fn masked_scaled_add(
    tier: KernelTier,
    v: &mut [f32],
    refrac: &[u32],
    currents: &[f32],
    gain: f32,
) {
    assert_eq!(v.len(), refrac.len(), "accel: slice length mismatch");
    assert_eq!(v.len(), currents.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => masked_scaled_add_scalar(v, refrac, currents, gain),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::masked_scaled_add(v, refrac, currents, gain) },
    }
}

/// `v[i] += current` for every non-refractory neuron — the batched
/// lateral-inhibition term behind [`crate::LifLayer::inject_uniform`].
#[inline]
pub(crate) fn masked_add_uniform(tier: KernelTier, v: &mut [f32], refrac: &[u32], current: f32) {
    assert_eq!(v.len(), refrac.len(), "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => masked_add_uniform_scalar(v, refrac, current),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::masked_add_uniform(v, refrac, current) },
    }
}

/// One LIF tick over the whole population: refractory neurons count down
/// and skip integration; the rest leak toward rest and fire when they
/// cross `v_thresh + theta[i]`, resetting to `v_reset` and entering the
/// refractory period. Spiking indices are appended to `spikes_out`
/// (cleared first) in ascending order — the AVX2 path extracts them from
/// the lane movemask lowest-lane-first, so the order matches the scalar
/// walk exactly.
#[inline]
pub(crate) fn lif_step(
    tier: KernelTier,
    v: &mut [f32],
    refrac: &mut [u32],
    theta: &[f32],
    p: LifStepParams,
    spikes_out: &mut Vec<usize>,
) {
    assert_eq!(v.len(), refrac.len(), "accel: slice length mismatch");
    assert_eq!(v.len(), theta.len(), "accel: slice length mismatch");
    spikes_out.clear();
    match tier {
        KernelTier::Scalar => lif_step_scalar(v, refrac, theta, p, 0, spikes_out),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe { avx2::lif_step(v, refrac, theta, p, spikes_out) },
    }
}

/// Per-column sums of an input-major weight matrix (`weights[i * n_cols
/// + j]`), written into `out` (cleared and resized to `n_cols`). Columns
/// accumulate row by row — the same ascending-`i` order as a strided
/// column walk, so the sums are bit-identical to
/// `DiehlCookNetwork::column_weights(j).sum()`.
#[inline]
pub(crate) fn column_sums(tier: KernelTier, weights: &[f32], n_cols: usize, out: &mut Vec<f32>) {
    assert!(n_cols > 0, "accel: n_cols must be positive");
    assert_eq!(weights.len() % n_cols, 0, "accel: ragged weight matrix");
    out.clear();
    out.resize(n_cols, 0.0);
    for row in weights.chunks_exact(n_cols) {
        add_assign(tier, out, row);
    }
}

/// Scales column `j` of an input-major weight matrix by `scales[j]`,
/// applied row by row. A scale of exactly `1.0` is an IEEE identity, so
/// callers pass `1.0` for columns that must not move.
#[inline]
pub(crate) fn scale_columns(tier: KernelTier, weights: &mut [f32], n_cols: usize, scales: &[f32]) {
    assert!(n_cols > 0, "accel: n_cols must be positive");
    assert_eq!(weights.len() % n_cols, 0, "accel: ragged weight matrix");
    assert_eq!(scales.len(), n_cols, "accel: slice length mismatch");
    match tier {
        KernelTier::Scalar => {
            for row in weights.chunks_exact_mut(n_cols) {
                mul_assign_scalar(row, scales);
            }
        }
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as in `add_assign`.
        KernelTier::Avx2 => unsafe {
            for row in weights.chunks_exact_mut(n_cols) {
                avx2::mul_assign(row, scales);
            }
        },
    }
}

// ---------------------------------------------------------------------------
// Scalar kernels — the semantic baseline. The AVX2 kernels below reuse
// these for their non-multiple-of-8 tails.
// ---------------------------------------------------------------------------

fn add_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

fn scaled_add_assign_scalar(dst: &mut [f32], src: &[f32], k: f32) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += k * s;
    }
}

fn scale_in_place_scalar(xs: &mut [f32], factor: f32) {
    for x in xs {
        *x *= factor;
    }
}

fn mul_assign_scalar(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

fn div_by_theta_gap_scalar(scores: &mut [f32], thetas: &[f32], gap: f32) {
    for (d, &t) in scores.iter_mut().zip(thetas) {
        *d /= gap + t.max(0.0);
    }
}

fn masked_scaled_add_scalar(v: &mut [f32], refrac: &[u32], currents: &[f32], gain: f32) {
    for ((v, &r), &c) in v.iter_mut().zip(refrac).zip(currents) {
        if r == 0 {
            *v += c * gain;
        }
    }
}

fn masked_add_uniform_scalar(v: &mut [f32], refrac: &[u32], current: f32) {
    for (v, &r) in v.iter_mut().zip(refrac) {
        if r == 0 {
            *v += current;
        }
    }
}

/// The scalar LIF tick; `base` offsets pushed spike indices so the AVX2
/// kernel can reuse it for its tail lanes.
fn lif_step_scalar(
    v: &mut [f32],
    refrac: &mut [u32],
    theta: &[f32],
    p: LifStepParams,
    base: usize,
    spikes_out: &mut Vec<usize>,
) {
    for i in 0..v.len() {
        if refrac[i] > 0 {
            refrac[i] -= 1;
            continue;
        }
        v[i] = p.v_rest + (v[i] - p.v_rest) * p.decay;
        if v[i] >= p.v_thresh + theta[i] {
            spikes_out.push(base + i);
            v[i] = p.v_reset;
            refrac[i] = p.refractory;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels. Each processes 8 lanes per iteration with the *same*
// per-element operations as its scalar counterpart (separate mul/add
// roundings, IEEE division, masked lanes untouched bitwise) and hands the
// remainder to the scalar loop.
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    use super::LifStepParams;

    const LANES: usize = 8;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
            i += LANES;
        }
        super::add_assign_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scaled_add_assign(dst: &mut [f32], src: &[f32], k: f32) {
        let n = dst.len();
        let kk = _mm256_set1_ps(k);
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            // mul then add as two roundings — no FMA, matching scalar.
            let prod = _mm256_mul_ps(kk, s);
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, prod));
            i += LANES;
        }
        super::scaled_add_assign_scalar(&mut dst[i..], &src[i..], k);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_in_place(xs: &mut [f32], factor: f32) {
        let n = xs.len();
        let f = _mm256_set1_ps(factor);
        let mut i = 0;
        while i + LANES <= n {
            let x = _mm256_loadu_ps(xs.as_ptr().add(i));
            _mm256_storeu_ps(xs.as_mut_ptr().add(i), _mm256_mul_ps(x, f));
            i += LANES;
        }
        super::scale_in_place_scalar(&mut xs[i..], factor);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_assign(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(dst.as_ptr().add(i));
            let s = _mm256_loadu_ps(src.as_ptr().add(i));
            _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(d, s));
            i += LANES;
        }
        super::mul_assign_scalar(&mut dst[i..], &src[i..]);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn div_by_theta_gap(scores: &mut [f32], thetas: &[f32], gap: f32) {
        let n = scores.len();
        let g = _mm256_set1_ps(gap);
        let zero = _mm256_setzero_ps();
        let mut i = 0;
        while i + LANES <= n {
            let d = _mm256_loadu_ps(scores.as_ptr().add(i));
            let t = _mm256_loadu_ps(thetas.as_ptr().add(i));
            // max(t, 0): theta is never NaN and never negative in this
            // network, so lane semantics match scalar f32::max exactly.
            let denom = _mm256_add_ps(g, _mm256_max_ps(t, zero));
            _mm256_storeu_ps(scores.as_mut_ptr().add(i), _mm256_div_ps(d, denom));
            i += LANES;
        }
        super::div_by_theta_gap_scalar(&mut scores[i..], &thetas[i..], gap);
    }

    /// All-ones lanes where `refrac == 0` (the non-refractory mask).
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn active_mask(refrac: &[u32], i: usize) -> __m256i {
        let r = _mm256_loadu_si256(refrac.as_ptr().add(i).cast());
        _mm256_cmpeq_epi32(r, _mm256_setzero_si256())
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn masked_scaled_add(
        v: &mut [f32],
        refrac: &[u32],
        currents: &[f32],
        gain: f32,
    ) {
        let n = v.len();
        let g = _mm256_set1_ps(gain);
        let mut i = 0;
        while i + LANES <= n {
            let active = _mm256_castsi256_ps(active_mask(refrac, i));
            let vv = _mm256_loadu_ps(v.as_ptr().add(i));
            let c = _mm256_loadu_ps(currents.as_ptr().add(i));
            let bumped = _mm256_add_ps(vv, _mm256_mul_ps(c, g));
            // Refractory lanes keep their exact input bits.
            _mm256_storeu_ps(v.as_mut_ptr().add(i), _mm256_blendv_ps(vv, bumped, active));
            i += LANES;
        }
        super::masked_scaled_add_scalar(&mut v[i..], &refrac[i..], &currents[i..], gain);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn masked_add_uniform(v: &mut [f32], refrac: &[u32], current: f32) {
        let n = v.len();
        let c = _mm256_set1_ps(current);
        let mut i = 0;
        while i + LANES <= n {
            let active = _mm256_castsi256_ps(active_mask(refrac, i));
            let vv = _mm256_loadu_ps(v.as_ptr().add(i));
            let bumped = _mm256_add_ps(vv, c);
            _mm256_storeu_ps(v.as_mut_ptr().add(i), _mm256_blendv_ps(vv, bumped, active));
            i += LANES;
        }
        super::masked_add_uniform_scalar(&mut v[i..], &refrac[i..], current);
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn lif_step(
        v: &mut [f32],
        refrac: &mut [u32],
        theta: &[f32],
        p: LifStepParams,
        spikes_out: &mut Vec<usize>,
    ) {
        let n = v.len();
        let v_rest = _mm256_set1_ps(p.v_rest);
        let decay = _mm256_set1_ps(p.decay);
        let v_thresh = _mm256_set1_ps(p.v_thresh);
        let v_reset = _mm256_set1_ps(p.v_reset);
        let refr = _mm256_set1_epi32(p.refractory as i32);
        let one = _mm256_set1_epi32(1);
        let mut i = 0;
        while i + LANES <= n {
            let r = _mm256_loadu_si256(refrac.as_ptr().add(i).cast());
            let active = _mm256_cmpeq_epi32(r, _mm256_setzero_si256());
            let active_ps = _mm256_castsi256_ps(active);

            // Leak toward rest on active lanes: v_rest + (v - v_rest) * decay.
            let vv = _mm256_loadu_ps(v.as_ptr().add(i));
            let leaked = _mm256_add_ps(v_rest, _mm256_mul_ps(_mm256_sub_ps(vv, v_rest), decay));
            let v_new = _mm256_blendv_ps(vv, leaked, active_ps);

            // Spike where an active lane crosses v_thresh + theta.
            let th = _mm256_add_ps(v_thresh, _mm256_loadu_ps(theta.as_ptr().add(i)));
            let crossed = _mm256_cmp_ps::<_CMP_GE_OQ>(v_new, th);
            let spike = _mm256_and_ps(crossed, active_ps);

            // Spiking lanes reset; refractory lanes count down; active
            // non-spiking lanes keep refrac == 0 (blend keeps `r`).
            let v_fin = _mm256_blendv_ps(v_new, v_reset, spike);
            _mm256_storeu_ps(v.as_mut_ptr().add(i), v_fin);
            let r_dec = _mm256_sub_epi32(r, one);
            let r_keep = _mm256_blendv_epi8(r_dec, r, active);
            let r_fin = _mm256_blendv_epi8(r_keep, refr, _mm256_castps_si256(spike));
            _mm256_storeu_si256(refrac.as_mut_ptr().add(i).cast(), r_fin);

            // Extract spiking lanes lowest-first so indices stay ascending.
            let mut mask = _mm256_movemask_ps(spike) as u32;
            while mask != 0 {
                spikes_out.push(i + mask.trailing_zeros() as usize);
                mask &= mask - 1;
            }
            i += LANES;
        }
        super::lif_step_scalar(&mut v[i..], &mut refrac[i..], &theta[i..], p, i, spikes_out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    // (The dispatch-machinery tests — override parsing, forced-scalar
    // precedence, tier support — moved to `pathfinder-accel` with the
    // machinery itself; what stays here pins the f32 kernels.)

    /// Runs `f` once per tier and asserts the mutated buffer is bitwise
    /// identical. On hosts without AVX2 this degenerates to scalar-vs-
    /// scalar, which is still a valid (if trivial) check.
    fn assert_tiers_bitwise<F: Fn(KernelTier, &mut [f32])>(init: &[f32], f: F) {
        let mut scalar = init.to_vec();
        f(KernelTier::Scalar, &mut scalar);
        #[cfg(target_arch = "x86_64")]
        if KernelTier::Avx2.supported() {
            let mut simd = init.to_vec();
            f(KernelTier::Avx2, &mut simd);
            let scalar_bits: Vec<u32> = scalar.iter().map(|x| x.to_bits()).collect();
            let simd_bits: Vec<u32> = simd.iter().map(|x| x.to_bits()).collect();
            assert_eq!(scalar_bits, simd_bits, "tiers diverged bitwise");
        }
    }

    fn rand_vec(rng: &mut StdRng, n: usize, lo: f32, hi: f32) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(lo..hi)).collect()
    }

    #[test]
    fn elementwise_kernels_are_bitwise_identical_across_tiers() {
        let mut rng = StdRng::seed_from_u64(7);
        // Lengths straddle the 8-lane boundary: pure tail, exact lanes,
        // lanes + tail, and the paper-default population size.
        for n in [1usize, 5, 8, 13, 16, 27, 50, 384] {
            let src = rand_vec(&mut rng, n, -2.0, 2.0);
            let init = rand_vec(&mut rng, n, -70.0, -40.0);
            let thetas = rand_vec(&mut rng, n, 0.0, 40.0);
            let refrac: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..3)).collect();

            assert_tiers_bitwise(&init, |t, d| add_assign(t, d, &src));
            assert_tiers_bitwise(&init, |t, d| scaled_add_assign(t, d, &src, 0.7371));
            assert_tiers_bitwise(&init, |t, d| scale_in_place(t, d, 0.99731));
            assert_tiers_bitwise(&init, |t, d| div_by_theta_gap(t, d, &thetas, 13.0));
            assert_tiers_bitwise(&init, |t, d| masked_scaled_add(t, d, &refrac, &src, 2.1));
            assert_tiers_bitwise(&init, |t, d| masked_add_uniform(t, d, &refrac, -17.5));
        }
    }

    #[test]
    fn lif_step_is_bitwise_identical_across_tiers() {
        let p = LifStepParams {
            v_rest: -65.0,
            decay: 0.99,
            v_thresh: -52.0,
            v_reset: -60.0,
            refractory: 5,
        };
        let mut rng = StdRng::seed_from_u64(11);
        for n in [1usize, 7, 8, 9, 24, 50] {
            // Potentials spanning rest-to-above-threshold so some lanes
            // spike, plus a mix of refractory counters.
            let v0 = rand_vec(&mut rng, n, -70.0, -45.0);
            let theta0 = rand_vec(&mut rng, n, 0.0, 5.0);
            let refrac0: Vec<u32> = (0..n).map(|_| rng.gen_range(0u32..3)).collect();

            let run = |tier: KernelTier| {
                let mut v = v0.clone();
                let mut refrac = refrac0.clone();
                let mut spikes = Vec::new();
                let mut all_spikes = Vec::new();
                // Several ticks so reset/refractory state feeds back.
                for _ in 0..6 {
                    lif_step(tier, &mut v, &mut refrac, &theta0, p, &mut spikes);
                    all_spikes.push(spikes.clone());
                }
                let bits: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
                (bits, refrac, all_spikes)
            };

            let scalar = run(KernelTier::Scalar);
            #[cfg(target_arch = "x86_64")]
            if KernelTier::Avx2.supported() {
                let simd = run(KernelTier::Avx2);
                assert_eq!(scalar.0, simd.0, "potentials diverged (n={n})");
                assert_eq!(scalar.1, simd.1, "refractory state diverged (n={n})");
                assert_eq!(scalar.2, simd.2, "spike trains diverged (n={n})");
            }
            // Sanity: something fired in at least one configuration.
            let _ = scalar;
        }
    }

    #[test]
    fn column_kernels_match_strided_walks() {
        let mut rng = StdRng::seed_from_u64(23);
        for (n_input, n_cols) in [(4usize, 3usize), (24, 8), (16, 1), (384, 50)] {
            let weights = rand_vec(&mut rng, n_input * n_cols, 0.0, 0.3);
            let run_sums = |tier: KernelTier| {
                let mut out = Vec::new();
                column_sums(tier, &weights, n_cols, &mut out);
                out.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
            };
            let scalar_sums = run_sums(KernelTier::Scalar);
            // The strided per-column walk the normalization used to do.
            let strided: Vec<u32> = (0..n_cols)
                .map(|j| {
                    weights[j..]
                        .iter()
                        .step_by(n_cols)
                        .copied()
                        .sum::<f32>()
                        .to_bits()
                })
                .collect();
            assert_eq!(scalar_sums, strided, "row-major sums != strided sums");
            #[cfg(target_arch = "x86_64")]
            if KernelTier::Avx2.supported() {
                assert_eq!(scalar_sums, run_sums(KernelTier::Avx2));
            }

            let scales = rand_vec(&mut rng, n_cols, 0.5, 1.5);
            let run_scale = |tier: KernelTier| {
                let mut w = weights.clone();
                scale_columns(tier, &mut w, n_cols, &scales);
                w.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
            };
            let scalar_scaled = run_scale(KernelTier::Scalar);
            #[cfg(target_arch = "x86_64")]
            if KernelTier::Avx2.supported() {
                assert_eq!(scalar_scaled, run_scale(KernelTier::Avx2));
            }
            let _ = scalar_scaled;
        }
    }

    #[test]
    fn scale_by_one_is_identity() {
        // The vectorized normalization leaves clean columns at scale 1.0;
        // x * 1.0 must reproduce x's bits exactly (incl. signed zero).
        let xs = [0.0f32, -0.0, 1.5, -2.25, f32::MIN_POSITIVE, 1e30];
        for tier in tiers() {
            let mut w = xs.to_vec();
            scale_columns(tier, &mut w, xs.len(), &vec![1.0; xs.len()]);
            let got: Vec<u32> = w.iter().map(|x| x.to_bits()).collect();
            let want: Vec<u32> = xs.iter().map(|x| x.to_bits()).collect();
            assert_eq!(got, want, "x * 1.0 must be bitwise identity");
        }
    }

    /// Every tier executable on this host.
    fn tiers() -> Vec<KernelTier> {
        let mut t = vec![KernelTier::Scalar];
        #[cfg(target_arch = "x86_64")]
        if KernelTier::Avx2.supported() {
            t.push(KernelTier::Avx2);
        }
        t
    }
}
