//! Tier pinning: the dispatched SIMD kernels against the forced-scalar
//! fallback.
//!
//! The [`pathfinder_snn::accel`] contract is stronger than the usual
//! kernel-equivalence tolerance: every SIMD kernel performs the *same*
//! IEEE-754 operations per element as the scalar loop (no FMA, no
//! re-associated reductions), so a network dispatched to the native tier
//! and one pinned to [`KernelTier::Scalar`] must agree **bitwise** — on
//! every outcome field, on the learned weights, and on the adaptive
//! thresholds. These tests therefore use exact equality throughout; the
//! analog-tolerance pattern of `kernel_equivalence.rs` applies only across
//! *algorithms* (event vs reference), never across tiers.
//!
//! On a host whose detected tier is already scalar (no AVX2, or
//! `PATHFINDER_FORCE_SCALAR` set — the CI fallback job), both networks run
//! the same loops and the assertions pass trivially; on AVX2 hosts the
//! same run pins the vectorized kernels. Per the ROADMAP seed-robustness
//! note, assertions compare the two tiers against each other at the same
//! seed — never against hard-coded learned outcomes.

use proptest::prelude::*;

use pathfinder_snn::{DiehlCookNetwork, KernelTier, SnnConfig};

fn small_cfg(n_input: usize, n_exc: usize, inh_strength: f32) -> SnnConfig {
    let mut cfg = SnnConfig {
        n_input,
        n_exc,
        inh_strength,
        ..SnnConfig::default()
    };
    // Keep the paper-sized average initial weight (norm / n_input = 0.2
    // here), as in the kernel-equivalence suite.
    cfg.stdp.norm = n_input as f32 * 0.2;
    cfg
}

/// Bitwise view of an f32 slice, for exact-equality assertions with
/// readable failures.
fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    /// Learning presentations through the event-driven kernel agree
    /// bitwise across tiers: every discrete outcome, the analog runner-up
    /// potential, and the learned weights. `n_exc` crosses the 8-lane
    /// boundary (tail-only, exact-lane, and lanes-plus-tail populations).
    #[test]
    fn tiers_agree_bitwise_on_learning(
        seed in 0u64..1_000,
        n_exc in 1usize..14,
        // The vendored proptest stub only generates integer ranges; scale
        // to floats by hand (inhibition 0..40, intensity 0.30..0.99).
        inh_tenths in 0u32..400,
        pattern in prop::collection::vec(0usize..24, 1..6),
        intensity_pct in 30u32..100,
        rounds in 1usize..4,
    ) {
        let cfg = small_cfg(24, n_exc, inh_tenths as f32 / 10.0);
        let mut native = DiehlCookNetwork::new(cfg, seed).unwrap();
        let mut scalar = DiehlCookNetwork::with_kernel_tier(cfg, seed, KernelTier::Scalar).unwrap();
        prop_assert_eq!(scalar.kernel_tier(), KernelTier::Scalar);

        let mut rates = vec![0.0f32; 24];
        for &i in &pattern {
            rates[i] = intensity_pct as f32 / 100.0;
        }

        for round in 0..rounds {
            let a = native.present(&rates, true);
            let b = scalar.present(&rates, true);
            // RunOutcome's PartialEq is exact f32 equality — precisely the
            // tier contract.
            prop_assert_eq!(a, b, "outcome diverged across tiers in round {}", round);
            prop_assert_eq!(
                bits(native.weights()), bits(scalar.weights()),
                "weights diverged bitwise in round {}", round
            );
        }
        prop_assert_eq!(native.presentations(), scalar.presentations());
        prop_assert_eq!(native.weight_version(), scalar.weight_version());
    }

    /// The pure inference paths agree bitwise too: frozen-weight queries
    /// (derived RNG stream, theta snapshot/restore) and the §3.4 1-tick
    /// readout, after a few rounds of training on each side.
    #[test]
    fn tiers_agree_bitwise_on_inference(
        seed in 0u64..1_000,
        n_exc in 1usize..14,
        pattern in prop::collection::vec(0usize..16, 1..5),
        train_rounds in 0usize..4,
    ) {
        let cfg = small_cfg(16, n_exc, 17.5);
        let mut native = DiehlCookNetwork::new(cfg, seed).unwrap();
        let mut scalar = DiehlCookNetwork::with_kernel_tier(cfg, seed, KernelTier::Scalar).unwrap();

        let mut rates = vec![0.0f32; 16];
        for &i in &pattern {
            rates[i] = 1.0;
        }

        for _ in 0..train_rounds {
            native.present(&rates, true);
            scalar.present(&rates, true);
        }

        // Same state on both sides implies the same derived query seed…
        prop_assert_eq!(
            native.frozen_query_seed(&rates),
            scalar.frozen_query_seed(&rates)
        );
        // …and the frozen kernels must then agree on everything, exactly.
        let a = native.present_frozen(&rates);
        let b = scalar.present_frozen(&rates);
        prop_assert_eq!(a, b, "frozen outcome diverged across tiers");

        prop_assert_eq!(
            native.present_one_tick(&rates, false),
            scalar.present_one_tick(&rates, false),
            "1-tick winner diverged across tiers"
        );
        prop_assert_eq!(
            native.present_one_tick(&rates, true),
            scalar.present_one_tick(&rates, true),
            "1-tick learning winner diverged across tiers"
        );
        prop_assert_eq!(bits(native.weights()), bits(scalar.weights()));
    }

    /// The retained reference kernel also runs through tier-dispatched
    /// `LifLayer` bulk steps, so it is tier-pinned the same way — and it
    /// still agrees with the event kernel across tiers (scalar reference
    /// vs native event), closing the triangle with the existing
    /// `kernel_equivalence.rs` suite.
    #[test]
    fn reference_kernel_is_tier_pinned(
        seed in 0u64..500,
        n_exc in 1usize..12,
        pattern in prop::collection::vec(0usize..16, 1..5),
    ) {
        let cfg = small_cfg(16, n_exc, 17.5);
        let mut native = DiehlCookNetwork::new(cfg, seed).unwrap();
        let mut scalar = DiehlCookNetwork::with_kernel_tier(cfg, seed, KernelTier::Scalar).unwrap();

        let mut rates = vec![0.0f32; 16];
        for &i in &pattern {
            rates[i] = 1.0;
        }

        for round in 0..2 {
            let a = native.present_reference(&rates, true);
            let b = scalar.present_reference(&rates, true);
            prop_assert_eq!(a, b, "reference outcome diverged across tiers in round {}", round);
            prop_assert_eq!(bits(native.weights()), bits(scalar.weights()));
        }
    }
}

/// The paper-sized network (384 inputs, 50 excitatory neurons — Table 4)
/// stays tier-pinned through a learning run plus every inference path.
/// 50 = 6×8 + 2 exercises both the full-lane body and the scalar tail of
/// each kernel at production shape.
#[test]
fn paper_sized_network_is_tier_pinned() {
    let cfg = SnnConfig::default();
    let mut native = DiehlCookNetwork::new(cfg, 42).unwrap();
    let mut scalar = DiehlCookNetwork::with_kernel_tier(cfg, 42, KernelTier::Scalar).unwrap();

    let mut rates = vec![0.0f32; cfg.n_input];
    for (i, rate) in rates.iter_mut().enumerate() {
        // A deterministic multi-intensity pattern over ~1/6 of the inputs.
        if i % 6 == 0 {
            *rate = 0.3 + 0.7 * ((i % 7) as f32 / 7.0);
        }
    }

    for round in 0..5 {
        let a = native.present(&rates, true);
        let b = scalar.present(&rates, true);
        assert_eq!(a, b, "outcome diverged across tiers in round {round}");
    }
    assert_eq!(
        bits(native.weights()),
        bits(scalar.weights()),
        "learned weights diverged bitwise"
    );

    let a = native.present_frozen(&rates);
    let b = scalar.present_frozen(&rates);
    assert_eq!(a, b, "frozen outcome diverged across tiers");
    assert_eq!(
        native.present_one_tick(&rates, false),
        scalar.present_one_tick(&rates, false)
    );
}

/// Requesting an unsupported tier is a construction error, never UB: on
/// every host, at least the scalar tier is constructible, and `new`'s
/// auto-detected tier is always supported.
#[test]
fn unsupported_tiers_are_rejected_at_construction() {
    let cfg = small_cfg(16, 4, 17.5);
    let net = DiehlCookNetwork::with_kernel_tier(cfg, 1, KernelTier::Scalar).unwrap();
    assert_eq!(net.kernel_tier(), KernelTier::Scalar);

    let auto = DiehlCookNetwork::new(cfg, 1).unwrap();
    assert!(auto.kernel_tier().supported());

    #[cfg(target_arch = "x86_64")]
    {
        let avx2 = DiehlCookNetwork::with_kernel_tier(cfg, 1, KernelTier::Avx2);
        assert_eq!(avx2.is_ok(), KernelTier::Avx2.supported());
    }
}
