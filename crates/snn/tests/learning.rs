//! Long-horizon learning behaviour of the SNN: capacity, noise tolerance,
//! and the continuous-operation regressions the prefetcher depends on.

use pathfinder_snn::{DiehlCookNetwork, SnnConfig};

fn cfg(n_input: usize, n_exc: usize) -> SnnConfig {
    let mut c = SnnConfig {
        n_input,
        n_exc,
        ..SnnConfig::default()
    };
    // Keep average initial weight at the paper's 0.1 for any input size.
    c.stdp.norm = n_input as f32 * 0.1;
    c
}

fn pattern(idxs: &[usize], n: usize) -> Vec<f32> {
    let mut v = vec![0.0f32; n];
    for &i in idxs {
        v[i] = 1.0;
        // Enlarged-pixel flavour: neighbors at half intensity.
        if i > 0 {
            v[i - 1] = v[i - 1].max(0.5);
        }
        if i + 1 < n {
            v[i + 1] = v[i + 1].max(0.5);
        }
    }
    v
}

#[test]
fn capacity_multiple_patterns_get_distinct_neurons() {
    let n_in = 96;
    let mut net = DiehlCookNetwork::new(cfg(n_in, 16), 5).unwrap();
    let patterns: Vec<Vec<f32>> = (0..4)
        .map(|k| pattern(&[k * 20 + 2, k * 20 + 9, k * 20 + 15], n_in))
        .collect();
    // Interleaved training.
    for _ in 0..60 {
        for p in &patterns {
            net.present(p, true);
        }
    }
    // Each pattern should now map to a stable, distinct winner.
    let mut winners = Vec::new();
    for p in &patterns {
        let w = net.present(p, false).winner;
        assert!(w.is_some(), "trained pattern must fire");
        winners.push(w.unwrap());
    }
    let distinct: std::collections::HashSet<usize> = winners.iter().copied().collect();
    assert!(
        distinct.len() >= 3,
        "4 patterns should spread across neurons: {winners:?}"
    );
}

#[test]
fn no_population_silence_over_long_runs() {
    // Regression test for the unbounded-theta failure mode: ten thousand
    // presentations of one pattern must keep the network firing.
    let n_in = 96;
    let mut net = DiehlCookNetwork::new(cfg(n_in, 12), 9).unwrap();
    let p = pattern(&[10, 40, 70], n_in);
    let mut silent_late = 0;
    for i in 0..10_000 {
        let out = net.present(&p, true);
        if i >= 9_000 && out.winner.is_none() {
            silent_late += 1;
        }
    }
    assert!(
        silent_late < 100,
        "population must not go silent under continuous learning: {silent_late}/1000 silent"
    );
}

#[test]
fn noise_tolerance_single_pixel_shift() {
    // §3.6: a slightly perturbed pattern often still maps to the trained
    // neuron.
    let n_in = 96;
    let mut net = DiehlCookNetwork::new(cfg(n_in, 12), 11).unwrap();
    let clean = pattern(&[20, 50, 80], n_in);
    for _ in 0..80 {
        net.present(&clean, true);
    }
    let trained = net.present(&clean, false).winner.expect("trained fires");

    // Perturb one of three pixels by one position.
    let noisy = pattern(&[20, 51, 80], n_in);
    let mut same = 0;
    for _ in 0..20 {
        if net.present(&noisy, false).winner == Some(trained) {
            same += 1;
        }
    }
    assert!(
        same >= 10,
        "one-pixel noise should usually map to the same neuron: {same}/20"
    );
}

#[test]
fn distinct_patterns_do_not_alias() {
    // A pattern far from the trained one must NOT map to its neuron.
    let n_in = 96;
    let mut net = DiehlCookNetwork::new(cfg(n_in, 12), 13).unwrap();
    let a = pattern(&[5, 35, 65], n_in);
    let b = pattern(&[15, 55, 90], n_in);
    for _ in 0..60 {
        net.present(&a, true);
        net.present(&b, true);
    }
    let wa = net.present(&a, false).winner.unwrap();
    let wb = net.present(&b, false).winner.unwrap();
    assert_ne!(wa, wb, "far-apart patterns must use different neurons");
}

#[test]
fn one_tick_and_full_interval_agree_on_trained_patterns() {
    let n_in = 96;
    let mut net = DiehlCookNetwork::new(cfg(n_in, 12), 17).unwrap();
    let p = pattern(&[12, 48, 84], n_in);
    for _ in 0..100 {
        net.present(&p, true);
    }
    let full = net.present(&p, false);
    let quick = net.present_one_tick(&p, false);
    assert_eq!(
        full.first_tick_argmax, quick,
        "deterministic readouts must agree"
    );
    let mut matches = 0;
    for _ in 0..20 {
        let out = net.present(&p, false);
        if out.winner == Some(out.first_tick_argmax) {
            matches += 1;
        }
    }
    assert!(
        matches >= 12,
        "trained pattern should mostly match the 1-tick argmax: {matches}/20"
    );
}

#[test]
fn learning_disabled_interval_is_pure_inference() {
    let n_in = 96;
    let mut net = DiehlCookNetwork::new(cfg(n_in, 12), 19).unwrap();
    let p = pattern(&[30, 60, 90], n_in);
    for _ in 0..50 {
        net.present(&p, true);
    }
    let w_before = net.weights().to_vec();
    let theta_presentations = net.presentations();
    for _ in 0..25 {
        net.present(&p, false);
    }
    assert_eq!(net.weights(), &w_before[..], "inference must not learn");
    assert_eq!(net.presentations(), theta_presentations + 25);
}
