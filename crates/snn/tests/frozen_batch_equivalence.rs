//! Exact-equality pin for cross-query batched frozen inference:
//! `present_frozen_batch(queries)` must be **bitwise** equal, lane by lane,
//! to N singleton `present_frozen` calls — not "close", identical. The
//! batch kernel shares weight-row gathers across lanes and vectorizes over
//! the query dimension, but each lane keeps a private RNG (seeded from
//! `frozen_query_seed`), private theta/membrane state, and the singleton's
//! per-element IEEE-754 op order, so the contract is equality of bits.
//!
//! The suite runs against whatever tier the host dispatches natively and,
//! in CI, again under `PATHFINDER_FORCE_SCALAR=1`; a tier-pinned case also
//! cross-checks batch-vs-singleton on the scalar tier explicitly, so one
//! native run covers both tiers on AVX2 hosts.
//!
//! Per the ROADMAP seed-robustness note, every assertion compares the two
//! paths against each other at the same seed — never against hard-coded
//! outcomes.

use proptest::prelude::*;

use pathfinder_snn::{DiehlCookNetwork, KernelTier, RunOutcome, SnnConfig};

fn small_cfg(n_input: usize, n_exc: usize, inh_strength: f32) -> SnnConfig {
    let mut cfg = SnnConfig {
        n_input,
        n_exc,
        inh_strength,
        ..SnnConfig::default()
    };
    // Average initial weight matches the paper-sized network
    // (norm / n_input = 0.2, as in the unit suites).
    cfg.stdp.norm = n_input as f32 * 0.2;
    cfg
}

/// Bitwise outcome equality — `PartialEq` would accept `-0.0 == 0.0` on the
/// analog field, the batch contract does not.
fn assert_bits_eq(batch: &RunOutcome, single: &RunOutcome, lane: usize) {
    assert_eq!(
        batch.spike_counts, single.spike_counts,
        "lane {lane} counts"
    );
    assert_eq!(batch.winner, single.winner, "lane {lane} winner");
    assert_eq!(batch.fired, single.fired, "lane {lane} fired order");
    assert_eq!(
        batch.first_fire_tick, single.first_fire_tick,
        "lane {lane} first-fire tick"
    );
    assert_eq!(
        batch.first_tick_argmax, single.first_tick_argmax,
        "lane {lane} first-tick argmax"
    );
    assert_eq!(
        batch.runner_up_potential.to_bits(),
        single.runner_up_potential.to_bits(),
        "lane {lane} runner-up potential bits"
    );
}

/// Builds `lanes` rate patterns (deliberately including repeats once the
/// index wraps the pattern pool, and an all-zero lane when `lanes > 2`).
fn lane_patterns(lanes: usize, n_input: usize, salt: usize) -> Vec<Vec<f32>> {
    (0..lanes)
        .map(|l| {
            let mut v = vec![0.0f32; n_input];
            if lanes > 2 && l == 2 {
                return v; // quiet lane: no active inputs at all
            }
            for k in 0..3 {
                v[(l * 5 + k * 7 + salt) % n_input] = 1.0 - 0.07 * k as f32;
            }
            v
        })
        .collect()
}

fn check_batch_equals_singletons(net: &mut DiehlCookNetwork, patterns: &[Vec<f32>]) {
    let queries: Vec<&[f32]> = patterns.iter().map(|p| p.as_slice()).collect();
    let weights_before = net.weights().to_vec();
    let version_before = net.weight_version();
    let presentations_before = net.presentations();

    // Singletons run once *before* and once *after* the batch: agreement
    // across all three pins that the batch left weights, thetas, and the
    // derived query streams untouched (thetas aren't public, but any theta
    // drift would flip the repeated singleton bitwise).
    let before: Vec<RunOutcome> = queries.iter().map(|q| net.present_frozen(q)).collect();
    let batch = net.present_frozen_batch(&queries);
    assert_eq!(batch.len(), queries.len());
    assert_eq!(net.weights(), &weights_before[..], "weights untouched");
    assert_eq!(net.weight_version(), version_before, "version untouched");
    assert_eq!(
        net.presentations(),
        presentations_before + 2 * queries.len() as u64,
        "batch counts one presentation per lane"
    );
    for (l, q) in queries.iter().enumerate() {
        let after = net.present_frozen(q);
        assert_bits_eq(&batch[l], &before[l], l);
        assert_bits_eq(&batch[l], &after, l);
    }
}

proptest! {
    /// Batched frozen inference is bitwise-equal to singleton runs across
    /// random sizes, inhibition strengths, training histories, and lane
    /// counts — including the 1-lane batch, which must not degenerate.
    #[test]
    fn batch_lanes_match_singletons_bitwise(
        seed in 0u64..1_000,
        n_exc in 1usize..12,
        // The vendored proptest stub only generates integer ranges; scale
        // to floats by hand (inhibition 0..40).
        inh_tenths in 0u32..400,
        lanes in 1usize..9,
        salt in 0usize..24,
        rounds in 0usize..4,
    ) {
        let cfg = small_cfg(24, n_exc, inh_tenths as f32 / 10.0);
        let mut net = DiehlCookNetwork::new(cfg, seed).unwrap();
        let patterns = lane_patterns(lanes, 24, salt);
        for p in &patterns {
            for _ in 0..rounds {
                net.present(p, true);
            }
        }
        check_batch_equals_singletons(&mut net, &patterns);
    }
}

#[test]
fn zero_lane_batch_is_a_noop() {
    let mut net = DiehlCookNetwork::new(small_cfg(24, 8, 17.5), 3).unwrap();
    let presentations = net.presentations();
    let version = net.weight_version();
    assert!(net.present_frozen_batch(&[]).is_empty());
    assert_eq!(net.presentations(), presentations);
    assert_eq!(net.weight_version(), version);
}

#[test]
fn scalar_tier_batch_matches_scalar_singletons() {
    // Pin the scalar tier explicitly so a native AVX2 run still exercises
    // the scalar batch path (CI additionally re-runs the whole suite under
    // PATHFINDER_FORCE_SCALAR=1).
    let cfg = small_cfg(24, 8, 17.5);
    let mut net = DiehlCookNetwork::with_kernel_tier(cfg, 23, KernelTier::Scalar).unwrap();
    assert_eq!(net.kernel_tier(), KernelTier::Scalar);
    let patterns = lane_patterns(6, 24, 5);
    for p in &patterns {
        net.present(p, true);
    }
    check_batch_equals_singletons(&mut net, &patterns);
}

#[test]
fn native_and_scalar_tiers_agree_on_batches() {
    // Cross-tier: the same batch on a natively dispatched network and a
    // scalar-pinned twin must agree bitwise (vacuous on scalar-only hosts).
    let cfg = small_cfg(24, 7, 12.0);
    let mut native = DiehlCookNetwork::new(cfg, 41).unwrap();
    let mut scalar = DiehlCookNetwork::with_kernel_tier(cfg, 41, KernelTier::Scalar).unwrap();
    let patterns = lane_patterns(7, 24, 9);
    for p in &patterns {
        native.present(p, true);
        scalar.present(p, true);
    }
    let queries: Vec<&[f32]> = patterns.iter().map(|p| p.as_slice()).collect();
    let a = native.present_frozen_batch(&queries);
    let b = scalar.present_frozen_batch(&queries);
    for l in 0..queries.len() {
        assert_bits_eq(&a[l], &b[l], l);
    }
}
