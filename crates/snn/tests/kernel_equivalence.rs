//! Equivalence of the event-driven presentation kernel and the retained
//! pre-rewrite reference kernel (`crate::reference`).
//!
//! Both kernels consume the RNG identically, so same-seeded networks see
//! bit-identical input spike trains. The event-driven kernel re-associates
//! the membrane arithmetic (drive is pre-summed into a buffer before one
//! bulk injection; inhibition lands batched), so raw potentials may differ
//! in the last ULPs — the assertions therefore cover the *spike structure*
//! (counts, winner, fired order, first-fire ticks, 1-tick argmax) exactly,
//! and analog quantities (runner-up potential, learned weights) to a
//! documented fp-re-association tolerance.
//!
//! Per the ROADMAP seed-robustness note, every assertion compares the two
//! kernels against each other at the same seed — never against hard-coded
//! learned outcomes or exact winner identities.

use proptest::prelude::*;

use pathfinder_snn::{DiehlCookNetwork, SnnConfig};

/// Relative tolerance for analog values whose update order differs between
/// kernels (fp re-association only — a real divergence is far larger).
const ANALOG_TOL: f32 = 1e-3;

fn small_cfg(n_input: usize, n_exc: usize, inh_strength: f32) -> SnnConfig {
    let mut cfg = SnnConfig {
        n_input,
        n_exc,
        inh_strength,
        ..SnnConfig::default()
    };
    // Scale the normalization target with the input count so the average
    // initial weight matches the paper-sized network (norm / n_input = 0.2
    // here, as in the unit suites).
    cfg.stdp.norm = n_input as f32 * 0.2;
    cfg
}

proptest! {
    /// The two kernels agree on every discrete outcome of a presentation,
    /// across random sizes, inhibition strengths, patterns, and seeds —
    /// including `n_exc == 1`, which also pins the runner-up clamp.
    #[test]
    fn kernels_agree_on_spike_structure(
        seed in 0u64..1_000,
        n_exc in 1usize..12,
        // The vendored proptest stub only generates integer ranges; scale
        // to floats by hand (inhibition 0..40, intensity 0.30..0.99).
        inh_tenths in 0u32..400,
        pattern in prop::collection::vec(0usize..24, 1..6),
        intensity_pct in 30u32..100,
        rounds in 1usize..4,
    ) {
        let cfg = small_cfg(24, n_exc, inh_tenths as f32 / 10.0);
        let intensity = intensity_pct as f32 / 100.0;
        let mut event = DiehlCookNetwork::new(cfg, seed).unwrap();
        let mut reference = DiehlCookNetwork::new(cfg, seed).unwrap();

        let mut rates = vec![0.0f32; 24];
        for &i in &pattern {
            rates[i] = intensity;
        }

        for round in 0..rounds {
            let a = event.present(&rates, true);
            let b = reference.present_reference(&rates, true);

            prop_assert_eq!(
                a.spike_counts.clone(), b.spike_counts.clone(),
                "spike counts diverged in round {}", round
            );
            prop_assert_eq!(a.winner, b.winner, "winner diverged in round {}", round);
            prop_assert_eq!(
                a.fired.clone(), b.fired.clone(),
                "fired order diverged in round {}", round
            );
            prop_assert_eq!(
                a.first_fire_tick, b.first_fire_tick,
                "first-fire tick diverged in round {}", round
            );
            prop_assert_eq!(
                a.first_tick_argmax, b.first_tick_argmax,
                "1-tick argmax diverged in round {}", round
            );
            prop_assert!(
                a.runner_up_potential.is_finite() && b.runner_up_potential.is_finite(),
                "runner-up must be finite (got {} / {})",
                a.runner_up_potential, b.runner_up_potential
            );
            prop_assert!(
                (a.runner_up_potential - b.runner_up_potential).abs()
                    <= ANALOG_TOL * b.runner_up_potential.abs().max(1.0),
                "runner-up potential outside fp tolerance: {} vs {}",
                a.runner_up_potential, b.runner_up_potential
            );
        }

        // Identical spike trains drive identical STDP updates, so learned
        // weights track each other to fp tolerance as well.
        prop_assert_eq!(event.weights().len(), reference.weights().len());
        for (idx, (wa, wb)) in event.weights().iter().zip(reference.weights()).enumerate() {
            prop_assert!(
                (wa - wb).abs() <= ANALOG_TOL * wb.abs().max(1.0),
                "weight {} diverged: {} vs {}", idx, wa, wb
            );
        }
        prop_assert_eq!(event.presentations(), reference.presentations());
    }

    /// Inference-only presentations (the Figure 8 duty-cycle's off phase)
    /// agree too, and neither kernel moves weights.
    #[test]
    fn kernels_agree_without_learning(
        seed in 0u64..1_000,
        n_exc in 1usize..10,
        pattern in prop::collection::vec(0usize..16, 1..5),
    ) {
        let cfg = small_cfg(16, n_exc, 17.5);
        let mut event = DiehlCookNetwork::new(cfg, seed).unwrap();
        let mut reference = DiehlCookNetwork::new(cfg, seed).unwrap();
        let frozen = event.weights().to_vec();

        let mut rates = vec![0.0f32; 16];
        for &i in &pattern {
            rates[i] = 1.0;
        }

        let a = event.present(&rates, false);
        let b = reference.present_reference(&rates, false);
        prop_assert_eq!(a.spike_counts, b.spike_counts);
        prop_assert_eq!(a.winner, b.winner);
        prop_assert_eq!(a.fired, b.fired);
        prop_assert_eq!(a.first_fire_tick, b.first_fire_tick);
        prop_assert_eq!(event.weights(), &frozen[..]);
        prop_assert_eq!(reference.weights(), &frozen[..]);
    }

    /// The frozen-inference kernel (`present_frozen`) pins against the
    /// reference kernel with learning disabled: train two networks in
    /// lockstep through the *same* kernel (bit-identical state), then align
    /// the reference's shared RNG with the frozen kernel's derived
    /// per-query stream — winner, fired order, and spike counts must agree
    /// exactly. The frozen network's persistent state (weights, derived
    /// query seed, weight version, repeat outcomes) must be untouched.
    #[test]
    fn frozen_kernel_agrees_with_reference_without_learning(
        seed in 0u64..1_000,
        n_exc in 1usize..10,
        pattern in prop::collection::vec(0usize..16, 1..5),
        train_rounds in 0usize..4,
        intensity_pct in 30u32..100,
    ) {
        let cfg = small_cfg(16, n_exc, 17.5);
        let mut frozen = DiehlCookNetwork::new(cfg, seed).unwrap();
        let mut reference = DiehlCookNetwork::new(cfg, seed).unwrap();

        let mut rates = vec![0.0f32; 16];
        for &i in &pattern {
            rates[i] = intensity_pct as f32 / 100.0;
        }

        // Lockstep training through one kernel keeps the two networks
        // bit-identical (same seed, same draws, same arithmetic) — so the
        // comparison below starts from genuinely trained, equal state.
        for _ in 0..train_rounds {
            frozen.present_reference(&rates, true);
            reference.present_reference(&rates, true);
        }

        let weights_before = frozen.weights().to_vec();
        let version_before = frozen.weight_version();
        let seed_before = frozen.frozen_query_seed(&rates);

        // The reference run mutates theta; compare against a clone per
        // round so every round starts from the shared trained state.
        let reference_base = reference.clone();
        for round in 0..2 {
            let mut reference = reference_base.clone();
            reference.reseed_rng(frozen.frozen_query_seed(&rates));
            let a = frozen.present_frozen(&rates);
            let b = reference.present_reference(&rates, false);
            prop_assert_eq!(
                a.spike_counts.clone(), b.spike_counts.clone(),
                "spike counts diverged in round {}", round
            );
            prop_assert_eq!(a.winner, b.winner, "winner diverged in round {}", round);
            prop_assert_eq!(
                a.fired.clone(), b.fired.clone(),
                "fired order diverged in round {}", round
            );
            prop_assert_eq!(
                a.first_fire_tick, b.first_fire_tick,
                "first-fire tick diverged in round {}", round
            );
            prop_assert_eq!(
                a.first_tick_argmax, b.first_tick_argmax,
                "1-tick argmax diverged in round {}", round
            );
        }

        // Purity: the frozen queries left no persistent trace behind.
        prop_assert_eq!(frozen.weights(), &weights_before[..]);
        prop_assert_eq!(frozen.weight_version(), version_before);
        prop_assert_eq!(frozen.frozen_query_seed(&rates), seed_before);
    }

    /// `present_frozen` also matches the production event-driven kernel run
    /// with `learn == false` on the same derived stream — the frozen path
    /// differs only in where the RNG comes from and in restoring theta.
    #[test]
    fn frozen_kernel_agrees_with_event_kernel(
        seed in 0u64..1_000,
        n_exc in 1usize..10,
        pattern in prop::collection::vec(0usize..16, 1..5),
    ) {
        let cfg = small_cfg(16, n_exc, 17.5);
        let mut frozen = DiehlCookNetwork::new(cfg, seed).unwrap();
        let mut event = DiehlCookNetwork::new(cfg, seed).unwrap();

        let mut rates = vec![0.0f32; 16];
        for &i in &pattern {
            rates[i] = 1.0;
        }

        event.reseed_rng(frozen.frozen_query_seed(&rates));
        let a = frozen.present_frozen(&rates);
        let b = event.present(&rates, false);
        prop_assert_eq!(a.spike_counts, b.spike_counts);
        prop_assert_eq!(a.winner, b.winner);
        prop_assert_eq!(a.fired, b.fired);
        prop_assert_eq!(a.first_fire_tick, b.first_fire_tick);
        prop_assert_eq!(a.first_tick_argmax, b.first_tick_argmax);
        prop_assert!(
            (a.runner_up_potential - b.runner_up_potential).abs()
                <= ANALOG_TOL * b.runner_up_potential.abs().max(1.0),
            "runner-up potential outside fp tolerance: {} vs {}",
            a.runner_up_potential, b.runner_up_potential
        );
    }
}
