//! The prefetcher interface shared by PATHFINDER and every baseline.

use pathfinder_sim::{Block, MemoryAccess, PrefetchRequest, Trace};

/// A hardware-prefetcher model.
///
/// The competition workflow (§4.1) runs prefetchers *offline* over the load
/// trace: [`Prefetcher::on_access`] is called once per demand load in trace
/// order and returns the blocks to prefetch for that trigger. Offline-trained
/// baselines (Delta-LSTM, Voyager) additionally get the whole trace up front
/// via [`Prefetcher::prepare`].
pub trait Prefetcher {
    /// Human-readable name used in result tables.
    fn name(&self) -> &str;

    /// One-time preparation before the generation pass. Online prefetchers
    /// (everything except the LSTM baselines) ignore this.
    fn prepare(&mut self, trace: &Trace) {
        let _ = trace;
    }

    /// Observes one demand access and returns candidate prefetch blocks,
    /// best first. The harness truncates to the competition's per-access
    /// degree limit.
    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block>;
}

/// Runs `prefetcher` over `trace` and produces the prefetch schedule for the
/// timed replay, enforcing the `max_degree` per-access limit (competition
/// rule: 2) and dropping same-trigger duplicates.
///
/// # Examples
///
/// ```
/// use pathfinder_prefetch::{generate_prefetches, NextLinePrefetcher, Prefetcher};
/// use pathfinder_sim::{MemoryAccess, Trace};
///
/// let trace: Trace = (0..10)
///     .map(|i| MemoryAccess::new(i, 0x400, i * 64))
///     .collect();
/// let mut nl = NextLinePrefetcher::new();
/// let schedule = generate_prefetches(&mut nl, &trace, 2);
/// assert_eq!(schedule.len(), 10); // one next-line prefetch per access
/// ```
pub fn generate_prefetches(
    prefetcher: &mut dyn Prefetcher,
    trace: &Trace,
    max_degree: usize,
) -> Vec<PrefetchRequest> {
    prefetcher.prepare(trace);
    let mut out = Vec::new();
    for access in trace {
        let blocks = prefetcher.on_access(access);
        let mut seen: Vec<Block> = Vec::with_capacity(max_degree);
        for b in blocks {
            if seen.len() >= max_degree {
                break;
            }
            if !seen.contains(&b) {
                seen.push(b);
                out.push(PrefetchRequest::new(access.instr_id, b));
            }
        }
    }
    out
}

/// The no-prefetching baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoPrefetcher;

impl NoPrefetcher {
    /// Creates the (stateless) no-op prefetcher.
    pub fn new() -> Self {
        NoPrefetcher
    }
}

impl Prefetcher for NoPrefetcher {
    fn name(&self) -> &str {
        "No Prefetch"
    }

    fn on_access(&mut self, _access: &MemoryAccess) -> Vec<Block> {
        Vec::new()
    }
}

/// An oracle that prefetches the actual next `degree` distinct future blocks
/// — an upper bound useful in tests and sanity checks, not a baseline from
/// the paper.
#[derive(Debug, Clone, Default)]
pub struct OraclePrefetcher {
    future: Vec<Block>,
    cursor: usize,
    degree: usize,
}

impl OraclePrefetcher {
    /// Creates an oracle issuing `degree` prefetches per access.
    pub fn new(degree: usize) -> Self {
        OraclePrefetcher {
            future: Vec::new(),
            cursor: 0,
            degree,
        }
    }
}

impl Prefetcher for OraclePrefetcher {
    fn name(&self) -> &str {
        "Oracle"
    }

    fn prepare(&mut self, trace: &Trace) {
        self.future = trace.iter().map(|a| a.block()).collect();
        self.cursor = 0;
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        let cur = access.block();
        let mut out = Vec::with_capacity(self.degree);
        let mut i = self.cursor + 1;
        while i < self.future.len() && out.len() < self.degree {
            let b = self.future[i];
            if b != cur && !out.contains(&b) {
                out.push(b);
            }
            i += 1;
        }
        self.cursor += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(blocks: &[u64]) -> Trace {
        blocks
            .iter()
            .enumerate()
            .map(|(i, &b)| MemoryAccess::new(i as u64, 0x400, b * 64))
            .collect()
    }

    #[test]
    fn no_prefetcher_emits_nothing() {
        let t = trace(&[1, 2, 3]);
        let mut p = NoPrefetcher::new();
        assert!(generate_prefetches(&mut p, &t, 2).is_empty());
    }

    #[test]
    fn oracle_predicts_exact_future() {
        let t = trace(&[10, 20, 30, 40]);
        let mut p = OraclePrefetcher::new(2);
        let reqs = generate_prefetches(&mut p, &t, 2);
        // First access prefetches blocks 20 and 30.
        assert_eq!(reqs[0].block, Block(20));
        assert_eq!(reqs[1].block, Block(30));
        assert_eq!(reqs[0].trigger_instr_id, 0);
    }

    #[test]
    fn degree_limit_enforced() {
        let t = trace(&[1, 2, 3, 4, 5, 6]);
        let mut p = OraclePrefetcher::new(5);
        let reqs = generate_prefetches(&mut p, &t, 2);
        for id in 0..4 {
            let n = reqs.iter().filter(|r| r.trigger_instr_id == id).count();
            assert!(n <= 2, "access {id} issued {n} prefetches");
        }
    }

    #[test]
    fn duplicate_blocks_per_trigger_are_dropped() {
        struct Dup;
        impl Prefetcher for Dup {
            fn name(&self) -> &str {
                "dup"
            }
            fn on_access(&mut self, _a: &MemoryAccess) -> Vec<Block> {
                vec![Block(7), Block(7)]
            }
        }
        let t = trace(&[1]);
        let reqs = generate_prefetches(&mut Dup, &t, 2);
        assert_eq!(reqs.len(), 1);
    }
}
