//! Idealized Irregular Stream Buffer (SISB) — temporal record-and-replay
//! prefetching with unbounded metadata, as provided by the ML Prefetching
//! Competition (the paper's strongest rule-based baseline on temporal
//! workloads like xalan and omnetpp).

use std::collections::HashMap;

use pathfinder_sim::{Block, MemoryAccess};

use crate::api::Prefetcher;

/// The idealized ISB.
///
/// ISB linearizes irregular accesses into PC-localized *structural* streams:
/// for each load PC, the sequence of blocks it touches is recorded, and on a
/// re-occurrence of a block the successors recorded last time are replayed.
/// "Idealized" means the mapping tables are unbounded and never evicted —
/// the competition's SISB upper-bounds what a real ISB could do.
#[derive(Debug, Clone)]
pub struct SisbPrefetcher {
    /// `(pc, block) -> next block in that PC's temporal stream`.
    successor: HashMap<(u64, u64), Block>,
    /// Last block touched by each PC.
    last_by_pc: HashMap<u64, Block>,
    degree: usize,
}

impl SisbPrefetcher {
    /// Creates an idealized ISB issuing up to `degree` replayed successors.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        SisbPrefetcher {
            successor: HashMap::new(),
            last_by_pc: HashMap::new(),
            degree,
        }
    }

    /// Number of recorded (pc, block) → successor links.
    pub fn recorded_links(&self) -> usize {
        self.successor.len()
    }
}

impl Prefetcher for SisbPrefetcher {
    fn name(&self) -> &str {
        "SISB"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        let pc = access.pc.raw();
        let block = access.block();

        // Record: extend this PC's temporal stream.
        if let Some(prev) = self.last_by_pc.insert(pc, block) {
            if prev != block {
                self.successor.insert((pc, prev.0), block);
            }
        }

        // Replay: follow the recorded successor chain.
        let mut out = Vec::with_capacity(self.degree);
        let mut cur = block;
        for _ in 0..self.degree {
            match self.successor.get(&(pc, cur.0)) {
                Some(&next) if next != block && !out.contains(&next) => {
                    out.push(next);
                    cur = next;
                }
                _ => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(i: u64, pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::new(i, pc, block * 64)
    }

    #[test]
    fn replays_an_irregular_sequence() {
        let mut sisb = SisbPrefetcher::new(2);
        let seq = [100u64, 7, 93, 12, 55];
        // First pass: record only.
        for (i, &b) in seq.iter().enumerate() {
            assert!(sisb.on_access(&access(i as u64, 1, b)).is_empty() || i > 0);
        }
        // Second pass: each access replays the recorded successors.
        let out = sisb.on_access(&access(10, 1, 100));
        assert_eq!(out, vec![Block(7), Block(93)]);
        let out = sisb.on_access(&access(11, 1, 7));
        assert_eq!(out, vec![Block(93), Block(12)]);
    }

    #[test]
    fn streams_are_pc_localized() {
        let mut sisb = SisbPrefetcher::new(1);
        // PC 1 stream: 10 -> 20. PC 2 stream: 10 -> 99.
        sisb.on_access(&access(0, 1, 10));
        sisb.on_access(&access(1, 2, 10));
        sisb.on_access(&access(2, 1, 20));
        sisb.on_access(&access(3, 2, 99));
        assert_eq!(sisb.on_access(&access(4, 1, 10)), vec![Block(20)]);
        assert_eq!(sisb.on_access(&access(5, 2, 10)), vec![Block(99)]);
    }

    #[test]
    fn updates_stale_successors() {
        let mut sisb = SisbPrefetcher::new(1);
        sisb.on_access(&access(0, 1, 5));
        sisb.on_access(&access(1, 1, 6));
        // New phase: 5 is now followed by 42.
        sisb.on_access(&access(2, 1, 5));
        sisb.on_access(&access(3, 1, 42));
        assert_eq!(sisb.on_access(&access(4, 1, 5)), vec![Block(42)]);
    }

    #[test]
    fn no_replay_without_history() {
        let mut sisb = SisbPrefetcher::new(2);
        assert!(sisb.on_access(&access(0, 9, 1234)).is_empty());
        assert_eq!(sisb.recorded_links(), 0);
    }

    #[test]
    fn repeated_same_block_records_nothing() {
        let mut sisb = SisbPrefetcher::new(1);
        sisb.on_access(&access(0, 1, 8));
        sisb.on_access(&access(1, 1, 8));
        assert_eq!(sisb.recorded_links(), 0);
    }
}
