//! The Delta-LSTM baseline (Hashemi et al., "Learning Memory Access
//! Patterns", ICML 2018), as configured in §4.3: addresses are k-means
//! clustered by locality (6 clusters), and a per-cluster LSTM is trained
//! offline on the first 10% of the cluster's accesses to predict the next
//! address delta. Inference then runs over the full trace.
//!
//! The paper highlights this baseline's structural weakness — deltas unseen
//! during the training prefix cannot be predicted — which emerges naturally
//! here because the delta vocabulary is frozen after training.

use std::collections::HashMap;

use pathfinder_nn::{Clustering, ModelConfig, SequenceClassifier};
use pathfinder_sim::{Block, MemoryAccess, Trace};

use crate::api::Prefetcher;

/// Delta-LSTM hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeltaLstmConfig {
    /// Number of address clusters (paper recommendation: 6).
    pub clusters: usize,
    /// Delta-history length fed to the LSTM.
    pub history: usize,
    /// Fraction of each cluster's accesses used for offline training
    /// (§4.3: the initial 10%).
    pub train_fraction: f64,
    /// Most-frequent-delta vocabulary size per cluster (index 0 is OOV).
    pub vocab: usize,
    /// Training epochs over the prefix.
    pub epochs: usize,
    /// LSTM width. The paper uses two 128-unit layers; the default here is
    /// scaled down for tractable CPU-only runs (see DESIGN.md).
    pub hidden: usize,
    /// Stacked LSTM layers (paper: 2).
    pub layers: usize,
    /// Prefetch degree.
    pub degree: usize,
    /// RNG seed for weight initialization.
    pub seed: u64,
}

impl Default for DeltaLstmConfig {
    fn default() -> Self {
        DeltaLstmConfig {
            clusters: 6,
            history: 3,
            train_fraction: 0.10,
            vocab: 129,
            epochs: 1,
            hidden: 32,
            layers: 2,
            degree: 2,
            seed: 0xDE17A,
        }
    }
}

struct ClusterModel {
    model: SequenceClassifier,
    /// delta -> token (1..vocab); token 0 is out-of-vocabulary.
    token_of: HashMap<i64, usize>,
    /// token -> delta.
    delta_of: Vec<i64>,
    /// Rolling token history during inference.
    history: Vec<usize>,
    /// Memoized top-k predictions: the model is frozen after training and
    /// delta histories repeat heavily, so inference collapses to a lookup.
    memo: HashMap<Vec<usize>, Vec<usize>>,
}

/// The offline-trained Delta-LSTM prefetcher.
pub struct DeltaLstmPrefetcher {
    config: DeltaLstmConfig,
    clustering: Option<Clustering>,
    models: Vec<ClusterModel>,
    /// Per-cluster last block, for delta computation at inference.
    last_block: Vec<Option<Block>>,
    /// Deltas seen at inference that were not in the training vocabulary.
    unseen_deltas: u64,
}

impl std::fmt::Debug for DeltaLstmPrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeltaLstmPrefetcher")
            .field("config", &self.config)
            .field("models", &self.models.len())
            .field("unseen_deltas", &self.unseen_deltas)
            .finish()
    }
}

impl DeltaLstmPrefetcher {
    /// Creates an untrained Delta-LSTM; call via [`Prefetcher::prepare`]
    /// (done automatically by `generate_prefetches`) before inference.
    pub fn new(config: DeltaLstmConfig) -> Self {
        DeltaLstmPrefetcher {
            config,
            clustering: None,
            models: Vec::new(),
            last_block: Vec::new(),
            unseen_deltas: 0,
        }
    }

    /// Inference-time deltas that fell outside the trained vocabulary —
    /// the effect §5 quantifies when discussing training on 30% of a trace.
    pub fn unseen_deltas(&self) -> u64 {
        self.unseen_deltas
    }

    fn cluster_of(&self, addr: u64) -> usize {
        self.clustering
            .as_ref()
            .map_or(0, |c| c.assign(addr as f64))
    }
}

impl Prefetcher for DeltaLstmPrefetcher {
    fn name(&self) -> &str {
        "Delta-LSTM"
    }

    fn prepare(&mut self, trace: &Trace) {
        let cfg = self.config;
        // 1. Cluster addresses by locality.
        let addrs: Vec<f64> = trace.iter().map(|a| a.vaddr.raw() as f64).collect();
        let clustering = Clustering::fit(&addrs, cfg.clusters, 15);
        let k = clustering.len();

        // 2. Split accesses into per-cluster streams.
        let mut streams: Vec<Vec<Block>> = vec![Vec::new(); k];
        for a in trace {
            let c = clustering.assign(a.vaddr.raw() as f64);
            streams[c].push(a.block());
        }

        // 3. Per cluster: build the delta vocabulary from the training
        //    prefix and train the LSTM.
        self.models.clear();
        for (ci, stream) in streams.iter().enumerate() {
            let train_len = ((stream.len() as f64 * cfg.train_fraction) as usize).max(
                cfg.history + 2, // need at least one training example
            );
            let prefix = &stream[..train_len.min(stream.len())];
            let deltas: Vec<i64> = prefix.windows(2).map(|w| w[0].delta(w[1])).collect();

            // Top-(vocab-1) most common deltas.
            let mut counts: HashMap<i64, usize> = HashMap::new();
            for &d in &deltas {
                *counts.entry(d).or_insert(0) += 1;
            }
            let mut by_freq: Vec<(i64, usize)> = counts.into_iter().collect();
            by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            by_freq.truncate(cfg.vocab - 1);

            let mut token_of = HashMap::new();
            let mut delta_of = vec![0i64]; // token 0 = OOV
            for (tok, (d, _)) in by_freq.iter().enumerate() {
                token_of.insert(*d, tok + 1);
                delta_of.push(*d);
            }

            let mut model = SequenceClassifier::new(
                ModelConfig {
                    vocab: cfg.vocab,
                    embed: 16,
                    hidden: cfg.hidden,
                    layers: cfg.layers,
                },
                cfg.seed ^ ci as u64,
            );
            let tokens: Vec<usize> = deltas
                .iter()
                .map(|d| *token_of.get(d).unwrap_or(&0))
                .collect();
            for _ in 0..cfg.epochs {
                for w in tokens.windows(cfg.history + 1) {
                    let (hist, tgt) = w.split_at(cfg.history);
                    model.train_step(hist, tgt[0], 0.01);
                }
            }
            self.models.push(ClusterModel {
                model,
                token_of,
                delta_of,
                history: Vec::new(),
                memo: HashMap::new(),
            });
        }
        self.last_block = vec![None; k];
        self.clustering = Some(clustering);
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        if self.models.is_empty() {
            return Vec::new();
        }
        let c = self.cluster_of(access.vaddr.raw());
        let block = access.block();
        let degree = self.config.degree;
        let history_len = self.config.history;

        let prev = self.last_block[c].replace(block);
        let Some(prev) = prev else {
            return Vec::new();
        };
        let delta = prev.delta(block);
        let cm = &mut self.models[c];
        let token = match cm.token_of.get(&delta) {
            Some(&t) => t,
            None => {
                self.unseen_deltas += 1;
                0
            }
        };
        cm.history.push(token);
        if cm.history.len() > history_len {
            cm.history.remove(0);
        }
        if cm.history.len() < history_len {
            return Vec::new();
        }

        let hist = cm.history.clone();
        let top = match cm.memo.get(&hist) {
            Some(t) => t.clone(),
            None => {
                let t = cm.model.predict_topk(&hist, degree + 2);
                if cm.memo.len() > 1_000_000 {
                    cm.memo.clear();
                }
                cm.memo.insert(hist.clone(), t.clone());
                t
            }
        };
        top.into_iter()
            // Token 0 is OOV and tokens past the learned vocabulary have no
            // delta meaning (the model's logit space covers the full
            // configured vocab even when fewer deltas were seen).
            .filter(|&t| t != 0 && t < cm.delta_of.len())
            .take(degree)
            .map(|t| block.offset_by(cm.delta_of[t]))
            .filter(|&b| b != block)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::generate_prefetches;

    fn strided_trace(n: u64, stride: u64) -> Trace {
        (0..n)
            .map(|i| MemoryAccess::new(i, 0x400, 0x100_0000 + i * stride * 64))
            .collect()
    }

    fn fast_cfg() -> DeltaLstmConfig {
        DeltaLstmConfig {
            clusters: 2,
            hidden: 16,
            layers: 1,
            vocab: 17,
            ..DeltaLstmConfig::default()
        }
    }

    #[test]
    fn learns_a_constant_stride() {
        let trace = strided_trace(3000, 2);
        let mut p = DeltaLstmPrefetcher::new(fast_cfg());
        let reqs = generate_prefetches(&mut p, &trace, 2);
        // After the first H accesses, predictions should be block+2.
        let hits = reqs
            .iter()
            .filter(|r| {
                let trigger = r.trigger_instr_id;
                r.block.0 == trace.accesses()[trigger as usize].block().0 + 2
            })
            .count();
        assert!(
            hits > reqs.len() / 3,
            "stride should dominate predictions: {hits}/{}",
            reqs.len()
        );
    }

    #[test]
    fn counts_unseen_deltas() {
        // Train prefix (10%) only sees stride 1; the rest switches to a
        // stride absent from the vocabulary... build it manually.
        let mut accesses = Vec::new();
        let mut block = 0u64;
        for i in 0..2000u64 {
            block += if i < 400 { 1 } else { 37 + (i % 5) };
            accesses.push(MemoryAccess::new(i, 0x400, block * 64));
        }
        let trace = Trace::from_accesses(accesses);
        let mut p = DeltaLstmPrefetcher::new(DeltaLstmConfig {
            clusters: 1,
            hidden: 8,
            layers: 1,
            vocab: 9,
            ..DeltaLstmConfig::default()
        });
        let _ = generate_prefetches(&mut p, &trace, 2);
        assert!(
            p.unseen_deltas() > 500,
            "novel deltas should be flagged, got {}",
            p.unseen_deltas()
        );
    }

    #[test]
    fn no_predictions_before_history_fills() {
        let trace = strided_trace(100, 1);
        let mut p = DeltaLstmPrefetcher::new(fast_cfg());
        p.prepare(&trace);
        let first = p.on_access(&trace.accesses()[0]);
        assert!(first.is_empty(), "first access has no delta yet");
    }
}
