//! Priority-fill prefetcher ensembles (§3.4 "Ensemble of Prefetchers").
//!
//! The paper's best design point combines PATHFINDER with Next-Line and
//! SISB: the primary prefetcher's predictions are taken first, and lower-
//! priority members fill whatever slots of the per-access budget remain.

use pathfinder_sim::{Block, MemoryAccess, Trace};

use crate::api::Prefetcher;

/// A fixed-priority ensemble: members are consulted in order and each may
/// fill remaining prefetch slots.
pub struct EnsemblePrefetcher {
    name: String,
    members: Vec<Box<dyn Prefetcher + Send>>,
    budget: usize,
    /// Per-member count of slots actually used (for the 80-99% neural-use
    /// statistic reported in §5).
    slots_used: Vec<u64>,
}

impl std::fmt::Debug for EnsemblePrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsemblePrefetcher")
            .field("name", &self.name)
            .field("members", &self.members.len())
            .field("budget", &self.budget)
            .field("slots_used", &self.slots_used)
            .finish()
    }
}

impl EnsemblePrefetcher {
    /// Creates an ensemble with a per-access prefetch budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(name: impl Into<String>, budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        EnsemblePrefetcher {
            name: name.into(),
            members: Vec::new(),
            budget,
            slots_used: Vec::new(),
        }
    }

    /// Appends a member at the lowest priority so far; returns `self` for
    /// chaining.
    pub fn with(mut self, member: impl Prefetcher + Send + 'static) -> Self {
        self.members.push(Box::new(member));
        self.slots_used.push(0);
        self
    }

    /// Per-member slot usage counts, in priority order.
    pub fn slots_used(&self) -> &[u64] {
        &self.slots_used
    }

    /// Fraction of used slots attributed to the highest-priority member.
    pub fn primary_share(&self) -> f64 {
        let total: u64 = self.slots_used.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.slots_used[0] as f64 / total as f64
        }
    }
}

impl Prefetcher for EnsemblePrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare(&mut self, trace: &Trace) {
        for m in &mut self.members {
            m.prepare(trace);
        }
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        let mut out: Vec<Block> = Vec::with_capacity(self.budget);
        for (mi, m) in self.members.iter_mut().enumerate() {
            // Every member observes every access (so its internal state
            // stays trained) even if its slots are already taken.
            let candidates = m.on_access(access);
            for b in candidates {
                if out.len() >= self.budget {
                    break;
                }
                if !out.contains(&b) {
                    out.push(b);
                    self.slots_used[mi] += 1;
                }
            }
        }
        out
    }
}

/// A dynamic-priority ensemble — the policy §5 names as future work
/// ("It is possible to get larger benefits with dynamic ensemble priority
/// policies").
///
/// Each member's recent predictions are scored against the demand stream
/// within a sliding horizon; members are consulted in descending recent
/// hit-rate, re-ranked every `rerank_interval` accesses. A fixed-priority
/// ensemble can starve a member that happens to suit the current phase;
/// this one adapts.
pub struct DynamicEnsemblePrefetcher {
    name: String,
    members: Vec<Box<dyn Prefetcher + Send>>,
    budget: usize,
    horizon: usize,
    rerank_interval: u64,
    /// Per member: outstanding (block, issue index) predictions.
    outstanding: Vec<std::collections::VecDeque<(Block, u64)>>,
    /// Per member: recent hits and issues (decayed at each re-rank).
    hits: Vec<f64>,
    issues: Vec<f64>,
    /// Current consultation order (member indices).
    order: Vec<usize>,
    accesses: u64,
}

impl std::fmt::Debug for DynamicEnsemblePrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DynamicEnsemblePrefetcher")
            .field("name", &self.name)
            .field("members", &self.members.len())
            .field("order", &self.order)
            .finish()
    }
}

impl DynamicEnsemblePrefetcher {
    /// Creates a dynamic ensemble with the given per-access budget.
    ///
    /// # Panics
    ///
    /// Panics if `budget == 0`.
    pub fn new(name: impl Into<String>, budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        DynamicEnsemblePrefetcher {
            name: name.into(),
            members: Vec::new(),
            budget,
            horizon: 256,
            rerank_interval: 1024,
            outstanding: Vec::new(),
            hits: Vec::new(),
            issues: Vec::new(),
            order: Vec::new(),
            accesses: 0,
        }
    }

    /// Appends a member (initial priority = insertion order); returns
    /// `self` for chaining.
    pub fn with(mut self, member: impl Prefetcher + Send + 'static) -> Self {
        self.members.push(Box::new(member));
        self.outstanding.push(std::collections::VecDeque::new());
        self.hits.push(0.0);
        self.issues.push(0.0);
        self.order.push(self.order.len());
        self
    }

    /// The current consultation order (most trusted first).
    pub fn current_order(&self) -> &[usize] {
        &self.order
    }

    /// Recent hit-rate per member.
    pub fn hit_rates(&self) -> Vec<f64> {
        self.hits
            .iter()
            .zip(&self.issues)
            .map(|(h, i)| if *i > 0.0 { h / i } else { 0.0 })
            .collect()
    }

    fn score_demand(&mut self, block: Block) {
        let expiry = self.accesses.saturating_sub(self.horizon as u64);
        for (mi, q) in self.outstanding.iter_mut().enumerate() {
            while let Some(&(_, at)) = q.front() {
                if at < expiry {
                    q.pop_front();
                } else {
                    break;
                }
            }
            if let Some(pos) = q.iter().position(|&(b, _)| b == block) {
                q.remove(pos);
                self.hits[mi] += 1.0;
            }
        }
    }

    fn rerank(&mut self) {
        let rates = self.hit_rates();
        self.order
            .sort_by(|&a, &b| rates[b].partial_cmp(&rates[a]).expect("finite rates"));
        // Exponential decay keeps the ranking responsive to phase changes.
        for (h, i) in self.hits.iter_mut().zip(&mut self.issues) {
            *h *= 0.5;
            *i *= 0.5;
        }
    }
}

impl Prefetcher for DynamicEnsemblePrefetcher {
    fn name(&self) -> &str {
        &self.name
    }

    fn prepare(&mut self, trace: &Trace) {
        for m in &mut self.members {
            m.prepare(trace);
        }
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        self.accesses += 1;
        self.score_demand(access.block());
        if self.accesses.is_multiple_of(self.rerank_interval) {
            self.rerank();
        }

        // Every member observes every access and is *shadow-evaluated* on
        // all of its candidates (sandbox-style, so an unlucky member can
        // still earn trust); the budget only gates what is actually issued.
        let mut candidates: Vec<Vec<Block>> = Vec::with_capacity(self.members.len());
        for (mi, m) in self.members.iter_mut().enumerate() {
            let c = m.on_access(access);
            for &b in &c {
                self.issues[mi] += 1.0;
                self.outstanding[mi].push_back((b, self.accesses));
                if self.outstanding[mi].len() > 4 * self.horizon {
                    self.outstanding[mi].pop_front();
                }
            }
            candidates.push(c);
        }
        let mut out: Vec<Block> = Vec::with_capacity(self.budget);
        for &mi in &self.order {
            for &b in &candidates[mi] {
                if out.len() >= self.budget {
                    break;
                }
                if !out.contains(&b) {
                    out.push(b);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{NoPrefetcher, Prefetcher};
    use crate::nextline::NextLinePrefetcher;

    struct Fixed(Vec<u64>);
    impl Prefetcher for Fixed {
        fn name(&self) -> &str {
            "fixed"
        }
        fn on_access(&mut self, _a: &MemoryAccess) -> Vec<Block> {
            self.0.iter().map(|&b| Block(b)).collect()
        }
    }

    fn access(block: u64) -> MemoryAccess {
        MemoryAccess::new(0, 0x400, block * 64)
    }

    #[test]
    fn primary_takes_priority() {
        let mut e = EnsemblePrefetcher::new("test", 2)
            .with(Fixed(vec![100, 101]))
            .with(Fixed(vec![200, 201]));
        let out = e.on_access(&access(1));
        assert_eq!(out, vec![Block(100), Block(101)]);
        assert_eq!(e.slots_used(), &[2, 0]);
    }

    #[test]
    fn secondary_fills_unused_slots() {
        let mut e = EnsemblePrefetcher::new("test", 2)
            .with(Fixed(vec![100]))
            .with(Fixed(vec![200, 201]));
        let out = e.on_access(&access(1));
        assert_eq!(out, vec![Block(100), Block(200)]);
        assert_eq!(e.slots_used(), &[1, 1]);
    }

    #[test]
    fn empty_primary_falls_through() {
        let mut e = EnsemblePrefetcher::new("pf+nl", 2)
            .with(NoPrefetcher::new())
            .with(NextLinePrefetcher::with_degree(2));
        let out = e.on_access(&access(10));
        assert_eq!(out, vec![Block(11), Block(12)]);
        assert!((e.primary_share() - 0.0).abs() < f64::EPSILON);
    }

    #[test]
    fn duplicates_across_members_collapse() {
        let mut e = EnsemblePrefetcher::new("test", 2)
            .with(Fixed(vec![100]))
            .with(Fixed(vec![100, 300]));
        let out = e.on_access(&access(1));
        assert_eq!(out, vec![Block(100), Block(300)]);
    }

    #[test]
    fn primary_share_tracks_usage() {
        let mut e = EnsemblePrefetcher::new("test", 2)
            .with(Fixed(vec![1, 2]))
            .with(Fixed(vec![3]));
        for _ in 0..10 {
            e.on_access(&access(5));
        }
        assert!((e.primary_share() - 1.0).abs() < f64::EPSILON);
    }

    /// Always predicts the next block of a +1 stream (accurate on streams).
    struct PlusOne;
    impl Prefetcher for PlusOne {
        fn name(&self) -> &str {
            "plus-one"
        }
        fn on_access(&mut self, a: &MemoryAccess) -> Vec<Block> {
            vec![Block(a.block().0 + 1)]
        }
    }

    /// Always predicts a block nobody will touch.
    struct Garbage;
    impl Prefetcher for Garbage {
        fn name(&self) -> &str {
            "garbage"
        }
        fn on_access(&mut self, _a: &MemoryAccess) -> Vec<Block> {
            vec![Block(u64::MAX / 2)]
        }
    }

    #[test]
    fn dynamic_ensemble_promotes_the_accurate_member() {
        // Garbage starts at the highest priority; after re-ranking the
        // accurate +1 predictor must take over the budget slot.
        let mut e = DynamicEnsemblePrefetcher::new("dyn", 1)
            .with(Garbage)
            .with(PlusOne);
        assert_eq!(e.current_order(), &[0, 1]);
        for i in 0..4096u64 {
            e.on_access(&MemoryAccess::new(i, 0x400, i * 64));
        }
        assert_eq!(
            e.current_order()[0],
            1,
            "accurate member should be promoted: rates {:?}",
            e.hit_rates()
        );
        let out = e.on_access(&MemoryAccess::new(9000, 0x400, 9000 * 64));
        assert_eq!(out, vec![Block(9001)], "budget goes to the promoted member");
    }

    #[test]
    fn dynamic_ensemble_respects_budget() {
        let mut e = DynamicEnsemblePrefetcher::new("dyn", 2)
            .with(PlusOne)
            .with(Fixed(vec![100, 101, 102]));
        let out = e.on_access(&access(5));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn dynamic_hit_rates_bounded() {
        let mut e = DynamicEnsemblePrefetcher::new("dyn", 2)
            .with(PlusOne)
            .with(Garbage);
        for i in 0..3000u64 {
            e.on_access(&MemoryAccess::new(i, 0x400, i * 64));
        }
        for r in e.hit_rates() {
            assert!((0.0..=1.0).contains(&r), "rate {r}");
        }
    }
}
