//! # pathfinder-prefetch
//!
//! The prefetcher interface and every baseline the PATHFINDER paper
//! compares against (§4.3):
//!
//! | Baseline | Class | Module |
//! |---|---|---|
//! | No Prefetch | — | [`api`] |
//! | Next-Line / Stride | rule-based stride | [`nextline`] |
//! | Best-Offset (BO) | rule-based offset | [`best_offset`] |
//! | SPP | history-based delta, confidence throttled | [`spp`] |
//! | SISB | idealized temporal record-replay | [`sisb`] |
//! | Pythia | tabular RL over delta actions | [`pythia`] |
//! | Delta-LSTM | offline-trained neural delta | [`delta_lstm`] |
//! | Voyager | offline-trained hierarchical neural | [`voyager`] |
//! | Ensembles | priority fill | [`ensemble`] |
//!
//! PATHFINDER itself lives in the `pathfinder-core` crate and implements the
//! same [`Prefetcher`] trait.
//!
//! ## Quick start
//!
//! ```
//! use pathfinder_prefetch::{generate_prefetches, Prefetcher, SisbPrefetcher};
//! use pathfinder_sim::{MemoryAccess, Trace};
//!
//! // An irregular but repeating stream: SISB records it, then replays it.
//! let tour = [100u64, 7, 93, 12, 55, 31];
//! let trace: Trace = (0..600)
//!     .map(|i| MemoryAccess::new(i, 0x400, tour[(i % 6) as usize] * 64))
//!     .collect();
//!
//! let mut sisb = SisbPrefetcher::new(1);
//! let schedule = generate_prefetches(&mut sisb, &trace, 2);
//! // After the first lap, every prediction is the true next block.
//! let correct = schedule
//!     .iter()
//!     .filter(|r| {
//!         let i = r.trigger_instr_id as usize;
//!         trace.accesses().get(i + 1).is_some_and(|n| n.block() == r.block)
//!     })
//!     .count();
//! assert!(correct as f64 > 0.95 * schedule.len() as f64);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod best_offset;
pub mod delta_lstm;
pub mod ensemble;
pub mod nextline;
pub mod pythia;
pub mod sisb;
pub mod spp;
pub mod voyager;

pub use api::{generate_prefetches, NoPrefetcher, OraclePrefetcher, Prefetcher};
pub use best_offset::{BestOffsetPrefetcher, BO_OFFSETS};
pub use delta_lstm::{DeltaLstmConfig, DeltaLstmPrefetcher};
pub use ensemble::{DynamicEnsemblePrefetcher, EnsemblePrefetcher};
pub use nextline::{NextLinePrefetcher, StridePrefetcher};
pub use pythia::{PythiaConfig, PythiaPrefetcher, RewardConfig, DEFAULT_ACTIONS};
pub use sisb::SisbPrefetcher;
pub use spp::{SppConfig, SppPrefetcher};
pub use voyager::{VoyagerConfig, VoyagerPrefetcher};
