//! The Voyager baseline (Shi et al., ASPLOS 2021): a hierarchical neural
//! model that splits address prediction into a *page* head and an *offset*
//! head sharing one LSTM over the embedded (page, offset) access history.
//!
//! Following §4.3, the surrogate trains offline on the same trace it is
//! evaluated on ("Voyager has the benefit of a long and precise training
//! process on the entire trace"), which is what lets it beat on-line
//! learners on irregular workloads in Figure 4.

use std::collections::HashMap;

use pathfinder_nn::model::softmax;
use pathfinder_nn::{Adam, LstmLayer, Tensor};
use pathfinder_sim::{Block, MemoryAccess, Page, Trace, BLOCKS_PER_PAGE};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::api::Prefetcher;

const N_OFFSETS: usize = BLOCKS_PER_PAGE as usize;

/// Voyager hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoyagerConfig {
    /// History length in (page, offset) tokens.
    pub history: usize,
    /// Page-vocabulary size (most-frequent pages; index 0 = OOV).
    pub page_vocab: usize,
    /// Page-embedding width.
    pub page_embed: usize,
    /// Offset-embedding width.
    pub offset_embed: usize,
    /// Shared-LSTM hidden width (scaled down from the paper's model; see
    /// DESIGN.md).
    pub hidden: usize,
    /// Training epochs over the trace.
    pub epochs: usize,
    /// Stride over training examples (1 = every access; larger values
    /// subsample for speed).
    pub train_stride: usize,
    /// Prefetch degree.
    pub degree: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for VoyagerConfig {
    fn default() -> Self {
        VoyagerConfig {
            history: 4,
            page_vocab: 513,
            page_embed: 16,
            offset_embed: 8,
            hidden: 32,
            epochs: 1,
            train_stride: 2,
            degree: 2,
            seed: 0x70A6E5,
        }
    }
}

/// The hierarchical page/offset LSTM prefetcher.
pub struct VoyagerPrefetcher {
    config: VoyagerConfig,
    model: Option<VoyagerModel>,
    /// page -> token (1..page_vocab); 0 = OOV.
    page_token: HashMap<u64, usize>,
    /// token -> page.
    page_of: Vec<u64>,
    /// Rolling (page token, offset) history at inference time.
    history: Vec<(usize, usize)>,
    /// Last block observed (to filter same-block repeats at inference too).
    last_block: Option<Block>,
    /// Memoized predictions: the model is frozen after `prepare`, so each
    /// distinct history maps to a fixed (pages, offsets) answer. Histories
    /// repeat heavily on looping workloads, making inference near-free.
    memo: HashMap<HistoryKey, Prediction>,
}

/// A rolling (page token, offset) history used as the memo key.
type HistoryKey = Vec<(usize, usize)>;
/// Predicted (page tokens, offsets) for one history.
type Prediction = (Vec<usize>, Vec<usize>);

/// Shared-LSTM two-head network.
struct VoyagerModel {
    embed_page: Tensor,
    embed_off: Tensor,
    lstm: LstmLayer,
    head_page_w: Tensor,
    head_page_b: Tensor,
    head_off_w: Tensor,
    head_off_b: Tensor,
    adam: Adam,
    cfg: VoyagerConfig,
}

impl VoyagerModel {
    fn new(cfg: VoyagerConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let input = cfg.page_embed + cfg.offset_embed;
        VoyagerModel {
            embed_page: Tensor::xavier(cfg.page_vocab, cfg.page_embed, &mut rng),
            embed_off: Tensor::xavier(N_OFFSETS, cfg.offset_embed, &mut rng),
            lstm: LstmLayer::new(input, cfg.hidden, &mut rng),
            head_page_w: Tensor::xavier(cfg.page_vocab, cfg.hidden, &mut rng),
            head_page_b: Tensor::zeros(cfg.page_vocab, 1),
            head_off_w: Tensor::xavier(N_OFFSETS, cfg.hidden, &mut rng),
            head_off_b: Tensor::zeros(N_OFFSETS, 1),
            adam: Adam::default(),
            cfg,
        }
    }

    fn embed(&self, history: &[(usize, usize)]) -> Vec<Vec<f32>> {
        history
            .iter()
            .map(|&(p, o)| {
                let mut x = Vec::with_capacity(self.cfg.page_embed + self.cfg.offset_embed);
                x.extend_from_slice(self.embed_page.row(p % self.cfg.page_vocab));
                x.extend_from_slice(self.embed_off.row(o % N_OFFSETS));
                x
            })
            .collect()
    }

    /// Forward pass: (page probabilities, offset probabilities).
    fn predict(&self, history: &[(usize, usize)]) -> (Vec<f32>, Vec<f32>) {
        let seq = self.embed(history);
        let h = self.lstm.forward_inference(&seq);
        let mut pl = self.head_page_b.data.clone();
        self.head_page_w.matvec_acc(&h, &mut pl);
        let mut ol = self.head_off_b.data.clone();
        self.head_off_w.matvec_acc(&h, &mut ol);
        (softmax(&pl), softmax(&ol))
    }

    /// One joint training step; returns the summed cross-entropy loss.
    fn train_step(
        &mut self,
        history: &[(usize, usize)],
        target_page: usize,
        target_off: usize,
        lr: f32,
    ) -> f32 {
        let seq = self.embed(history);
        let outs = self.lstm.forward(&seq);
        let h = outs.last().expect("non-empty history").clone();

        let mut pl = self.head_page_b.data.clone();
        self.head_page_w.matvec_acc(&h, &mut pl);
        let mut ol = self.head_off_b.data.clone();
        self.head_off_w.matvec_acc(&h, &mut ol);
        let pp = softmax(&pl);
        let po = softmax(&ol);
        let loss = -(pp[target_page].max(1e-12)).ln() - (po[target_off].max(1e-12)).ln();

        // Backward through both heads into the shared hidden state.
        let mut dpl = pp;
        dpl[target_page] -= 1.0;
        let mut dol = po;
        dol[target_off] -= 1.0;
        let mut dh = vec![0.0f32; self.cfg.hidden];
        self.head_page_w.backward_matvec(&h, &dpl, Some(&mut dh));
        self.head_off_w.backward_matvec(&h, &dol, Some(&mut dh));
        for (g, d) in self.head_page_b.grad.iter_mut().zip(&dpl) {
            *g += d;
        }
        for (g, d) in self.head_off_b.grad.iter_mut().zip(&dol) {
            *g += d;
        }

        // Through the LSTM (loss only at the final step) and embeddings.
        let mut d_seq = vec![vec![0.0f32; self.cfg.hidden]; history.len()];
        *d_seq.last_mut().expect("non-empty") = dh;
        let d_inputs = self.lstm.backward(&d_seq);
        for (&(p, o), dx) in history.iter().zip(&d_inputs) {
            let (dp, do_) = dx.split_at(self.cfg.page_embed);
            for (g, d) in self
                .embed_page
                .grad_row_mut(p % self.cfg.page_vocab)
                .iter_mut()
                .zip(dp)
            {
                *g += d;
            }
            for (g, d) in self
                .embed_off
                .grad_row_mut(o % N_OFFSETS)
                .iter_mut()
                .zip(do_)
            {
                *g += d;
            }
        }

        let mut params: Vec<&mut Tensor> = vec![
            &mut self.embed_page,
            &mut self.embed_off,
            &mut self.head_page_w,
            &mut self.head_page_b,
            &mut self.head_off_w,
            &mut self.head_off_b,
        ];
        params.extend(self.lstm.params_mut());
        self.adam.step(&mut params, lr);
        for p in params {
            p.zero_grad();
        }
        loss
    }
}

impl std::fmt::Debug for VoyagerPrefetcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VoyagerPrefetcher")
            .field("config", &self.config)
            .field("pages_in_vocab", &self.page_token.len())
            .field("trained", &self.model.is_some())
            .finish()
    }
}

impl VoyagerPrefetcher {
    /// Creates an untrained Voyager; training happens in
    /// [`Prefetcher::prepare`].
    pub fn new(config: VoyagerConfig) -> Self {
        VoyagerPrefetcher {
            config,
            model: None,
            page_token: HashMap::new(),
            page_of: vec![0],
            history: Vec::new(),
            last_block: None,
            memo: HashMap::new(),
        }
    }
}

impl Prefetcher for VoyagerPrefetcher {
    fn name(&self) -> &str {
        "Voyager"
    }

    fn prepare(&mut self, trace: &Trace) {
        let cfg = self.config;

        // Page vocabulary: the most frequently touched pages.
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for a in trace {
            *counts.entry(a.vaddr.page().0).or_insert(0) += 1;
        }
        let mut by_freq: Vec<(u64, usize)> = counts.into_iter().collect();
        by_freq.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        by_freq.truncate(cfg.page_vocab - 1);
        self.page_token.clear();
        self.page_of = vec![0];
        for (tok, (p, _)) in by_freq.iter().enumerate() {
            self.page_token.insert(*p, tok + 1);
            self.page_of.push(*p);
        }

        // Tokenized access stream, filtered to block *transitions*: Voyager
        // models the LLC access sequence, where same-block re-references
        // have been absorbed by the upper cache levels.
        let mut tokens: Vec<(usize, usize)> = Vec::with_capacity(trace.len());
        let mut last_block = None;
        for a in trace {
            let b = a.block();
            if last_block == Some(b) {
                continue;
            }
            last_block = Some(b);
            tokens.push((
                *self.page_token.get(&a.vaddr.page().0).unwrap_or(&0),
                a.vaddr.page_offset_blocks() as usize,
            ));
        }

        // Cap the offline training budget: beyond ~60K examples per epoch
        // the memorization quality saturates while the wall-clock keeps
        // growing (the paper notes Voyager "needs a long time to train").
        let stride = cfg.train_stride.max(tokens.len() / 40_000).max(1);
        let mut model = VoyagerModel::new(cfg);
        for _ in 0..cfg.epochs {
            let mut i = 0usize;
            while i + cfg.history < tokens.len() {
                let hist = &tokens[i..i + cfg.history];
                let (tp, to) = tokens[i + cfg.history];
                model.train_step(hist, tp, to, 0.01);
                i += stride;
            }
        }
        self.model = Some(model);
        self.history.clear();
        self.memo.clear();
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        let Some(model) = self.model.as_mut() else {
            return Vec::new();
        };
        let cfg = self.config;
        let block = access.block();
        if self.last_block == Some(block) {
            return Vec::new(); // same-block repeat: invisible at the LLC
        }
        self.last_block = Some(block);
        let ptok = *self.page_token.get(&access.vaddr.page().0).unwrap_or(&0);
        self.history
            .push((ptok, access.vaddr.page_offset_blocks() as usize));
        if self.history.len() > cfg.history {
            self.history.remove(0);
        }
        if self.history.len() < cfg.history {
            return Vec::new();
        }

        let (top_pages, top_offsets) = match self.memo.get(&self.history) {
            Some(v) => v.clone(),
            None => {
                let (pp, po) = model.predict(&self.history);
                let v = (top_k(&pp, 2), top_k(&po, cfg.degree.max(2)));
                if self.memo.len() > 1_000_000 {
                    self.memo.clear();
                }
                self.memo.insert(self.history.clone(), v.clone());
                v
            }
        };
        let cur = access.block();
        let mut out = Vec::with_capacity(cfg.degree);
        for &ptok in &top_pages {
            if ptok == 0 {
                continue; // OOV page: no usable address
            }
            let page = Page(self.page_of[ptok]);
            for &off in &top_offsets {
                if out.len() >= cfg.degree {
                    break;
                }
                let b = page.block_at(off as u8);
                if b != cur && !out.contains(&b) {
                    out.push(b);
                }
            }
            if out.len() >= cfg.degree {
                break;
            }
        }
        out
    }
}

fn top_k(probs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    let k = k.min(idx.len());
    if k < idx.len() {
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            probs[b].partial_cmp(&probs[a]).expect("finite probs")
        });
        idx.truncate(k);
    }
    idx.sort_unstable_by(|&a, &b| probs[b].partial_cmp(&probs[a]).expect("finite probs"));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::generate_prefetches;

    fn fast_cfg() -> VoyagerConfig {
        VoyagerConfig {
            hidden: 24,
            page_vocab: 65,
            train_stride: 1,
            epochs: 2,
            ..VoyagerConfig::default()
        }
    }

    /// A repeating irregular page/offset tour — temporal structure Voyager
    /// can memorize but no stride rule captures.
    fn tour_trace(reps: usize) -> Trace {
        let tour: Vec<(u64, u64)> = vec![
            (5, 10),
            (17, 3),
            (2, 60),
            (9, 33),
            (5, 11),
            (30, 0),
            (17, 4),
            (2, 61),
        ];
        let mut accesses = Vec::new();
        let mut id = 0u64;
        for _ in 0..reps {
            for &(p, o) in &tour {
                accesses.push(MemoryAccess::new(id, 0x400, p * 4096 + o * 64));
                id += 1;
            }
        }
        Trace::from_accesses(accesses)
    }

    #[test]
    fn memorizes_a_repeating_tour() {
        let trace = tour_trace(200);
        let mut v = VoyagerPrefetcher::new(fast_cfg());
        let reqs = generate_prefetches(&mut v, &trace, 2);
        // Count predictions matching the actual next access block.
        let accesses = trace.accesses();
        let mut hits = 0usize;
        for r in &reqs {
            let idx = r.trigger_instr_id as usize;
            if idx + 1 < accesses.len() && accesses[idx + 1].block() == r.block {
                hits += 1;
            }
        }
        assert!(
            hits > accesses.len() / 3,
            "voyager should replay the tour: {hits} hits / {} accesses",
            accesses.len()
        );
    }

    #[test]
    fn oov_pages_produce_no_prefetch_targets() {
        let trace = tour_trace(40);
        let mut v = VoyagerPrefetcher::new(fast_cfg());
        v.prepare(&trace);
        // Access a page far outside the vocabulary repeatedly.
        let mut out_all = Vec::new();
        for i in 0..10u64 {
            out_all.extend(v.on_access(&MemoryAccess::new(i, 0x400, 0xDEAD_0000 + i * 64)));
        }
        // Predictions may still target known pages but never the OOV page.
        for b in out_all {
            assert_ne!(b.page().0, 0xDEAD_0000 / 4096);
        }
    }

    #[test]
    fn needs_history_before_predicting() {
        let trace = tour_trace(40);
        let mut v = VoyagerPrefetcher::new(fast_cfg());
        v.prepare(&trace);
        assert!(v
            .on_access(&MemoryAccess::new(0, 0x400, 5 * 4096))
            .is_empty());
    }

    #[test]
    fn joint_model_learns_both_heads() {
        let mut m = VoyagerModel::new(VoyagerConfig {
            page_vocab: 9,
            hidden: 16,
            ..VoyagerConfig::default()
        });
        let hist = [(1usize, 5usize), (2, 6), (3, 7), (4, 8)];
        let first = m.train_step(&hist, 5, 9, 0.01);
        let mut last = first;
        for _ in 0..150 {
            last = m.train_step(&hist, 5, 9, 0.01);
        }
        assert!(last < first * 0.2, "loss should drop: {first} -> {last}");
        let (pp, po) = m.predict(&hist);
        assert_eq!(top_k(&pp, 1)[0], 5);
        assert_eq!(top_k(&po, 1)[0], 9);
    }
}
