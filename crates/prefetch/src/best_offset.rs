//! Best-Offset prefetching (Michaud, HPCA 2016) — the paper's rule-based
//! delta baseline, used with prefetch throttling disabled as provided by the
//! ML Prefetching Competition.

use pathfinder_sim::{Block, MemoryAccess};
use pathfinder_telemetry as telemetry;

use crate::api::Prefetcher;

/// Michaud's offset candidate list: numbers of the form `2^i * 3^j * 5^k`
/// up to 64, the standard BO configuration.
pub const BO_OFFSETS: [i64; 26] = [
    1, 2, 3, 4, 5, 6, 8, 9, 10, 12, 15, 16, 18, 20, 24, 25, 27, 30, 32, 36, 40, 45, 48, 50, 54, 60,
];

const SCORE_MAX: u32 = 31;
const ROUND_MAX: u32 = 100;
const BAD_SCORE: u32 = 1;
const RR_SIZE: usize = 256;

/// The Best-Offset prefetcher.
///
/// A learning phase scores each candidate offset `d` by checking, for every
/// access to block `X`, whether `X - d` was recently requested (i.e. whether
/// a `d`-offset prefetch issued back then would have been timely). When one
/// offset reaches [`SCORE_MAX`](self) or the round budget expires, the best
/// scorer becomes the active prefetch offset for the next phase.
#[derive(Debug, Clone)]
pub struct BestOffsetPrefetcher {
    /// Recent-requests ring buffer.
    rr: Vec<Block>,
    rr_pos: usize,
    scores: Vec<u32>,
    test_idx: usize,
    round: u32,
    best_offset: i64,
    /// When false the current phase issues no prefetches (best score was
    /// below [`BAD_SCORE`](self)). Always true when throttling is disabled.
    active: bool,
    throttling: bool,
    degree: usize,
}

impl BestOffsetPrefetcher {
    /// Creates a BO prefetcher with the competition configuration
    /// (throttling disabled, as the paper notes).
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        BestOffsetPrefetcher {
            rr: Vec::with_capacity(RR_SIZE),
            rr_pos: 0,
            scores: vec![0; BO_OFFSETS.len()],
            test_idx: 0,
            round: 0,
            best_offset: 1,
            active: true,
            throttling: false,
            degree,
        }
    }

    /// Enables score-based throttling (original paper behaviour): phases
    /// whose best score is below the bad-score threshold issue nothing.
    pub fn with_throttling(mut self) -> Self {
        self.throttling = true;
        self
    }

    /// The offset currently used for prefetching.
    pub fn current_offset(&self) -> i64 {
        self.best_offset
    }

    fn rr_contains(&self, b: Block) -> bool {
        self.rr.contains(&b)
    }

    fn rr_insert(&mut self, b: Block) {
        if self.rr.len() < RR_SIZE {
            self.rr.push(b);
        } else {
            self.rr[self.rr_pos] = b;
            self.rr_pos = (self.rr_pos + 1) % RR_SIZE;
        }
    }

    fn finish_phase(&mut self) {
        let (best_idx, &best_score) = self
            .scores
            .iter()
            .enumerate()
            .max_by_key(|(_, &s)| s)
            .expect("non-empty score table");
        self.best_offset = BO_OFFSETS[best_idx];
        self.active = !self.throttling || best_score >= BAD_SCORE;
        self.scores.fill(0);
        self.round = 0;
        self.test_idx = 0;
    }
}

impl Prefetcher for BestOffsetPrefetcher {
    fn name(&self) -> &str {
        "BO"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        telemetry::counter!("prefetch.best_offset.lookups", 1);
        let x = access.block();

        // Learning: test the next candidate offset against the RR table.
        let d = BO_OFFSETS[self.test_idx];
        if self.rr_contains(x.offset_by(-d)) {
            self.scores[self.test_idx] += 1;
            if self.scores[self.test_idx] >= SCORE_MAX {
                self.finish_phase();
            }
        }
        if self.round <= ROUND_MAX {
            self.test_idx += 1;
            if self.test_idx == BO_OFFSETS.len() {
                self.test_idx = 0;
                self.round += 1;
                if self.round >= ROUND_MAX {
                    self.finish_phase();
                }
            }
        }

        self.rr_insert(x);

        let out: Vec<Block> = if self.active {
            (1..=self.degree as i64)
                .map(|k| x.offset_by(self.best_offset * k))
                .collect()
        } else {
            Vec::new()
        };
        telemetry::counter!("prefetch.best_offset.issued", out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(i: u64, block: u64) -> MemoryAccess {
        MemoryAccess::new(i, 0x400, block * 64)
    }

    #[test]
    fn learns_a_constant_offset() {
        let mut bo = BestOffsetPrefetcher::new(1);
        // Stream with stride 3 blocks; offset 3 should win a phase.
        for rep in 0..4000u64 {
            bo.on_access(&access(rep, 1000 + rep * 3));
        }
        assert_eq!(bo.current_offset(), 3);
    }

    #[test]
    fn prefetches_with_learned_offset() {
        let mut bo = BestOffsetPrefetcher::new(1);
        for rep in 0..4000u64 {
            bo.on_access(&access(rep, 1000 + rep * 2));
        }
        let out = bo.on_access(&access(9000, 20_000));
        assert_eq!(out, vec![Block(20_002)]);
    }

    #[test]
    fn degree_two_extends_offset() {
        let mut bo = BestOffsetPrefetcher::new(2);
        for rep in 0..4000u64 {
            bo.on_access(&access(rep, 1000 + rep * 2));
        }
        let out = bo.on_access(&access(9000, 20_000));
        assert_eq!(out, vec![Block(20_002), Block(20_004)]);
    }

    #[test]
    fn throttling_disables_on_random_stream() {
        let mut bo = BestOffsetPrefetcher::new(1).with_throttling();
        // Pseudo-random blocks: no offset correlates.
        let mut x = 12345u64;
        for i in 0..6000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            bo.on_access(&access(i, (x >> 20) & 0xFFFFFF));
        }
        // After at least one full phase, the prefetcher should have gone
        // inactive (scores all ~0).
        let out = bo.on_access(&access(99999, 42));
        assert!(out.is_empty(), "random stream should throttle BO off");
    }

    #[test]
    fn competition_config_never_throttles() {
        let mut bo = BestOffsetPrefetcher::new(1);
        let mut x = 9u64;
        for i in 0..6000u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            bo.on_access(&access(i, (x >> 20) & 0xFFFFFF));
        }
        assert!(!bo.on_access(&access(99999, 42)).is_empty());
    }
}
