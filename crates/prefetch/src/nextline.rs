//! Next-line and per-PC stride prefetchers — the simplest rule-based
//! baselines (§2.1).

use std::collections::HashMap;

use pathfinder_sim::{Block, MemoryAccess};

use crate::api::Prefetcher;

/// Prefetches the block(s) immediately following every access.
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    degree: usize,
}

impl NextLinePrefetcher {
    /// Creates a degree-1 next-line prefetcher.
    pub fn new() -> Self {
        NextLinePrefetcher { degree: 1 }
    }

    /// Creates a next-line prefetcher issuing `degree` sequential blocks.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn with_degree(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        NextLinePrefetcher { degree }
    }
}

impl Default for NextLinePrefetcher {
    fn default() -> Self {
        NextLinePrefetcher::new()
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &str {
        "NextLine"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        let b = access.block();
        (1..=self.degree as u64).map(|d| Block(b.0 + d)).collect()
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct StrideEntry {
    last_block: Block,
    stride: i64,
    confidence: u8,
}

/// Classic per-PC stride detection: learns a load instruction's stride from
/// consecutive accesses and prefetches ahead once confident.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    table: HashMap<u64, StrideEntry>,
    degree: usize,
    /// Confidence needed before issuing (2-bit counter semantics).
    threshold: u8,
    max_entries: usize,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with the given lookahead degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree == 0`.
    pub fn new(degree: usize) -> Self {
        assert!(degree > 0, "degree must be positive");
        StridePrefetcher {
            table: HashMap::new(),
            degree,
            threshold: 2,
            max_entries: 4096,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &str {
        "Stride"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        let pc = access.pc.raw();
        let block = access.block();
        if self.table.len() >= self.max_entries && !self.table.contains_key(&pc) {
            // Cheap capacity control: drop everything (rare in practice).
            self.table.clear();
        }
        let entry = self.table.entry(pc).or_insert(StrideEntry {
            last_block: block,
            stride: 0,
            confidence: 0,
        });
        let observed = entry.last_block.delta(block);
        if observed == entry.stride && observed != 0 {
            entry.confidence = (entry.confidence + 1).min(3);
        } else {
            entry.stride = observed;
            entry.confidence = 0;
        }
        entry.last_block = block;

        if entry.confidence >= self.threshold && entry.stride != 0 {
            let stride = entry.stride;
            (1..=self.degree as i64)
                .map(|k| block.offset_by(stride * k))
                .collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(i: u64, pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::new(i, pc, block * 64)
    }

    #[test]
    fn nextline_prefetches_successor() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(p.on_access(&access(0, 1, 10)), vec![Block(11)]);
    }

    #[test]
    fn nextline_degree_extends_run() {
        let mut p = NextLinePrefetcher::with_degree(3);
        assert_eq!(
            p.on_access(&access(0, 1, 10)),
            vec![Block(11), Block(12), Block(13)]
        );
    }

    #[test]
    fn stride_learns_after_confidence_builds() {
        let mut p = StridePrefetcher::new(2);
        assert!(p.on_access(&access(0, 7, 100)).is_empty());
        assert!(p.on_access(&access(1, 7, 103)).is_empty()); // stride 3 seen once
        assert!(p.on_access(&access(2, 7, 106)).is_empty()); // confidence 1
        let out = p.on_access(&access(3, 7, 109)); // confidence 2 -> issue
        assert_eq!(out, vec![Block(112), Block(115)]);
    }

    #[test]
    fn stride_change_resets_confidence() {
        let mut p = StridePrefetcher::new(1);
        for i in 0..4 {
            p.on_access(&access(i, 7, 100 + i * 2));
        }
        assert!(!p.on_access(&access(4, 7, 108)).is_empty());
        // Break the stride.
        assert!(p.on_access(&access(5, 7, 200)).is_empty());
        assert!(p.on_access(&access(6, 7, 300)).is_empty());
    }

    #[test]
    fn strides_are_per_pc() {
        let mut p = StridePrefetcher::new(1);
        for i in 0..4 {
            p.on_access(&access(i * 2, 1, 100 + i));
            p.on_access(&access(i * 2 + 1, 2, 500 + i * 5));
        }
        assert_eq!(p.on_access(&access(8, 1, 104)), vec![Block(105)]);
        assert_eq!(p.on_access(&access(9, 2, 520)), vec![Block(525)]);
    }

    #[test]
    fn negative_stride_supported() {
        let mut p = StridePrefetcher::new(1);
        for i in 0..4u64 {
            p.on_access(&access(i, 3, 1000 - i * 2));
        }
        assert_eq!(p.on_access(&access(4, 3, 992)), vec![Block(990)]);
    }
}
