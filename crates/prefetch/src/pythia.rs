//! A Pythia-style reinforcement-learning prefetcher (Bera et al., MICRO
//! 2021), ported to the LLC as in the paper's evaluation (§4.3).
//!
//! Pythia frames prefetching as an RL problem: the *state* is a hash of
//! program features (PC, recent page deltas), the *actions* are candidate
//! prefetch deltas (plus "no prefetch"), and the *reward* scores each
//! action by whether the prefetched block was demanded soon after
//! (accurate/timely), never (inaccurate, wasting bandwidth), or whether
//! declining to prefetch was right. Q-values live in a tabular value store
//! and are updated SARSA-style when an action's outcome resolves.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

use pathfinder_sim::{Block, MemoryAccess};

use crate::api::Prefetcher;

/// Pythia's default action list: candidate block deltas. Index 0 is the
/// explicit "no prefetch" action.
pub const DEFAULT_ACTIONS: [i64; 16] = [0, 1, 2, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32, -1, -3];

/// Reward levels, following the Pythia paper's structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RewardConfig {
    /// Prefetch demanded within the timeliness window.
    pub accurate_timely: f32,
    /// Prefetch demanded, but late in the window.
    pub accurate_late: f32,
    /// Prefetch never demanded before the window expired.
    pub inaccurate: f32,
    /// The no-prefetch action (mildly positive: saves bandwidth).
    pub no_prefetch: f32,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            accurate_timely: 20.0,
            accurate_late: 12.0,
            inaccurate: -8.0,
            no_prefetch: -2.0,
        }
    }
}

/// Tunable Pythia configuration (the paper swept alpha/gamma/epsilon and the
/// action list to find its best LLC port).
#[derive(Debug, Clone, PartialEq)]
pub struct PythiaConfig {
    /// Learning rate.
    pub alpha: f32,
    /// Discount factor.
    pub gamma: f32,
    /// Exploration rate for ε-greedy action selection.
    pub epsilon: f32,
    /// Candidate prefetch deltas (`0` = no prefetch).
    pub actions: Vec<i64>,
    /// Accesses after which an unresolved prefetch counts as inaccurate.
    pub horizon: usize,
    /// Accesses within which a hit counts as timely.
    pub timely_horizon: usize,
    /// Reward levels.
    pub rewards: RewardConfig,
}

impl Default for PythiaConfig {
    fn default() -> Self {
        PythiaConfig {
            alpha: 0.0065,
            gamma: 0.556,
            epsilon: 0.002,
            actions: DEFAULT_ACTIONS.to_vec(),
            horizon: 256,
            timely_horizon: 64,
            rewards: RewardConfig::default(),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct InFlight {
    state: u64,
    action_idx: usize,
    block: Block,
    issued_at: u64,
}

/// The RL prefetcher.
#[derive(Debug)]
pub struct PythiaPrefetcher {
    config: PythiaConfig,
    /// Q-table: state hash → per-action values.
    q: HashMap<u64, Vec<f32>>,
    /// Outstanding actions awaiting their reward.
    inflight: VecDeque<InFlight>,
    /// Last block per page, to compute page-local deltas as a state feature.
    last_in_page: HashMap<u64, u8>,
    last_delta: i64,
    access_count: u64,
    rng: StdRng,
    /// Total prefetches issued (Table 6 reports these).
    issued: u64,
}

impl PythiaPrefetcher {
    /// Creates a Pythia with the default LLC configuration.
    pub fn new(seed: u64) -> Self {
        PythiaPrefetcher::with_config(PythiaConfig::default(), seed)
    }

    /// Creates a Pythia with explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics if the action list is empty or lacks the no-prefetch action.
    pub fn with_config(config: PythiaConfig, seed: u64) -> Self {
        assert!(!config.actions.is_empty(), "need at least one action");
        assert!(
            config.actions.contains(&0),
            "action list must include the no-prefetch action (0)"
        );
        PythiaPrefetcher {
            q: HashMap::new(),
            inflight: VecDeque::new(),
            last_in_page: HashMap::new(),
            last_delta: 0,
            access_count: 0,
            rng: StdRng::seed_from_u64(seed),
            issued: 0,
            config,
        }
    }

    /// Prefetches issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Feature vector → state hash. Uses Pythia's best-reported feature
    /// combination: PC plus recent delta history.
    fn state_of(&self, access: &MemoryAccess, page_delta: i64) -> u64 {
        let pc = access.pc.raw();
        let mix = pc.wrapping_mul(0x9E3779B97F4A7C15)
            ^ ((page_delta as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
            ^ ((self.last_delta as u64).rotate_left(17));
        mix & 0xFFFF // bounded state space, like Pythia's hashed vault
    }

    fn q_values(&mut self, state: u64) -> &mut Vec<f32> {
        let n = self.config.actions.len();
        self.q.entry(state).or_insert_with(|| vec![0.0; n])
    }

    fn best_action(&mut self, state: u64) -> usize {
        let vals = self.q_values(state);
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in vals.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Resolves in-flight actions: demanded → positive reward, expired →
    /// negative. `next_state` anchors the bootstrap term.
    fn resolve(&mut self, demanded: Block, next_state: u64) {
        let horizon = self.config.horizon as u64;
        let now = self.access_count;
        let cfg = self.config.clone();
        let next_best = {
            let idx = self.best_action(next_state);
            self.q_values(next_state)[idx]
        };

        let mut remaining = VecDeque::with_capacity(self.inflight.len());
        while let Some(f) = self.inflight.pop_front() {
            let age = now - f.issued_at;
            let reward = if f.block == demanded {
                if age <= cfg.timely_horizon as u64 {
                    Some(cfg.rewards.accurate_timely)
                } else {
                    Some(cfg.rewards.accurate_late)
                }
            } else if age > horizon {
                Some(cfg.rewards.inaccurate)
            } else {
                None
            };
            match reward {
                Some(r) => {
                    let q = self.q_values(f.state);
                    let old = q[f.action_idx];
                    q[f.action_idx] = old + cfg.alpha * (r + cfg.gamma * next_best - old);
                }
                None => remaining.push_back(f),
            }
        }
        self.inflight = remaining;
    }
}

impl Prefetcher for PythiaPrefetcher {
    fn name(&self) -> &str {
        "Pythia"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        self.access_count += 1;
        let block = access.block();
        let page = block.page();

        let page_delta = match self.last_in_page.insert(page.0, block.page_offset()) {
            Some(prev) => block.page_offset() as i64 - prev as i64,
            None => 0,
        };
        let state = self.state_of(access, page_delta);

        // Learn from what this demand access resolves.
        self.resolve(block, state);
        self.last_delta = page_delta;

        // ε-greedy action selection.
        let n = self.config.actions.len();
        let action_idx = if self.rng.gen_range(0.0f32..1.0) < self.config.epsilon {
            self.rng.gen_range(0..n)
        } else {
            self.best_action(state)
        };
        let delta = self.config.actions[action_idx];

        if delta == 0 {
            // Explicit no-prefetch: immediate mild reward.
            let r = self.config.rewards.no_prefetch;
            let (alpha, gamma) = (self.config.alpha, self.config.gamma);
            let next_best = {
                let idx = self.best_action(state);
                self.q_values(state)[idx]
            };
            let q = self.q_values(state);
            let old = q[action_idx];
            q[action_idx] = old + alpha * (r + gamma * next_best - old);
            return Vec::new();
        }

        // Pythia prefetches at degree 2 along its chosen delta (the paper's
        // LLC port issues up to the competition budget), which makes it the
        // most aggressive baseline in Table 6.
        let target = block.offset_by(delta);
        let extension = block.offset_by(2 * delta);
        self.inflight.push_back(InFlight {
            state,
            action_idx,
            block: target,
            issued_at: self.access_count,
        });
        // Bound the queue so pathological streams cannot grow it unbounded.
        while self.inflight.len() > 4 * self.config.horizon {
            self.inflight.pop_front();
        }
        self.issued += 2;
        vec![target, extension]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(i: u64, pc: u64, block: u64) -> MemoryAccess {
        MemoryAccess::new(i, pc, block * 64)
    }

    #[test]
    fn learns_a_unit_stride() {
        let mut py = PythiaPrefetcher::new(1);
        // Long +1 stream within pages.
        let mut i = 0u64;
        for page in 0..400u64 {
            for off in 0..32u64 {
                py.on_access(&access(i, 0x400, page * 64 + off));
                i += 1;
            }
        }
        // After training, the prefetcher should predict +1 on this stream.
        let mut correct = 0;
        for off in 0..31u64 {
            let out = py.on_access(&access(i, 0x400, 100_000 * 64 + off));
            i += 1;
            if out.contains(&Block(100_000 * 64 + off + 1)) {
                correct += 1;
            }
        }
        assert!(correct > 20, "should mostly predict +1, got {correct}/31");
    }

    #[test]
    fn counts_issued_prefetches() {
        let mut py = PythiaPrefetcher::new(2);
        for i in 0..1000u64 {
            py.on_access(&access(i, 0x400, i));
        }
        assert!(py.issued() > 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut py = PythiaPrefetcher::new(seed);
            let mut all = Vec::new();
            for i in 0..2000u64 {
                all.extend(py.on_access(&access(i, 0x400, i * 3 % 997)));
            }
            all
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    #[should_panic(expected = "no-prefetch")]
    fn rejects_action_list_without_zero() {
        let cfg = PythiaConfig {
            actions: vec![1, 2],
            ..PythiaConfig::default()
        };
        let _ = PythiaPrefetcher::with_config(cfg, 1);
    }

    #[test]
    fn random_stream_backs_off() {
        // On an unlearnable stream, negative rewards should push Pythia
        // toward fewer (or no-prefetch) actions relative to always-prefetch.
        let mut py = PythiaPrefetcher::new(3);
        let mut x = 99u64;
        let mut n_issued_late = 0u64;
        for i in 0..30_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let out = py.on_access(&access(i, 0x400 + (x % 7), (x >> 24) & 0xFFFFF));
            if i > 25_000 && !out.is_empty() {
                n_issued_late += 1;
            }
        }
        assert!(
            n_issued_late < 4500,
            "pythia should partially back off on noise, issued {n_issued_late}/5000"
        );
    }
}
