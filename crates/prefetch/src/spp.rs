//! Signature Path Prefetcher (Kim et al., MICRO 2016) — the paper's
//! history-based delta baseline with confidence-driven lookahead.

use std::collections::HashMap;

use pathfinder_sim::{Block, MemoryAccess, BLOCKS_PER_PAGE};
use pathfinder_telemetry as telemetry;

use crate::api::Prefetcher;

const SIG_SHIFT: u32 = 3;
const SIG_BITS: u32 = 12;
const MAX_PATTERNS: usize = 4;
const COUNTER_MAX: u32 = 15;

#[derive(Debug, Clone, Copy)]
struct SignatureEntry {
    last_offset: u8,
    signature: u16,
}

#[derive(Debug, Clone, Default)]
struct PatternEntry {
    /// (delta, counter), at most [`MAX_PATTERNS`] of them.
    deltas: Vec<(i8, u32)>,
    total: u32,
}

impl PatternEntry {
    fn update(&mut self, delta: i8) {
        if let Some(i) = self.deltas.iter().position(|(d, _)| *d == delta) {
            if self.deltas[i].1 >= COUNTER_MAX {
                // SPP's saturation scheme: halve every counter so the
                // confidence *ratio* survives saturation.
                for e in &mut self.deltas {
                    e.1 /= 2;
                }
            }
            self.deltas[i].1 += 1;
        } else if self.deltas.len() < MAX_PATTERNS {
            self.deltas.push((delta, 1));
        } else if let Some(min) = self.deltas.iter_mut().min_by_key(|(_, c)| *c) {
            // Replace the weakest pattern.
            *min = (delta, 1);
        }
        self.total = self.deltas.iter().map(|(_, c)| c).sum();
    }

    /// Highest-confidence delta and its fractional confidence.
    ///
    /// Confidence is Laplace-smoothed (`c / (total + 2)`) so that a single
    /// observation cannot reach full confidence — SPP only trusts patterns
    /// with repeated support.
    fn best(&self) -> Option<(i8, f64)> {
        if self.total == 0 {
            return None;
        }
        self.deltas
            .iter()
            .max_by_key(|(_, c)| *c)
            .map(|&(d, c)| (d, c as f64 / (self.total + 2) as f64))
    }
}

/// SPP configuration knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SppConfig {
    /// Minimum cumulative path confidence to keep issuing prefetches.
    /// SPP's adaptive throttling makes it the most *selective* baseline in
    /// the paper (highest accuracy, lowest coverage — Table 6).
    pub confidence_threshold: f64,
    /// Maximum lookahead depth along the signature path.
    pub max_depth: usize,
}

impl Default for SppConfig {
    fn default() -> Self {
        SppConfig {
            // Tuned for the paper's SPP character: the most accurate and
            // least aggressive baseline (Table 6 shows it issuing far fewer
            // prefetches than Pythia or PATHFINDER).
            confidence_threshold: 0.6,
            max_depth: 3,
        }
    }
}

/// The Signature Path Prefetcher.
///
/// A per-page signature compresses the page's recent delta history; a
/// pattern table maps signatures to likely next deltas with confidence
/// counters. Prediction walks the signature path speculatively, multiplying
/// confidences, and stops below the threshold.
#[derive(Debug, Clone)]
pub struct SppPrefetcher {
    config: SppConfig,
    signature_table: HashMap<u64, SignatureEntry>,
    pattern_table: HashMap<u16, PatternEntry>,
    max_pages: usize,
}

impl SppPrefetcher {
    /// Creates an SPP with the default configuration.
    pub fn new() -> Self {
        SppPrefetcher::with_config(SppConfig::default())
    }

    /// Creates an SPP with explicit knobs.
    pub fn with_config(config: SppConfig) -> Self {
        SppPrefetcher {
            config,
            signature_table: HashMap::new(),
            pattern_table: HashMap::new(),
            max_pages: 1 << 14,
        }
    }

    fn next_signature(sig: u16, delta: i8) -> u16 {
        let d = (delta as i16 as u16) & 0x7F;
        ((sig << SIG_SHIFT) ^ d) & ((1 << SIG_BITS) - 1)
    }
}

impl Default for SppPrefetcher {
    fn default() -> Self {
        SppPrefetcher::new()
    }
}

impl Prefetcher for SppPrefetcher {
    fn name(&self) -> &str {
        "SPP"
    }

    fn on_access(&mut self, access: &MemoryAccess) -> Vec<Block> {
        telemetry::counter!("prefetch.spp.lookups", 1);
        let block = access.block();
        let page = block.page();
        let offset = block.page_offset();

        if self.signature_table.len() >= self.max_pages {
            self.signature_table.clear();
        }

        let sig = match self.signature_table.get_mut(&page.0) {
            Some(entry) => {
                let delta = offset as i8 - entry.last_offset as i8;
                if delta == 0 {
                    return Vec::new();
                }
                // Learn: old signature predicts this delta.
                self.pattern_table
                    .entry(entry.signature)
                    .or_default()
                    .update(delta);
                entry.signature = Self::next_signature(entry.signature, delta);
                entry.last_offset = offset;
                entry.signature
            }
            None => {
                self.signature_table.insert(
                    page.0,
                    SignatureEntry {
                        last_offset: offset,
                        signature: 0,
                    },
                );
                return Vec::new();
            }
        };

        // Predict: walk the signature path while confidence holds.
        let mut out = Vec::new();
        let mut cur_sig = sig;
        let mut cur_offset = offset as i64;
        let mut confidence = 1.0f64;
        for _ in 0..self.config.max_depth {
            let Some(entry) = self.pattern_table.get(&cur_sig) else {
                break;
            };
            let Some((delta, c)) = entry.best() else {
                break;
            };
            confidence *= c;
            if confidence < self.config.confidence_threshold {
                break;
            }
            cur_offset += delta as i64;
            if !(0..BLOCKS_PER_PAGE as i64).contains(&cur_offset) {
                break; // stay within the page, as base SPP does
            }
            out.push(page.block_at(cur_offset as u8));
            cur_sig = Self::next_signature(cur_sig, delta);
        }
        telemetry::counter!("prefetch.spp.issued", out.len() as u64);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(i: u64, page: u64, offset: u64) -> MemoryAccess {
        MemoryAccess::new(i, 0x400, page * 4096 + offset * 64)
    }

    #[test]
    fn learns_repeating_delta_pattern() {
        let mut spp = SppPrefetcher::new();
        // Visit pages with the same +2 delta pattern repeatedly.
        let mut i = 0u64;
        for page in 0..50u64 {
            for step in 0..12u64 {
                spp.on_access(&access(i, page, step * 2));
                i += 1;
            }
        }
        // On a fresh page following the same pattern, SPP should predict +2.
        spp.on_access(&access(i, 999, 0));
        let out = spp.on_access(&access(i + 1, 999, 2));
        assert!(
            out.contains(&Block(999 * 64 + 4)),
            "expected +2 prediction, got {out:?}"
        );
    }

    #[test]
    fn lookahead_issues_multiple_blocks() {
        let mut spp = SppPrefetcher::with_config(SppConfig {
            confidence_threshold: 0.3,
            max_depth: 4,
        });
        let mut i = 0u64;
        for page in 0..80u64 {
            for step in 0..20u64 {
                spp.on_access(&access(i, page, step));
                i += 1;
            }
        }
        spp.on_access(&access(i, 777, 0));
        let out = spp.on_access(&access(i + 1, 777, 1));
        assert!(out.len() >= 2, "lookahead should go deep, got {out:?}");
        assert_eq!(out[0], Block(777 * 64 + 2));
        assert_eq!(out[1], Block(777 * 64 + 3));
    }

    #[test]
    fn no_prediction_without_history() {
        let mut spp = SppPrefetcher::new();
        assert!(spp.on_access(&access(0, 5, 0)).is_empty());
    }

    #[test]
    fn stays_within_page() {
        let mut spp = SppPrefetcher::new();
        let mut i = 0u64;
        for page in 0..60u64 {
            for step in 0..10u64 {
                spp.on_access(&access(i, page, 54 + step));
                i += 1;
            }
        }
        spp.on_access(&access(i, 321, 54));
        let out = spp.on_access(&access(i + 1, 321, 55));
        for b in &out {
            assert_eq!(b.page().0, 321, "prefetch must stay in page: {b:?}");
        }
    }

    #[test]
    fn throttles_on_noisy_deltas() {
        // Alternating random deltas mean no signature accumulates
        // confidence; SPP should issue little or nothing.
        let mut spp = SppPrefetcher::new();
        let mut issued = 0usize;
        let mut x = 7u64;
        for i in 0..5000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let off = (x >> 33) % 64;
            issued += spp.on_access(&access(i, (i / 8) % 32, off)).len();
        }
        assert!(
            issued < 1500,
            "noisy stream should be throttled, issued {issued}"
        );
    }
}
