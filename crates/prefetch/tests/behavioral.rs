//! Behavioural tests: each baseline on the archetypal access pattern it was
//! designed for (and one it was not).

use pathfinder_prefetch::{
    generate_prefetches, BestOffsetPrefetcher, DeltaLstmConfig, DeltaLstmPrefetcher,
    NextLinePrefetcher, Prefetcher, PythiaPrefetcher, SisbPrefetcher, SppPrefetcher,
    StridePrefetcher, VoyagerConfig, VoyagerPrefetcher,
};
use pathfinder_sim::{MemoryAccess, Trace};

/// Fraction of prefetches matching the actual next-access block.
fn next_block_hit_rate(p: &mut dyn Prefetcher, trace: &Trace) -> f64 {
    let schedule = generate_prefetches(p, trace, 2);
    if schedule.is_empty() {
        return 0.0;
    }
    let accesses = trace.accesses();
    let hits = schedule
        .iter()
        .filter(|r| {
            let i = r.trigger_instr_id as usize;
            accesses.get(i + 1).is_some_and(|n| n.block() == r.block)
        })
        .count();
    hits as f64 / schedule.len() as f64
}

/// Fraction of prefetches matching ANY of the next `w` accesses.
fn window_hit_rate(p: &mut dyn Prefetcher, trace: &Trace, w: usize) -> f64 {
    let schedule = generate_prefetches(p, trace, 2);
    if schedule.is_empty() {
        return 0.0;
    }
    let accesses = trace.accesses();
    let hits = schedule
        .iter()
        .filter(|r| {
            let i = r.trigger_instr_id as usize;
            accesses[i + 1..(i + 1 + w).min(accesses.len())]
                .iter()
                .any(|n| n.block() == r.block)
        })
        .count();
    hits as f64 / schedule.len() as f64
}

fn strided(n: u64, stride: u64) -> Trace {
    (0..n)
        .map(|i| MemoryAccess::new(i, 0x400, 0x10_0000 + i * stride * 64))
        .collect()
}

fn irregular_loop(n: u64) -> Trace {
    // A repeating tour of scattered blocks (temporal structure only).
    let tour: Vec<u64> = (0..64).map(|i| (i * 7919) % 4096).collect();
    (0..n)
        .map(|i| MemoryAccess::new(i, 0x400, tour[(i % 64) as usize] * 64))
        .collect()
}

fn random_blocks(n: u64) -> Trace {
    let mut x = 88172645463325252u64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            MemoryAccess::new(i, 0x400, (x % (1 << 24)) * 64)
        })
        .collect()
}

#[test]
fn nextline_owns_unit_streams() {
    let t = strided(3000, 1);
    let rate = next_block_hit_rate(&mut NextLinePrefetcher::new(), &t);
    assert!(rate > 0.95, "NL on a unit stream: {rate}");
}

#[test]
fn stride_prefetcher_owns_constant_strides() {
    let t = strided(3000, 5);
    let rate = next_block_hit_rate(&mut StridePrefetcher::new(1), &t);
    assert!(rate > 0.9, "stride detector on stride 5: {rate}");
    // NL fails here.
    let nl = next_block_hit_rate(&mut NextLinePrefetcher::new(), &t);
    assert!(nl < 0.1, "NL should miss a stride-5 stream: {nl}");
}

#[test]
fn best_offset_finds_the_dominant_offset() {
    let t = strided(6000, 3);
    let rate = next_block_hit_rate(&mut BestOffsetPrefetcher::new(1), &t);
    assert!(rate > 0.7, "BO on stride 3: {rate}");
}

#[test]
fn spp_captures_multi_delta_cycles() {
    // In-page pattern {+1,+2,+3} repeated: signatures resolve it; plain
    // stride detection cannot.
    let mut accesses = Vec::new();
    let mut id = 0u64;
    for page in 0..200u64 {
        let mut off = 0u64;
        for _ in 0..4 {
            for d in [1u64, 2, 3] {
                accesses.push(MemoryAccess::new(id, 0x400, page * 4096 + off * 64));
                id += 1;
                off += d;
                if off >= 64 {
                    break;
                }
            }
            if off >= 64 {
                break;
            }
        }
    }
    let t = Trace::from_accesses(accesses);
    let spp = window_hit_rate(&mut SppPrefetcher::new(), &t, 3);
    assert!(spp > 0.5, "SPP on {{1,2,3}} cycles: {spp}");
    let stride = window_hit_rate(&mut StridePrefetcher::new(1), &t, 3);
    assert!(
        spp > stride,
        "SPP {spp} should beat plain stride {stride} on delta cycles"
    );
}

#[test]
fn sisb_owns_irregular_repetition() {
    let t = irregular_loop(4000);
    let sisb = next_block_hit_rate(&mut SisbPrefetcher::new(1), &t);
    assert!(sisb > 0.9, "SISB on a repeating tour: {sisb}");
    // Delta prefetchers see noise.
    let bo = next_block_hit_rate(&mut BestOffsetPrefetcher::new(1), &t);
    assert!(bo < 0.3, "BO should fail on the tour: {bo}");
}

#[test]
fn pythia_learns_streams_and_throttles_on_noise() {
    let stream = strided(20_000, 1);
    let mut py = PythiaPrefetcher::new(3);
    let on_stream = window_hit_rate(&mut py, &stream, 4);
    assert!(on_stream > 0.5, "Pythia on a stream: {on_stream}");

    let noise = random_blocks(20_000);
    let mut py = PythiaPrefetcher::new(3);
    let schedule = generate_prefetches(&mut py, &noise, 2);
    // ε-greedy exploration keeps issuing a little, but the learned policy
    // should lean heavily on the no-prefetch action.
    assert!(
        (schedule.len() as f64) < 0.9 * 2.0 * noise.len() as f64,
        "Pythia should not max out issue on noise: {}",
        schedule.len()
    );
}

#[test]
fn delta_lstm_needs_its_training_distribution() {
    // Stride fixed through the whole trace: the 10% prefix suffices.
    let t = strided(4000, 2);
    let mut dl = DeltaLstmPrefetcher::new(DeltaLstmConfig {
        clusters: 1,
        hidden: 16,
        layers: 1,
        vocab: 17,
        ..DeltaLstmConfig::default()
    });
    let rate = next_block_hit_rate(&mut dl, &t);
    assert!(rate > 0.5, "Delta-LSTM on its training stride: {rate}");
    assert_eq!(dl.unseen_deltas(), 0, "no novel deltas on a pure stream");
}

#[test]
fn voyager_memorizes_what_sisb_memorizes() {
    let t = irregular_loop(4000);
    let mut v = VoyagerPrefetcher::new(VoyagerConfig {
        hidden: 24,
        page_vocab: 65,
        train_stride: 1,
        epochs: 2,
        ..VoyagerConfig::default()
    });
    let rate = window_hit_rate(&mut v, &t, 2);
    assert!(rate > 0.3, "Voyager on a repeating tour: {rate}");
}
