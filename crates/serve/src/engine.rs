//! The sharded serving engine: stream-affine worker pool + request routing.
//!
//! Streams are sharded by `stream_id % shards` onto persistent worker
//! threads, each owning its streams outright (no locks on the hot path) and
//! processing its inbox serially — which is exactly what preserves per-stream
//! access order, and with it the bit-identical-to-batch guarantee from
//! [`crate::stream`]. This generalizes the harness's atomic-cursor worker
//! pool from "grid cells pulled off a shared cursor" to "live streams pinned
//! to a shard": grid cells are finished work items, streams are long-lived
//! state, so affinity replaces work stealing.
//!
//! The engine is transport-agnostic: [`ServeEngine::request`] takes a typed
//! [`Request`] and returns a typed [`Response`], so tests drive it in-process
//! over the same code path the Unix-socket server uses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Mutex;
use std::thread::JoinHandle;

use pathfinder_telemetry::{counter, Snapshot};

use crate::protocol::{AccessRecord, DrainedStream, Request, Response, ServeStatus, StreamStatus};
use crate::stream::{StreamSession, StreamTemplate};

/// What a shard reports for a daemon-wide `status`.
#[derive(Debug, Clone)]
struct ShardReport {
    /// Live streams on the shard.
    streams: u64,
    /// Accesses ingested on the shard, including already-drained streams.
    accesses: u64,
    /// Schedule entries produced on the shard, including drained streams.
    schedule_len: u64,
    /// The shard thread's ambient telemetry snapshot.
    telemetry: Snapshot,
}

/// Messages the engine sends its shard workers. Each request-shaped message
/// carries its own reply channel, so concurrent connection threads can wait
/// on their own replies without coordinating.
enum ShardMsg {
    Access {
        stream: u64,
        access: AccessRecord,
        reply: Sender<Response>,
    },
    Predict {
        stream: u64,
        reply: Sender<Response>,
    },
    Train {
        stream: u64,
        accesses: Vec<AccessRecord>,
        reply: Sender<Response>,
    },
    StreamStatus {
        stream: u64,
        reply: Sender<Response>,
    },
    ShardStatus {
        reply: Sender<ShardReport>,
    },
    SetTemplate(Box<StreamTemplate>),
    DrainStream {
        stream: u64,
        reply: Sender<Response>,
    },
    DrainAll {
        reply: Sender<Vec<DrainedStream>>,
    },
    Stop,
}

struct ShardHandle {
    tx: Sender<ShardMsg>,
    join: Mutex<Option<JoinHandle<()>>>,
}

/// The daemon core: a bounded pool of stream-affine shard workers.
pub struct ServeEngine {
    shards: Vec<ShardHandle>,
    template: Mutex<StreamTemplate>,
    draining: AtomicBool,
}

impl std::fmt::Debug for ServeEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeEngine")
            .field("shards", &self.shards.len())
            .field("draining", &self.draining.load(Ordering::Relaxed))
            .finish()
    }
}

impl ServeEngine {
    /// Starts an engine with `shards` workers and the default template.
    pub fn new(shards: usize) -> Self {
        ServeEngine::with_template(StreamTemplate::default(), shards)
    }

    /// Starts an engine with `shards` workers built from `template`.
    /// `shards` is clamped to at least 1.
    pub fn with_template(template: StreamTemplate, shards: usize) -> Self {
        let n = shards.max(1);
        let shards = (0..n as u32)
            .map(|shard_id| {
                let (tx, rx) = mpsc::channel();
                let tmpl = template.clone();
                let join = std::thread::Builder::new()
                    .name(format!("pf-serve-shard-{shard_id}"))
                    .spawn(move || shard_worker(shard_id, tmpl, rx))
                    .expect("spawn shard worker");
                ShardHandle {
                    tx,
                    join: Mutex::new(Some(join)),
                }
            })
            .collect();
        ServeEngine {
            shards,
            template: Mutex::new(template),
            draining: AtomicBool::new(false),
        }
    }

    /// Number of shard workers.
    pub fn shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Whether a full drain has completed: the daemon no longer serves and
    /// its transport loop should exit.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn shard_for(&self, stream: u64) -> &ShardHandle {
        &self.shards[(stream % self.shards.len() as u64) as usize]
    }

    /// Sends a per-stream message to its shard and waits for the reply.
    fn roundtrip(&self, stream: u64, make: impl FnOnce(Sender<Response>) -> ShardMsg) -> Response {
        let (reply_tx, reply_rx) = mpsc::channel();
        if self.shard_for(stream).tx.send(make(reply_tx)).is_err() {
            return Response::Error("daemon is draining".into());
        }
        reply_rx
            .recv()
            .unwrap_or_else(|_| Response::Error("shard worker exited".into()))
    }

    /// Serves one typed request. This is the single entry point shared by
    /// the Unix-socket transport and in-process tests.
    pub fn request(&self, req: Request) -> Response {
        match req {
            Request::Access { stream, access } => {
                self.roundtrip(stream, |reply| ShardMsg::Access {
                    stream,
                    access,
                    reply,
                })
            }
            Request::Predict { stream } => {
                self.roundtrip(stream, |reply| ShardMsg::Predict { stream, reply })
            }
            Request::Train { stream, accesses } => {
                self.roundtrip(stream, |reply| ShardMsg::Train {
                    stream,
                    accesses,
                    reply,
                })
            }
            Request::Status {
                stream: Some(stream),
            } => self.roundtrip(stream, |reply| ShardMsg::StreamStatus { stream, reply }),
            Request::Status { stream: None } => self.daemon_status(),
            Request::Configure(delta) => {
                let mut template = self.template.lock().expect("template lock");
                match template.apply(&delta) {
                    Ok(()) => {
                        for shard in &self.shards {
                            // A closed inbox just means that shard already
                            // stopped; configure is best-effort then.
                            let _ = shard
                                .tx
                                .send(ShardMsg::SetTemplate(Box::new(template.clone())));
                        }
                        Response::Ok
                    }
                    Err(e) => Response::Error(format!("invalid configuration: {e}")),
                }
            }
            Request::Drain {
                stream: Some(stream),
            } => self.roundtrip(stream, |reply| ShardMsg::DrainStream { stream, reply }),
            Request::Drain { stream: None } => self.drain_all(),
        }
    }

    /// Daemon-wide `status`: fan out to every shard, merge the reports.
    fn daemon_status(&self) -> Response {
        let mut receivers = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            if shard.tx.send(ShardMsg::ShardStatus { reply: tx }).is_ok() {
                receivers.push(rx);
            }
        }
        let mut streams = 0u64;
        let mut accesses = 0u64;
        let mut schedule_len = 0u64;
        let mut telemetry = Snapshot::default();
        for rx in receivers {
            if let Ok(report) = rx.recv() {
                streams += report.streams;
                accesses += report.accesses;
                schedule_len += report.schedule_len;
                telemetry.merge(&report.telemetry);
            }
        }
        Response::Status(ServeStatus {
            shards: self.shards(),
            streams,
            accesses,
            schedule_len,
            telemetry_json: telemetry.to_json(),
        })
    }

    /// Full drain: every stream on every shard is finished (timed replay +
    /// final stats), the workers stop, and the engine flags itself as
    /// draining so the transport loop shuts down.
    fn drain_all(&self) -> Response {
        self.draining.store(true, Ordering::SeqCst);
        let mut receivers = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let (tx, rx) = mpsc::channel();
            if shard.tx.send(ShardMsg::DrainAll { reply: tx }).is_ok() {
                receivers.push(rx);
            }
        }
        let mut drained: Vec<DrainedStream> = Vec::new();
        for rx in receivers {
            if let Ok(mut streams) = rx.recv() {
                drained.append(&mut streams);
            }
        }
        drained.sort_by_key(|s| s.stream);
        for shard in &self.shards {
            let _ = shard.tx.send(ShardMsg::Stop);
            if let Some(join) = shard.join.lock().expect("join lock").take() {
                let _ = join.join();
            }
        }
        Response::Drained(drained)
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Stop workers that a full drain never reached (abandoned engine).
        for shard in &self.shards {
            let _ = shard.tx.send(ShardMsg::Stop);
        }
        for shard in &self.shards {
            if let Some(join) = shard.join.lock().expect("join lock").take() {
                let _ = join.join();
            }
        }
    }
}

/// The shard worker loop: owns this shard's streams, processes its inbox
/// serially (per-stream order preservation), and answers with its reply
/// channels.
fn shard_worker(shard_id: u32, mut template: StreamTemplate, rx: Receiver<ShardMsg>) {
    let mut streams: HashMap<u64, StreamSession> = HashMap::new();
    // Totals survive per-stream drains so daemon-wide `status` keeps
    // counting work already finished.
    let mut total_accesses = 0u64;
    let mut total_schedule = 0u64;

    // One borrow point for lazy stream creation, shared by access + train.
    fn session_mut<'a>(
        streams: &'a mut HashMap<u64, StreamSession>,
        stream: u64,
        template: &StreamTemplate,
    ) -> Result<&'a mut StreamSession, String> {
        use std::collections::hash_map::Entry;
        match streams.entry(stream) {
            Entry::Occupied(e) => Ok(e.into_mut()),
            Entry::Vacant(e) => {
                counter!("serve.streams_created", 1);
                Ok(e.insert(StreamSession::new(stream, template)?))
            }
        }
    }

    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Access {
                stream,
                access,
                reply,
            } => {
                let resp = match session_mut(&mut streams, stream, &template) {
                    Ok(session) => {
                        let blocks = session.access(access);
                        counter!("serve.accesses", 1);
                        counter!("serve.prefetches", blocks.len() as u64);
                        total_accesses += 1;
                        total_schedule += blocks.len() as u64;
                        Response::Prefetches(blocks.into_iter().map(|b| b.0).collect())
                    }
                    Err(e) => Response::Error(e),
                };
                let _ = reply.send(resp);
            }
            ShardMsg::Predict { stream, reply } => {
                let resp = match streams.get(&stream) {
                    Some(session) => Response::Prefetches(
                        session.last_prediction().iter().map(|b| b.0).collect(),
                    ),
                    None => Response::Error(format!("unknown stream {stream}")),
                };
                let _ = reply.send(resp);
            }
            ShardMsg::Train {
                stream,
                accesses,
                reply,
            } => {
                let resp = match session_mut(&mut streams, stream, &template) {
                    Ok(session) => {
                        let n = accesses.len() as u64;
                        let mut prefetched = 0u64;
                        for rec in accesses {
                            prefetched += session.access(rec).len() as u64;
                        }
                        counter!("serve.accesses", n);
                        counter!("serve.prefetches", prefetched);
                        total_accesses += n;
                        total_schedule += prefetched;
                        Response::Trained {
                            accesses: n,
                            prefetched,
                        }
                    }
                    Err(e) => Response::Error(e),
                };
                let _ = reply.send(resp);
            }
            ShardMsg::StreamStatus { stream, reply } => {
                let resp = match streams.get(&stream) {
                    Some(session) => Response::Stream(StreamStatus {
                        stream,
                        shard: shard_id,
                        accesses: session.accesses(),
                        schedule_len: session.schedule_len(),
                        last_prediction: session.last_prediction().iter().map(|b| b.0).collect(),
                        pf: session.stats(),
                    }),
                    None => Response::Error(format!("unknown stream {stream}")),
                };
                let _ = reply.send(resp);
            }
            ShardMsg::ShardStatus { reply } => {
                let _ = reply.send(ShardReport {
                    streams: streams.len() as u64,
                    accesses: total_accesses,
                    schedule_len: total_schedule,
                    telemetry: pathfinder_telemetry::snapshot(),
                });
            }
            ShardMsg::SetTemplate(new_template) => {
                template = *new_template;
            }
            ShardMsg::DrainStream { stream, reply } => {
                let resp = match streams.remove(&stream) {
                    Some(session) => {
                        counter!("serve.drains", 1);
                        Response::Drained(vec![session.drain()])
                    }
                    None => Response::Error(format!("unknown stream {stream}")),
                };
                let _ = reply.send(resp);
            }
            ShardMsg::DrainAll { reply } => {
                let mut ids: Vec<u64> = streams.keys().copied().collect();
                ids.sort_unstable();
                let drained: Vec<DrainedStream> = ids
                    .into_iter()
                    .filter_map(|id| streams.remove(&id))
                    .map(|session| {
                        counter!("serve.drains", 1);
                        session.drain()
                    })
                    .collect();
                let _ = reply.send(drained);
            }
            ShardMsg::Stop => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u64) -> AccessRecord {
        AccessRecord {
            instr_id: i * 2,
            pc: 0x400,
            vaddr: i * 64,
            depends_on_prev: false,
        }
    }

    #[test]
    fn verbs_round_trip_through_the_pool() {
        let engine = ServeEngine::new(3);
        assert_eq!(engine.shards(), 3);

        // Unknown stream: predict/status/drain all error.
        assert!(matches!(
            engine.request(Request::Predict { stream: 7 }),
            Response::Error(_)
        ));
        assert!(matches!(
            engine.request(Request::Status { stream: Some(7) }),
            Response::Error(_)
        ));
        assert!(matches!(
            engine.request(Request::Drain { stream: Some(7) }),
            Response::Error(_)
        ));

        // Accesses create the stream lazily and echo the issued blocks.
        for i in 0..50 {
            let resp = engine.request(Request::Access {
                stream: 7,
                access: rec(i),
            });
            let Response::Prefetches(blocks) = resp else {
                panic!("access reply was {resp:?}");
            };
            let Response::Prefetches(predicted) = engine.request(Request::Predict { stream: 7 })
            else {
                panic!("predict failed")
            };
            assert_eq!(blocks, predicted, "predict reads back the last access");
        }

        let Response::Stream(status) = engine.request(Request::Status { stream: Some(7) }) else {
            panic!("stream status failed")
        };
        assert_eq!(status.accesses, 50);
        assert_eq!(status.shard, 7 % 3);
        assert_eq!(status.pf.accesses, 50);

        // Train on a second stream; daemon-wide status sums both.
        let Response::Trained { accesses, .. } = engine.request(Request::Train {
            stream: 8,
            accesses: (0..30).map(rec).collect(),
        }) else {
            panic!("train failed")
        };
        assert_eq!(accesses, 30);
        let Response::Status(daemon) = engine.request(Request::Status { stream: None }) else {
            panic!("daemon status failed")
        };
        assert_eq!(daemon.streams, 2);
        assert_eq!(daemon.accesses, 80);
        assert_eq!(daemon.shards, 3);

        // Per-stream drain removes the stream; totals persist.
        let Response::Drained(drained) = engine.request(Request::Drain { stream: Some(7) }) else {
            panic!("drain failed")
        };
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].stream, 7);
        assert_eq!(drained[0].pf.accesses, 50);
        assert!(matches!(
            engine.request(Request::Status { stream: Some(7) }),
            Response::Error(_)
        ));
        let Response::Status(daemon) = engine.request(Request::Status { stream: None }) else {
            panic!("daemon status failed")
        };
        assert_eq!(daemon.streams, 1);
        assert_eq!(daemon.accesses, 80, "drained work still counted");

        // Full drain returns the remaining stream and shuts the pool down.
        let Response::Drained(rest) = engine.request(Request::Drain { stream: None }) else {
            panic!("full drain failed")
        };
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].stream, 8);
        assert!(engine.is_draining());
        assert!(matches!(
            engine.request(Request::Predict { stream: 8 }),
            Response::Error(_)
        ));
    }

    #[test]
    fn configure_applies_to_new_streams_only() {
        let engine = ServeEngine::new(2);
        engine.request(Request::Access {
            stream: 1,
            access: rec(0),
        });
        // Invalid delta is rejected without changing anything.
        assert!(matches!(
            engine.request(Request::Configure(crate::protocol::ConfigDelta {
                degree: Some(0),
                ..Default::default()
            })),
            Response::Error(_)
        ));
        // Valid delta: new streams see it.
        assert!(matches!(
            engine.request(Request::Configure(crate::protocol::ConfigDelta {
                duty: Some((250, 5000)),
                ..Default::default()
            })),
            Response::Ok
        ));
        engine.request(Request::Access {
            stream: 2,
            access: rec(0),
        });
        let Response::Status(daemon) = engine.request(Request::Status { stream: None }) else {
            panic!("status failed")
        };
        assert_eq!(daemon.streams, 2);
    }
}
